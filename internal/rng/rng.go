// Package rng provides deterministic pseudo-random number generation for the
// WiScape simulator.
//
// Every stochastic component of the simulation (radio fields, mobility,
// packet loss, scheduling) draws from a Rand seeded from an explicit 64-bit
// seed, so that campaigns, tests and benchmarks are exactly reproducible
// across runs and platforms. The package also exposes stateless hashing
// (Hash64) used to derive smooth spatial noise fields from coordinates: the
// value at a lattice point depends only on (seed, x, y), never on call order.
package rng

import (
	"math"
	"time"
)

// splitmix64 advances the state and returns the next output of the
// SplitMix64 generator (Steele, Lea, Flood 2014). It is used both as the
// core generator and as a finalizing mixer for Hash64.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d49bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes an arbitrary sequence of 64-bit words into a single
// well-distributed 64-bit value. It is stateless: the result depends only on
// the inputs. Use it to derive per-entity seeds ("seed of network B's
// capacity field") and lattice noise values.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h = splitmix64(&h)
	}
	// Final avalanche so that short inputs are still well mixed.
	return splitmix64(&h)
}

// HashString folds a string into a 64-bit hash (FNV-1a core, SplitMix64
// finalizer). Used to derive seeds from human-readable names.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(&h)
}

// Rand is a small, fast, deterministic PRNG (SplitMix64 stream). The zero
// value is a valid generator with seed 0, but callers normally use New.
//
// Rand is not safe for concurrent use; create one per goroutine (Split makes
// this cheap and collision-free).
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// NewNamed returns a generator whose stream is derived from a base seed and a
// name, so independent subsystems get independent streams from one campaign
// seed.
func NewNamed(seed uint64, name string) *Rand {
	return New(Hash64(seed, HashString(name)))
}

// Split derives a new independent generator from r without perturbing r's
// own future outputs in a correlated way.
func (r *Rand) Split(label uint64) *Rand {
	return New(Hash64(r.Uint64(), label))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	return splitmix64(&r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (polar Box–Muller, one value
// per call with internal caching of the spare value).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal deviate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a bounded Pareto deviate with shape alpha on [lo, hi].
// SURGE-style heavy-tailed web object sizes use this.
func (r *Rand) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("rng: Pareto requires 0 < lo < hi")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Backoff is a deterministic jittered exponential backoff schedule: the
// delay before retry attempt n (0-based) is Base·Factor^n capped at Max,
// then jittered uniformly into [d/2, d) so a fleet of clients seeded
// differently never retries in lock-step. The zero value takes the
// defaults below. Draws come from an explicit *Rand, keeping schedules
// exactly reproducible like every other stochastic component here.
type Backoff struct {
	Base   time.Duration // first delay; default 250ms
	Max    time.Duration // delay cap; default 15s
	Factor float64       // growth per attempt; default 2
}

// Backoff defaults.
const (
	DefaultBackoffBase   = 250 * time.Millisecond
	DefaultBackoffMax    = 15 * time.Second
	DefaultBackoffFactor = 2.0
)

// Delay returns the jittered delay before retry attempt n (0-based),
// advancing r by exactly one draw.
func (b Backoff) Delay(attempt int, r *Rand) time.Duration {
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if factor <= 1 {
		factor = DefaultBackoffFactor
	}
	d := float64(base) * math.Pow(factor, float64(attempt))
	if d > float64(max) || math.IsInf(d, 0) {
		d = float64(max)
	}
	// Uniform jitter in [d/2, d): full-delay worst case, half-delay best,
	// never zero.
	return time.Duration(d/2 + r.Float64()*d/2)
}
