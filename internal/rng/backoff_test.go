package rng

import (
	"testing"
	"time"
)

func TestBackoffDeterministicForSameStream(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	a1, a2 := NewNamed(7, "retry"), NewNamed(7, "retry")
	for i := 0; i < 8; i++ {
		if d1, d2 := b.Delay(i, a1), b.Delay(i, a2); d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v from identical streams", i, d1, d2)
		}
	}
	// A different stream name draws different jitter.
	other := NewNamed(7, "other")
	same := true
	ref := NewNamed(7, "retry")
	for i := 0; i < 8; i++ {
		if b.Delay(i, ref) != b.Delay(i, other) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct streams produced identical schedules")
	}
}

func TestBackoffJitterWindowAndGrowth(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Hour, Factor: 2}
	r := NewNamed(1, "jitter")
	for attempt := 0; attempt < 6; attempt++ {
		full := time.Duration(float64(b.Base) * pow2(attempt))
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(attempt, r)
			if d < full/2 || d >= full {
				t.Fatalf("attempt %d: delay %v outside [%v,%v)", attempt, d, full/2, full)
			}
		}
	}
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

func TestBackoffCapsAtMax(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	r := NewNamed(1, "cap")
	for trial := 0; trial < 100; trial++ {
		// Attempt 40 would be ~100ms * 2^40 uncapped; even the int64
		// overflow region must stay inside [Max/2, Max).
		if d := b.Delay(40, r); d < b.Max/2 || d >= b.Max {
			t.Fatalf("capped delay %v outside [%v,%v)", d, b.Max/2, b.Max)
		}
	}
}

func TestBackoffZeroValueUsesDefaults(t *testing.T) {
	var b Backoff
	r := NewNamed(1, "defaults")
	if d := b.Delay(0, r); d < DefaultBackoffBase/2 || d >= DefaultBackoffBase {
		t.Fatalf("zero-value first delay %v outside [%v,%v)", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	for trial := 0; trial < 100; trial++ {
		if d := b.Delay(100, r); d >= DefaultBackoffMax {
			t.Fatalf("zero-value delay %v exceeds the default cap %v", d, DefaultBackoffMax)
		}
	}
}
