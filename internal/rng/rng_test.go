package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestNewNamedIndependentStreams(t *testing.T) {
	a := NewNamed(7, "radio")
	b := NewNamed(7, "mobility")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named streams from the same seed should differ")
	}
	// Same seed+name must reproduce.
	c := NewNamed(7, "radio")
	d := NewNamed(7, "radio")
	if c.Uint64() != d.Uint64() {
		t.Fatal("NewNamed is not deterministic")
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(3, 2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
	if Hash64(0) == Hash64(0, 0) {
		t.Fatal("Hash64 should be length sensitive")
	}
}

func TestHashString(t *testing.T) {
	if HashString("neta") == HashString("netb") {
		t.Fatal("distinct strings collided")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("HashString not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(10)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean %.4f, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev %.4f, want ~2", math.Sqrt(variance))
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential deviate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(14)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.1, 2800, 3200000)
		if v < 2800 || v > 3200000 {
			t.Fatalf("bounded Pareto escaped bounds: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha close to 1 the distribution should produce both small and
	// large values; medians should sit near the low end.
	r := New(15)
	const n = 20000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.1, 1, 1e6)
		if v < 10 {
			small++
		}
		if v > 1e2 {
			large++
		}
	}
	if small < n/2 {
		t.Fatalf("expected most mass near the low bound, got %d/%d below 10", small, n)
	}
	if large == 0 {
		t.Fatal("expected at least some heavy-tail draws above 1e2")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(16)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.4f", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(18)
	a := r.Split(1)
	b := r.Split(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestRangeWithin(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNoise2DDeterministic(t *testing.T) {
	a := NewNoise2D(5, 4, 0.5, 2)
	b := NewNoise2D(5, 4, 0.5, 2)
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.37
		y := float64(i) * 0.73
		if a.At(x, y) != b.At(x, y) {
			t.Fatalf("noise not deterministic at (%v,%v)", x, y)
		}
	}
}

func TestNoise2DRange(t *testing.T) {
	n := NewNoise2D(6, 4, 0.5, 2)
	for i := 0; i < 5000; i++ {
		x := float64(i%71) * 0.13
		y := float64(i%53) * 0.29
		v := n.At(x, y)
		if v < -1 || v > 1 {
			t.Fatalf("noise out of range: %v", v)
		}
		v01 := n.At01(x, y)
		if v01 < 0 || v01 > 1 {
			t.Fatalf("At01 out of range: %v", v01)
		}
	}
}

func TestNoise2DSmoothness(t *testing.T) {
	// Nearby points must have nearby values: that is the property the zone
	// analysis rests on. Check that the max delta over a tiny step is far
	// smaller than the field's overall spread.
	n := NewNoise2D(7, 4, 0.5, 2)
	const step = 1e-3
	maxDelta := 0.0
	for i := 0; i < 2000; i++ {
		x := float64(i) * 0.211
		y := float64(i) * 0.107
		d := math.Abs(n.At(x+step, y) - n.At(x, y))
		if d > maxDelta {
			maxDelta = d
		}
	}
	if maxDelta > 0.05 {
		t.Fatalf("noise not smooth: max delta %v over step %v", maxDelta, step)
	}
}

func TestNoise2DDecorrelates(t *testing.T) {
	// Points far apart should show meaningful variation (the field is not a
	// constant).
	n := NewNoise2D(8, 4, 0.5, 2)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		v := n.At(float64(i)*3.7, float64(i)*2.3)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 0.5 {
		t.Fatalf("field spread %v too small; expected diverse values", hi-lo)
	}
}

func TestNoise1DDeterministic(t *testing.T) {
	a := NewNoise1D(9, 3, 0.5, 2)
	for i := 0; i < 100; i++ {
		tm := float64(i) * 0.41
		if a.At(tm) != a.At(tm) {
			t.Fatal("Noise1D not stable")
		}
		if v := a.At(tm); v < -1 || v > 1 {
			t.Fatalf("Noise1D out of range: %v", v)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(20)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
	same := true
	for i := range s {
		if s[i] != orig[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle produced identity permutation (astronomically unlikely)")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNoise2D(b *testing.B) {
	n := NewNoise2D(1, 4, 0.5, 2)
	for i := 0; i < b.N; i++ {
		_ = n.At(float64(i)*0.01, float64(i)*0.02)
	}
}
