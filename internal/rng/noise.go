package rng

import "math"

// Noise2D is a smooth deterministic 2-D scalar field in [-1, 1], built from
// value noise on an integer lattice with cosine interpolation and fractal
// (fBm) octave summation. The radio simulator uses it to paint spatially
// correlated capacity and latency surfaces: nearby points get similar values
// (low in-zone variance) while points a kilometre apart decorrelate —
// exactly the structure WiScape's zone sizing analysis (Fig. 4) depends on.
type Noise2D struct {
	seed        uint64
	octaves     int
	persistence float64 // amplitude decay per octave, e.g. 0.5
	lacunarity  float64 // frequency growth per octave, e.g. 2.0
}

// NewNoise2D returns a fractal value-noise field. octaves must be >= 1;
// typical values: octaves 4, persistence 0.5, lacunarity 2.
func NewNoise2D(seed uint64, octaves int, persistence, lacunarity float64) *Noise2D {
	if octaves < 1 {
		octaves = 1
	}
	return &Noise2D{seed: seed, octaves: octaves, persistence: persistence, lacunarity: lacunarity}
}

// lattice returns the deterministic pseudo-random value in [-1, 1] at an
// integer lattice point for a given octave.
func (n *Noise2D) lattice(octave int, xi, yi int64) float64 {
	h := Hash64(n.seed, uint64(octave), uint64(xi), uint64(yi))
	return float64(h>>11)/(1<<52) - 1 // [-1, 1)
}

// smoothstep cosine interpolation weight.
func smooth(t float64) float64 {
	return (1 - math.Cos(t*math.Pi)) / 2
}

// octaveAt evaluates a single octave of value noise at (x, y).
func (n *Noise2D) octaveAt(octave int, x, y float64) float64 {
	xf := math.Floor(x)
	yf := math.Floor(y)
	xi := int64(xf)
	yi := int64(yf)
	tx := smooth(x - xf)
	ty := smooth(y - yf)

	v00 := n.lattice(octave, xi, yi)
	v10 := n.lattice(octave, xi+1, yi)
	v01 := n.lattice(octave, xi, yi+1)
	v11 := n.lattice(octave, xi+1, yi+1)

	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// At evaluates the fractal field at (x, y). Output is in [-1, 1] (normalized
// by the total octave amplitude).
func (n *Noise2D) At(x, y float64) float64 {
	sum := 0.0
	amp := 1.0
	freq := 1.0
	total := 0.0
	for o := 0; o < n.octaves; o++ {
		sum += amp * n.octaveAt(o, x*freq, y*freq)
		total += amp
		amp *= n.persistence
		freq *= n.lacunarity
	}
	return sum / total
}

// At01 evaluates the field rescaled to [0, 1].
func (n *Noise2D) At01(x, y float64) float64 {
	return (n.At(x, y) + 1) / 2
}

// Noise1D is the 1-D analogue of Noise2D, used for slowly varying temporal
// processes (e.g. per-zone load drift).
type Noise1D struct {
	inner *Noise2D
}

// NewNoise1D returns a fractal 1-D value-noise process.
func NewNoise1D(seed uint64, octaves int, persistence, lacunarity float64) *Noise1D {
	return &Noise1D{inner: NewNoise2D(seed, octaves, persistence, lacunarity)}
}

// At evaluates the process at time t (in caller-chosen units). Output in
// [-1, 1].
func (n *Noise1D) At(t float64) float64 {
	return n.inner.At(t, 0.5)
}
