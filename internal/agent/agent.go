// Package agent implements the WiScape client: a lightweight user agent
// that reports its coarse zone to the coordinator, executes the measurement
// tasks it is assigned (and only those — keeping bandwidth and energy
// overhead low), and uploads the resulting samples with precise GPS fixes
// (§3.4).
package agent

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Metrics counts client-side protocol activity. All fields are nil-safe,
// so the zero value (and a nil *Metrics) is free; see internal/telemetry.
type Metrics struct {
	Reconnects     *telemetry.Counter
	Rounds         *telemetry.Counter
	TasksExecuted  *telemetry.Counter
	SamplesSent    *telemetry.Counter
	ReportFailures *telemetry.Counter

	// Wire carries codec counters shared by every connection the agent
	// opens.
	Wire *wire.Metrics
}

// NewMetrics registers the agent families on reg (nil reg gives a valid
// no-op Metrics) and resolves their series once.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Reconnects: reg.Counter("wiscape_agent_reconnects_total",
			"Redials after a dropped coordinator connection.").With(),
		Rounds: reg.Counter("wiscape_agent_rounds_total",
			"Zone-report rounds completed.").With(),
		TasksExecuted: reg.Counter("wiscape_agent_tasks_executed_total",
			"Measurement tasks executed.").With(),
		SamplesSent: reg.Counter("wiscape_agent_samples_sent_total",
			"Samples acknowledged by the coordinator.").With(),
		ReportFailures: reg.Counter("wiscape_agent_report_failures_total",
			"Protocol round trips that failed (hello, zone report, or sample upload).").With(),
		Wire: wire.NewMetrics(reg),
	}
}

func (m *Metrics) wireMetrics() *wire.Metrics {
	if m == nil {
		return nil
	}
	return m.Wire
}

func (m *Metrics) reconnect() {
	if m != nil {
		m.Reconnects.Inc()
	}
}

func (m *Metrics) reportFailure() {
	if m != nil {
		m.ReportFailures.Inc()
	}
}

// Agent is one WiScape client device.
type Agent struct {
	ID          string
	DeviceClass string
	Track       mobility.Track
	Env         *radio.Environment
	Networks    []radio.NetworkID
	Seed        uint64

	// Grid must match the coordinator's zone grid (derived from the same
	// origin and radius).
	Grid *geo.Grid

	// Telemetry, when non-nil, receives client-side metrics (build one
	// with NewMetrics). Nil runs uninstrumented at zero cost.
	Telemetry *Metrics

	// RetryBackoff shapes RunResilient's inter-redial delays (jittered
	// exponential, deterministic from Seed and ID). The zero value takes
	// the rng.Backoff defaults (250ms base, 15s cap, factor 2).
	RetryBackoff rng.Backoff

	// sleep intercepts backoff waits in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// pause blocks for d via the injected sleeper, defaulting to the real
// clock. The default is wired as a value, not called here: nodeterm
// enforces that this is the agent's only wall-clock wait.
func (a *Agent) pause(d time.Duration) {
	sleep := a.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

// Stats summarizes one agent run, including the client-side cost WiScape
// is designed to minimize: measurement bytes and radio-on time (from which
// an energy figure follows).
type Stats struct {
	Rounds        int // zone reports sent
	TasksExecuted int
	SamplesSent   int
	Skipped       int // rounds where the platform was inactive

	MeasurementBytes   int64         // payload bytes moved by measurement tasks
	MeasurementAirtime time.Duration // radio-active time spent measuring
}

// cellularActiveWatts is the power draw of a 3G radio in the active state,
// used for the energy estimate (DCH state, ~1.2 W in contemporary
// measurements).
const cellularActiveWatts = 1.2

// EnergyJoules estimates the measurement energy cost of the run.
func (s Stats) EnergyJoules() float64 {
	return s.MeasurementAirtime.Seconds() * cellularActiveWatts
}

// Run connects to the coordinator at addr and executes the protocol over
// the simulated interval [start, start+duration), reporting its zone every
// interval. The wall-clock cost is just the protocol round trips; time is
// virtual.
func (a *Agent) Run(addr string, start time.Time, duration, interval time.Duration) (Stats, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return Stats{}, fmt.Errorf("agent %s: dial: %w", a.ID, err)
	}
	conn := wire.NewConn(nc).Instrument(a.Telemetry.wireMetrics())
	defer conn.Close()
	return a.RunConn(conn, start, duration, interval)
}

// RunResilient is Run with automatic reconnection: when the coordinator
// connection drops mid-campaign, the agent redials and resumes from where
// it left off (real clients outlive coordinator restarts). Redials after a
// failure wait out a deterministic jittered exponential backoff (seeded
// from Seed and ID, shaped by RetryBackoff), so a fleet of agents facing a
// down coordinator spreads its retries instead of hammering in lock-step.
// It gives up after maxRetries consecutive attempts with no forward
// progress.
func (a *Agent) RunResilient(addr string, start time.Time, duration, interval time.Duration, maxRetries int) (Stats, error) {
	var total Stats
	cursor := start
	end := start.Add(duration)
	retries := 0
	first := true
	backoffRand := rng.NewNamed(a.Seed, "agent-backoff:"+a.ID)
	for cursor.Before(end) {
		if !first {
			a.Telemetry.reconnect()
		}
		first = false
		st, next, err := a.runOnce(addr, cursor, end, interval)
		total.Rounds += st.Rounds
		total.TasksExecuted += st.TasksExecuted
		total.SamplesSent += st.SamplesSent
		total.Skipped += st.Skipped
		total.MeasurementBytes += st.MeasurementBytes
		total.MeasurementAirtime += st.MeasurementAirtime
		if err == nil {
			return total, nil
		}
		if !next.After(cursor) {
			// No forward progress this attempt.
			retries++
			if retries > maxRetries {
				return total, fmt.Errorf("agent %s: giving up after %d retries: %w", a.ID, retries-1, err)
			}
		} else {
			retries = 0
		}
		cursor = next
		// Back off before the redial, escalating with consecutive
		// no-progress attempts (a made-progress drop resets to the base).
		a.pause(a.RetryBackoff.Delay(retries, backoffRand))
	}
	return total, nil
}

// runOnce dials once and runs from cursor; next reports how far the
// campaign advanced (the resume point on error).
func (a *Agent) runOnce(addr string, cursor, end time.Time, interval time.Duration) (Stats, time.Time, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return Stats{}, cursor, fmt.Errorf("agent %s: dial: %w", a.ID, err)
	}
	conn := wire.NewConn(nc).Instrument(a.Telemetry.wireMetrics())
	defer conn.Close()
	st, err := a.RunConn(conn, cursor, end.Sub(cursor), interval)
	progressed := time.Duration(st.Rounds+st.Skipped) * interval
	return st, cursor.Add(progressed), err
}

// RunConn is Run over an existing wire connection (used with net.Pipe in
// tests).
func (a *Agent) RunConn(conn *wire.Conn, start time.Time, duration, interval time.Duration) (Stats, error) {
	var st Stats
	if interval <= 0 {
		return st, fmt.Errorf("agent %s: non-positive interval", a.ID)
	}

	reply, err := conn.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{
		ClientID:    a.ID,
		DeviceClass: a.DeviceClass,
	}})
	if err != nil {
		a.Telemetry.reportFailure()
		return st, fmt.Errorf("agent %s: hello: %w", a.ID, err)
	}
	if reply.Type != wire.TypeHelloAck {
		a.Telemetry.reportFailure()
		return st, fmt.Errorf("agent %s: unexpected hello reply %q", a.ID, reply.Type)
	}

	probers := make(map[radio.NetworkID]*simnet.Prober, len(a.Networks))
	for _, n := range a.Networks {
		if f := a.Env.Field(n); f != nil {
			probers[n] = simnet.NewProber(f, rng.Hash64(a.Seed, rng.HashString(a.ID), rng.HashString(string(n))))
		}
	}

	end := start.Add(duration)
	for at := start; at.Before(end); at = at.Add(interval) {
		pose := a.Track.Pose(at)
		if !pose.Active {
			st.Skipped++
			continue
		}
		st.Rounds++
		reply, err := conn.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
			ClientID: a.ID,
			Zone:     a.Grid.Zone(pose.Loc),
			Loc:      pose.Loc,
			SpeedKmh: pose.SpeedKmh,
			At:       at,
			Networks: a.Networks,
		}})
		if err != nil {
			a.Telemetry.reportFailure()
			return st, fmt.Errorf("agent %s: zone report: %w", a.ID, err)
		}
		if reply.Type != wire.TypeTaskList {
			a.Telemetry.reportFailure()
			return st, fmt.Errorf("agent %s: unexpected zone reply %q", a.ID, reply.Type)
		}
		if a.Telemetry != nil {
			a.Telemetry.Rounds.Inc()
		}
		tasks := reply.TaskList.Tasks
		if len(tasks) == 0 {
			continue
		}
		samples, bytes, airtime := a.execute(tasks, probers, pose, at)
		st.TasksExecuted += len(tasks)
		st.MeasurementBytes += bytes
		st.MeasurementAirtime += airtime
		if a.Telemetry != nil {
			a.Telemetry.TasksExecuted.Add(float64(len(tasks)))
		}
		if len(samples) == 0 {
			continue
		}
		ack, err := conn.Request(wire.Envelope{Type: wire.TypeSampleReport, SampleReport: &wire.SampleReport{
			ClientID: a.ID,
			Samples:  samples,
		}})
		if err != nil {
			a.Telemetry.reportFailure()
			return st, fmt.Errorf("agent %s: sample report: %w", a.ID, err)
		}
		if ack.Type != wire.TypeSampleAck {
			a.Telemetry.reportFailure()
			return st, fmt.Errorf("agent %s: unexpected sample reply %q", a.ID, ack.Type)
		}
		st.SamplesSent += ack.SampleAck.Accepted
		if a.Telemetry != nil {
			a.Telemetry.SamplesSent.Add(float64(ack.SampleAck.Accepted))
		}
	}
	return st, nil
}

// execute runs the assigned measurement tasks at the current pose,
// returning the samples plus the bytes and radio airtime they cost.
func (a *Agent) execute(tasks []wire.Task, probers map[radio.NetworkID]*simnet.Prober,
	pose mobility.Pose, at time.Time) (out []trace.Sample, bytes int64, airtime time.Duration) {

	base := trace.Sample{Time: at, Loc: pose.Loc, ClientID: a.ID, Device: a.DeviceClass, SpeedKmh: pose.SpeedKmh}
	for _, t := range tasks {
		p := probers[t.Network]
		if p == nil {
			continue
		}
		s := base
		s.Network = t.Network
		s.Metric = t.Metric
		switch t.Metric {
		case trace.MetricUDPKbps, trace.MetricJitterMs, trace.MetricLossRate:
			fr := p.UDPDownload(pose.Loc, at, orDefault(t.UDPPackets, 100), orDefault(t.UDPSizeBytes, 1200))
			switch t.Metric {
			case trace.MetricUDPKbps:
				s.Value = fr.ThroughputKbps()
			case trace.MetricJitterMs:
				s.Value = fr.JitterMs()
			default:
				s.Value = fr.LossRate()
			}
			bytes += int64(orDefault(t.UDPPackets, 100) * orDefault(t.UDPSizeBytes, 1200))
			airtime += fr.Duration()
		case trace.MetricUplinkKbps:
			fr := p.UDPUpload(pose.Loc, at, orDefault(t.UDPPackets, 100), orDefault(t.UDPSizeBytes, 1200))
			s.Value = fr.ThroughputKbps()
			bytes += int64(orDefault(t.UDPPackets, 100) * orDefault(t.UDPSizeBytes, 1200))
			airtime += fr.Duration()
		case trace.MetricTCPKbps:
			fr := p.TCPDownload(pose.Loc, at, orDefault(t.TCPBytes, 256<<10))
			s.Value = fr.ThroughputKbps()
			bytes += int64(orDefault(t.TCPBytes, 256<<10))
			airtime += fr.Duration()
		case trace.MetricRTTMs:
			pr := p.Ping(pose.Loc, at)
			s.Value = pr.RTTMs
			s.Failed = pr.Failed
			bytes += 128 // request + reply payload
			airtime += time.Duration(pr.RTTMs * float64(time.Millisecond))
		default:
			continue
		}
		out = append(out, s)
	}
	return out, bytes, airtime
}

func orDefault(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

// QueryZoneList fetches every published record for a network/metric from a
// coordinator — the dashboard/map bulk query.
func QueryZoneList(addr string, net_ radio.NetworkID, metric trace.Metric) ([]core.Record, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: zone list dial: %w", err)
	}
	conn := wire.NewConn(nc)
	defer conn.Close()
	reply, err := conn.Request(wire.Envelope{Type: wire.TypeZoneListRequest, ZoneListRequest: &wire.ZoneListRequest{
		Network: net_, Metric: metric,
	}})
	if err != nil {
		return nil, fmt.Errorf("agent: zone list: %w", err)
	}
	if reply.Type != wire.TypeZoneListReply {
		return nil, fmt.Errorf("agent: unexpected zone list reply %q", reply.Type)
	}
	return reply.ZoneListReply.Records, nil
}

// QueryEstimate asks a coordinator for a zone record over a fresh
// connection — the application-side API (multi-sim phones, MAR gateways).
func QueryEstimate(addr string, zone geo.ZoneID, net_ radio.NetworkID, metric trace.Metric) (*wire.EstimateReply, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: query dial: %w", err)
	}
	conn := wire.NewConn(nc)
	defer conn.Close()
	reply, err := conn.Request(wire.Envelope{Type: wire.TypeEstimateRequest, EstimateRequest: &wire.EstimateRequest{
		Zone: zone, Network: net_, Metric: metric,
	}})
	if err != nil {
		return nil, fmt.Errorf("agent: query: %w", err)
	}
	if reply.Type != wire.TypeEstimateReply {
		return nil, fmt.Errorf("agent: unexpected query reply %q", reply.Type)
	}
	return reply.EstimateReply, nil
}
