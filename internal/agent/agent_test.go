package agent

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/wire"
)

const seed = 9099

var start = time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)

func testAgent() *Agent {
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	return &Agent{
		ID:          "unit",
		DeviceClass: string(device.ClassLaptop),
		Track:       mobility.Static{P: geo.MadisonStaticSites()[0]},
		Env:         env,
		Networks:    []radio.NetworkID{radio.NetB},
		Seed:        seed,
		Grid:        geo.GridForZoneRadius(geo.Madison().Center(), 250),
	}
}

// scriptedServer runs a minimal coordinator side over a pipe: acks hello,
// replies to every zone report with the given tasks, acks samples. It
// returns the samples it received.
func scriptedServer(t *testing.T, conn *wire.Conn, tasks []wire.Task, out *[]trace.Sample) {
	t.Helper()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		switch req.Type {
		case wire.TypeHello:
			_ = conn.Send(wire.Envelope{Type: wire.TypeHelloAck, HelloAck: &wire.HelloAck{ServerID: "scripted"}})
		case wire.TypeZoneReport:
			_ = conn.Send(wire.Envelope{Type: wire.TypeTaskList, TaskList: &wire.TaskList{Tasks: tasks}})
		case wire.TypeSampleReport:
			*out = append(*out, req.SampleReport.Samples...)
			_ = conn.Send(wire.Envelope{Type: wire.TypeSampleAck, SampleAck: &wire.SampleAck{Accepted: len(req.SampleReport.Samples)}})
		default:
			_ = conn.Send(wire.Envelope{Type: wire.TypeError, Error: &wire.ErrorMsg{Message: "unexpected"}})
			return
		}
	}
}

func TestRunConnExecutesEveryTaskKind(t *testing.T) {
	a := testAgent()
	client, server := net.Pipe()
	cc, sc := wire.NewConn(client), wire.NewConn(server)
	defer cc.Close()
	defer sc.Close()

	tasks := []wire.Task{
		{Network: radio.NetB, Metric: trace.MetricUDPKbps, UDPPackets: 50, UDPSizeBytes: 1200},
		{Network: radio.NetB, Metric: trace.MetricTCPKbps, TCPBytes: 64 << 10},
		{Network: radio.NetB, Metric: trace.MetricJitterMs},
		{Network: radio.NetB, Metric: trace.MetricLossRate},
		{Network: radio.NetB, Metric: trace.MetricRTTMs},
		{Network: radio.NetB, Metric: trace.MetricUplinkKbps},
	}
	var got []trace.Sample
	go scriptedServer(t, sc, tasks, &got)

	st, err := a.RunConn(cc, start, 10*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds %d", st.Rounds)
	}
	if st.SamplesSent != 12 {
		t.Fatalf("samples sent %d, want 12 (6 tasks x 2 rounds)", st.SamplesSent)
	}
	if st.MeasurementBytes == 0 || st.MeasurementAirtime == 0 {
		t.Fatalf("overhead accounting missing: %+v", st)
	}
	if st.EnergyJoules() <= 0 {
		t.Fatal("energy estimate missing")
	}
	metrics := map[trace.Metric]int{}
	for _, s := range got {
		metrics[s.Metric]++
		if s.Device != string(device.ClassLaptop) {
			t.Fatalf("sample missing device class: %+v", s)
		}
		if s.ClientID != "unit" {
			t.Fatalf("sample missing client id: %+v", s)
		}
	}
	for _, task := range tasks {
		if metrics[task.Metric] != 2 {
			t.Fatalf("metric %s executed %d times, want 2", task.Metric, metrics[task.Metric])
		}
	}
}

func TestRunConnSkipsUnknownNetworkAndMetric(t *testing.T) {
	a := testAgent()
	client, server := net.Pipe()
	cc, sc := wire.NewConn(client), wire.NewConn(server)
	defer cc.Close()
	defer sc.Close()

	tasks := []wire.Task{
		{Network: radio.NetA, Metric: trace.MetricUDPKbps}, // agent has no NetA modem
		{Network: radio.NetB, Metric: "bogus-metric"},
	}
	var got []trace.Sample
	go scriptedServer(t, sc, tasks, &got)

	st, err := a.RunConn(cc, start, 5*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.SamplesSent != 0 || len(got) != 0 {
		t.Fatalf("impossible tasks produced samples: %+v", got)
	}
}

func TestRunConnRejectsBadInterval(t *testing.T) {
	a := testAgent()
	client, _ := net.Pipe()
	cc := wire.NewConn(client)
	defer cc.Close()
	if _, err := a.RunConn(cc, start, time.Hour, 0); err == nil {
		t.Fatal("zero interval must error")
	}
}

func TestRunConnUnexpectedHelloReply(t *testing.T) {
	a := testAgent()
	client, server := net.Pipe()
	cc, sc := wire.NewConn(client), wire.NewConn(server)
	defer cc.Close()
	defer sc.Close()
	go func() {
		if _, err := sc.Recv(); err != nil {
			return
		}
		_ = sc.Send(wire.Envelope{Type: wire.TypeError, Error: &wire.ErrorMsg{Message: "denied"}})
	}()
	_, err := a.RunConn(cc, start, time.Hour, 5*time.Minute)
	if err == nil || !strings.Contains(err.Error(), "unexpected hello reply") {
		t.Fatalf("err = %v", err)
	}
}

// deadAddr reserves and immediately closes a port: nothing listens there.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func TestRunResilientGivesUpWhenUnreachable(t *testing.T) {
	a := testAgent()
	var delays []time.Duration
	a.sleep = func(d time.Duration) { delays = append(delays, d) }
	_, err := a.RunResilient(deadAddr(t), start, time.Hour, 5*time.Minute, 2)
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v", err)
	}
	// maxRetries=2: two failed attempts back off (escalating), the third
	// gives up before sleeping.
	if len(delays) != 2 {
		t.Fatalf("recorded %d backoff waits, want 2: %v", len(delays), delays)
	}
	// Delay(1) = base*2 jittered to [base, 2*base); Delay(2) doubles again.
	if lo, hi := rng.DefaultBackoffBase, 2*rng.DefaultBackoffBase; delays[0] < lo || delays[0] >= hi {
		t.Fatalf("first wait %v outside the jitter window [%v,%v)", delays[0], lo, hi)
	}
	if lo, hi := 2*rng.DefaultBackoffBase, 4*rng.DefaultBackoffBase; delays[1] < lo || delays[1] >= hi {
		t.Fatalf("second wait %v outside the escalated window [%v,%v)", delays[1], lo, hi)
	}
}

// TestRunResilientBackoffIsDeterministic pins the fleet-safety property:
// the same agent identity produces the same jittered schedule, while a
// different identity de-synchronizes.
func TestRunResilientBackoffIsDeterministic(t *testing.T) {
	schedule := func(id string) []time.Duration {
		a := testAgent()
		a.ID = id
		var delays []time.Duration
		a.sleep = func(d time.Duration) { delays = append(delays, d) }
		if _, err := a.RunResilient(deadAddr(t), start, time.Hour, 5*time.Minute, 4); err == nil {
			t.Fatal("dead address must fail")
		}
		return delays
	}
	first, second := schedule("unit"), schedule("unit")
	if len(first) != 4 {
		t.Fatalf("recorded %d waits, want 4", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("wait %d differs across identical runs: %v vs %v", i, first[i], second[i])
		}
	}
	other := schedule("other")
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different agent IDs drew identical jitter — fleet would retry in lock-step")
	}
}

func TestOrDefault(t *testing.T) {
	if orDefault(0, 7) != 7 || orDefault(-1, 7) != 7 || orDefault(3, 7) != 3 {
		t.Fatal("orDefault broken")
	}
}
