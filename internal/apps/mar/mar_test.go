package mar

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/webload"
)

const seed = 8088

var start = time.Date(2010, 9, 6, 10, 0, 0, 0, time.UTC)

func trainController(t *testing.T) (*core.Controller, *radio.Environment) {
	t.Helper()
	camp := trace.ShortSegmentCampaign(seed, start.Add(-48*time.Hour), 24*time.Hour)
	ds := camp.Run()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	ctrl.IngestDataset(ds)
	return ctrl, camp.Env
}

func TestWiScapeSchedulerBeatsRoundRobin(t *testing.T) {
	ctrl, env := trainController(t)
	ps := NewProbers(env, radio.AllNetworks, seed)
	// MAR runs on a 2.4 km sub-segment (paper: zones 10-15).
	track := mobility.NewCarLoop(geo.ShortSegment(), seed, 3)
	pages := webload.NewSURGEPool(150, seed).Pages()

	rr := RunDownloads(&RoundRobin{Networks: radio.AllNetworks}, ps, track, start, pages, 100*time.Millisecond)
	ws := RunDownloads(&WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		NewProbers(env, radio.AllNetworks, seed), track, start, pages, 100*time.Millisecond)

	if ws.Makespan >= rr.Makespan {
		t.Fatalf("MAR-WiScape (%v) should beat MAR-RR (%v)", ws.Makespan, rr.Makespan)
	}
	improvement := 1 - float64(ws.Makespan)/float64(rr.Makespan)
	// Paper reports ~32%; accept a broad band around it.
	if improvement < 0.05 {
		t.Fatalf("improvement only %.0f%%; paper reports ~32%%", improvement*100)
	}
	if len(ws.PerPage) != len(pages) || len(rr.PerPage) != len(pages) {
		t.Fatal("pages lost")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	rr := &RoundRobin{Networks: radio.AllNetworks}
	busy := map[radio.NetworkID]time.Time{}
	seen := map[radio.NetworkID]int{}
	for i := 0; i < 9; i++ {
		seen[rr.Assign(geo.Point{}, start, 1000, busy)]++
	}
	for _, n := range radio.AllNetworks {
		if seen[n] != 3 {
			t.Fatalf("round robin unbalanced: %v", seen)
		}
	}
}

func TestWiScapeSchedulerUsesAllInterfaces(t *testing.T) {
	ctrl, env := trainController(t)
	ps := NewProbers(env, radio.AllNetworks, seed)
	track := mobility.NewCarLoop(geo.ShortSegment(), seed, 3)
	pages := webload.NewSURGEPool(200, seed).Pages()
	ws := RunDownloads(&WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		ps, track, start, pages, 50*time.Millisecond)
	// Aggregation is MAR's point: with back-to-back requests all interfaces
	// should carry load (the earliest-completion rule spills over when the
	// best is busy).
	if len(ws.NetworkUse) < 2 {
		t.Fatalf("scheduler pinned everything to one interface: %v", ws.NetworkUse)
	}
}

func TestMakespanShorterThanSequential(t *testing.T) {
	ctrl, env := trainController(t)
	ps := NewProbers(env, radio.AllNetworks, seed)
	track := mobility.Static{P: geo.ShortSegment().At(3000)}
	pages := webload.NewSURGEPool(60, seed).Pages()
	ws := RunDownloads(&WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		ps, track, start, pages, 0)
	var sequential time.Duration
	for _, d := range ws.PerPage {
		_ = d
	}
	// Rough check: makespan with 3 parallel interfaces must be well below
	// the sum of per-interface serial times. Compare to a single fixed
	// interface run.
	single := RunDownloads(&RoundRobin{Networks: []radio.NetworkID{radio.NetB}},
		NewProbers(env, radio.AllNetworks, seed), track, start, pages, 0)
	sequential = single.Makespan
	if ws.Makespan >= sequential {
		t.Fatalf("parallel gateway (%v) not faster than single interface (%v)", ws.Makespan, sequential)
	}
}

func TestFetchSite(t *testing.T) {
	ctrl, env := trainController(t)
	ps := NewProbers(env, radio.AllNetworks, seed)
	track := mobility.Static{P: geo.ShortSegment().At(3000)}
	site := webload.PopularSites(seed)[1]
	r := FetchSite(&WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		ps, track, start, site, time.Second)
	if r.Makespan <= 0 || len(r.PerPage) != len(site.Objects) {
		t.Fatalf("site fetch broken: %+v", r.Makespan)
	}
}

func TestEmptyPages(t *testing.T) {
	_, env := trainController(t)
	ps := NewProbers(env, radio.AllNetworks, seed)
	track := mobility.Static{P: geo.ShortSegment().At(0)}
	r := RunDownloads(&RoundRobin{Networks: radio.AllNetworks}, ps, track, start, nil, 0)
	if r.Makespan != 0 || len(r.PerPage) != 0 {
		t.Fatal("empty run should be empty")
	}
}
