// Package mar implements the MAR commuter gateway of Rodriguez et al.
// (MobiSys 2004) as used in the paper's §4.2.2: a vehicle-mounted router
// with one interface per cellular network that stripes client requests
// across interfaces. The paper shows that replacing its throughput-weighted
// round-robin striping with WiScape's per-zone estimates cuts HTTP latency
// by ~32-37% (Table 6, Fig. 14b).
package mar

import (
	"time"

	"repro/internal/apps/multisim"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/webload"
)

// Scheduler assigns a request to one of the gateway's interfaces.
type Scheduler interface {
	Name() string
	// Assign picks the interface for a request of sizeBytes issued at (loc,
	// at), given each interface's busy-until time.
	Assign(loc geo.Point, at time.Time, sizeBytes int, busyUntil map[radio.NetworkID]time.Time) radio.NetworkID
}

// RoundRobin stripes requests across interfaces in fixed rotation — the
// MAR-RR baseline.
type RoundRobin struct {
	Networks []radio.NetworkID
	next     int
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "mar-rr" }

// Assign implements Scheduler.
func (r *RoundRobin) Assign(geo.Point, time.Time, int, map[radio.NetworkID]time.Time) radio.NetworkID {
	n := r.Networks[r.next%len(r.Networks)]
	r.next++
	return n
}

// WiScapeScheduler maps each request to the interface with the earliest
// predicted completion, using per-zone throughput estimates — "intelligently
// mapping data requests to interfaces based on locality of operation".
type WiScapeScheduler struct {
	Ctrl     *core.Controller
	Metric   trace.Metric // typically trace.MetricTCPKbps
	Networks []radio.NetworkID
}

// Name implements Scheduler.
func (w *WiScapeScheduler) Name() string { return "mar-wiscape" }

// Assign implements Scheduler.
func (w *WiScapeScheduler) Assign(loc geo.Point, at time.Time, sizeBytes int,
	busyUntil map[radio.NetworkID]time.Time) radio.NetworkID {

	zone := w.Ctrl.ZoneOf(loc)
	best := w.Networks[0]
	var bestDone time.Time
	first := true
	for _, n := range w.Networks {
		xfer, ok := multisim.PredictCompletion(w.Ctrl, zone, n, w.Metric, sizeBytes)
		if !ok {
			xfer = time.Duration(float64(sizeBytes*8)/500) * time.Millisecond
		}
		startAt := at
		if bu := busyUntil[n]; bu.After(startAt) {
			startAt = bu
		}
		done := startAt.Add(xfer)
		if first || done.Before(bestDone) {
			best, bestDone, first = n, done, false
		}
	}
	return best
}

// Result summarizes a gateway run.
type Result struct {
	Scheduler  string
	Makespan   time.Duration // completion of the last request
	PerPage    []time.Duration
	NetworkUse map[radio.NetworkID]int
}

// RunDownloads plays the MAR experiment: the gateway moves along track
// while clients issue the given pages back to back; each request is
// dispatched to an interface by sched and interfaces serve their queues in
// parallel. Returns the makespan and per-page latencies.
func RunDownloads(sched Scheduler, probers map[radio.NetworkID]*simnet.Prober,
	track mobility.Track, start time.Time, pages []webload.Page, issueGap time.Duration) Result {

	res := Result{Scheduler: sched.Name(), NetworkUse: make(map[radio.NetworkID]int)}
	busy := make(map[radio.NetworkID]time.Time)

	at := start
	var last time.Time
	for _, pg := range pages {
		pose := track.Pose(at)
		n := sched.Assign(pose.Loc, at, pg.SizeBytes, busy)
		p := probers[n]
		if p == nil {
			continue
		}
		startAt := at
		if bu := busy[n]; bu.After(startAt) {
			startAt = bu
		}
		// The download runs from startAt at wherever the vehicle is then.
		d := p.HTTPGetPersistent(track.Pose(startAt).Loc, startAt, pg.SizeBytes)
		done := startAt.Add(d)
		busy[n] = done
		res.NetworkUse[n]++
		res.PerPage = append(res.PerPage, done.Sub(at))
		if done.After(last) {
			last = done
		}
		at = at.Add(issueGap)
	}
	if !last.IsZero() {
		res.Makespan = last.Sub(start)
	}
	return res
}

// FetchSite downloads a site's objects through the gateway (Fig. 14b),
// driving issueGap between object requests.
func FetchSite(sched Scheduler, probers map[radio.NetworkID]*simnet.Prober,
	track mobility.Track, start time.Time, site webload.Site, issueGap time.Duration) Result {
	return RunDownloads(sched, probers, track, start, site.Objects, issueGap)
}

// NewProbers builds one prober per network over env, a convenience for the
// application experiments.
func NewProbers(env *radio.Environment, nets []radio.NetworkID, seed uint64) map[radio.NetworkID]*simnet.Prober {
	out := make(map[radio.NetworkID]*simnet.Prober, len(nets))
	for i, n := range nets {
		if f := env.Field(n); f != nil {
			out[n] = simnet.NewProber(f, seed+uint64(i)*7919)
		}
	}
	return out
}
