package multisim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/webload"
)

const seed = 7077

var start = time.Date(2010, 9, 6, 10, 0, 0, 0, time.UTC)

// trainController builds a controller loaded with a short-segment campaign.
func trainController(t *testing.T) (*core.Controller, *radio.Environment) {
	t.Helper()
	camp := trace.ShortSegmentCampaign(seed, start.Add(-48*time.Hour), 24*time.Hour)
	ds := camp.Run()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	ctrl.IngestDataset(ds)
	return ctrl, camp.Env
}

func probers(env *radio.Environment) map[radio.NetworkID]*simnet.Prober {
	out := make(map[radio.NetworkID]*simnet.Prober)
	for i, n := range radio.AllNetworks {
		out[n] = simnet.NewProber(env.Field(n), seed+uint64(i)*101)
	}
	return out
}

func TestWiScapeBeatsWorstAndMatchesBest(t *testing.T) {
	ctrl, env := trainController(t)
	ps := probers(env)
	track := mobility.NewCarLoop(geo.ShortSegment(), seed, 9)
	pages := webload.NewSURGEPool(120, seed).Pages()

	results := map[string]Result{}
	for _, n := range radio.AllNetworks {
		r := RunDownloads(Fixed{Net: n}, ps, track, start, pages, 10*time.Second)
		results[r.Selector] = r
	}
	w := RunDownloads(&WiScape{
		Ctrl: ctrl, Metric: trace.MetricTCPKbps,
		Networks: radio.AllNetworks, Fallback: radio.NetB,
	}, ps, track, start, pages, 10*time.Second)

	var worst, best time.Duration
	for _, r := range results {
		if r.Total > worst {
			worst = r.Total
		}
		if best == 0 || r.Total < best {
			best = r.Total
		}
	}
	if w.Total >= worst {
		t.Fatalf("WiScape (%v) no better than the worst fixed carrier (%v)", w.Total, worst)
	}
	// WiScape should be at least competitive with the best fixed carrier
	// (it can only do better by switching; a small overhead tolerance).
	if float64(w.Total) > float64(best)*1.05 {
		t.Fatalf("WiScape (%v) clearly worse than best fixed (%v)", w.Total, best)
	}
	if len(w.PerPage) != len(pages) {
		t.Fatalf("downloaded %d/%d pages", len(w.PerPage), len(pages))
	}
}

func TestWiScapeSwitchesNetworks(t *testing.T) {
	ctrl, env := trainController(t)
	ps := probers(env)
	track := mobility.NewCarLoop(geo.ShortSegment(), seed, 9)
	pages := webload.NewSURGEPool(200, seed).Pages()
	w := RunDownloads(&WiScape{
		Ctrl: ctrl, Metric: trace.MetricTCPKbps,
		Networks: radio.AllNetworks, Fallback: radio.NetB,
	}, ps, track, start, pages, 10*time.Second)
	if len(w.NetworkUse) < 2 {
		t.Fatalf("WiScape never switched networks along a 20 km stretch: %v", w.NetworkUse)
	}
}

func TestFixedSelector(t *testing.T) {
	f := Fixed{Net: radio.NetC}
	if f.Name() != "fixed-NetC" {
		t.Fatalf("name %q", f.Name())
	}
	if got := f.Choose(geo.Point{}, time.Time{}, 1000); got != radio.NetC {
		t.Fatalf("choose %v", got)
	}
}

func TestWiScapeFallback(t *testing.T) {
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	w := &WiScape{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks, Fallback: radio.NetB}
	if got := w.Choose(geo.Madison().Center(), start, 1000); got != radio.NetB {
		t.Fatalf("empty controller should fall back, got %v", got)
	}
}

func TestFetchSite(t *testing.T) {
	_, env := trainController(t)
	ps := probers(env)
	track := mobility.Static{P: geo.ShortSegment().At(5000)}
	site := webload.PopularSites(seed)[0]
	r := FetchSite(Fixed{Net: radio.NetB}, ps, track, start, site, time.Second)
	if len(r.PerPage) != len(site.Objects) {
		t.Fatalf("fetched %d/%d objects", len(r.PerPage), len(site.Objects))
	}
	if r.Total <= 0 {
		t.Fatal("no time elapsed")
	}
	if r.MeanPage() <= 0 {
		t.Fatal("mean per-page latency missing")
	}
}

func TestResultMeanPageEmpty(t *testing.T) {
	var r Result
	if r.MeanPage() != 0 {
		t.Fatal("empty result mean should be 0")
	}
}
