// Package multisim implements the paper's multi-sim application (§4.2.2): a
// phone with SIM cards for several cellular networks that must pick one
// network per download. Without knowledge it is stuck with a fixed carrier
// (or random choice); with WiScape's per-zone estimates it switches to the
// locally dominant network and cuts HTTP latency by ~30%.
package multisim

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/webload"
)

// Selector chooses the network to use for a download at a place and time.
type Selector interface {
	Name() string
	Choose(loc geo.Point, at time.Time, sizeBytes int) radio.NetworkID
}

// Fixed always uses one carrier — the baseline rows of Table 6.
type Fixed struct {
	Net radio.NetworkID
}

// Name implements Selector.
func (f Fixed) Name() string { return "fixed-" + string(f.Net) }

// Choose implements Selector.
func (f Fixed) Choose(geo.Point, time.Time, int) radio.NetworkID { return f.Net }

// WiScape selects the network minimizing the predicted page completion
// time for the current zone from coordinator estimates (throughput and
// RTT), falling back to Fallback where no estimate exists. Small pages are
// latency-bound and large pages rate-bound, so the predictor must combine
// both — exactly the locality information a WiScape deployment serves.
type WiScape struct {
	Ctrl     *core.Controller
	Metric   trace.Metric // throughput metric, typically trace.MetricTCPKbps
	Networks []radio.NetworkID
	Fallback radio.NetworkID
}

// Name implements Selector.
func (w *WiScape) Name() string { return "multisim-wiscape" }

// PredictCompletion estimates an HTTP fetch time from zone records by
// walking the deterministic TCP transfer model: connection setup (1.5 RTT),
// slow-start ramp doubling every RTT from 1/16 of the rate, then steady
// transfer. Small pages come out latency-bound, large pages rate-bound.
func PredictCompletion(ctrl *core.Controller, zone geo.ZoneID, n radio.NetworkID,
	tputMetric trace.Metric, sizeBytes int) (time.Duration, bool) {

	rateKbps := 0.0
	if rec, ok := ctrl.Estimate(core.Key{Zone: zone, Net: n, Metric: tputMetric}); ok && rec.MeanValue > 0 {
		rateKbps = rec.MeanValue
	}
	rttMs := 0.0
	if rec, ok := ctrl.Estimate(core.Key{Zone: zone, Net: n, Metric: trace.MetricRTTMs}); ok && rec.MeanValue > 0 {
		rttMs = rec.MeanValue
	}
	if rateKbps == 0 && rttMs == 0 {
		return 0, false
	}
	if rateKbps == 0 {
		rateKbps = 500 // latency-only record: assume a conservative rate
	}
	if rttMs == 0 {
		rttMs = 150
	}
	return PredictTransfer(rateKbps, rttMs, sizeBytes), true
}

// PredictTransfer walks the TCP model for sizeBytes at the given steady
// rate and RTT over a warm (persistent) connection and returns the expected
// completion time.
func PredictTransfer(rateKbps, rttMs float64, sizeBytes int) time.Duration {
	const segBytes = 1460
	rttSec := rttMs / 1000
	clock := rttSec * 0.5
	rampStart := clock - 3*rttSec
	remaining := sizeBytes
	for remaining > 0 {
		seg := segBytes
		if remaining < seg {
			seg = remaining
		}
		ramp := math.Min(1, math.Pow(2, (clock-rampStart)/rttSec)/16)
		clock += float64(seg*8) / (rateKbps * ramp * 1000)
		remaining -= seg
	}
	clock += rttSec / 2 // last packet propagation
	return time.Duration(clock * float64(time.Second))
}

// Choose implements Selector.
func (w *WiScape) Choose(loc geo.Point, at time.Time, sizeBytes int) radio.NetworkID {
	zone := w.Ctrl.ZoneOf(loc)
	best := w.Fallback
	var bestPred time.Duration
	found := false
	for _, n := range w.Networks {
		pred, ok := PredictCompletion(w.Ctrl, zone, n, w.Metric, sizeBytes)
		if !ok {
			continue
		}
		if !found || pred < bestPred {
			best, bestPred, found = n, pred, true
		}
	}
	return best
}

// Result summarizes one download run.
type Result struct {
	Selector   string
	Total      time.Duration
	PerPage    []time.Duration
	NetworkUse map[radio.NetworkID]int
}

// MeanPage returns the mean per-page latency.
func (r Result) MeanPage() time.Duration {
	if len(r.PerPage) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.PerPage {
		sum += d
	}
	return sum / time.Duration(len(r.PerPage))
}

// RunDownloads plays the Table 6 experiment: the client moves along track
// issuing requests for the given pages, choosing the network per request
// with sel. Requests are issued at least issueGap apart (the paper's client
// keeps driving between downloads, so the experiment spans the whole road
// stretch rather than a single zone); Total is the sum of download
// latencies, as the paper reports.
func RunDownloads(sel Selector, probers map[radio.NetworkID]*simnet.Prober,
	track mobility.Track, start time.Time, pages []webload.Page, issueGap time.Duration) Result {

	res := Result{Selector: sel.Name(), NetworkUse: make(map[radio.NetworkID]int)}
	at := start
	for _, pg := range pages {
		pose := track.Pose(at)
		net := sel.Choose(pose.Loc, at, pg.SizeBytes)
		p := probers[net]
		if p == nil {
			continue
		}
		d := p.HTTPGetPersistent(pose.Loc, at, pg.SizeBytes)
		res.PerPage = append(res.PerPage, d)
		res.NetworkUse[net]++
		res.Total += d
		step := d
		if issueGap > step {
			step = issueGap
		}
		at = at.Add(step)
	}
	return res
}

// FetchSite downloads all of a site's objects sequentially over the chosen
// network per object (the Fig. 14a experiment), driving between objects.
func FetchSite(sel Selector, probers map[radio.NetworkID]*simnet.Prober,
	track mobility.Track, start time.Time, site webload.Site, issueGap time.Duration) Result {
	return RunDownloads(sel, probers, track, start, site.Objects, issueGap)
}
