package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/geo"
	"repro/internal/sketch"
)

// Snapshot is a serializable view of a controller's published state: the
// zone records applications query, each zone's current epoch, and (in
// full snapshots) the serialized trailing-window sketch, so recovery
// restores each zone's whole retained distribution — quantiles, moments
// and trend — not just the point estimate. In-progress epoch accumulators
// are still excluded; they are reconstructed by replaying the durable
// store's WAL tail on recovery, while the published records keep serving
// queries immediately (a coordinator restart must not blind every
// application).
type Snapshot struct {
	TakenAt time.Time       `json:"taken_at"`
	Config  Config          `json:"config"`
	Origin  geo.Point       `json:"origin"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one zone statistic's persisted state. Sketch is the
// internal/sketch binary serialization of the trailing-window EpochSketch
// (base64 in JSON); it is omitted from View snapshots.
type SnapshotEntry struct {
	Key          Key     `json:"key"`
	Record       *Record `json:"record,omitempty"`
	EpochSeconds float64 `json:"epoch_seconds"`
	TotalCount   int64   `json:"total_count"`
	Sketch       []byte  `json:"sketch,omitempty"`
}

// Snapshot captures the controller's publishable state at an instant,
// including each zone's serialized window sketch (the checkpoint form).
func (c *Controller) Snapshot(at time.Time) Snapshot {
	return c.snapshot(at, true)
}

// View is Snapshot without the serialized sketches — the cheap form for
// read-side consumers (ops handlers, dashboards) that only want records
// and epochs and would otherwise pay sketch serialization per scrape.
func (c *Controller) View(at time.Time) Snapshot {
	return c.snapshot(at, false)
}

func (c *Controller) snapshot(at time.Time, withSketches bool) Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		TakenAt: at,
		Config:  c.cfg,
		Origin:  c.grid.Origin(),
	}
	// Keys() locks too; inline the iteration under the held lock.
	for k, st := range c.zones {
		e := SnapshotEntry{Key: k, EpochSeconds: st.epoch.Seconds(), TotalCount: st.totalCount}
		if st.hasRecord {
			rec := st.published
			e.Record = &rec
		}
		if withSketches && st.window.Count() > 0 {
			e.Sketch = st.window.MarshalBinary()
		}
		s.Entries = append(s.Entries, e)
	}
	sortEntries(s.Entries)
	return s
}

func sortEntries(es []SnapshotEntry) {
	lessKey := func(a, b Key) bool {
		if a.Zone != b.Zone {
			if a.Zone.X != b.Zone.X {
				return a.Zone.X < b.Zone.X
			}
			return a.Zone.Y < b.Zone.Y
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Metric < b.Metric
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && lessKey(es[j].Key, es[j-1].Key); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Restore rebuilds a controller from a snapshot: published records and
// epochs are restored so estimate queries work immediately; window
// sketches are deserialized so the NKLD/Allan analyses resume with their
// accumulated distributions (a zone whose sketch is absent or corrupt
// starts fresh and refills from live traffic).
func Restore(s Snapshot) *Controller {
	c := NewController(s.Config, s.Origin)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range s.Entries {
		st := c.newZoneState()
		st.epoch = time.Duration(e.EpochSeconds * float64(time.Second))
		st.epochValid = true
		st.totalCount = e.TotalCount
		if st.epoch <= 0 {
			st.epoch = s.Config.DefaultEpoch
		}
		if e.Record != nil {
			st.published = *e.Record
			st.hasRecord = true
		}
		if len(e.Sketch) > 0 {
			if w, err := sketch.UnmarshalEpochSketch(e.Sketch); err == nil {
				st.window = w
			}
		}
		c.zones[e.Key] = st
	}
	return c
}

// WriteSnapshot serializes a snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}
