package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/geo"
)

// Snapshot is a serializable view of a controller's published state: the
// zone records applications query and each zone's current epoch. Histories
// and in-progress epoch accumulators are deliberately excluded — they are
// rebuilt from fresh samples after a restart, while the published records
// keep serving queries immediately (a coordinator restart must not blind
// every application). Snapshots are the checkpoint payload of the durable
// store (internal/store), which pairs them with a write-ahead log of raw
// samples so the accumulator state excluded here is reconstructed by
// replaying the WAL tail on recovery.
type Snapshot struct {
	TakenAt time.Time       `json:"taken_at"`
	Config  Config          `json:"config"`
	Origin  geo.Point       `json:"origin"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one zone statistic's persisted state.
type SnapshotEntry struct {
	Key          Key     `json:"key"`
	Record       *Record `json:"record,omitempty"`
	EpochSeconds float64 `json:"epoch_seconds"`
	TotalCount   int64   `json:"total_count"`
}

// Snapshot captures the controller's publishable state at an instant.
func (c *Controller) Snapshot(at time.Time) Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		TakenAt: at,
		Config:  c.cfg,
		Origin:  c.grid.Origin(),
	}
	// Keys() locks too; inline the iteration under the held lock.
	for k, st := range c.zones {
		e := SnapshotEntry{Key: k, EpochSeconds: st.epoch.Seconds(), TotalCount: st.totalCount}
		if st.hasRecord {
			rec := st.published
			e.Record = &rec
		}
		s.Entries = append(s.Entries, e)
	}
	sortEntries(s.Entries)
	return s
}

func sortEntries(es []SnapshotEntry) {
	lessKey := func(a, b Key) bool {
		if a.Zone != b.Zone {
			if a.Zone.X != b.Zone.X {
				return a.Zone.X < b.Zone.X
			}
			return a.Zone.Y < b.Zone.Y
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Metric < b.Metric
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && lessKey(es[j].Key, es[j-1].Key); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Restore rebuilds a controller from a snapshot: published records and
// epochs are restored so estimate queries work immediately; sample
// histories start empty and refill from live traffic.
func Restore(s Snapshot) *Controller {
	c := NewController(s.Config, s.Origin)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range s.Entries {
		st := &zoneState{
			epoch:       time.Duration(e.EpochSeconds * float64(time.Second)),
			epochValid:  true,
			curEpochIdx: -1,
			totalCount:  e.TotalCount,
		}
		if st.epoch <= 0 {
			st.epoch = s.Config.DefaultEpoch
		}
		if e.Record != nil {
			st.published = *e.Record
			st.hasRecord = true
		}
		c.zones[e.Key] = st
	}
	return c
}

// WriteSnapshot serializes a snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}
