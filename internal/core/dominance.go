package core

import (
	"sort"

	"repro/internal/radio"
	"repro/internal/stats"
)

// Dominance analysis (§4.2.1): a zone is persistently dominated by a
// network when the dominant network's worst tail is still better than every
// other network's best tail — for "higher is better" metrics, the 5th
// percentile of the best exceeds the 95th percentile of the others; for
// latencies the comparison flips. Persistent dominance is what makes
// infrequent WiScape measurements actionable for multi-network clients.

// DominantNetwork returns the persistently dominant network among the
// per-network sample sets, or ok=false when no network dominates. Networks
// with fewer than minSamples samples are ignored; fewer than two qualifying
// networks means no dominance can be declared.
func DominantNetwork(byNet map[radio.NetworkID][]float64, lowerIsBetter bool, minSamples int) (radio.NetworkID, bool) {
	type cand struct {
		net  radio.NetworkID
		p5   float64
		p95  float64
		mean float64
	}
	var cands []cand
	for net, vals := range byNet {
		if len(vals) < minSamples {
			continue
		}
		cands = append(cands, cand{
			net:  net,
			p5:   stats.Percentile(vals, 5),
			p95:  stats.Percentile(vals, 95),
			mean: stats.Mean(vals),
		})
	}
	if len(cands) < 2 {
		return "", false
	}
	sort.Slice(cands, func(i, j int) bool {
		if lowerIsBetter {
			return cands[i].mean < cands[j].mean
		}
		return cands[i].mean > cands[j].mean
	})
	best := cands[0]
	for _, other := range cands[1:] {
		if lowerIsBetter {
			// Best network's 95th percentile (its worst latencies) must beat
			// the others' 5th percentile (their best latencies).
			if best.p95 >= other.p5 {
				return "", false
			}
		} else {
			// Best network's 5th percentile must beat the others' 95th.
			if best.p5 <= other.p95 {
				return "", false
			}
		}
	}
	return best.net, true
}

// BestNetwork returns the network with the best mean regardless of
// persistence — the selection rule the multi-sim and MAR applications use
// once WiScape data identifies per-zone winners.
func BestNetwork(byNet map[radio.NetworkID][]float64, lowerIsBetter bool) (radio.NetworkID, bool) {
	var best radio.NetworkID
	bestMean := 0.0
	found := false
	// Iterate in canonical order for determinism.
	for _, net := range radio.AllNetworks {
		vals, ok := byNet[net]
		if !ok || len(vals) == 0 {
			continue
		}
		m := stats.Mean(vals)
		if !found || (lowerIsBetter && m < bestMean) || (!lowerIsBetter && m > bestMean) {
			best, bestMean, found = net, m, true
		}
	}
	return best, found
}
