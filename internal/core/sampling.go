package core

import (
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
)

// RequiredSamples determines how many measurement samples a zone needs per
// epoch using the paper's NKLD method (§3.3, Fig. 7): the smallest n for
// which the distribution of n randomly chosen samples matches the long-term
// distribution (mean NKLD over iterations <= threshold). It returns
// (n, true) on convergence, or (fallback, false) when the history is too
// small or never converges within it.
func RequiredSamples(history []float64, cfg Config, seed uint64) (int, bool) {
	const iterations = 100 // the paper's repetition count
	if len(history) < 40 {
		return cfg.DefaultSamplesPerEpoch, false
	}
	bins := cfg.NKLDBins
	if bins <= 0 {
		bins = stats.DefaultNKLDBins
	}
	r := rng.NewNamed(seed, "required-samples")
	// Sweep n in steps of 10 like Fig. 7's x axis.
	maxN := len(history) / 2
	if maxN > 200 {
		maxN = 200
	}
	for n := 10; n <= maxN; n += 10 {
		mean := meanNKLDSubsample(history, n, bins, iterations, r)
		if mean <= cfg.NKLDThreshold {
			return n, true
		}
	}
	return cfg.DefaultSamplesPerEpoch, false
}

// NKLDCurve returns the mean NKLD at each sample count in ns — the series
// plotted in Fig. 7.
func NKLDCurve(history []float64, ns []int, bins, iterations int, seed uint64) []stats.CDFPoint {
	r := rng.NewNamed(seed, "nkld-curve")
	out := make([]stats.CDFPoint, 0, len(ns))
	for _, n := range ns {
		if n <= 0 || n > len(history) {
			continue
		}
		out = append(out, stats.CDFPoint{
			X: float64(n),
			P: meanNKLDSubsample(history, n, bins, iterations, r),
		})
	}
	return out
}

// meanNKLDSubsample draws `iterations` random n-subsets of history and
// returns the mean NKLD between each subset and the full distribution.
func meanNKLDSubsample(history []float64, n, bins, iterations int, r *rng.Rand) float64 {
	if n > len(history) {
		n = len(history)
	}
	sub := make([]float64, n)
	sum := 0.0
	count := 0
	for it := 0; it < iterations; it++ {
		for i := 0; i < n; i++ {
			sub[i] = history[r.Intn(len(history))]
		}
		d := stats.NKLDFromSamples(sub, history, bins)
		if d != d || d > 1e6 { // NaN/Inf guard
			continue
		}
		sum += d
		count++
	}
	if count == 0 {
		return 1e6
	}
	return sum / float64(count)
}

// TaskProbability returns the probability with which each active client in
// a zone should be tasked per scheduling round, so that the expected number
// of samples collected over the epoch meets the zone's requirement (§3.4).
// roundsPerEpoch is the number of scheduling rounds the epoch spans.
func TaskProbability(requiredSamples, activeClients, roundsPerEpoch int) float64 {
	if requiredSamples <= 0 || activeClients <= 0 || roundsPerEpoch <= 0 {
		return 0
	}
	p := float64(requiredSamples) / float64(activeClients*roundsPerEpoch)
	if p > 1 {
		return 1
	}
	return p
}

// RoundsPerEpoch converts an epoch length and scheduling interval into the
// number of task rounds.
func RoundsPerEpoch(epoch, interval time.Duration) int {
	if interval <= 0 || epoch <= 0 {
		return 1
	}
	n := int(epoch / interval)
	if n < 1 {
		return 1
	}
	return n
}
