package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestIngestRejectsNaNAndInf(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c.Ingest(mkSample(start, origin, v))
	}
	if _, ok := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps); ok {
		t.Fatal("NaN/Inf samples must not create estimates")
	}
	c.Ingest(mkSample(start, origin, 900))
	rec, ok := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if !ok || rec.MeanValue != 900 {
		t.Fatalf("clean sample after garbage: %+v %v", rec, ok)
	}
}

func TestNormalizerAppliedOnIngest(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	n := device.NewNormalizer()
	n.SetFactor(device.ClassPhone, string(trace.MetricUDPKbps), 1.0/0.72)
	c.SetNormalizer(n)

	r := rng.New(1)
	at := start
	for i := 0; i < 100; i++ {
		s := mkSample(at, origin, 0.72*900*(1+0.02*r.NormFloat64())) // phone-observed values
		s.Device = string(device.ClassPhone)
		c.Ingest(s)
		at = at.Add(time.Minute)
	}
	rec, ok := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if !ok {
		t.Fatal("no estimate")
	}
	if rec.MeanValue < 860 || rec.MeanValue > 940 {
		t.Fatalf("normalized estimate %v, want ~900 (reference units)", rec.MeanValue)
	}
}

func TestNormalizerIgnoresUntaggedAndFailed(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	n := device.NewNormalizer()
	n.SetFactor(device.ClassPhone, string(trace.MetricUDPKbps), 2.0)
	c.SetNormalizer(n)

	s := mkSample(start, origin, 500) // no device tag
	c.Ingest(s)
	rec, _ := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if rec.MeanValue != 500 {
		t.Fatalf("untagged sample scaled: %v", rec.MeanValue)
	}
}

func TestMixedFleetConvergesWithNormalization(t *testing.T) {
	// Half the fleet are phones. Without normalization the zone estimate is
	// biased low; with it, the estimate lands at the reference truth.
	run := func(normalize bool) float64 {
		c := NewController(DefaultConfig(), origin)
		if normalize {
			n := device.NewNormalizer()
			n.SetFactor(device.ClassPhone, string(trace.MetricUDPKbps), 1.0/0.72)
			c.SetNormalizer(n)
		}
		r := rng.New(2)
		at := start
		for i := 0; i < 400; i++ {
			truth := 900 * (1 + 0.03*r.NormFloat64())
			s := mkSample(at, origin, truth)
			if i%2 == 0 {
				s.Value = truth * 0.72
				s.Device = string(device.ClassPhone)
			}
			c.Ingest(s)
			at = at.Add(30 * time.Second)
		}
		rec, _ := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
		return rec.MeanValue
	}
	raw := run(false)
	norm := run(true)
	if raw > 880 {
		t.Fatalf("unnormalized mixed fleet should be biased low, got %v", raw)
	}
	if norm < 870 || norm > 930 {
		t.Fatalf("normalized mixed fleet should recover ~900, got %v", norm)
	}
}
