package core

import (
	"bytes"

	"repro/internal/geo"
	"strings"
	"testing"
	"time"

	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

func populatedController(t *testing.T) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DefaultEpoch = 10 * time.Minute
	c := NewController(cfg, origin)
	r := rng.New(4)
	at := start
	for _, loc := range []struct {
		bearing, dist float64
	}{{0, 0}, {90, 1500}, {180, 3000}} {
		p := origin.Offset(loc.bearing, loc.dist)
		for i := 0; i < 80; i++ {
			c.Ingest(mkSample(at, p, 900+20*r.NormFloat64()))
			at = at.Add(time.Minute)
		}
	}
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := populatedController(t)
	snap := c.Snapshot(start.Add(5 * time.Hour))
	if len(snap.Entries) != 3 {
		t.Fatalf("entries: %d", len(snap.Entries))
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(snap.Entries) {
		t.Fatal("entries lost in serialization")
	}

	restored := Restore(got)
	for _, e := range snap.Entries {
		if e.Record == nil {
			continue
		}
		rec, ok := restored.Estimate(e.Key)
		if !ok {
			t.Fatalf("restored controller lost record for %v", e.Key)
		}
		if rec.MeanValue != e.Record.MeanValue || rec.Samples != e.Record.Samples {
			t.Fatalf("record drifted: %+v vs %+v", rec, *e.Record)
		}
		if restored.EpochOf(e.Key).Seconds() != e.EpochSeconds {
			t.Fatal("epoch lost")
		}
		if restored.SampleCount(e.Key) != e.TotalCount {
			t.Fatal("total count lost")
		}
		// The window sketch survives byte-exactly: the restored
		// controller's long-term distribution is the one checkpointed,
		// not a fresh accumulator.
		if len(e.Sketch) == 0 {
			t.Fatalf("snapshot entry %v carries no sketch", e.Key)
		}
		want, ok := c.SketchFor(e.Key)
		if !ok {
			t.Fatalf("source controller has no sketch for %v", e.Key)
		}
		got, ok := restored.SketchFor(e.Key)
		if !ok {
			t.Fatalf("restored controller has no sketch for %v", e.Key)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("window sketch drifted across snapshot round-trip for %v", e.Key)
		}
		for _, q := range []float64{0.5, 0.9} {
			a, okA := c.WindowQuantile(e.Key, q)
			b, okB := restored.WindowQuantile(e.Key, q)
			if !okA || !okB || a != b {
				t.Fatalf("q=%v drifted across restore: %v (%v) vs %v (%v)", q, a, okA, b, okB)
			}
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	c := populatedController(t)
	a := c.Snapshot(start)
	b := c.Snapshot(start)
	for i := range a.Entries {
		if a.Entries[i].Key != b.Entries[i].Key {
			t.Fatal("snapshot order unstable")
		}
	}
}

func TestRestoredControllerKeepsServingAndLearning(t *testing.T) {
	c := populatedController(t)
	snap := c.Snapshot(start.Add(5 * time.Hour))
	restored := Restore(snap)

	// Serving: estimates available immediately.
	key := snap.Entries[0].Key
	if _, ok := restored.Estimate(key); !ok {
		t.Fatal("restored controller should serve immediately")
	}
	// Learning: new samples keep flowing into the same zones.
	r := rng.New(5)
	at := start.Add(6 * time.Hour)
	for i := 0; i < 50; i++ {
		restored.Ingest(mkSample(at, origin, 900+20*r.NormFloat64()))
		at = at.Add(time.Minute)
	}
	originKey := Key{Zone: restored.ZoneOf(origin), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	var before int64
	for _, e := range snap.Entries {
		if e.Key == originKey {
			before = e.TotalCount
		}
	}
	if restored.SampleCount(originKey) != before+50 {
		t.Fatalf("restored controller did not keep counting: %d vs %d+50",
			restored.SampleCount(originKey), before)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestRestoreDefaultsBadEpoch(t *testing.T) {
	snap := Snapshot{
		Config: DefaultConfig(),
		Origin: origin,
		Entries: []SnapshotEntry{{
			Key:          Key{Zone: origin2Zone(), Net: radio.NetB, Metric: trace.MetricUDPKbps},
			EpochSeconds: 0, // corrupted
		}},
	}
	c := Restore(snap)
	if ep := c.EpochOf(snap.Entries[0].Key); ep != snap.Config.DefaultEpoch {
		t.Fatalf("bad epoch should fall back to default, got %v", ep)
	}
}

func origin2Zone() geo.ZoneID {
	c := NewController(DefaultConfig(), origin)
	return c.ZoneOf(origin)
}
