// Package core implements the WiScape framework itself — the paper's
// primary contribution (§3): spatial aggregation into zones, temporal
// aggregation into zone-specific epochs chosen at the Allan-deviation
// minimum, NKLD-based selection of the number of measurement samples,
// per-zone-epoch estimation with 2-sigma change detection, probabilistic
// measurement task scheduling, and persistent-dominance analysis for
// multi-network applications.
package core

import (
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// Config carries the framework's design parameters, defaulting to the
// values the paper selects and justifies.
type Config struct {
	// ZoneRadiusM is the zone radius; §3.1 picks 250 m (97% of such zones
	// show <= 8% relative standard deviation).
	ZoneRadiusM float64

	// MinZoneSamples is the minimum sample count before a zone's statistics
	// are trusted (the paper only analyses zones with >= 200 samples).
	MinZoneSamples int

	// NKLDThreshold is the divergence below which a sample distribution is
	// considered to match the long-term truth (§3.3: 0.1).
	NKLDThreshold float64

	// NKLDBins is the histogram resolution for NKLD computations.
	NKLDBins int

	// EpochSweepMin/EpochSweepMax bound the Allan-deviation sweep in
	// minutes (Fig. 6 sweeps 1 to 1000).
	EpochSweepMin int
	EpochSweepMax int

	// DefaultEpoch is used until a zone has enough history for the Allan
	// analysis.
	DefaultEpoch time.Duration

	// DisableEpochAdaptation pins every zone to DefaultEpoch instead of
	// re-deriving epochs from the Allan analysis. Used by ablations and by
	// deployments that want fixed reporting windows.
	DisableEpochAdaptation bool

	// MinEpoch floors the Allan-derived epoch: sparse opportunistic traces
	// can make the sweep bottom out at one minute, which would close an
	// epoch on nearly every sample.
	MinEpoch time.Duration

	// MinAlertSamples is the minimum number of samples an epoch estimate
	// needs before it may replace the published record with an alert;
	// thinner epochs blend in silently. Prevents alert storms from
	// single-drive-by epochs on sparsely visited zones.
	MinAlertSamples int

	// AlertFloors are per-metric absolute minimum deltas for alerting:
	// sigma-relative thresholds break down for metrics whose records sit
	// near zero (a loss-free zone would otherwise alert on a single lost
	// packet).
	AlertFloors map[trace.Metric]float64

	// DefaultSamplesPerEpoch is the sample budget before NKLD convergence
	// has been measured (the paper's headline "around 100 samples").
	DefaultSamplesPerEpoch int

	// ChangeSigmas is the update rule threshold: a new epoch estimate
	// replaces the published record when it differs from it by more than
	// this many standard deviations (§3.4: two).
	ChangeSigmas float64

	// HistoryLimit bounds the per-(zone, network, metric) retained window
	// weight: when the trailing-window sketch reaches this many samples'
	// worth of mass, it is decayed by half (the sketch analogue of
	// dropping the oldest half of a sample buffer).
	HistoryLimit int

	// WindowCompression is the t-digest compression δ of the per-key
	// trailing-window sketch. Zero selects sketch.DefaultCompression.
	WindowCompression float64

	// EpochCompression is the digest compression of the current-epoch
	// sketch (smaller: an epoch sees at most one epoch's samples). Zero
	// selects sketch.EpochCompression.
	EpochCompression float64

	// TrendSlots is the slot budget of the telescoping trend ring backing
	// the Allan epoch derivation. Zero selects sketch.DefaultTrendSlots.
	TrendSlots int

	// AlertBuffer caps the pending (undrained) alert queue; beyond it the
	// oldest alerts are overwritten and counted as dropped. Zero selects
	// DefaultAlertBuffer.
	AlertBuffer int

	// FailureRetentionDays bounds the per-(zone, network) ping-failure
	// day map; the oldest observed days are evicted beyond it. Zero
	// selects DefaultFailureRetentionDays.
	FailureRetentionDays int
}

// DefaultAlertBuffer is the pending-alert ring capacity.
const DefaultAlertBuffer = 1024

// DefaultFailureRetentionDays keeps well over a year of per-day ping
// failure observations (Fig. 9 analyses span months).
const DefaultFailureRetentionDays = 400

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		ZoneRadiusM:     250,
		MinZoneSamples:  200,
		NKLDThreshold:   0.1,
		NKLDBins:        20,
		EpochSweepMin:   1,
		EpochSweepMax:   1000,
		DefaultEpoch:    30 * time.Minute,
		MinEpoch:        5 * time.Minute,
		MinAlertSamples: 10,
		AlertFloors: map[trace.Metric]float64{
			trace.MetricLossRate: 0.01, // a percent of loss is the paper's "low loss" boundary
			trace.MetricJitterMs: 1,
			trace.MetricRTTMs:    15,
			trace.MetricTCPKbps:  25,
			trace.MetricUDPKbps:  25,
		},
		DefaultSamplesPerEpoch: 100,
		ChangeSigmas:           2,
		HistoryLimit:           20000,
	}
}

// Key identifies one monitored statistic: a metric of a network within a
// zone.
type Key struct {
	Zone   geo.ZoneID
	Net    radio.NetworkID
	Metric trace.Metric
}

// Record is a published zone estimate: what the coordinator serves to
// querying applications. P50/P90/P99 come from the epoch's quantile
// sketch — applications see the distribution's shape, not just its first
// two moments.
type Record struct {
	Key       Key
	MeanValue float64
	StdDev    float64
	Samples   int64
	P50       float64
	P90       float64
	P99       float64
	UpdatedAt time.Time
}

// Alert is emitted when a zone's statistic moves by more than
// Config.ChangeSigmas standard deviations between epochs — the operator
// signal of §4.1 (e.g. the stadium latency surge).
type Alert struct {
	Key      Key
	Previous Record
	Current  Record
	At       time.Time
}

// SigmasMoved reports how many previous-record standard deviations the
// estimate moved.
func (a Alert) SigmasMoved() float64 {
	if a.Previous.StdDev == 0 {
		return 0
	}
	d := a.Current.MeanValue - a.Previous.MeanValue
	if d < 0 {
		d = -d
	}
	return d / a.Previous.StdDev
}
