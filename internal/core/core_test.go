package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

const seed = 5055

var (
	origin = geo.Madison().Center()
	start  = radio.Epoch.Add(10 * 24 * time.Hour)
)

func mkSample(at time.Time, loc geo.Point, v float64) trace.Sample {
	return trace.Sample{
		Time: at, Loc: loc, Network: radio.NetB,
		Metric: trace.MetricUDPKbps, Value: v, ClientID: "t",
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ZoneRadiusM != 250 {
		t.Fatal("zone radius must default to 250 m (§3.1)")
	}
	if cfg.MinZoneSamples != 200 {
		t.Fatal("zones need 200 samples (§3.4)")
	}
	if cfg.NKLDThreshold != 0.1 {
		t.Fatal("NKLD threshold is 0.1 (§3.3)")
	}
	if cfg.ChangeSigmas != 2 {
		t.Fatal("update rule is 2 sigma (§3.4)")
	}
	if cfg.EpochSweepMax != 1000 {
		t.Fatal("Allan sweep spans 1-1000 minutes (Fig. 6)")
	}
}

func TestIngestAndEstimate(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	loc := origin
	r := rng.New(1)
	at := start
	for i := 0; i < 150; i++ {
		c.Ingest(mkSample(at, loc, 900+20*r.NormFloat64()))
		at = at.Add(time.Minute)
	}
	rec, ok := c.EstimateAt(loc, radio.NetB, trace.MetricUDPKbps)
	if !ok {
		t.Fatal("no estimate after 150 samples")
	}
	if rec.MeanValue < 850 || rec.MeanValue > 950 {
		t.Fatalf("estimate %v, want ~900", rec.MeanValue)
	}
	if rec.Samples == 0 {
		t.Fatal("sample count missing")
	}
	key := Key{Zone: c.ZoneOf(loc), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	if got := c.SampleCount(key); got != 150 {
		t.Fatalf("sample count %d, want 150", got)
	}
}

func TestEstimateUnknownZone(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	if _, ok := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps); ok {
		t.Fatal("estimate for empty controller should not exist")
	}
}

func TestFailedSamplesDontPollute(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	s := mkSample(start, origin, 0)
	s.Metric = trace.MetricRTTMs
	s.Failed = true
	c.Ingest(s)
	if _, ok := c.EstimateAt(origin, radio.NetB, trace.MetricRTTMs); ok {
		t.Fatal("failed probes must not create estimates")
	}
}

func TestChangeDetectionAlert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultEpoch = 10 * time.Minute
	c := NewController(cfg, origin)
	r := rng.New(2)
	at := start
	// Two quiet epochs around 900 Kbps.
	for i := 0; i < 40; i++ {
		c.Ingest(mkSample(at, origin, 900+10*r.NormFloat64()))
		at = at.Add(30 * time.Second)
	}
	if alerts := c.Alerts(); len(alerts) != 0 {
		t.Fatalf("no alert expected during stable operation, got %d", len(alerts))
	}
	// A collapse to 300 Kbps (e.g. stadium crowd).
	for i := 0; i < 40; i++ {
		c.Ingest(mkSample(at, origin, 300+10*r.NormFloat64()))
		at = at.Add(30 * time.Second)
	}
	alerts := c.Alerts()
	if len(alerts) == 0 {
		t.Fatal("a 3x collapse must raise an alert")
	}
	a := alerts[0]
	if a.SigmasMoved() < 2 {
		t.Fatalf("alert moved only %.1f sigma", a.SigmasMoved())
	}
	if a.Current.MeanValue >= a.Previous.MeanValue {
		t.Fatal("alert direction wrong")
	}
	// Record now reflects the new regime.
	rec, _ := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if rec.MeanValue > 500 {
		t.Fatalf("record %v should track the collapse", rec.MeanValue)
	}
	// Draining twice returns nothing.
	if len(c.Alerts()) != 0 {
		t.Fatal("alerts should drain")
	}
}

func TestNoAlertOnSmallDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultEpoch = 10 * time.Minute
	c := NewController(cfg, origin)
	r := rng.New(3)
	at := start
	mean := 900.0
	for e := 0; e < 20; e++ {
		for i := 0; i < 20; i++ {
			c.Ingest(mkSample(at, origin, mean+30*r.NormFloat64()))
			at = at.Add(30 * time.Second)
		}
		mean *= 1.01 // 1% per epoch: within 2 sigma of the 30-Kbps spread
	}
	if alerts := c.Alerts(); len(alerts) != 0 {
		t.Fatalf("slow drift should not alert, got %d alerts", len(alerts))
	}
	// But the record should have tracked the drift via smoothing.
	rec, _ := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if rec.MeanValue < 950 {
		t.Fatalf("record %v did not track slow drift to ~%v", rec.MeanValue, mean)
	}
}

func TestEpochFromHistoryMatchesAllan(t *testing.T) {
	cfg := DefaultConfig()
	c := NewController(cfg, origin)
	// Build history: white noise + strong wander (the radio field's
	// structure) and confirm the derived epoch is neither the min nor max.
	r := rng.New(4)
	noise := rng.NewNoise2D(9, 10, 0.9, 2.0)
	at := start
	for i := 0; i < 5000; i++ {
		drift := 1 + 0.2*noise.At(float64(i)/2880, 0.5)
		c.Ingest(mkSample(at, origin, 900*drift*(1+0.07*r.NormFloat64())))
		at = at.Add(time.Minute)
	}
	key := Key{Zone: c.ZoneOf(origin), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	ep := c.EpochOf(key)
	if ep < 5*time.Minute || ep > 16*time.Hour {
		t.Fatalf("epoch %v implausible", ep)
	}
	if ep == cfg.DefaultEpoch {
		t.Fatal("epoch was never re-derived from history")
	}
}

func TestHistoryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryLimit = 100
	c := NewController(cfg, origin)
	at := start
	key := Key{Zone: c.ZoneOf(origin), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	var after100 int
	for i := 0; i < 1000; i++ {
		c.Ingest(mkSample(at, origin, 900))
		at = at.Add(time.Second)
		if i == 99 {
			after100 = c.RetainedBytes(key)
		}
	}
	// The sketch substrate keeps per-key state constant: the footprint at
	// 1000 samples equals the footprint at 100 and stays under the 4 KiB
	// acceptance budget.
	got := c.RetainedBytes(key)
	if got != after100 {
		t.Fatalf("retained state grew from %dB to %dB with sample count", after100, got)
	}
	if got <= 0 || got > 4096 {
		t.Fatalf("retained state %dB outside (0, 4096]", got)
	}
	if got := c.SampleCount(key); got != 1000 {
		t.Fatalf("total count %d should survive window decay", got)
	}
}

func TestKeysDeterministic(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	locs := []geo.Point{origin, origin.Offset(90, 1000), origin.Offset(180, 2000)}
	for _, l := range locs {
		c.Ingest(mkSample(start, l, 1))
	}
	a := c.Keys()
	b := c.Keys()
	if len(a) != 3 {
		t.Fatalf("keys: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("key order unstable")
		}
	}
}

func TestDaysWithPingFailures(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	mkPing := func(day int, failed bool) trace.Sample {
		return trace.Sample{
			Time: radio.Epoch.Add(time.Duration(day)*24*time.Hour + 12*time.Hour),
			Loc:  origin, Network: radio.NetB, Metric: trace.MetricRTTMs,
			Value: 120, Failed: failed,
		}
	}
	// Days 0-24: failures on days 0-19 (a 20-day run), clean 20-24.
	for d := 0; d < 25; d++ {
		c.Ingest(mkPing(d, d < 20))
		c.Ingest(mkPing(d, false))
	}
	observed, run := c.DaysWithPingFailures(c.ZoneOf(origin), radio.NetB)
	if observed != 25 {
		t.Fatalf("observed %d days, want 25", observed)
	}
	if run != 20 {
		t.Fatalf("longest failure run %d, want 20", run)
	}
	// Unknown zone.
	o, r := c.DaysWithPingFailures(geo.ZoneID{X: 999, Y: 999}, radio.NetB)
	if o != 0 || r != 0 {
		t.Fatal("unknown zone should have no failure stats")
	}
}

func TestRequiredSamplesConverges(t *testing.T) {
	cfg := DefaultConfig()
	r := rng.New(5)
	stable := make([]float64, 2000)
	for i := range stable {
		stable[i] = 900 * (1 + 0.05*r.NormFloat64())
	}
	n, ok := RequiredSamples(stable, cfg, seed)
	if !ok {
		t.Fatal("stable history should converge")
	}
	if n < 10 || n > 200 {
		t.Fatalf("required samples %d outside the paper's 40-120 ballpark", n)
	}
	// A more variable history needs more samples (paper: NJ > WI).
	variable := make([]float64, 2000)
	for i := range variable {
		variable[i] = 900 * (1 + 0.20*r.NormFloat64())
	}
	nVar, _ := RequiredSamples(variable, cfg, seed)
	if nVar < n {
		t.Fatalf("noisier history should need >= samples: stable %d vs variable %d", n, nVar)
	}
}

func TestRequiredSamplesShortHistory(t *testing.T) {
	cfg := DefaultConfig()
	n, ok := RequiredSamples([]float64{1, 2, 3}, cfg, seed)
	if ok {
		t.Fatal("3 samples cannot converge")
	}
	if n != cfg.DefaultSamplesPerEpoch {
		t.Fatalf("fallback %d, want %d", n, cfg.DefaultSamplesPerEpoch)
	}
}

func TestNKLDCurveDecreases(t *testing.T) {
	r := rng.New(6)
	hist := make([]float64, 3000)
	for i := range hist {
		hist[i] = 900 * (1 + 0.08*r.NormFloat64())
	}
	curve := NKLDCurve(hist, []int{10, 40, 100, 400}, 20, 50, seed)
	if len(curve) != 4 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0].P <= curve[len(curve)-1].P {
		t.Fatalf("NKLD should fall with sample count: %v", curve)
	}
}

func TestTaskProbability(t *testing.T) {
	// 100 samples needed, 10 clients, 50 rounds: p = 0.2.
	if p := TaskProbability(100, 10, 50); p != 0.2 {
		t.Fatalf("p = %v, want 0.2", p)
	}
	if p := TaskProbability(1000, 1, 1); p != 1 {
		t.Fatalf("p = %v, want clamp to 1", p)
	}
	if p := TaskProbability(0, 10, 10); p != 0 {
		t.Fatal("no samples needed -> p=0")
	}
	if p := TaskProbability(10, 0, 10); p != 0 {
		t.Fatal("no clients -> p=0")
	}
}

func TestRoundsPerEpoch(t *testing.T) {
	if n := RoundsPerEpoch(75*time.Minute, 5*time.Minute); n != 15 {
		t.Fatalf("rounds = %d", n)
	}
	if n := RoundsPerEpoch(time.Minute, time.Hour); n != 1 {
		t.Fatalf("rounds should floor at 1, got %d", n)
	}
}

func TestDominantNetwork(t *testing.T) {
	r := rng.New(7)
	mk := func(mean, sd float64) []float64 {
		out := make([]float64, 300)
		for i := range out {
			out[i] = mean + sd*r.NormFloat64()
		}
		return out
	}
	// Clear separation: NetA >> NetB, NetC (higher is better).
	byNet := map[radio.NetworkID][]float64{
		radio.NetA: mk(1500, 50),
		radio.NetB: mk(900, 50),
		radio.NetC: mk(1000, 50),
	}
	if net, ok := DominantNetwork(byNet, false, 100); !ok || net != radio.NetA {
		t.Fatalf("NetA should dominate, got %v %v", net, ok)
	}
	// Overlapping: no dominance.
	overlap := map[radio.NetworkID][]float64{
		radio.NetB: mk(1000, 200),
		radio.NetC: mk(1050, 200),
	}
	if _, ok := DominantNetwork(overlap, false, 100); ok {
		t.Fatal("heavily overlapping networks must not be called dominated")
	}
	// Lower is better (latency).
	lat := map[radio.NetworkID][]float64{
		radio.NetB: mk(110, 5),
		radio.NetC: mk(160, 5),
	}
	if net, ok := DominantNetwork(lat, true, 100); !ok || net != radio.NetB {
		t.Fatalf("NetB should dominate latency, got %v %v", net, ok)
	}
	// Too few samples.
	if _, ok := DominantNetwork(byNet, false, 1000); ok {
		t.Fatal("minSamples filter should disqualify everything")
	}
	// One network only.
	single := map[radio.NetworkID][]float64{radio.NetB: mk(900, 10)}
	if _, ok := DominantNetwork(single, false, 10); ok {
		t.Fatal("dominance needs at least two networks")
	}
}

func TestBestNetwork(t *testing.T) {
	byNet := map[radio.NetworkID][]float64{
		radio.NetA: {100, 110},
		radio.NetB: {200, 210},
	}
	if net, ok := BestNetwork(byNet, false); !ok || net != radio.NetB {
		t.Fatalf("higher-better best = %v", net)
	}
	if net, ok := BestNetwork(byNet, true); !ok || net != radio.NetA {
		t.Fatalf("lower-better best = %v", net)
	}
	if _, ok := BestNetwork(nil, false); ok {
		t.Fatal("empty map has no best")
	}
}

func TestZoneRelStdDevs(t *testing.T) {
	r := rng.New(8)
	var samples []trace.Sample
	at := start
	// Two zones: one tight, one loose.
	tight := origin
	loose := origin.Offset(90, 5000)
	for i := 0; i < 300; i++ {
		samples = append(samples,
			mkSample(at, tight, 900*(1+0.02*r.NormFloat64())),
			mkSample(at, loose, 900*(1+0.30*r.NormFloat64())))
		at = at.Add(time.Minute)
	}
	rels := ZoneRelStdDevs(samples, origin, 250, 200)
	if len(rels) != 2 {
		t.Fatalf("zones found: %d", len(rels))
	}
	lo, hi := rels[0], rels[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo > 0.05 || hi < 0.2 {
		t.Fatalf("rel devs %v/%v don't separate tight and loose zones", lo, hi)
	}
	// minSamples filter.
	if got := ZoneRelStdDevs(samples, origin, 250, 500); len(got) != 0 {
		t.Fatalf("threshold 500 should remove both zones, got %d", len(got))
	}
}

func TestValidateErrorSmallWithEnoughSamples(t *testing.T) {
	r := rng.New(9)
	var samples []trace.Sample
	at := start
	for z := 0; z < 10; z++ {
		loc := origin.Offset(float64(z*36), float64(1000+z*700))
		mean := 700 + 100*float64(z)
		for i := 0; i < 250; i++ {
			samples = append(samples, mkSample(at, loc, mean*(1+0.06*r.NormFloat64())))
			at = at.Add(time.Second)
		}
	}
	errs := Validate(samples, origin, 250, 200, 100, seed)
	if len(errs) < 8 {
		t.Fatalf("only %d zones validated", len(errs))
	}
	cdf := ErrorCDF(errs)
	if frac := cdf.FractionBelow(0.04); frac < 0.7 {
		t.Fatalf("only %.0f%% of zones under 4%% error; paper achieves 70%%", frac*100)
	}
	for _, e := range errs {
		if e.RelativeErr > 0.15 {
			t.Fatalf("zone %v error %.3f exceeds the paper's 15%% max", e.Zone, e.RelativeErr)
		}
		if e.ClientCount != 100 {
			t.Fatalf("client subset size %d", e.ClientCount)
		}
	}
}

func TestConcurrentIngest(t *testing.T) {
	c := NewController(DefaultConfig(), origin)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			r := rng.New(uint64(g))
			at := start.Add(time.Duration(g) * time.Minute)
			for i := 0; i < 500; i++ {
				loc := origin.Offset(float64(g*45), float64(g)*600)
				c.Ingest(mkSample(at, loc, 900+10*r.NormFloat64()))
				at = at.Add(time.Second)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	total := int64(0)
	for _, k := range c.Keys() {
		total += c.SampleCount(k)
	}
	if total != 8*500 {
		t.Fatalf("lost samples under concurrency: %d", total)
	}
}

func TestAccumVsHistoryConsistency(t *testing.T) {
	// The published record after one epoch must match the batch statistics
	// of that epoch's samples.
	cfg := DefaultConfig()
	cfg.DefaultEpoch = time.Hour
	c := NewController(cfg, origin)
	r := rng.New(10)
	// Align to an epoch boundary.
	base := radio.Epoch.Add(24 * time.Hour)
	var vals []float64
	// Samples spaced one second: the span is too short for the Allan
	// analysis to re-derive the epoch, so DefaultEpoch stays in force.
	for i := 0; i < 60; i++ {
		v := 900 + 15*r.NormFloat64()
		vals = append(vals, v)
		c.Ingest(mkSample(base.Add(time.Duration(i)*time.Second), origin, v))
	}
	// Next sample rolls the epoch.
	c.Ingest(mkSample(base.Add(61*time.Minute), origin, 900))
	rec, ok := c.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if !ok {
		t.Fatal("no record after epoch rollover")
	}
	if d := rec.MeanValue - stats.Mean(vals); d > 1e-9 || d < -1e-9 {
		t.Fatalf("record mean %v vs batch %v", rec.MeanValue, stats.Mean(vals))
	}
}

func BenchmarkIngest(b *testing.B) {
	c := NewController(DefaultConfig(), origin)
	r := rng.New(11)
	at := start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Ingest(mkSample(at, origin, 900+10*r.NormFloat64()))
		at = at.Add(time.Second)
	}
}

func TestRequiredSamplesForCachesAndRefreshes(t *testing.T) {
	cfg := DefaultConfig()
	c := NewController(cfg, origin)
	key := Key{Zone: c.ZoneOf(origin), Net: radio.NetB, Metric: trace.MetricUDPKbps}

	// Empty zone: the default budget.
	if got := c.RequiredSamplesFor(key); got != cfg.DefaultSamplesPerEpoch {
		t.Fatalf("empty zone requirement %d", got)
	}

	r := rng.New(21)
	at := start
	for i := 0; i < 600; i++ {
		c.Ingest(mkSample(at, origin, 900*(1+0.05*r.NormFloat64())))
		at = at.Add(30 * time.Second)
	}
	n1 := c.RequiredSamplesFor(key)
	if n1 <= 0 || n1 > 400 {
		t.Fatalf("requirement %d implausible", n1)
	}
	// Cached: immediate re-query is identical and cheap.
	if n2 := c.RequiredSamplesFor(key); n2 != n1 {
		t.Fatalf("cache miss: %d vs %d", n1, n2)
	}
}

// BenchmarkZoneStateFootprint is the per-zone memory curve behind
// BENCH_sketch.json: ingest n samples into one (zone, network, metric)
// key and report the resident estimator bytes. The sketch substrate must
// hold this flat — the benchmark fails outright if a zone ever exceeds
// its 4 KiB budget, whatever the sample count.
func BenchmarkZoneStateFootprint(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := NewController(DefaultConfig(), origin)
				r := rng.New(13)
				at := start
				for j := 0; j < n; j++ {
					c.Ingest(mkSample(at, origin, 900+10*r.NormFloat64()))
					at = at.Add(time.Second)
				}
				key := Key{Zone: c.ZoneOf(origin), Net: radio.NetB, Metric: trace.MetricUDPKbps}
				got := c.RetainedBytes(key)
				if got > 4096 {
					b.Fatalf("zone state is %d bytes after %d samples; budget is 4096", got, n)
				}
				b.ReportMetric(float64(got), "bytes/zone")
			}
		})
	}
}

func TestAlertRingCapsAndCountsDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AlertBuffer = 4
	c := NewController(cfg, origin)

	// Drive the ring directly: the overflow mechanics are independent of
	// how hard the 2σ detector is to trip.
	c.mu.Lock()
	for i := 0; i < 10; i++ {
		c.pushAlertLocked(Alert{At: start.Add(time.Duration(i) * time.Minute)})
	}
	c.mu.Unlock()

	got := c.Alerts()
	if len(got) != 4 {
		t.Fatalf("ring returned %d alerts, want capacity 4", len(got))
	}
	// Oldest-first drain of the newest 4 (alerts 6..9).
	for i, a := range got {
		if want := start.Add(time.Duration(6+i) * time.Minute); !a.At.Equal(want) {
			t.Fatalf("alert %d at %v, want %v (overwrite-oldest order)", i, a.At, want)
		}
	}
	if d := c.DroppedAlerts(); d != 6 {
		t.Fatalf("dropped counter %d, want 6", d)
	}
	// Drain resets the ring but not the drop counter.
	if again := c.Alerts(); again != nil {
		t.Fatalf("second drain returned %d alerts, want none", len(again))
	}
	if d := c.DroppedAlerts(); d != 6 {
		t.Fatalf("dropped counter moved to %d after drain", d)
	}
}

func TestFailureDayRetention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureRetentionDays = 30
	c := NewController(cfg, origin)
	mkPing := func(day int, failed bool) trace.Sample {
		return trace.Sample{
			Time: radio.Epoch.Add(time.Duration(day)*24*time.Hour + 12*time.Hour),
			Loc:  origin, Network: radio.NetB, Metric: trace.MetricRTTMs,
			Value: 120, Failed: failed,
		}
	}
	// A year of daily pings, all failing: only the trailing 30 days may
	// survive, so both the observed-day count and the longest run cap at
	// the retention horizon instead of growing without bound.
	for d := 0; d < 365; d++ {
		c.Ingest(mkPing(d, true))
	}
	observed, run := c.DaysWithPingFailures(c.ZoneOf(origin), radio.NetB)
	if observed != 30 {
		t.Fatalf("observed %d days, want the 30-day retention horizon", observed)
	}
	if run != 30 {
		t.Fatalf("longest run %d, want 30", run)
	}
}
