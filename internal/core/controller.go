package core

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
)

// zoneState is the mutable per-(zone, network, metric) state.
type zoneState struct {
	history []stats.TimedValue // bounded sample history (for epoch/NKLD analysis)

	epoch        time.Duration // current epoch length (Allan minimum)
	epochValid   bool
	epochSamples int // history length when the epoch was last computed

	required        int // NKLD-derived samples per epoch (0 = not yet derived)
	requiredSamples int // history length when required was last computed

	curEpochIdx int64       // index of the epoch window being accumulated
	cur         stats.Accum // accumulator for the current epoch

	published  Record
	hasRecord  bool
	totalCount int64
}

// Controller is the WiScape measurement coordinator's brain: it ingests
// client-sourced samples, maintains per-zone-epoch estimates, decides how
// many samples each zone needs and how often, and emits alerts on abrupt
// changes. It is safe for concurrent use.
type Controller struct {
	cfg  Config
	grid *geo.Grid

	normalizer *device.Normalizer // optional cross-class normalization (§3.3)

	mu       sync.Mutex
	zones    map[Key]*zoneState
	alerts   []Alert
	failures map[failKey]map[int64]int // ping failures per zone per day (Fig. 9)
}

// failKey tracks ping failures per zone and network.
type failKey struct {
	Zone geo.ZoneID
	Net  radio.NetworkID
}

// NewController returns a controller for a region centered at origin.
func NewController(cfg Config, origin geo.Point) *Controller {
	if cfg.ZoneRadiusM <= 0 {
		cfg = DefaultConfig()
	}
	return &Controller{
		cfg:      cfg,
		grid:     geo.GridForZoneRadius(origin, cfg.ZoneRadiusM),
		zones:    make(map[Key]*zoneState),
		failures: make(map[failKey]map[int64]int),
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetNormalizer installs a device normalizer: samples tagged with a device
// class are mapped into reference-class units before aggregation, making
// cross-class composition sound (§3.3). Call during setup, before Ingest.
func (c *Controller) SetNormalizer(n *device.Normalizer) { c.normalizer = n }

// Grid returns the zone grid.
func (c *Controller) Grid() *geo.Grid { return c.grid }

// ZoneOf maps a location to its zone.
func (c *Controller) ZoneOf(p geo.Point) geo.ZoneID { return c.grid.Zone(p) }

// Ingest folds one client sample into the zone state, handling epoch
// rollover, record publication and ping-failure tracking.
func (c *Controller) Ingest(s trace.Sample) {
	// Reject unusable values outright: one NaN would poison a zone's
	// accumulator forever.
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return
	}
	if c.normalizer != nil && s.Device != "" && !s.Failed {
		s.Value = c.normalizer.Normalize(s.Value, device.Class(s.Device), string(s.Metric))
	}
	zone := c.grid.Zone(s.Loc)

	c.mu.Lock()
	defer c.mu.Unlock()

	if s.Metric == trace.MetricRTTMs {
		fk := failKey{Zone: zone, Net: s.Network}
		day := s.Time.Sub(radio.Epoch) / (24 * time.Hour)
		if c.failures[fk] == nil {
			c.failures[fk] = make(map[int64]int)
		}
		if s.Failed {
			c.failures[fk][int64(day)]++
		} else {
			c.failures[fk][int64(day)] += 0 // mark the day as observed
		}
	}
	if s.Failed {
		return
	}

	key := Key{Zone: zone, Net: s.Network, Metric: s.Metric}
	st := c.zones[key]
	if st == nil {
		st = &zoneState{epoch: c.cfg.DefaultEpoch, curEpochIdx: -1}
		c.zones[key] = st
	}

	// Bounded history (drop oldest half when full, keeping memory O(1)).
	if len(st.history) >= c.cfg.HistoryLimit {
		half := c.cfg.HistoryLimit / 2
		st.history = append(st.history[:0], st.history[len(st.history)-half:]...)
	}
	st.history = append(st.history, stats.TimedValue{T: s.Time, V: s.Value})
	st.totalCount++

	// Periodically re-derive the zone epoch from history (every time the
	// history grows 50% past the last analysis).
	if !c.cfg.DisableEpochAdaptation && (!st.epochValid || len(st.history) > st.epochSamples*3/2) {
		if ep, ok := c.epochFromHistory(st.history); ok {
			st.epoch = ep
			st.epochValid = true
			st.epochSamples = len(st.history)
		}
	}

	idx := int64(s.Time.Sub(radio.Epoch) / st.epoch)
	if st.curEpochIdx >= 0 && idx != st.curEpochIdx {
		c.finalizeEpochLocked(key, st, s.Time)
	}
	st.curEpochIdx = idx
	st.cur.Add(s.Value)
}

// IngestDataset folds a whole dataset in time order.
func (c *Controller) IngestDataset(d *trace.Dataset) {
	sorted := &trace.Dataset{Name: d.Name, Samples: append([]trace.Sample(nil), d.Samples...)}
	sorted.SortByTime()
	for _, s := range sorted.Samples {
		c.Ingest(s)
	}
}

// finalizeEpochLocked closes the current epoch window: publishes a first
// record, or replaces the published record when the estimate moved by more
// than ChangeSigmas standard deviations (emitting an alert).
func (c *Controller) finalizeEpochLocked(key Key, st *zoneState, at time.Time) {
	if st.cur.Count() == 0 {
		return
	}
	candidate := Record{
		Key:       key,
		MeanValue: st.cur.Mean(),
		StdDev:    st.cur.StdDev(),
		Samples:   st.cur.Count(),
		UpdatedAt: at,
	}
	defer func() { st.cur.Reset() }()

	if !st.hasRecord {
		st.published = candidate
		st.hasRecord = true
		return
	}
	prev := st.published
	delta := candidate.MeanValue - prev.MeanValue
	if delta < 0 {
		delta = -delta
	}
	threshold := c.cfg.ChangeSigmas * prev.StdDev
	if prev.StdDev == 0 {
		m := prev.MeanValue
		if m < 0 {
			m = -m
		}
		threshold = c.cfg.ChangeSigmas * 0.05 * m // degenerate record: 10% move
	}
	if floor := c.cfg.AlertFloors[key.Metric]; threshold < floor {
		threshold = floor
	}
	// Only statistically meaningful epochs may flip the record and page an
	// operator; drive-by epochs with a handful of samples blend in below,
	// as do metrics whose record is degenerate at zero (threshold 0 would
	// alert on any noise — e.g. a single lost packet in a loss-free zone).
	if threshold > 0 && delta > threshold && candidate.Samples >= int64(c.cfg.MinAlertSamples) && prev.Samples >= int64(c.cfg.MinAlertSamples) {
		st.published = candidate
		c.alerts = append(c.alerts, Alert{Key: key, Previous: prev, Current: candidate, At: at})
		return
	}
	// Small move: refresh the record's recency and smooth the estimate so
	// slow drift is tracked without alert noise.
	st.published.MeanValue = 0.7*prev.MeanValue + 0.3*candidate.MeanValue
	st.published.StdDev = 0.7*prev.StdDev + 0.3*candidate.StdDev
	st.published.Samples += candidate.Samples
	st.published.UpdatedAt = at
}

// epochFromHistory derives a zone epoch as the Allan-deviation minimum of
// the regularized history (§3.2.2).
func (c *Controller) epochFromHistory(history []stats.TimedValue) (time.Duration, bool) {
	const period = time.Minute
	series := stats.RegularSeries(history, period)
	// Require enough coverage for at least two windows at the sweep floor
	// times ten, or the estimate is noise.
	if len(series) < 60 {
		return 0, false
	}
	maxWindow := c.cfg.EpochSweepMax
	// Keep at least ten windows per sweep point: Allan estimates from fewer
	// are unreliable and yield spurious right-edge minima.
	if limit := len(series) / 10; limit < maxWindow {
		maxWindow = limit
	}
	windows := stats.LogSpacedWindows(c.cfg.EpochSweepMin, maxWindow, 25)
	best, _ := stats.MinAllanWindow(series, windows)
	if best <= 0 {
		return 0, false
	}
	epoch := time.Duration(best) * period
	if epoch < c.cfg.MinEpoch {
		epoch = c.cfg.MinEpoch
	}
	return epoch, true
}

// Estimate returns the published record for a key.
func (c *Controller) Estimate(key Key) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.zones[key]
	if st == nil {
		return Record{}, false
	}
	if st.hasRecord {
		return st.published, true
	}
	// Before the first epoch closes, serve the running accumulator (marked
	// by UpdatedAt zero).
	if st.cur.Count() > 0 {
		return Record{
			Key:       key,
			MeanValue: st.cur.Mean(),
			StdDev:    st.cur.StdDev(),
			Samples:   st.cur.Count(),
		}, true
	}
	return Record{}, false
}

// EstimateAt is Estimate keyed by location instead of zone id.
func (c *Controller) EstimateAt(p geo.Point, net radio.NetworkID, m trace.Metric) (Record, bool) {
	return c.Estimate(Key{Zone: c.grid.Zone(p), Net: net, Metric: m})
}

// RequiredSamplesFor returns the zone's NKLD-derived per-epoch sample
// requirement (§3.3), falling back to the configured default until enough
// history has accumulated. The computation is cached and refreshed as the
// history grows, so the scheduler can call this on every task round.
func (c *Controller) RequiredSamplesFor(key Key) int {
	c.mu.Lock()
	st := c.zones[key]
	if st == nil {
		c.mu.Unlock()
		return c.cfg.DefaultSamplesPerEpoch
	}
	needRefresh := st.required == 0 || len(st.history) > st.requiredSamples*2
	if !needRefresh {
		n := st.required
		c.mu.Unlock()
		return n
	}
	// Copy the values out so the (100-iteration resampling) analysis runs
	// outside the lock.
	vals := make([]float64, len(st.history))
	for i, tv := range st.history {
		vals[i] = tv.V
	}
	histLen := len(st.history)
	c.mu.Unlock()

	n, ok := RequiredSamples(vals, c.cfg, uint64(histLen))
	if !ok {
		n = c.cfg.DefaultSamplesPerEpoch
	}

	c.mu.Lock()
	st.required = n
	st.requiredSamples = histLen
	c.mu.Unlock()
	return n
}

// EpochOf returns the zone's current epoch length.
func (c *Controller) EpochOf(key Key) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.zones[key]; st != nil {
		return st.epoch
	}
	return c.cfg.DefaultEpoch
}

// SampleCount returns the total samples ingested for a key.
func (c *Controller) SampleCount(key Key) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.zones[key]; st != nil {
		return st.totalCount
	}
	return 0
}

// History returns a copy of the retained sample history for a key.
func (c *Controller) History(key Key) []stats.TimedValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.zones[key]; st != nil {
		return append([]stats.TimedValue(nil), st.history...)
	}
	return nil
}

// Records returns every published record for a network and metric, in
// deterministic zone order — the bulk query behind operator dashboards and
// map renderers.
func (c *Controller) Records(net radio.NetworkID, m trace.Metric) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for k, st := range c.zones {
		if k.Net != net || k.Metric != m || !st.hasRecord {
			continue
		}
		out = append(out, st.published)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key.Zone, out[j].Key.Zone
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return out
}

// Alerts drains the pending alert queue.
func (c *Controller) Alerts() []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.alerts
	c.alerts = nil
	return out
}

// Keys returns all tracked keys in deterministic order.
func (c *Controller) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.zones))
	for k := range c.zones {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Zone != b.Zone {
			if a.Zone.X != b.Zone.X {
				return a.Zone.X < b.Zone.X
			}
			return a.Zone.Y < b.Zone.Y
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Metric < b.Metric
	})
	return out
}

// DaysWithPingFailures returns, for a zone and network, the number of
// observed days and the longest run of consecutive *observed* days having
// at least one failed ping — the Fig. 9 trouble signal. Days on which the
// zone was not visited at all do not break a run (opportunistic coverage
// is inherently gappy); a visited day without failures does.
func (c *Controller) DaysWithPingFailures(zone geo.ZoneID, net radio.NetworkID) (observedDays, longestFailRun int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	days := c.failures[failKey{Zone: zone, Net: net}]
	if len(days) == 0 {
		return 0, 0
	}
	idxs := make([]int64, 0, len(days))
	for d := range days {
		idxs = append(idxs, d)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	run, best := 0, 0
	for _, d := range idxs {
		if days[d] > 0 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return len(idxs), best
}
