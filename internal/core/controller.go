package core

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/trace"
)

// zoneState is the mutable per-(zone, network, metric) state. Every piece
// is constant-memory: the trailing window and current epoch are quantile
// sketches (internal/sketch), not sample buffers, so a zone's footprint is
// the same after its millionth sample as after its hundredth.
type zoneState struct {
	// window is the trailing-window sketch: quantile digest + exact
	// moments + telescoping trend ring. It feeds the NKLD sample-count
	// analysis (via quantile-spaced reconstruction), the Allan epoch
	// derivation (via the trend series) and checkpoint/fan-out payloads.
	window *sketch.EpochSketch

	// cur accumulates the epoch window currently being filled; its digest
	// supplies the published record's quantiles.
	cur *sketch.EpochSketch

	epoch      time.Duration // current epoch length (Allan minimum)
	epochValid bool
	epochCount int64 // window sample count when the epoch was last computed

	required      int   // NKLD-derived samples per epoch (0 = not yet derived)
	requiredCount int64 // window sample count when required was last computed

	curEpochIdx int64 // index of the epoch window being accumulated

	published  Record
	hasRecord  bool
	totalCount int64
}

// Controller is the WiScape measurement coordinator's brain: it ingests
// client-sourced samples, maintains per-zone-epoch estimates, decides how
// many samples each zone needs and how often, and emits alerts on abrupt
// changes. It is safe for concurrent use.
type Controller struct {
	cfg  Config
	grid *geo.Grid

	normalizer *device.Normalizer // optional cross-class normalization (§3.3)

	mu       sync.Mutex
	zones    map[Key]*zoneState
	failures map[failKey]map[int64]int // ping failures per zone per day (Fig. 9)

	// alerts is a fixed-capacity ring: alertHead indexes the oldest
	// pending alert, alertLen counts pending ones. When full, the oldest
	// is overwritten and alertsDropped incremented — an unread backlog
	// must not grow without bound.
	alerts        []Alert
	alertHead     int
	alertLen      int
	alertsDropped int64
}

// failKey tracks ping failures per zone and network.
type failKey struct {
	Zone geo.ZoneID
	Net  radio.NetworkID
}

// NewController returns a controller for a region centered at origin.
func NewController(cfg Config, origin geo.Point) *Controller {
	if cfg.ZoneRadiusM <= 0 {
		cfg = DefaultConfig()
	}
	// Default the sketch-era knobs individually: configs persisted before
	// they existed (old snapshots) deserialize with zeros.
	if cfg.WindowCompression <= 0 {
		cfg.WindowCompression = sketch.DefaultCompression
	}
	if cfg.EpochCompression <= 0 {
		cfg.EpochCompression = sketch.EpochCompression
	}
	if cfg.TrendSlots <= 0 {
		cfg.TrendSlots = sketch.DefaultTrendSlots
	}
	if cfg.AlertBuffer <= 0 {
		cfg.AlertBuffer = DefaultAlertBuffer
	}
	if cfg.FailureRetentionDays <= 0 {
		cfg.FailureRetentionDays = DefaultFailureRetentionDays
	}
	return &Controller{
		cfg:      cfg,
		grid:     geo.GridForZoneRadius(origin, cfg.ZoneRadiusM),
		zones:    make(map[Key]*zoneState),
		failures: make(map[failKey]map[int64]int),
		alerts:   make([]Alert, cfg.AlertBuffer),
	}
}

// newZoneState builds an empty per-key state with the configured sketch
// shapes.
func (c *Controller) newZoneState() *zoneState {
	st := &zoneState{
		window:      sketch.NewEpochSketch(c.cfg.WindowCompression),
		cur:         sketch.NewEpochSketch(c.cfg.EpochCompression),
		epoch:       c.cfg.DefaultEpoch,
		curEpochIdx: -1,
	}
	st.window.EnableTrend(c.cfg.TrendSlots, time.Minute)
	return st
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// SetNormalizer installs a device normalizer: samples tagged with a device
// class are mapped into reference-class units before aggregation, making
// cross-class composition sound (§3.3). Call during setup, before Ingest.
func (c *Controller) SetNormalizer(n *device.Normalizer) { c.normalizer = n }

// Grid returns the zone grid.
func (c *Controller) Grid() *geo.Grid { return c.grid }

// ZoneOf maps a location to its zone.
func (c *Controller) ZoneOf(p geo.Point) geo.ZoneID { return c.grid.Zone(p) }

// Ingest folds one client sample into the zone state, handling epoch
// rollover, record publication and ping-failure tracking.
func (c *Controller) Ingest(s trace.Sample) {
	// Reject unusable values outright: one NaN would poison a zone's
	// accumulator forever.
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return
	}
	if c.normalizer != nil && s.Device != "" && !s.Failed {
		s.Value = c.normalizer.Normalize(s.Value, device.Class(s.Device), string(s.Metric))
	}
	zone := c.grid.Zone(s.Loc)

	c.mu.Lock()
	defer c.mu.Unlock()

	if s.Metric == trace.MetricRTTMs {
		c.trackFailureLocked(failKey{Zone: zone, Net: s.Network}, s)
	}
	if s.Failed {
		return
	}

	key := Key{Zone: zone, Net: s.Network, Metric: s.Metric}
	st := c.zones[key]
	if st == nil {
		st = c.newZoneState()
		c.zones[key] = st
	}

	// Bounded window: once the sketch's retained weight reaches the
	// history limit, halve it. Decay stands in for the old "drop the
	// oldest half of the buffer" — recent epochs dominate the window while
	// memory stays fixed.
	if st.window.Weight() >= float64(c.cfg.HistoryLimit) {
		st.window.Decay(0.5)
	}
	st.window.Observe(s.Time, s.Value)
	st.totalCount++

	// Periodically re-derive the zone epoch from the window trend (every
	// time the window grows 50% past the last analysis).
	if !c.cfg.DisableEpochAdaptation && (!st.epochValid || st.window.Count() > st.epochCount*3/2) {
		if ep, ok := c.epochFromWindow(st.window); ok {
			st.epoch = ep
			st.epochValid = true
			st.epochCount = st.window.Count()
		}
	}

	idx := int64(s.Time.Sub(radio.Epoch) / st.epoch)
	if st.curEpochIdx >= 0 && idx != st.curEpochIdx {
		c.finalizeEpochLocked(key, st, s.Time)
	}
	st.curEpochIdx = idx
	st.cur.Add(s.Value)
}

// trackFailureLocked records a ping observation (failed or not) for the
// Fig. 9 per-day failure analysis, evicting the oldest day beyond the
// retention horizon so the map cannot grow without bound.
func (c *Controller) trackFailureLocked(fk failKey, s trace.Sample) {
	day := int64(s.Time.Sub(radio.Epoch) / (24 * time.Hour))
	days := c.failures[fk]
	if days == nil {
		days = make(map[int64]int)
		c.failures[fk] = days
	}
	if s.Failed {
		days[day]++
	} else if _, seen := days[day]; !seen {
		days[day] = 0 // mark the day as observed
	}
	for len(days) > c.cfg.FailureRetentionDays {
		oldest := int64(math.MaxInt64)
		for d := range days {
			if d < oldest {
				oldest = d
			}
		}
		delete(days, oldest)
	}
}

// IngestDataset folds a whole dataset in time order.
func (c *Controller) IngestDataset(d *trace.Dataset) {
	sorted := &trace.Dataset{Name: d.Name, Samples: append([]trace.Sample(nil), d.Samples...)}
	sorted.SortByTime()
	for _, s := range sorted.Samples {
		c.Ingest(s)
	}
}

// recordFrom builds a publishable record from the closing epoch sketch.
func recordFrom(key Key, es *sketch.EpochSketch, at time.Time) Record {
	return Record{
		Key:       key,
		MeanValue: es.Mean(),
		StdDev:    es.StdDev(),
		Samples:   es.Count(),
		P50:       es.Quantile(0.50),
		P90:       es.Quantile(0.90),
		P99:       es.Quantile(0.99),
		UpdatedAt: at,
	}
}

// finalizeEpochLocked closes the current epoch window: publishes a first
// record, or replaces the published record when the estimate moved by more
// than ChangeSigmas standard deviations (emitting an alert).
func (c *Controller) finalizeEpochLocked(key Key, st *zoneState, at time.Time) {
	if st.cur.Count() == 0 {
		return
	}
	candidate := recordFrom(key, st.cur, at)
	defer func() { st.cur.Reset(0) }()

	if !st.hasRecord {
		st.published = candidate
		st.hasRecord = true
		return
	}
	prev := st.published
	delta := candidate.MeanValue - prev.MeanValue
	if delta < 0 {
		delta = -delta
	}
	threshold := c.cfg.ChangeSigmas * prev.StdDev
	if prev.StdDev == 0 {
		m := prev.MeanValue
		if m < 0 {
			m = -m
		}
		threshold = c.cfg.ChangeSigmas * 0.05 * m // degenerate record: 10% move
	}
	if floor := c.cfg.AlertFloors[key.Metric]; threshold < floor {
		threshold = floor
	}
	// Only statistically meaningful epochs may flip the record and page an
	// operator; drive-by epochs with a handful of samples blend in below,
	// as do metrics whose record is degenerate at zero (threshold 0 would
	// alert on any noise — e.g. a single lost packet in a loss-free zone).
	if threshold > 0 && delta > threshold && candidate.Samples >= int64(c.cfg.MinAlertSamples) && prev.Samples >= int64(c.cfg.MinAlertSamples) {
		st.published = candidate
		c.pushAlertLocked(Alert{Key: key, Previous: prev, Current: candidate, At: at})
		return
	}
	// Small move: refresh the record's recency and smooth the estimate so
	// slow drift is tracked without alert noise.
	st.published.MeanValue = 0.7*prev.MeanValue + 0.3*candidate.MeanValue
	st.published.StdDev = 0.7*prev.StdDev + 0.3*candidate.StdDev
	st.published.P50 = 0.7*prev.P50 + 0.3*candidate.P50
	st.published.P90 = 0.7*prev.P90 + 0.3*candidate.P90
	st.published.P99 = 0.7*prev.P99 + 0.3*candidate.P99
	st.published.Samples += candidate.Samples
	st.published.UpdatedAt = at
}

// pushAlertLocked appends to the alert ring, overwriting (and counting)
// the oldest pending alert when full.
func (c *Controller) pushAlertLocked(a Alert) {
	if len(c.alerts) == 0 {
		c.alertsDropped++
		return
	}
	if c.alertLen == len(c.alerts) {
		c.alerts[c.alertHead] = a
		c.alertHead = (c.alertHead + 1) % len(c.alerts)
		c.alertsDropped++
		return
	}
	c.alerts[(c.alertHead+c.alertLen)%len(c.alerts)] = a
	c.alertLen++
}

// epochFromWindow derives a zone epoch as the Allan-deviation minimum of
// the window's regularized trend series (§3.2.2). The trend ring's slot
// width adapts to the observed span, so the sweep bounds (configured in
// minutes) are converted to slot counts.
func (c *Controller) epochFromWindow(w *sketch.EpochSketch) (time.Duration, bool) {
	series, period := w.TrendSeries()
	// Require enough coverage for at least two windows at the sweep floor
	// times ten, or the estimate is noise.
	if len(series) < 60 || period <= 0 {
		return 0, false
	}
	minWindow := int(time.Duration(c.cfg.EpochSweepMin) * time.Minute / period)
	if minWindow < 1 {
		minWindow = 1
	}
	maxWindow := int(time.Duration(c.cfg.EpochSweepMax) * time.Minute / period)
	// Keep at least ten windows per sweep point: Allan estimates from fewer
	// are unreliable and yield spurious right-edge minima.
	if limit := len(series) / 10; limit < maxWindow {
		maxWindow = limit
	}
	windows := stats.LogSpacedWindows(minWindow, maxWindow, 25)
	best, _ := stats.MinAllanWindow(series, windows)
	if best <= 0 {
		return 0, false
	}
	epoch := time.Duration(best) * period
	if epoch < c.cfg.MinEpoch {
		epoch = c.cfg.MinEpoch
	}
	return epoch, true
}

// Estimate returns the published record for a key.
func (c *Controller) Estimate(key Key) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.zones[key]
	if st == nil {
		return Record{}, false
	}
	if st.hasRecord {
		return st.published, true
	}
	// Before the first epoch closes, serve the running sketch (marked by
	// UpdatedAt zero).
	if st.cur.Count() > 0 {
		return recordFrom(key, st.cur, time.Time{}), true
	}
	return Record{}, false
}

// EstimateAt is Estimate keyed by location instead of zone id.
func (c *Controller) EstimateAt(p geo.Point, net radio.NetworkID, m trace.Metric) (Record, bool) {
	return c.Estimate(Key{Zone: c.grid.Zone(p), Net: net, Metric: m})
}

// nkldReconstructed bounds how many quantile-spaced values are rebuilt
// from the window digest for the NKLD analysis.
const nkldReconstructed = 512

// RequiredSamplesFor returns the zone's NKLD-derived per-epoch sample
// requirement (§3.3), falling back to the configured default until enough
// of the window has accumulated. The computation is cached and refreshed
// as the window grows, so the scheduler can call this on every task round.
func (c *Controller) RequiredSamplesFor(key Key) int {
	c.mu.Lock()
	cfg := c.cfg // copied under mu; the resampling below runs outside it
	st := c.zones[key]
	if st == nil {
		c.mu.Unlock()
		return cfg.DefaultSamplesPerEpoch
	}
	count := st.window.Count()
	needRefresh := st.required == 0 || count > st.requiredCount*2
	if !needRefresh {
		n := st.required
		c.mu.Unlock()
		return n
	}
	// Reconstruct quantile-spaced values from the digest under the lock
	// (cheap), then run the 100-iteration resampling analysis outside it.
	m := int(count)
	if m > nkldReconstructed {
		m = nkldReconstructed
	}
	vals := st.window.Samples(m)
	c.mu.Unlock()

	n, ok := RequiredSamples(vals, cfg, uint64(count))
	if !ok {
		n = cfg.DefaultSamplesPerEpoch
	}

	c.mu.Lock()
	st.required = n
	st.requiredCount = count
	c.mu.Unlock()
	return n
}

// EpochOf returns the zone's current epoch length.
func (c *Controller) EpochOf(key Key) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.zones[key]; st != nil {
		return st.epoch
	}
	return c.cfg.DefaultEpoch
}

// SampleCount returns the total samples ingested for a key.
func (c *Controller) SampleCount(key Key) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.zones[key]; st != nil {
		return st.totalCount
	}
	return 0
}

// RetainedBytes returns the fixed memory footprint of a key's estimator
// state — the acceptance bound the benchmarks assert (≤ 4 KiB regardless
// of sample count). Zero for untracked keys.
func (c *Controller) RetainedBytes(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.zones[key]
	if st == nil {
		return 0
	}
	const zoneStateBytes = 120 // scalar fields + published record
	return st.window.FootprintBytes() + st.cur.FootprintBytes() + zoneStateBytes
}

// SketchFor serializes a key's trailing-window sketch — the unit shards
// ship to the cluster gateway for distribution-preserving merges, and the
// distribution payload of checkpoints. ok is false for untracked keys.
func (c *Controller) SketchFor(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.zones[key]
	if st == nil {
		return nil, false
	}
	return st.window.MarshalBinary(), true
}

// WindowQuantile returns the trailing-window quantile for a key (not the
// published epoch record — the whole retained distribution).
func (c *Controller) WindowQuantile(key Key, q float64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.zones[key]
	if st == nil || st.window.Count() == 0 {
		return 0, false
	}
	return st.window.Quantile(q), true
}

// Records returns every published record for a network and metric, in
// deterministic zone order — the bulk query behind operator dashboards and
// map renderers.
func (c *Controller) Records(net radio.NetworkID, m trace.Metric) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for k, st := range c.zones {
		if k.Net != net || k.Metric != m || !st.hasRecord {
			continue
		}
		out = append(out, st.published)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key.Zone, out[j].Key.Zone
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return out
}

// Alerts drains the pending alert queue (oldest first).
func (c *Controller) Alerts() []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alertLen == 0 {
		return nil
	}
	out := make([]Alert, c.alertLen)
	for i := range out {
		out[i] = c.alerts[(c.alertHead+i)%len(c.alerts)]
	}
	c.alertHead = 0
	c.alertLen = 0
	return out
}

// DroppedAlerts returns how many alerts were overwritten unread because
// the ring was full — the telemetry signal that a consumer is not keeping
// up.
func (c *Controller) DroppedAlerts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alertsDropped
}

// Keys returns all tracked keys in deterministic order.
func (c *Controller) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.zones))
	for k := range c.zones {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Zone != b.Zone {
			if a.Zone.X != b.Zone.X {
				return a.Zone.X < b.Zone.X
			}
			return a.Zone.Y < b.Zone.Y
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Metric < b.Metric
	})
	return out
}

// DaysWithPingFailures returns, for a zone and network, the number of
// observed days and the longest run of consecutive *observed* days having
// at least one failed ping — the Fig. 9 trouble signal. Days on which the
// zone was not visited at all do not break a run (opportunistic coverage
// is inherently gappy); a visited day without failures does.
func (c *Controller) DaysWithPingFailures(zone geo.ZoneID, net radio.NetworkID) (observedDays, longestFailRun int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	days := c.failures[failKey{Zone: zone, Net: net}]
	if len(days) == 0 {
		return 0, 0
	}
	idxs := make([]int64, 0, len(days))
	for d := range days {
		idxs = append(idxs, d)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	run, best := 0, 0
	for _, d := range idxs {
		if days[d] > 0 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return len(idxs), best
}
