package core

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

func njSample(at time.Time, v float64) trace.Sample {
	return trace.Sample{
		Time: at, Loc: geo.NJStaticSites()[0], Network: radio.NetB,
		Metric: trace.MetricUDPKbps, Value: v, ClientID: "nj",
	}
}

func TestFederationRouting(t *testing.T) {
	f := NewMadisonNJFederation(DefaultConfig())
	if got := f.Regions(); len(got) != 2 || got[0] != "madison" || got[1] != "new-jersey" {
		t.Fatalf("regions: %v", got)
	}

	r := rng.New(1)
	at := start
	for i := 0; i < 60; i++ {
		if !f.Ingest(mkSample(at, origin, 900+10*r.NormFloat64())) {
			t.Fatal("Madison sample not routed")
		}
		if !f.Ingest(njSample(at, 1500+10*r.NormFloat64())) {
			t.Fatal("NJ sample not routed")
		}
		at = at.Add(time.Minute)
	}

	// Queries route by location and see only their region's data.
	mad, ok := f.EstimateAt(origin, radio.NetB, trace.MetricUDPKbps)
	if !ok || mad.MeanValue < 850 || mad.MeanValue > 950 {
		t.Fatalf("Madison estimate %+v %v", mad, ok)
	}
	nj, ok := f.EstimateAt(geo.NJStaticSites()[0], radio.NetB, trace.MetricUDPKbps)
	if !ok || nj.MeanValue < 1450 || nj.MeanValue > 1550 {
		t.Fatalf("NJ estimate %+v %v", nj, ok)
	}
}

func TestFederationDropsStragglers(t *testing.T) {
	f := NewMadisonNJFederation(DefaultConfig())
	s := mkSample(start, geo.Point{Lat: 48.85, Lon: 2.35}, 100) // Paris
	if f.Ingest(s) {
		t.Fatal("sample outside every region must not route")
	}
	if _, ok := f.EstimateAt(geo.Point{Lat: 48.85, Lon: 2.35}, radio.NetB, trace.MetricUDPKbps); ok {
		t.Fatal("query outside every region must miss")
	}
}

func TestFederationAlertsTaggedAndOrdered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultEpoch = 10 * time.Minute
	f := NewMadisonNJFederation(cfg)
	r := rng.New(2)
	// Stable then collapsing in both regions, NJ collapsing later.
	at := start
	for i := 0; i < 40; i++ {
		f.Ingest(mkSample(at, origin, 900+10*r.NormFloat64()))
		f.Ingest(njSample(at, 1500+10*r.NormFloat64()))
		at = at.Add(30 * time.Second)
	}
	for i := 0; i < 40; i++ {
		f.Ingest(mkSample(at, origin, 300+10*r.NormFloat64()))
		at = at.Add(30 * time.Second)
	}
	for i := 0; i < 40; i++ {
		f.Ingest(njSample(at, 500+10*r.NormFloat64()))
		at = at.Add(30 * time.Second)
	}
	alerts := f.Alerts()
	if len(alerts) < 2 {
		t.Fatalf("want alerts from both regions, got %d", len(alerts))
	}
	regions := map[string]bool{}
	for i, a := range alerts {
		regions[a.Region] = true
		if i > 0 && a.At.Before(alerts[i-1].At) {
			t.Fatal("alerts not time ordered")
		}
	}
	if !regions["madison"] || !regions["new-jersey"] {
		t.Fatalf("regions missing from alerts: %v", regions)
	}
	// Drained.
	if len(f.Alerts()) != 0 {
		t.Fatal("alerts should drain")
	}
}

func TestFederationSnapshotPerRegion(t *testing.T) {
	f := NewMadisonNJFederation(DefaultConfig())
	f.Ingest(mkSample(start, origin, 900))
	snaps := f.Snapshot(start.Add(time.Hour))
	if len(snaps) != 2 {
		t.Fatalf("snapshots: %d", len(snaps))
	}
	if len(snaps["madison"].Entries) != 1 {
		t.Fatalf("madison entries: %d", len(snaps["madison"].Entries))
	}
	if len(snaps["new-jersey"].Entries) != 0 {
		t.Fatal("NJ should be empty")
	}
}

func TestFederationAddRegionValidation(t *testing.T) {
	f := NewFederation()
	if err := f.AddRegion("", geo.Madison(), NewController(DefaultConfig(), origin)); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := f.AddRegion("a", geo.Madison(), NewController(DefaultConfig(), origin)); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRegion("a", geo.Madison(), NewController(DefaultConfig(), origin)); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
}

func TestFederationRegionOrderMatters(t *testing.T) {
	// Overlapping regions: first registered wins.
	f := NewFederation()
	inner := geo.BoundingBox{MinLat: 43.06, MaxLat: 43.09, MinLon: -89.42, MaxLon: -89.38}
	cInner := NewController(DefaultConfig(), inner.Center())
	cOuter := NewController(DefaultConfig(), geo.Madison().Center())
	if err := f.AddRegion("campus", inner, cInner); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRegion("city", geo.Madison(), cOuter); err != nil {
		t.Fatal(err)
	}
	name, ctrl, ok := f.RegionFor(geo.Point{Lat: 43.07, Lon: -89.4})
	if !ok || name != "campus" || ctrl != cInner {
		t.Fatalf("inner region should win: %s", name)
	}
	name, _, ok = f.RegionFor(geo.Point{Lat: 43.02, Lon: -89.47})
	if !ok || name != "city" {
		t.Fatalf("outer region should catch the rest: %s", name)
	}
}
