package core

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ZoneRelStdDevs bins samples into zones of the given radius and returns
// the relative standard deviation of each zone having at least minSamples
// samples — the quantity swept over radii in Fig. 4 to choose the 250 m
// zone size.
func ZoneRelStdDevs(samples []trace.Sample, origin geo.Point, radiusM float64, minSamples int) []float64 {
	grid := geo.GridForZoneRadius(origin, radiusM)
	byZone := trace.ByZone(samples, grid)
	var out []float64
	for _, z := range trace.ZonesWithAtLeast(byZone, minSamples) {
		out = append(out, stats.RelStdDev(trace.Values(byZone[z])))
	}
	return out
}

// ValidationError is one zone's client-sourced estimation error (Fig. 8).
type ValidationError struct {
	Zone         geo.ZoneID
	TruthMean    float64
	ClientMean   float64
	ClientCount  int
	RelativeErr  float64 // |client - truth| / truth
	TruthSamples int
}

// Validate reproduces the paper's §3.4 validation: each zone's samples are
// partitioned into two disjoint subsets — a client-sourced set (of which
// clientN random samples are used, modelling what WiScape would collect)
// and a ground-truth set providing the expected value. The output is each
// zone's relative estimation error.
func Validate(samples []trace.Sample, origin geo.Point, radiusM float64, minSamples, clientN int, seed uint64) []ValidationError {
	grid := geo.GridForZoneRadius(origin, radiusM)
	byZone := trace.ByZone(samples, grid)
	r := rng.NewNamed(seed, "validate")
	var out []ValidationError
	for _, z := range trace.ZonesWithAtLeast(byZone, minSamples) {
		vals := trace.Values(byZone[z])
		perm := r.Perm(len(vals))
		half := len(vals) / 2
		n := clientN
		if n > half {
			n = half
		}
		client := make([]float64, n)
		for i := 0; i < n; i++ {
			client[i] = vals[perm[i]]
		}
		truthVals := make([]float64, 0, len(vals)-half)
		for _, idx := range perm[half:] {
			truthVals = append(truthVals, vals[idx])
		}
		truth := stats.Mean(truthVals)
		if truth == 0 {
			continue
		}
		cm := stats.Mean(client)
		out = append(out, ValidationError{
			Zone:         z,
			TruthMean:    truth,
			ClientMean:   cm,
			ClientCount:  n,
			RelativeErr:  math.Abs(cm-truth) / truth,
			TruthSamples: len(truthVals),
		})
	}
	return out
}

// ErrorCDF extracts the relative errors from a validation run as a CDF —
// the Fig. 8 series ("less than 4% error for more than 70% of zones").
func ErrorCDF(errs []ValidationError) *stats.CDF {
	vals := make([]float64, len(errs))
	for i, e := range errs {
		vals[i] = e.RelativeErr
	}
	return stats.NewCDF(vals)
}
