package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// Federation scales WiScape beyond one metro area — the §6 goal of
// "extending the study to multiple cities, state, or across the whole
// country". Each region keeps its own controller (its own zone grid
// origin, epochs and records); the federation routes samples and queries by
// location and aggregates the operator-facing streams.
type Federation struct {
	regions []federatedRegion
}

type federatedRegion struct {
	name string
	box  geo.BoundingBox
	ctrl *Controller
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{}
}

// AddRegion attaches a controller responsible for box. Regions are matched
// in insertion order, so register more specific regions first. It returns
// an error if name is empty or already registered.
func (f *Federation) AddRegion(name string, box geo.BoundingBox, ctrl *Controller) error {
	if name == "" {
		return fmt.Errorf("core: federation region needs a name")
	}
	for _, r := range f.regions {
		if r.name == name {
			return fmt.Errorf("core: federation region %q already registered", name)
		}
	}
	f.regions = append(f.regions, federatedRegion{name: name, box: box, ctrl: ctrl})
	return nil
}

// Regions lists the registered region names in insertion order.
func (f *Federation) Regions() []string {
	out := make([]string, len(f.regions))
	for i, r := range f.regions {
		out[i] = r.name
	}
	return out
}

// RegionFor returns the region responsible for p, or ok=false if no region
// covers it.
func (f *Federation) RegionFor(p geo.Point) (name string, ctrl *Controller, ok bool) {
	for _, r := range f.regions {
		if r.box.Contains(p) {
			return r.name, r.ctrl, true
		}
	}
	return "", nil, false
}

// Ingest routes a sample to its region's controller. Samples outside every
// region are dropped and reported via the returned flag (callers may count
// them; a nation-wide deployment would spin up new regions from such
// stragglers).
func (f *Federation) Ingest(s trace.Sample) (routed bool) {
	_, ctrl, ok := f.RegionFor(s.Loc)
	if !ok {
		return false
	}
	ctrl.Ingest(s)
	return true
}

// EstimateAt answers a location-keyed query from the owning region.
func (f *Federation) EstimateAt(p geo.Point, net radio.NetworkID, m trace.Metric) (Record, bool) {
	_, ctrl, ok := f.RegionFor(p)
	if !ok {
		return Record{}, false
	}
	return ctrl.EstimateAt(p, net, m)
}

// RegionAlert tags an alert with its region of origin.
type RegionAlert struct {
	Region string
	Alert
}

// Alerts drains every region's alert queue, ordered by time.
func (f *Federation) Alerts() []RegionAlert {
	var out []RegionAlert
	for _, r := range f.regions {
		for _, a := range r.ctrl.Alerts() {
			out = append(out, RegionAlert{Region: r.name, Alert: a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Snapshot captures every region's state for persistence.
func (f *Federation) Snapshot(at time.Time) map[string]Snapshot {
	out := make(map[string]Snapshot, len(f.regions))
	for _, r := range f.regions {
		out[r.name] = r.ctrl.Snapshot(at)
	}
	return out
}

// NewMadisonNJFederation wires up the paper's two study areas: the Madison
// city box and the New Brunswick/Princeton area, each with the default
// configuration.
func NewMadisonNJFederation(cfg Config) *Federation {
	f := NewFederation()
	// Errors impossible: fresh federation, distinct non-empty names.
	_ = f.AddRegion("madison", geo.Madison(), NewController(cfg, geo.Madison().Center()))
	njBox := geo.BoundingBox{MinLat: 40.30, MaxLat: 40.55, MinLon: -74.75, MaxLon: -74.35}
	_ = f.AddRegion("new-jersey", njBox, NewController(cfg, geo.NJStaticSites()[0]))
	return f
}
