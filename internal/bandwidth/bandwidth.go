// Package bandwidth implements the three bandwidth-estimation strategies
// the paper compares in §3.3.1:
//
//   - the plain UDP download WiScape adopts,
//   - a Pathload-style self-loading-train estimator (Jain & Dovrolis), and
//   - a WBest-style packet-pair + rate-probe estimator (Li, Claypool &
//     Kinicki).
//
// The paper found both tools under-estimate cellular capacity badly
// (Pathload up to 40%, WBest up to 70%) because their delay-trend and
// dispersion signatures are swamped by cellular scheduler jitter, and
// therefore fell back to simple UDP downloads. These implementations run
// the real algorithms over the simulated channel, so the bias emerges from
// the same mechanism rather than being hard-coded.
package bandwidth

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Estimator measures the downlink available bandwidth at a location/time.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// EstimateKbps returns the estimated available bandwidth.
	EstimateKbps(loc geo.Point, at time.Time) float64
}

// UDPDownloadEstimator is WiScape's chosen primitive: a back-to-back burst
// of Packets packets whose goodput is the estimate.
type UDPDownloadEstimator struct {
	Prober    *simnet.Prober
	Packets   int // default 100
	SizeBytes int // default 1200
}

// Name implements Estimator.
func (e *UDPDownloadEstimator) Name() string { return "udp-download" }

// EstimateKbps implements Estimator.
func (e *UDPDownloadEstimator) EstimateKbps(loc geo.Point, at time.Time) float64 {
	packets := e.Packets
	if packets <= 0 {
		packets = 100
	}
	size := e.SizeBytes
	if size <= 0 {
		size = 1200
	}
	return e.Prober.UDPDownload(loc, at, packets, size).ThroughputKbps()
}

// Scheduler burst model: the cellular downlink scheduler (EV-DO
// proportional fair) serves each user in bursts. During an OFF period the
// probe queue builds regardless of the probe rate, producing short
// monotone delay ramps that mimic Pathload's congestion signature even well
// below capacity, and inflating WBest's packet-pair dispersion. This is the
// mechanism [22] (Koutsonikolas & Hu, "On the feasibility of bandwidth
// estimation in 1x EV-DO networks") identifies for both tools' failures.
const (
	schedOffProb   = 0.10 // probability a given packet slot starts an OFF period
	schedOffMinPkt = 2    // OFF period length in packet slots
	schedOffMaxPkt = 7
)

// probeTrain simulates sending a constant-rate train of n packets at
// rateKbps through the channel described by c, returning the one-way delays
// (ms). When the probe rate exceeds the available capacity the queue builds
// and delays trend upward — the signature Pathload looks for. Scheduler
// bursts and jitter are superimposed exactly as a cellular downlink would.
func probeTrain(r *rng.Rand, c radio.Conditions, rateKbps float64, n, sizeBytes int) []float64 {
	jitterSigma := c.JitterMs / 0.669
	sendGapMs := float64(sizeBytes*8) / rateKbps
	serviceGapMs := float64(sizeBytes*8) / c.CapacityKbps

	delays := make([]float64, 0, n)
	queueMs := 0.0
	offRemaining := 0
	for i := 0; i < n; i++ {
		if offRemaining == 0 && r.Bool(schedOffProb) {
			offRemaining = schedOffMinPkt + r.Intn(schedOffMaxPkt-schedOffMinPkt+1)
		}
		if offRemaining > 0 {
			// Scheduler away: nothing is served during this arrival slot,
			// so queueing delay grows by the whole slot.
			queueMs += sendGapMs
			offRemaining--
		} else {
			// Scheduler serving: queue drains at the capacity rate.
			queueMs += serviceGapMs - sendGapMs
		}
		if queueMs < 0 {
			queueMs = 0
		}
		if r.Bool(c.LossProb) {
			continue
		}
		d := c.RTTMs/2 + queueMs + math.Abs(jitterSigma*r.NormFloat64())
		delays = append(delays, d)
	}
	return delays
}

// trendIncreasing applies Pathload's trend tests: PCT (pairwise comparison
// — the fraction of consecutive increases) and PDT (pairwise difference —
// net rise relative to total movement). Either firing marks an increasing
// one-way-delay trend, as in the original tool.
func trendIncreasing(delays []float64) bool {
	if len(delays) < 10 {
		return false
	}
	inc := 0
	totalMove := 0.0
	for i := 1; i < len(delays); i++ {
		if delays[i] > delays[i-1] {
			inc++
		}
		d := delays[i] - delays[i-1]
		if d < 0 {
			d = -d
		}
		totalMove += d
	}
	pct := float64(inc)/float64(len(delays)-1) > 0.66
	pdt := totalMove > 0 && (delays[len(delays)-1]-delays[0])/totalMove > 0.55
	return pct || pdt
}

// PathloadEstimator binary-searches for the largest rate whose probe trains
// show no increasing delay trend.
type PathloadEstimator struct {
	Field *radio.Field
	Seed  uint64

	TrainLen   int     // packets per train, default 100
	SizeBytes  int     // default 1200
	Iterations int     // binary search depth, default 12
	MaxKbps    float64 // search ceiling, default the technology max
}

// Name implements Estimator.
func (e *PathloadEstimator) Name() string { return "pathload" }

// EstimateKbps implements Estimator.
func (e *PathloadEstimator) EstimateKbps(loc geo.Point, at time.Time) float64 {
	trainLen := e.TrainLen
	if trainLen <= 0 {
		trainLen = 100
	}
	size := e.SizeBytes
	if size <= 0 {
		size = 1200
	}
	iters := e.Iterations
	if iters <= 0 {
		iters = 12
	}
	c := e.Field.At(loc, at)
	hi := e.MaxKbps
	if hi <= 0 {
		hi = e.Field.Params().MaxKbps
	}
	lo := 0.0
	r := rng.New(rng.Hash64(e.Seed, rng.HashString("pathload"), uint64(at.UnixNano())))
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		// Pathload sends a fleet of trains per rate and requires a
		// consistent verdict; we use 3 trains with majority vote.
		increasing := 0
		for k := 0; k < 3; k++ {
			if trendIncreasing(probeTrain(r, c, mid, trainLen, size)) {
				increasing++
			}
		}
		if increasing >= 2 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// WBestEstimator runs WBest's two phases: packet-pair dispersion for
// effective capacity, then a rate probe at that capacity to derive available
// bandwidth as AB = C (2 - D/T) where D is the measured dispersion rate of
// the probe and T the capacity estimate.
type WBestEstimator struct {
	Field *radio.Field
	Seed  uint64

	Pairs     int // packet pairs in phase 1, default 30
	TrainLen  int // packets in phase 2, default 30
	SizeBytes int // default 1200
}

// Name implements Estimator.
func (e *WBestEstimator) Name() string { return "wbest" }

// EstimateKbps implements Estimator.
func (e *WBestEstimator) EstimateKbps(loc geo.Point, at time.Time) float64 {
	pairs := e.Pairs
	if pairs <= 0 {
		pairs = 30
	}
	trainLen := e.TrainLen
	if trainLen <= 0 {
		trainLen = 30
	}
	size := e.SizeBytes
	if size <= 0 {
		size = 1200
	}
	c := e.Field.At(loc, at)
	r := rng.New(rng.Hash64(e.Seed, rng.HashString("wbest"), uint64(at.UnixNano())))
	jitterSigma := c.JitterMs / 0.669
	serviceGapMs := float64(size*8) / c.CapacityKbps

	// Phase 1: packet pairs sent back to back; dispersion = service time +
	// jitter. The cellular scheduler's jitter inflates the dispersion and
	// deflates the capacity estimate — WBest's documented failure mode on
	// EV-DO (paper §3.3.1 and [22]).
	var dispersions []float64
	for i := 0; i < pairs; i++ {
		if r.Bool(c.LossProb) || r.Bool(c.LossProb) {
			continue // pair lost
		}
		d := serviceGapMs + math.Abs(jitterSigma*r.NormFloat64())
		dispersions = append(dispersions, d)
	}
	if len(dispersions) == 0 {
		return 0
	}
	capacityEst := float64(size*8) / stats.Median(dispersions)

	// Phase 2: a train at the estimated capacity; the average dispersion
	// rate of the train gives AB = C (2 - C/D_rate)... following the WBest
	// formula AB = C (2 - D/C) with D the dispersion rate achieved.
	delays := probeTrain(r, c, capacityEst, trainLen, size)
	if len(delays) < 2 {
		return 0
	}
	// Dispersion rate: packet size over mean consecutive arrival spacing.
	spacingSum := 0.0
	for i := 1; i < len(delays); i++ {
		// Arrival spacing = send spacing + delay delta; send spacing at
		// capacityEst rate.
		s := float64(size*8)/capacityEst + (delays[i] - delays[i-1])
		if s < 0.01 {
			s = 0.01
		}
		spacingSum += s
	}
	dispersionRate := float64(size*8) / (spacingSum / float64(len(delays)-1))
	ab := capacityEst * (2 - capacityEst/dispersionRate)
	if ab < 0 {
		ab = 0
	}
	if ab > capacityEst {
		ab = capacityEst
	}
	return ab
}

// RelativeError evaluates an estimator against ground truth as the paper
// does: E = (X - G)/G where G is the mean of long UDP downloads
// (10 iterations of 100-second transfers approximated by large bursts).
func RelativeError(e Estimator, p *simnet.Prober, loc geo.Point, at time.Time) float64 {
	truth := GroundTruthKbps(p, loc, at)
	if truth == 0 {
		return 0
	}
	return (e.EstimateKbps(loc, at) - truth) / truth
}

// GroundTruthKbps measures the reference UDP throughput: the mean of 10
// long downloads (§3.3.1's ground-truth procedure).
func GroundTruthKbps(p *simnet.Prober, loc geo.Point, at time.Time) float64 {
	var vals []float64
	for i := 0; i < 10; i++ {
		fr := p.UDPDownload(loc, at, 1000, 1200)
		vals = append(vals, fr.ThroughputKbps())
	}
	return stats.Mean(vals)
}
