package bandwidth

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/stats"
)

const seed = 4044

func setup() (*radio.Field, *simnet.Prober, geo.Point, time.Time) {
	f := radio.NewPresetField(radio.NetB, radio.RegionWI, seed, geo.Madison().Center())
	p := simnet.NewProber(f, seed)
	// Pick an untroubled spot.
	loc := geo.Madison().Center()
	for i := 0; i < 200; i++ {
		q := geo.Madison().Center().Offset(float64(i*37%360), float64(i)*130)
		if !f.Troubled(q) {
			loc = q
			break
		}
	}
	return f, p, loc, radio.Epoch.Add(20 * 24 * time.Hour)
}

func TestUDPDownloadEstimatorAccurate(t *testing.T) {
	f, p, loc, at := setup()
	truth := f.At(loc, at).CapacityKbps
	e := &UDPDownloadEstimator{Prober: p}
	var errs []float64
	for i := 0; i < 60; i++ {
		est := e.EstimateKbps(loc, at)
		errs = append(errs, (est-truth)/truth)
	}
	mean := stats.Mean(errs)
	// The UDP download is nearly unbiased (that is why the paper uses it).
	if mean > 0.05 || mean < -0.05 {
		t.Fatalf("UDP download bias %.3f; should be ~0", mean)
	}
}

func TestPathloadUnderEstimates(t *testing.T) {
	f, p, loc, at := setup()
	e := &PathloadEstimator{Field: f, Seed: seed}
	truth := GroundTruthKbps(p, loc, at)
	var errs []float64
	for i := 0; i < 25; i++ {
		est := e.EstimateKbps(loc, at.Add(time.Duration(i)*time.Second))
		errs = append(errs, (est-truth)/truth)
	}
	mean := stats.Mean(errs)
	// Paper: Pathload under-estimates by up to 40%. The bias must be
	// clearly negative but not absurd.
	if mean >= -0.02 {
		t.Fatalf("Pathload bias %.3f; expected clear under-estimation", mean)
	}
	if mean < -0.70 {
		t.Fatalf("Pathload bias %.3f; too extreme (paper: up to -40%%)", mean)
	}
}

func TestWBestUnderEstimatesMore(t *testing.T) {
	f, p, loc, at := setup()
	pl := &PathloadEstimator{Field: f, Seed: seed}
	wb := &WBestEstimator{Field: f, Seed: seed}
	truth := GroundTruthKbps(p, loc, at)
	var plErrs, wbErrs []float64
	for i := 0; i < 25; i++ {
		ts := at.Add(time.Duration(i) * time.Second)
		plErrs = append(plErrs, (pl.EstimateKbps(loc, ts)-truth)/truth)
		wbErrs = append(wbErrs, (wb.EstimateKbps(loc, ts)-truth)/truth)
	}
	plMean := stats.Mean(plErrs)
	wbMean := stats.Mean(wbErrs)
	if wbMean >= -0.05 {
		t.Fatalf("WBest bias %.3f; expected clear under-estimation", wbMean)
	}
	// Paper ordering: WBest worse than Pathload (up to -70% vs -40%).
	if wbMean > plMean {
		t.Fatalf("WBest (%.3f) should under-estimate more than Pathload (%.3f)", wbMean, plMean)
	}
	if wbMean < -0.9 {
		t.Fatalf("WBest bias %.3f; too extreme", wbMean)
	}
}

func TestEstimatorNames(t *testing.T) {
	f, p, _, _ := setup()
	for _, e := range []Estimator{
		&UDPDownloadEstimator{Prober: p},
		&PathloadEstimator{Field: f, Seed: seed},
		&WBestEstimator{Field: f, Seed: seed},
	} {
		if e.Name() == "" {
			t.Fatal("estimator must have a name")
		}
	}
}

func TestRelativeError(t *testing.T) {
	_, p, loc, at := setup()
	e := &UDPDownloadEstimator{Prober: p}
	re := RelativeError(e, p, loc, at)
	if re < -0.3 || re > 0.3 {
		t.Fatalf("relative error %.3f implausible for the UDP estimator", re)
	}
}

func TestTrendIncreasing(t *testing.T) {
	inc := make([]float64, 50)
	for i := range inc {
		inc[i] = float64(i)
	}
	if !trendIncreasing(inc) {
		t.Fatal("monotone increase not detected")
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 100 + float64(i%2)
	}
	if trendIncreasing(flat) {
		t.Fatal("oscillation misread as increasing")
	}
	if trendIncreasing(inc[:5]) {
		t.Fatal("short trains must not be classified")
	}
}

func TestGroundTruthStable(t *testing.T) {
	f, p, loc, at := setup()
	g1 := GroundTruthKbps(p, loc, at)
	truth := f.At(loc, at).CapacityKbps
	if g1 < truth*0.9 || g1 > truth*1.1 {
		t.Fatalf("ground truth %v vs field %v", g1, truth)
	}
}

func BenchmarkPathload(b *testing.B) {
	f, _, loc, at := setup()
	e := &PathloadEstimator{Field: f, Seed: seed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.EstimateKbps(loc, at)
	}
}

func BenchmarkWBest(b *testing.B) {
	f, _, loc, at := setup()
	e := &WBestEstimator{Field: f, Seed: seed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.EstimateKbps(loc, at)
	}
}
