package simnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
)

const seed = 2022

func testField() *radio.Field {
	return radio.NewPresetField(radio.NetB, radio.RegionWI, seed, geo.Madison().Center())
}

func cleanSpot(f *radio.Field) geo.Point {
	// Find an untroubled point so tests of nominal behaviour are stable.
	c := geo.Madison().Center()
	for i := 0; i < 200; i++ {
		p := c.Offset(float64(i*37%360), float64(i)*120)
		if !f.Troubled(p) {
			return p
		}
	}
	return c
}

var at = radio.Epoch.Add(30 * 24 * time.Hour)

func TestUDPDownloadBasics(t *testing.T) {
	f := testField()
	p := NewProber(f, 1)
	loc := cleanSpot(f)
	fr := p.UDPDownload(loc, at, 100, 1200)
	if fr.Proto != "udp" || fr.Network != radio.NetB {
		t.Fatalf("flow labels wrong: %v %v", fr.Proto, fr.Network)
	}
	if len(fr.Packets) != 100 {
		t.Fatalf("packet count %d", len(fr.Packets))
	}
	for i, pk := range fr.Packets {
		if pk.Seq != i {
			t.Fatalf("sequence broken at %d", i)
		}
		if pk.SizeBytes != 1200 {
			t.Fatalf("size %d", pk.SizeBytes)
		}
		if !pk.Lost && pk.Recv.Before(pk.Sent) {
			t.Fatal("packet received before it was sent")
		}
		if pk.Lost && !pk.Recv.IsZero() {
			t.Fatal("lost packet has a receive timestamp")
		}
	}
}

func TestUDPThroughputTracksGroundTruth(t *testing.T) {
	f := testField()
	p := NewProber(f, 2)
	loc := cleanSpot(f)
	truth := f.At(loc, at).CapacityKbps
	var samples []float64
	for i := 0; i < 200; i++ {
		fr := p.UDPDownload(loc, at, 100, 1200)
		samples = append(samples, fr.ThroughputKbps())
	}
	m := stats.Mean(samples)
	if math.Abs(m-truth)/truth > 0.05 {
		t.Fatalf("mean measured %v vs truth %v", m, truth)
	}
	// Per-sample noise should be present but bounded (FastSigmaRel ~ 7%).
	rel := stats.RelStdDev(samples)
	if rel < 0.01 || rel > 0.25 {
		t.Fatalf("sample relative deviation %.3f outside expectations", rel)
	}
}

func TestUDPJitterMatchesField(t *testing.T) {
	f := testField()
	p := NewProber(f, 3)
	loc := cleanSpot(f)
	want := f.At(loc, at).JitterMs
	var samples []float64
	for i := 0; i < 200; i++ {
		fr := p.UDPDownload(loc, at, 100, 1200)
		samples = append(samples, fr.JitterMs())
	}
	m := stats.Mean(samples)
	if math.Abs(m-want)/want > 0.25 {
		t.Fatalf("measured jitter %v vs field %v", m, want)
	}
}

func TestUDPLossRate(t *testing.T) {
	f := testField()
	p := NewProber(f, 4)
	loc := cleanSpot(f)
	want := f.At(loc, at).LossProb
	total, lost := 0, 0
	for i := 0; i < 300; i++ {
		fr := p.UDPDownload(loc, at, 100, 1200)
		total += len(fr.Packets)
		lost += len(fr.Packets) - fr.Received()
	}
	got := float64(lost) / float64(total)
	if got > want*3+0.002 {
		t.Fatalf("loss rate %v vs field %v", got, want)
	}
}

func TestTCPSlowerAndNoisierThanUDP(t *testing.T) {
	f := testField()
	p := NewProber(f, 5)
	loc := cleanSpot(f)
	// Compare at matched transfer sizes (~120 KB) so the fading-averaging
	// durations are comparable.
	var udp, tcp []float64
	for i := 0; i < 150; i++ {
		udp = append(udp, p.UDPDownload(loc, at, 100, 1200).ThroughputKbps())
		tcp = append(tcp, p.TCPDownload(loc, at, 120<<10).ThroughputKbps())
	}
	if stats.Mean(tcp) >= stats.Mean(udp) {
		t.Fatalf("TCP mean %v should be below UDP mean %v", stats.Mean(tcp), stats.Mean(udp))
	}
	if stats.RelStdDev(tcp) <= stats.RelStdDev(udp)*0.8 {
		t.Fatalf("TCP rel dev %v should not be well below UDP %v (Table 4)",
			stats.RelStdDev(tcp), stats.RelStdDev(udp))
	}
}

func TestTCPShortFlowsUnderachieve(t *testing.T) {
	f := testField()
	p := NewProber(f, 6)
	loc := cleanSpot(f)
	var short, long []float64
	for i := 0; i < 100; i++ {
		short = append(short, p.TCPDownload(loc, at, 20*1024).ThroughputKbps())
		long = append(long, p.TCPDownload(loc, at, 2<<20).ThroughputKbps())
	}
	if stats.Mean(short) >= stats.Mean(long)*0.9 {
		t.Fatalf("20 KB flows (%v) should pay the slow-start tax vs 2 MB flows (%v)",
			stats.Mean(short), stats.Mean(long))
	}
}

func TestTCPDeliversAllBytes(t *testing.T) {
	f := testField()
	p := NewProber(f, 7)
	loc := cleanSpot(f)
	const total = 100000
	fr := p.TCPDownload(loc, at, total)
	got := 0
	for _, pk := range fr.Packets {
		if pk.Lost {
			t.Fatal("TCP must not surface lost packets (they are retransmitted)")
		}
		got += pk.SizeBytes
	}
	if got != total {
		t.Fatalf("delivered %d bytes, want %d", got, total)
	}
}

func TestPingTrain(t *testing.T) {
	f := testField()
	p := NewProber(f, 8)
	loc := cleanSpot(f)
	want := f.At(loc, at).RTTMs
	pings := p.PingTrain(loc, at, 500, 5*time.Second)
	if len(pings) != 500 {
		t.Fatalf("got %d pings", len(pings))
	}
	mean, failed := MeanRTT(pings)
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("mean RTT %v vs field %v", mean, want)
	}
	if failed > 25 {
		t.Fatalf("%d/500 pings failed in a clean zone", failed)
	}
	for i, pr := range pings {
		if pr.Seq != i {
			t.Fatal("ping sequence broken")
		}
		if !pr.Failed && pr.RTTMs <= 0 {
			t.Fatal("successful ping with non-positive RTT")
		}
	}
}

func TestPingFailuresInTroubledZone(t *testing.T) {
	f := testField()
	p := NewProber(f, 9)
	// Find a troubled point.
	var spot *geo.Point
	c := geo.Madison().Center()
	for i := 0; i < 2000 && spot == nil; i++ {
		q := c.Offset(float64(i*17%360), float64(i)*35)
		if f.Troubled(q) {
			spot = &q
		}
	}
	if spot == nil {
		t.Skip("no troubled zone found near center")
	}
	pings := p.PingTrain(*spot, at, 500, 5*time.Second)
	_, failed := MeanRTT(pings)
	if failed < 10 {
		t.Fatalf("troubled zone failed only %d/500 pings", failed)
	}
}

func TestHTTPGetScalesWithSize(t *testing.T) {
	f := testField()
	p := NewProber(f, 10)
	loc := cleanSpot(f)
	small := p.HTTPGet(loc, at, 2800)
	big := p.HTTPGet(loc, at, 3200000)
	if small <= 0 || big <= 0 {
		t.Fatal("non-positive fetch times")
	}
	if big < 10*small {
		t.Fatalf("3.2 MB (%v) should take far longer than 2.8 KB (%v)", big, small)
	}
	// A 3.2 MB page at ~800 Kbps should take tens of seconds.
	if big < 10*time.Second || big > 300*time.Second {
		t.Fatalf("3.2 MB fetch took %v; implausible for ~1 Mbps links", big)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := testField()
	loc := cleanSpot(f)
	a := NewProber(f, 42).UDPDownload(loc, at, 50, 1200)
	b := NewProber(f, 42).UDPDownload(loc, at, 50, 1200)
	if a.ThroughputKbps() != b.ThroughputKbps() {
		t.Fatal("same seed should reproduce the same measurement")
	}
	c := NewProber(f, 43).UDPDownload(loc, at, 50, 1200)
	if a.ThroughputKbps() == c.ThroughputKbps() {
		t.Fatal("different seeds should differ")
	}
}

func TestFlowResultEdgeCases(t *testing.T) {
	var fr FlowResult
	if fr.ThroughputKbps() != 0 || fr.JitterMs() != 0 || fr.LossRate() != 0 || fr.Duration() != 0 {
		t.Fatal("empty flow should yield zero metrics")
	}
	// All-lost flow.
	fr.Packets = []PacketRecord{{Seq: 0, Lost: true}, {Seq: 1, Lost: true}}
	if fr.ThroughputKbps() != 0 || fr.LossRate() != 1 {
		t.Fatal("all-lost flow metrics wrong")
	}
}

func TestMeanRTTEdge(t *testing.T) {
	m, failed := MeanRTT([]PingResult{{Failed: true}, {Failed: true}})
	if m != 0 || failed != 2 {
		t.Fatalf("all-failed train: mean %v failed %d", m, failed)
	}
}

func TestStadiumLatencyVisibleInPings(t *testing.T) {
	f := testField()
	game := radio.FootballGame(radio.Epoch.Add(40*24*time.Hour + 13*time.Hour))
	f.AddEvent(game)
	p := NewProber(f, 11)
	before, _ := MeanRTT(p.PingTrain(geo.CampRandallStadium, game.Start.Add(-2*time.Hour), 100, time.Second))
	during, _ := MeanRTT(p.PingTrain(geo.CampRandallStadium, game.Start.Add(time.Hour), 100, time.Second))
	if during < 3*before {
		t.Fatalf("game RTT %v should be ~3.7x baseline %v", during, before)
	}
}

func BenchmarkUDPDownload100(b *testing.B) {
	f := testField()
	p := NewProber(f, 12)
	loc := geo.Madison().Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.UDPDownload(loc, at, 100, 1200)
	}
}

func BenchmarkTCPDownload1MB(b *testing.B) {
	f := testField()
	p := NewProber(f, 13)
	loc := geo.Madison().Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.TCPDownload(loc, at, 1<<20)
	}
}

func TestUDPUpload(t *testing.T) {
	f := testField()
	p := NewProber(f, 30)
	loc := cleanSpot(f)
	truth := f.At(loc, at).UplinkKbps
	if truth <= 0 {
		t.Fatal("field reports no uplink capacity")
	}
	var vals []float64
	for i := 0; i < 120; i++ {
		fr := p.UDPUpload(loc, at, 100, 1200)
		if fr.Proto != "udp-up" {
			t.Fatalf("proto %q", fr.Proto)
		}
		vals = append(vals, fr.ThroughputKbps())
	}
	m := stats.Mean(vals)
	if m < truth*0.93 || m > truth*1.07 {
		t.Fatalf("uplink mean %v vs truth %v", m, truth)
	}
	// Uplink must be well below downlink (EV-DO asymmetry).
	if m >= f.At(loc, at).CapacityKbps {
		t.Fatal("uplink should not exceed downlink")
	}
}
