// Package simnet simulates the measurement primitives WiScape clients
// execute: UDP burst downloads, TCP downloads, UDP ping trains and HTTP page
// fetches, all running over a radio.Field ground truth.
//
// Each primitive produces per-packet records with exactly the fields the
// paper logs (Table 1: packet sequence number, receive timestamp, GPS
// coordinates), and the metric extractors (throughput, IPDV jitter per RFC
// 3393, loss rate, RTT) operate only on those records — the same pipeline a
// real deployment would run, with only the channel synthetic.
package simnet

import (
	"math"
	"time"

	"repro/internal/device"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Prober executes measurement primitives for one client against one
// network's ground truth. A Prober is not safe for concurrent use; create
// one per client goroutine.
type Prober struct {
	field   *radio.Field
	profile device.Profile
	r       *rng.Rand
}

// NewProber returns a prober over field whose random stream is derived from
// seed, using the reference device class (laptop/USB modem, the paper's
// collection hardware). Distinct seeds give independent measurement noise.
func NewProber(field *radio.Field, seed uint64) *Prober {
	return NewProberForDevice(field, device.Reference(), seed)
}

// NewProberForDevice returns a prober whose measurements pass through a
// device profile — what a phone (constrained antenna) or an
// external-antenna SBC would observe on the same channel (§3.3).
func NewProberForDevice(field *radio.Field, profile device.Profile, seed uint64) *Prober {
	return &Prober{
		field:   field,
		profile: profile,
		r:       rng.New(rng.Hash64(seed, rng.HashString("prober"), rng.HashString(string(profile.Class)))),
	}
}

// Field returns the ground-truth field this prober measures.
func (p *Prober) Field() *radio.Field { return p.field }

// Device returns the prober's device profile.
func (p *Prober) Device() device.Profile { return p.profile }

// conditions returns the channel as experienced by this prober's device
// class.
func (p *Prober) conditions(loc geo.Point, at time.Time) radio.Conditions {
	return p.profile.Apply(p.field.At(loc, at))
}

// PacketRecord is one downlink packet as seen by the client (paper Table 1
// "Params logged").
type PacketRecord struct {
	Seq       int       // sequence number assigned by the sender
	Sent      time.Time // transmit timestamp
	Recv      time.Time // receive timestamp (zero when lost)
	SizeBytes int
	Lost      bool
}

// FlowResult is the outcome of one measurement flow at one location.
type FlowResult struct {
	Proto    string // "udp" or "tcp"
	Network  radio.NetworkID
	Location geo.Point
	Start    time.Time
	Packets  []PacketRecord
}

// Received returns the number of packets that arrived.
func (fr FlowResult) Received() int {
	n := 0
	for _, p := range fr.Packets {
		if !p.Lost {
			n++
		}
	}
	return n
}

// LossRate returns the fraction of packets lost.
func (fr FlowResult) LossRate() float64 {
	if len(fr.Packets) == 0 {
		return 0
	}
	return float64(len(fr.Packets)-fr.Received()) / float64(len(fr.Packets))
}

// ThroughputKbps returns the goodput computed from receive timestamps, the
// estimator WiScape adopts after finding Pathload and WBest inaccurate
// (§3.3.1). It returns 0 when fewer than two packets arrived.
func (fr FlowResult) ThroughputKbps() float64 {
	var first, last time.Time
	bits := 0
	n := 0
	for _, p := range fr.Packets {
		if p.Lost {
			continue
		}
		if n == 0 || p.Recv.Before(first) {
			first = p.Recv
		}
		if n == 0 || p.Recv.After(last) {
			last = p.Recv
		}
		// The first packet's bytes don't count toward goodput over the
		// observation window, but including them approximates the paper's
		// simple size/duration calculation; with ~100 packets the
		// difference is negligible.
		bits += p.SizeBytes * 8
		n++
	}
	if n < 2 {
		return 0
	}
	dur := last.Sub(first).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(bits) / 1000 / dur
}

// JitterMs returns the application-level jitter as the mean absolute
// Instantaneous Packet Delay Variation (IPDV, RFC 3393) between consecutive
// received packets, in milliseconds.
func (fr FlowResult) JitterMs() float64 {
	var prevDelay float64
	havePrev := false
	sum := 0.0
	n := 0
	for _, p := range fr.Packets {
		if p.Lost {
			continue
		}
		delay := p.Recv.Sub(p.Sent).Seconds() * 1000
		if havePrev {
			sum += math.Abs(delay - prevDelay)
			n++
		}
		prevDelay = delay
		havePrev = true
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Duration returns the span from flow start to the last received packet.
func (fr FlowResult) Duration() time.Duration {
	var last time.Time
	for _, p := range fr.Packets {
		if !p.Lost && p.Recv.After(last) {
			last = p.Recv
		}
	}
	if last.IsZero() {
		return 0
	}
	return last.Sub(fr.Start)
}

// ipdvSigmaDivisor converts the field's target mean-|IPDV| into the sigma of
// the per-packet delay noise. Delay noise is a half-normal |N(0, sigma^2)|
// (queueing only adds delay); for two iid half-normals the expected absolute
// difference is ~0.669 sigma, so sigma = target / 0.669.
const ipdvSigmaDivisor = 0.669

// fadeCoherenceSec is the coherence time of the fast fading process: flows
// longer than this average the fading down, so long transfers (the paper's
// 1 MB downloads) give tighter throughput samples than short bursts.
const fadeCoherenceSec = 1.5

// flowRate draws the per-flow achievable rate around the ground-truth mean.
// The fading deviation shrinks with the flow's expected duration:
// sigma_eff = sigma * sqrt(tau / (tau + T)).
func (p *Prober) flowRate(meanKbps, sigmaRel float64, totalBits float64) float64 {
	durSec := totalBits / (meanKbps * 1000)
	sigmaEff := sigmaRel * math.Sqrt(fadeCoherenceSec/(fadeCoherenceSec+durSec))
	rate := meanKbps * (1 + sigmaEff*p.r.NormFloat64())
	if min := meanKbps * 0.05; rate < min {
		rate = min
	}
	return rate
}

// UDPDownload simulates a back-to-back UDP packet burst (the paper's chosen
// bandwidth estimation primitive): packets packets of sizeBytes each sent at
// the achievable rate.
func (p *Prober) UDPDownload(loc geo.Point, at time.Time, packets, sizeBytes int) FlowResult {
	c := p.conditions(loc, at)
	rate := p.flowRate(c.CapacityKbps, c.FastSigmaRel, float64(packets*sizeBytes*8))
	jitterSigma := c.JitterMs / ipdvSigmaDivisor / 1000 // seconds

	fr := FlowResult{Proto: "udp", Network: c.Network, Location: loc, Start: at}
	fr.Packets = make([]PacketRecord, 0, packets)

	oneWay := c.RTTMs / 2 / 1000 // seconds
	sendGap := float64(sizeBytes*8) / (rate * 1000)
	sent := 0.0 // seconds since start
	for i := 0; i < packets; i++ {
		rec := PacketRecord{Seq: i, SizeBytes: sizeBytes, Sent: at.Add(secs(sent))}
		if p.r.Bool(c.LossProb) {
			rec.Lost = true
		} else {
			delay := oneWay + math.Abs(jitterSigma*p.r.NormFloat64())
			rec.Recv = at.Add(secs(sent + delay))
		}
		fr.Packets = append(fr.Packets, rec)
		sent += sendGap
	}
	return fr
}

// UDPUpload simulates a back-to-back UDP packet burst in the uplink
// direction. The paper collected uplink data too; campaigns can request it
// with trace.MetricUplinkKbps.
func (p *Prober) UDPUpload(loc geo.Point, at time.Time, packets, sizeBytes int) FlowResult {
	c := p.conditions(loc, at)
	rate := p.flowRate(c.UplinkKbps, c.FastSigmaRel*1.1, float64(packets*sizeBytes*8))
	jitterSigma := c.JitterMs / ipdvSigmaDivisor / 1000

	fr := FlowResult{Proto: "udp-up", Network: c.Network, Location: loc, Start: at}
	fr.Packets = make([]PacketRecord, 0, packets)

	oneWay := c.RTTMs / 2 / 1000
	sendGap := float64(sizeBytes*8) / (rate * 1000)
	sent := 0.0
	for i := 0; i < packets; i++ {
		rec := PacketRecord{Seq: i, SizeBytes: sizeBytes, Sent: at.Add(secs(sent))}
		// Uplink loss is slightly higher (power-constrained handsets).
		if p.r.Bool(c.LossProb * 1.5) {
			rec.Lost = true
		} else {
			delay := oneWay + math.Abs(jitterSigma*p.r.NormFloat64())
			rec.Recv = at.Add(secs(sent + delay))
		}
		fr.Packets = append(fr.Packets, rec)
		sent += sendGap
	}
	return fr
}

// tcpSegmentBytes is the simulated TCP segment size.
const tcpSegmentBytes = 1460

// TCPDownload simulates downloading totalBytes over a fresh TCP
// connection: slow-start ramp, steady state at the achievable TCP rate, and
// retransmission stalls on loss. Short flows therefore underachieve the
// steady-state rate, and TCP samples are noisier than UDP samples, matching
// Table 4.
func (p *Prober) TCPDownload(loc geo.Point, at time.Time, totalBytes int) FlowResult {
	return p.tcpTransfer(loc, at, totalBytes, false)
}

// TCPTransferWarm simulates downloading totalBytes over an established
// (persistent HTTP/1.1) connection: no handshake, and the congestion window
// resumes from half the achievable rate.
func (p *Prober) TCPTransferWarm(loc geo.Point, at time.Time, totalBytes int) FlowResult {
	return p.tcpTransfer(loc, at, totalBytes, true)
}

func (p *Prober) tcpTransfer(loc geo.Point, at time.Time, totalBytes int, warm bool) FlowResult {
	c := p.conditions(loc, at)
	rate := p.flowRate(c.TCPKbps, c.FastSigmaRel*1.3, float64(totalBytes*8))
	jitterSigma := c.JitterMs / ipdvSigmaDivisor / 1000
	rttSec := c.RTTMs / 1000

	fr := FlowResult{Proto: "tcp", Network: c.Network, Location: loc, Start: at}
	nPackets := (totalBytes + tcpSegmentBytes - 1) / tcpSegmentBytes
	fr.Packets = make([]PacketRecord, 0, nPackets)

	// Slow start: the sending rate doubles every RTT from 1/16 of the
	// achievable rate; rampFactor(t) = min(1, 2^(t/RTT)/16). Warm
	// connections skip the handshake (half an RTT for the request) and
	// resume the window at half rate.
	clock := rttSec * 1.5 // connection establishment (SYN, SYN-ACK, ACK + request)
	oneWay := rttSec / 2
	rampStart := clock
	if warm {
		clock = rttSec * 0.5 // request only
		rampStart = clock - 3*rttSec
	}
	for i := 0; i < nPackets; i++ {
		size := tcpSegmentBytes
		if i == nPackets-1 && totalBytes%tcpSegmentBytes != 0 {
			size = totalBytes % tcpSegmentBytes
		}
		ramp := math.Min(1, math.Pow(2, (clock-rampStart)/rttSec)/16)
		gap := float64(size*8) / (rate * ramp * 1000)
		clock += gap

		rec := PacketRecord{Seq: i, SizeBytes: size, Sent: at.Add(secs(clock))}
		if p.r.Bool(c.LossProb) {
			// TCP recovers the segment; model the retransmission as an extra
			// RTT stall plus a congestion backoff that re-enters ramping.
			clock += rttSec
			rampStart = clock - 3*rttSec // resume at 1/2 rate, not from scratch
			rec.Sent = at.Add(secs(clock))
		}
		delay := oneWay + math.Abs(jitterSigma*p.r.NormFloat64())
		rec.Recv = at.Add(secs(clock + delay))
		fr.Packets = append(fr.Packets, rec)
	}
	return fr
}

// PingResult is one UDP ping probe.
type PingResult struct {
	Seq    int
	Sent   time.Time
	RTTMs  float64
	Failed bool
}

// PingTrain simulates count UDP pings spaced by interval (the WiRover
// dataset collects ~12 pings a minute).
func (p *Prober) PingTrain(loc geo.Point, at time.Time, count int, interval time.Duration) []PingResult {
	out := make([]PingResult, 0, count)
	for i := 0; i < count; i++ {
		t := at.Add(time.Duration(i) * interval)
		c := p.conditions(loc, t)
		pr := PingResult{Seq: i, Sent: t}
		if p.r.Bool(c.PingFailProb) || p.r.Bool(c.LossProb) {
			pr.Failed = true
		} else {
			jitterSigma := c.JitterMs / ipdvSigmaDivisor
			pr.RTTMs = c.RTTMs*(1+0.04*p.r.NormFloat64()) + math.Abs(jitterSigma*p.r.NormFloat64())
			if pr.RTTMs < 1 {
				pr.RTTMs = 1
			}
		}
		out = append(out, pr)
	}
	return out
}

// Ping sends a single probe.
func (p *Prober) Ping(loc geo.Point, at time.Time) PingResult {
	return p.PingTrain(loc, at, 1, 0)[0]
}

// HTTPGet simulates fetching one HTTP object of sizeBytes over a fresh
// connection and returns the total completion time (connection setup +
// transfer).
func (p *Prober) HTTPGet(loc geo.Point, at time.Time, sizeBytes int) time.Duration {
	return p.httpFetch(loc, at, sizeBytes, false)
}

// HTTPGetPersistent simulates fetching one HTTP object over an established
// persistent connection — how the multi-sim client and the MAR gateway
// issue their back-to-back requests (§4.2.2).
func (p *Prober) HTTPGetPersistent(loc geo.Point, at time.Time, sizeBytes int) time.Duration {
	return p.httpFetch(loc, at, sizeBytes, true)
}

func (p *Prober) httpFetch(loc geo.Point, at time.Time, sizeBytes int, warm bool) time.Duration {
	fr := p.tcpTransfer(loc, at, sizeBytes, warm)
	d := fr.Duration()
	if d <= 0 {
		// Degenerate single-packet page: fall back to 2 RTTs.
		c := p.conditions(loc, at)
		d = time.Duration(2*c.RTTMs) * time.Millisecond
	}
	return d
}

// MeanRTT returns the mean RTT over successful pings and the count of
// failures.
func MeanRTT(pings []PingResult) (meanMs float64, failed int) {
	sum, n := 0.0, 0
	for _, pr := range pings {
		if pr.Failed {
			failed++
			continue
		}
		sum += pr.RTTMs
		n++
	}
	if n == 0 {
		return 0, failed
	}
	return sum / float64(n), failed
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
