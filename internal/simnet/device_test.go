package simnet

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/stats"
)

func TestPhoneProberSeesDegradedChannel(t *testing.T) {
	f := testField()
	loc := cleanSpot(f)
	laptop := NewProber(f, 21)
	phone := NewProberForDevice(f, device.Phone(), 21)

	var lv, pv []float64
	for i := 0; i < 100; i++ {
		lv = append(lv, laptop.UDPDownload(loc, at, 100, 1200).ThroughputKbps())
		pv = append(pv, phone.UDPDownload(loc, at, 100, 1200).ThroughputKbps())
	}
	lm, pm := stats.Mean(lv), stats.Mean(pv)
	ratio := pm / lm
	if ratio < 0.65 || ratio > 0.80 {
		t.Fatalf("phone/laptop throughput ratio %.3f, want ~0.72", ratio)
	}

	lp, _ := MeanRTT(laptop.PingTrain(loc, at, 200, time.Second))
	pp, _ := MeanRTT(phone.PingTrain(loc, at, 200, time.Second))
	if pp <= lp {
		t.Fatalf("phone RTT %.1f should exceed laptop %.1f", pp, lp)
	}
}

func TestDeviceProberDeterministicPerClass(t *testing.T) {
	f := testField()
	loc := cleanSpot(f)
	a := NewProberForDevice(f, device.Phone(), 5).UDPDownload(loc, at, 50, 1200)
	b := NewProberForDevice(f, device.Phone(), 5).UDPDownload(loc, at, 50, 1200)
	if a.ThroughputKbps() != b.ThroughputKbps() {
		t.Fatal("same class+seed must reproduce")
	}
	c := NewProberForDevice(f, device.SBC(), 5).UDPDownload(loc, at, 50, 1200)
	if a.ThroughputKbps() == c.ThroughputKbps() {
		t.Fatal("different classes must have independent noise streams")
	}
}

func TestDefaultProberIsReference(t *testing.T) {
	f := testField()
	if NewProber(f, 1).Device().Class != device.ClassLaptop {
		t.Fatal("NewProber must use the reference class")
	}
}

func TestWarmTransferSkipsHandshake(t *testing.T) {
	f := testField()
	p := NewProber(f, 22)
	loc := cleanSpot(f)
	var cold, warm time.Duration
	for i := 0; i < 50; i++ {
		cold += p.HTTPGet(loc, at, 20<<10)
		warm += p.HTTPGetPersistent(loc, at, 20<<10)
	}
	if warm >= cold {
		t.Fatalf("warm fetches (%v) must be faster than cold (%v)", warm, cold)
	}
	// The saving should be at least the handshake RTT plus most of the
	// slow-start tax — a factor of ~1.5+ for a 20 KB page.
	if float64(cold)/float64(warm) < 1.3 {
		t.Fatalf("warm speedup only %.2fx", float64(cold)/float64(warm))
	}
}

func TestWarmTransferSameBytes(t *testing.T) {
	f := testField()
	p := NewProber(f, 23)
	loc := cleanSpot(f)
	fr := p.TCPTransferWarm(loc, at, 100000)
	got := 0
	for _, pk := range fr.Packets {
		got += pk.SizeBytes
	}
	if got != 100000 {
		t.Fatalf("warm transfer delivered %d bytes", got)
	}
	ratio := fr.ThroughputKbps() / f.At(loc, at).TCPKbps
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("warm goodput ratio %.2f implausible", ratio)
	}
}

func TestPhoneFlowsStillMeasureConsistently(t *testing.T) {
	// The measurement pipeline must be class-agnostic: a phone's samples
	// track the phone's (degraded) ground truth just as tightly.
	f := testField()
	loc := cleanSpot(f)
	phone := NewProberForDevice(f, device.Phone(), 24)
	truth := device.Phone().Apply(f.At(loc, at)).CapacityKbps
	var vals []float64
	for i := 0; i < 150; i++ {
		vals = append(vals, phone.UDPDownload(loc, at, 100, 1200).ThroughputKbps())
	}
	m := stats.Mean(vals)
	if m < truth*0.95 || m > truth*1.05 {
		t.Fatalf("phone samples mean %.0f vs phone truth %.0f", m, truth)
	}
}
