package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/apps/mar"
	"repro/internal/apps/multisim"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/webload"
)

// Fig10Stadium regenerates Figure 10: network latency in 10-minute bins
// around the football stadium on a game day — the operator-alerting use
// case.
func Fig10Stadium(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig10", Title: "Football-game latency surge at Camp Randall (10-minute bins)"}

	// A Saturday game at 13:00, day 19 of the study.
	gameStart := radio.Epoch.Add(19*24*time.Hour + 13*time.Hour)
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB, radio.NetC}, radio.RegionWI, o.Seed, geo.Madison().Center())
	env.AddEvent(radio.FootballGame(gameStart))

	// A static monitor near the stadium pings every 5 seconds from four
	// hours before to four hours after the game.
	windowStart := gameStart.Add(-4 * time.Hour)
	for _, net := range []radio.NetworkID{radio.NetB, radio.NetC} {
		p := simnet.NewProber(env.Field(net), o.Seed)
		var vals []stats.TimedValue
		var failures int
		for at := windowStart; at.Before(gameStart.Add(4 * time.Hour)); at = at.Add(5 * time.Second) {
			pr := p.Ping(geo.CampRandallStadium, at)
			if pr.Failed {
				failures++
				continue
			}
			vals = append(vals, stats.TimedValue{T: at, V: pr.RTTMs})
		}
		bins := stats.BinByDuration(vals, 10*time.Minute)
		var before, during stats.Accum
		for _, b := range bins {
			mid := b.Start.Add(5 * time.Minute)
			if mid.After(gameStart) && mid.Before(gameStart.Add(3*time.Hour)) {
				during.Add(b.Accum.Mean())
			} else if mid.Before(gameStart) {
				before.Add(b.Accum.Mean())
			}
		}
		factor := during.Mean() / before.Mean()
		paper := "113 ms -> 418 ms (~3.7x) on NetB for ~3 hours"
		if net == radio.NetC {
			paper = "similar surge on the second network"
		}
		r.AddRow(string(net)+" game surge", paper,
			fmt.Sprintf("%.0f ms -> %.0f ms (%.1fx)", before.Mean(), during.Mean(), factor))
		for i, b := range bins {
			if i%6 == 0 { // print hourly
				r.AddSeries("%s t=%s bin mean RTT %.0f ms", net, b.Start.Format("15:04"), b.Accum.Mean())
			}
		}
	}
	r.AddRow("detectability", "persistent for ~3h: infrequent epoch monitoring catches it",
		"2-sigma change detection fires (see controller alert test)")
	return r
}

// Fig11Dominance regenerates Figure 11: the fraction of zones persistently
// dominated by one network in RTT latency, across zone radii.
func Fig11Dominance(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig11", Title: "Persistent latency dominance vs zone radius (WiRover, NetB vs NetC)"}
	ds := wirover(o)

	for _, radius := range []float64{50, 100, 200, 300, 500, 1000} {
		grid := geo.GridForZoneRadius(geo.Madison().Center(), radius)
		byZoneB := trace.ByZone(ds.ByMetric(radio.NetB, trace.MetricRTTMs), grid)
		byZoneC := trace.ByZone(ds.ByMetric(radio.NetC, trace.MetricRTTMs), grid)
		total, dominated := 0, 0
		minSamples := 50
		for z, bs := range byZoneB {
			cs := byZoneC[z]
			if len(bs) < minSamples || len(cs) < minSamples {
				continue
			}
			total++
			byNet := map[radio.NetworkID][]float64{
				radio.NetB: trace.Values(bs),
				radio.NetC: trace.Values(cs),
			}
			if _, ok := core.DominantNetwork(byNet, true, minSamples); ok {
				dominated++
			}
		}
		if total == 0 {
			continue
		}
		frac := float64(dominated) / float64(total)
		r.AddSeries("radius %4.0fm: %3d zones, %3.0f%% dominated", radius, total, frac*100)
		if radius == 300 {
			r.AddRow("dominance at ~300 m", "~85% of zones have a persistently dominant network",
				fmt.Sprintf("%.0f%% of %d zones", frac*100, total))
		}
	}
	r.AddRow("radius dependence", "dominance holds across radii 50-1000 m", "see series")
	return r
}

// roadZones bins the short-segment dataset into the ~45 zones along the
// 20 km stretch, ordered by distance along the route (the Fig. 12/13 x
// axis).
func roadZones(ds *trace.Dataset, metric trace.Metric) (ordered []geo.ZoneID, byNetZone map[radio.NetworkID]map[geo.ZoneID][]float64) {
	grid := geo.GridForZoneRadius(geo.Madison().Center(), 250)
	byNetZone = make(map[radio.NetworkID]map[geo.ZoneID][]float64)
	for _, net := range radio.AllNetworks {
		byNetZone[net] = make(map[geo.ZoneID][]float64)
		for z, ss := range trace.ByZone(ds.ByMetric(net, metric), grid) {
			byNetZone[net][z] = trace.Values(ss)
		}
	}
	// Order zones along the route.
	seg := geo.ShortSegment()
	type zd struct {
		z geo.ZoneID
		d float64
	}
	seen := map[geo.ZoneID]float64{}
	length := seg.Length()
	for d := 0.0; d <= length; d += 100 {
		z := grid.Zone(seg.At(d))
		if _, ok := seen[z]; !ok {
			seen[z] = d
		}
	}
	var zds []zd
	for z, d := range seen {
		zds = append(zds, zd{z, d})
	}
	sort.Slice(zds, func(i, j int) bool { return zds[i].d < zds[j].d })
	for _, x := range zds {
		ordered = append(ordered, x.z)
	}
	return ordered, byNetZone
}

// Fig12RoadDominance regenerates Figure 12: the share of road-stretch zones
// persistently dominated by each network in TCP throughput.
func Fig12RoadDominance(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig12", Title: "Dominant network per zone on the 20 km road stretch (TCP)"}
	ds := shortSegment(o)
	ordered, byNetZone := roadZones(ds, trace.MetricTCPKbps)

	counts := map[radio.NetworkID]int{}
	none := 0
	total := 0
	minSamples := 40
	var rowLine string
	for _, z := range ordered {
		byNet := map[radio.NetworkID][]float64{}
		enough := true
		for _, net := range radio.AllNetworks {
			vals := byNetZone[net][z]
			if len(vals) < minSamples {
				enough = false
				break
			}
			byNet[net] = vals
		}
		if !enough {
			continue
		}
		total++
		if net, ok := core.DominantNetwork(byNet, false, minSamples); ok {
			counts[net]++
			rowLine += string(net[3]) // A/B/C
		} else {
			none++
			rowLine += "."
		}
	}
	if total == 0 {
		r.AddRow("zones", "45 zones along the stretch", "no zones with enough samples — increase Scale")
		return r
	}
	domFrac := float64(total-none) / float64(total)
	r.AddRow("zones with a dominant network", "52% (NetA 26%, NetB 13%, NetC 13%, none 48%)",
		fmt.Sprintf("%.0f%% of %d zones (NetA %.0f%%, NetB %.0f%%, NetC %.0f%%, none %.0f%%)",
			domFrac*100, total,
			100*float64(counts[radio.NetA])/float64(total),
			100*float64(counts[radio.NetB])/float64(total),
			100*float64(counts[radio.NetC])/float64(total),
			100*float64(none)/float64(total)))
	r.AddSeries("zone map along route (A/B/C=dominant, .=none): %s", rowLine)
	return r
}

// Fig13RoadThroughput regenerates Figure 13: per-zone mean TCP throughput
// of the three networks along the road stretch.
func Fig13RoadThroughput(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig13", Title: "Per-zone TCP throughput along the road stretch"}
	ds := shortSegment(o)
	ordered, byNetZone := roadZones(ds, trace.MetricTCPKbps)

	bestGap := 0.0
	bestZone := -1
	for i, z := range ordered {
		means := map[radio.NetworkID]float64{}
		ok := true
		for _, net := range radio.AllNetworks {
			vals := byNetZone[net][z]
			if len(vals) < 20 {
				ok = false
				break
			}
			means[net] = stats.Mean(vals)
		}
		if !ok {
			continue
		}
		r.AddSeries("zone %2d: NetA %5.0f  NetB %5.0f  NetC %5.0f Kbps", i,
			means[radio.NetA], means[radio.NetB], means[radio.NetC])
		// Track the biggest best-vs-second-best gap.
		var vals []float64
		for _, m := range means {
			vals = append(vals, m)
		}
		sort.Float64s(vals)
		gap := vals[2]/vals[1] - 1
		if gap > bestGap {
			bestGap = gap
			bestZone = i
		}
	}
	r.AddRow("zones plotted", "~45 zones across 20 km", fmt.Sprintf("%d zones", len(r.Series)))
	r.AddRow("largest best-vs-next gap", "42% at zone 20; ~30% at zone 4",
		fmt.Sprintf("%.0f%% at zone %d", bestGap*100, bestZone))
	return r
}

// Fig14Applications regenerates Figure 14: multi-sim (a) and MAR (b)
// latency on the four popular sites, WiScape-informed vs baselines.
func Fig14Applications(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig14", Title: "Multi-sim and MAR on popular sites (WiScape vs baselines)"}

	ctrl, env := trainedController(o)
	sites := webload.PopularSites(o.Seed)

	// Multi-sim (Fig. 14a): each site is fetched repeatedly along the
	// drive (the paper repeats the downloads over multiple runs of the
	// segment), per-site totals summed.
	fetchRepeats := 8
	fetchAll := func(sel multisim.Selector, site webload.Site) time.Duration {
		track := mobility.NewCarLoop(geo.ShortSegment(), o.Seed, 21)
		ps := mar.NewProbers(env, radio.AllNetworks, o.Seed+1)
		var total time.Duration
		for k := 0; k < fetchRepeats; k++ {
			at := campaignStart.Add(time.Duration(k) * 3 * time.Minute)
			total += multisim.FetchSite(sel, ps, track, at, site, 0).Total
		}
		return total
	}
	var wsBeatBestCount int
	for _, site := range sites {
		var best, worst time.Duration
		for _, n := range radio.AllNetworks {
			total := fetchAll(multisim.Fixed{Net: n}, site)
			if best == 0 || total < best {
				best = total
			}
			if total > worst {
				worst = total
			}
		}
		ws := fetchAll(&multisim.WiScape{
			Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks, Fallback: radio.NetB,
		}, site)
		if ws <= best {
			wsBeatBestCount++
		}
		r.AddSeries("multi-sim %-9s: WiScape %6.1fs  best-fixed %6.1fs  worst-fixed %6.1fs",
			site.Name, ws.Seconds(), best.Seconds(), worst.Seconds())
	}
	r.AddRow("multi-sim vs fixed carriers", "13-32% better than fixed (max on amazon, min on microsoft)",
		fmt.Sprintf("WiScape <= best fixed on %d/%d sites; see series", wsBeatBestCount, len(sites)))

	// MAR (Fig. 14b): WiScape-informed striping vs round robin.
	var improvements []float64
	for _, site := range sites {
		track := mobility.NewCarLoop(geo.ShortSegment(), o.Seed, 22)
		rr := mar.FetchSite(&mar.RoundRobin{Networks: radio.AllNetworks},
			mar.NewProbers(env, radio.AllNetworks, o.Seed+2), track, campaignStart, site, 50*time.Millisecond)
		ws := mar.FetchSite(&mar.WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
			mar.NewProbers(env, radio.AllNetworks, o.Seed+2), track, campaignStart, site, 50*time.Millisecond)
		imp := 1 - float64(ws.Makespan)/float64(rr.Makespan)
		improvements = append(improvements, imp)
		r.AddSeries("MAR %-9s: WiScape %6.1fs  RR %6.1fs  (%.0f%% better)",
			site.Name, ws.Makespan.Seconds(), rr.Makespan.Seconds(), imp*100)
	}
	r.AddRow("MAR WiScape vs RR", "~37% better across the sites",
		fmt.Sprintf("mean improvement %.0f%%", stats.Mean(improvements)*100))
	return r
}

// trainedController builds a controller trained on the short-segment
// campaign — the WiScape data the applications consume.
func trainedController(o Options) (*core.Controller, *radio.Environment) {
	ds := shortSegment(o)
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	ctrl.IngestDataset(ds)
	// Rebuild the environment exactly as the campaign did (same seed).
	env := radio.NewEnvironment(radio.AllNetworks, radio.RegionWI, o.Seed, geo.Madison().Center())
	return ctrl, env
}
