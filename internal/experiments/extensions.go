package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/agent"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The experiments in this file go beyond the paper's evaluation into the
// extensions its §3.3 and §6 explicitly defer: device heterogeneity with
// normalization, and the client-side overhead budget that motivates the
// whole design.

// Ext01DeviceHeterogeneity demonstrates the §3.3 future-work item: phone
// and laptop measurements of the same zone do not compose directly (their
// NKLD never converges), but after learning per-class normalization factors
// from a co-located calibration, the mixed estimate matches ground truth.
func Ext01DeviceHeterogeneity(o Options) Report {
	o = o.fill()
	r := Report{ID: "ext01", Title: "Device heterogeneity: phones vs laptops, raw and normalized (extension of §3.3)"}

	field := radio.NewPresetField(radio.NetB, radio.RegionWI, o.Seed, geo.Madison().Center())
	site := representativeSites(o, radio.RegionWI, 1)[0]
	at := campaignStart.Add(24 * time.Hour)
	truth := field.At(site, at).CapacityKbps

	laptop := simnet.NewProber(field, o.Seed+1)
	phone := simnet.NewProberForDevice(field, device.Phone(), o.Seed+2)

	const n = 400
	var laptopVals, phoneVals []float64
	for i := 0; i < n; i++ {
		ts := at.Add(time.Duration(i) * 30 * time.Second)
		laptopVals = append(laptopVals, laptop.UDPDownload(site, ts, 100, 1200).ThroughputKbps())
		phoneVals = append(phoneVals, phone.UDPDownload(site, ts, 100, 1200).ThroughputKbps())
	}

	rawNKLD := stats.NKLDFromSamples(phoneVals, laptopVals, stats.DefaultNKLDBins)
	r.AddRow("raw cross-class NKLD", "composition across classes 'may not always work well' (§3.3)",
		fmt.Sprintf("%.2f with %d samples each (threshold %.1f — never composes)", rawNKLD, n, stats.NKLDSimilarityThreshold))

	// Calibration: learn the factor from the first half of the data
	// (co-located laptop + phone), then normalize the second half.
	norm := device.NewNormalizer()
	norm.Learn(device.ClassPhone,
		map[string][]float64{string(trace.MetricUDPKbps): laptopVals[:n/2]},
		map[string][]float64{string(trace.MetricUDPKbps): phoneVals[:n/2]})
	var normalized []float64
	for _, v := range phoneVals[n/2:] {
		normalized = append(normalized, norm.Normalize(v, device.ClassPhone, string(trace.MetricUDPKbps)))
	}
	normNKLD := stats.NKLDFromSamples(normalized, laptopVals[n/2:], stats.DefaultNKLDBins)
	r.AddRow("normalized cross-class NKLD", "normalization 'a significant effort unto itself' — proposed, not built",
		fmt.Sprintf("%.2f after learning factor %.2f (composes: %v)",
			normNKLD, norm.Factor(device.ClassPhone, string(trace.MetricUDPKbps)), normNKLD <= 3*stats.NKLDSimilarityThreshold))

	// End-to-end: a mixed fleet through the controller.
	mixedErr := func(normalize bool) float64 {
		ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
		if normalize {
			ctrl.SetNormalizer(norm)
		}
		for i := 0; i < n/2; i++ {
			ts := at.Add(time.Duration(n+i) * 30 * time.Second)
			s := trace.Sample{Time: ts, Loc: site, Network: radio.NetB, Metric: trace.MetricUDPKbps, ClientID: "mix"}
			if i%2 == 0 {
				s.Value = phone.UDPDownload(site, ts, 100, 1200).ThroughputKbps()
				s.Device = string(device.ClassPhone)
			} else {
				s.Value = laptop.UDPDownload(site, ts, 100, 1200).ThroughputKbps()
				s.Device = string(device.ClassLaptop)
			}
			ctrl.Ingest(s)
		}
		rec, ok := ctrl.EstimateAt(site, radio.NetB, trace.MetricUDPKbps)
		if !ok {
			return 1
		}
		e := (rec.MeanValue - truth) / truth
		if e < 0 {
			e = -e
		}
		return e
	}
	rawErr := mixedErr(false)
	normErr := mixedErr(true)
	r.AddRow("mixed-fleet estimate error", "per-class monitoring sidesteps the problem",
		fmt.Sprintf("raw %.1f%% -> normalized %.1f%% vs ground truth", rawErr*100, normErr*100))
	return r
}

// Ext02ClientOverhead quantifies the design's headline property — "a low
// overhead on the clients" — by running the real coordinator/agent protocol
// and comparing each client's measurement budget under WiScape scheduling
// against a continuously measuring client.
func Ext02ClientOverhead(o Options) Report {
	o = o.fill()
	r := Report{ID: "ext02", Title: "Client overhead: WiScape scheduling vs continuous measurement"}

	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, o.Seed, geo.Madison().Center())
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	srv, err := coordinator.Serve(ctrl, "127.0.0.1:0", coordinator.Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: 5 * time.Minute,
		Seed:         o.Seed,
	})
	if err != nil {
		r.AddRow("setup", "", fmt.Sprintf("coordinator failed: %v", err))
		return r
	}
	defer srv.Close()

	// Thirty clients share one zone for a simulated day, reporting every
	// five minutes — the dense-urban case the paper argues makes the
	// measurement volume easy to obtain: the ~100-samples-per-epoch budget
	// is spread across the whole crowd.
	site := representativeSites(o, radio.RegionWI, 1)[0]
	day := 24 * time.Hour
	var totalBytes, totalSamples int64
	var totalEnergy float64
	clients := 30
	for i := 0; i < clients; i++ {
		a := &agent.Agent{
			ID:          fmt.Sprintf("overhead-%d", i),
			DeviceClass: string(device.ClassLaptop),
			Track:       mobility.Static{P: site},
			Env:         env,
			Networks:    []radio.NetworkID{radio.NetB},
			Seed:        o.Seed + uint64(i),
			Grid:        ctrl.Grid(),
		}
		st, err := a.Run(srv.Addr(), campaignStart, day, 5*time.Minute)
		if err != nil {
			r.AddRow("agent", "", fmt.Sprintf("failed: %v", err))
			return r
		}
		totalBytes += st.MeasurementBytes
		totalSamples += int64(st.SamplesSent)
		totalEnergy += st.EnergyJoules()
	}

	// The continuous baseline measures every minute around the clock.
	continuousBytes := int64(24*60) * 100 * 1200 // one 100x1200B burst per minute
	perClientMB := float64(totalBytes) / float64(clients) / (1 << 20)
	r.AddRow("per-client measurement traffic", "low overhead: ~100 samples per zone-epoch shared across clients",
		fmt.Sprintf("%.1f MB/day with WiScape vs %.1f MB/day measuring continuously (%.0fx less)",
			perClientMB, float64(continuousBytes)/(1<<20), float64(continuousBytes)/(float64(totalBytes)/float64(clients))))
	r.AddRow("per-client energy", "battery drain is the binding constraint on client assistance",
		fmt.Sprintf("%.0f J/day (~%.2f%% of a 20 kJ phone battery)",
			totalEnergy/float64(clients), totalEnergy/float64(clients)/20000*100))
	r.AddRow("fleet yield", "enough samples for sound zone estimates",
		fmt.Sprintf("%d samples/day into the zone (budget %d per epoch)", totalSamples, ctrl.Config().DefaultSamplesPerEpoch))
	// The estimate must still be sound.
	rec, ok := ctrl.EstimateAt(site, radio.NetB, trace.MetricUDPKbps)
	if ok {
		truth := env.Field(radio.NetB).At(site, campaignStart.Add(12*time.Hour)).CapacityKbps
		r.AddRow("estimate quality", "within a few percent of ground truth",
			fmt.Sprintf("%.0f Kbps vs %.0f Kbps truth (%.1f%% off)", rec.MeanValue, truth,
				100*math.Abs(rec.MeanValue-truth)/truth))
	}
	return r
}
