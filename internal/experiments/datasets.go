package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Campaign simulation is the expensive part of the experiment suite, and
// several figures share the same dataset (Figs. 1, 4, 8 and 9 all analyse
// the Standalone data, as in the paper). Datasets are memoized per
// (kind, seed, scale) so the full report reuses them.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*trace.Dataset{}
)

func cached(key string, build func() *trace.Dataset) *trace.Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d
	}
	d := build()
	dsCache[key] = d
	return d
}

// standaloneTCP returns the Standalone TCP-throughput dataset: five transit
// buses, NetB, 1-minute cadence, 1 MiB downloads (Fig. 1).
func standaloneTCP(o Options) *trace.Dataset {
	key := fmt.Sprintf("standalone-tcp/%d/%g", o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.StandaloneCampaign(o.Seed, campaignStart, o.scaleDur(12*24*time.Hour, 3*24*time.Hour))
		c.Interval = time.Minute
		c.Metrics = []trace.Metric{trace.MetricTCPKbps}
		// Fig. 1's throughputs come from 1 MB downloads; the long transfer
		// averages the fast fading, which is what keeps per-zone relative
		// deviations in the few-percent range of Fig. 4.
		c.TCPBytes = 1 << 20
		return c.Run()
	})
}

// standalonePing returns the Standalone ping dataset used for the Fig. 9
// trouble-spot analysis: the same buses, 30-second ICMP-style pings over a
// longer horizon (failure runs are counted in days).
func standalonePing(o Options) *trace.Dataset {
	key := fmt.Sprintf("standalone-ping/%d/%g", o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.StandaloneCampaign(o.Seed, campaignStart, o.scaleDur(24*24*time.Hour, 8*24*time.Hour))
		c.Interval = 30 * time.Second
		c.Metrics = []trace.Metric{trace.MetricRTTMs}
		return c.Run()
	})
}

// wirover returns the dual-network WiRover latency dataset (Figs. 2, 11).
func wirover(o Options) *trace.Dataset {
	key := fmt.Sprintf("wirover/%d/%g", o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.WiRoverCampaign(o.Seed, campaignStart, o.scaleDur(2*24*time.Hour, 12*time.Hour))
		return c.Run()
	})
}

// shortSegment returns the three-network road-stretch dataset
// (Figs. 12-13).
func shortSegment(o Options) *trace.Dataset {
	key := fmt.Sprintf("short-segment/%d/%g", o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.ShortSegmentCampaign(o.Seed, campaignStart, o.scaleDur(5*24*time.Hour, 24*time.Hour))
		c.Interval = time.Minute
		c.TCPBytes = 1 << 20 // 1 MB downloads, as in the Wide-area collection
		return c.Run()
	})
}
