package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/apps/mar"
	"repro/internal/apps/multisim"
	"repro/internal/bandwidth"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/webload"
)

// Table3StaticProximate regenerates Table 3: mean (std) of each metric from
// the Static ground truth vs the client-sourced Proximate collection, per
// network and region — the closeness that makes client sourcing viable.
func Table3StaticProximate(o Options) Report {
	o = o.fill()
	r := Report{ID: "table3", Title: "Static vs Proximate closeness: mean (std) per network"}

	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		static := spotDataset(o, kind)
		proximate := proximateDataset(o, kind)
		label := regionLabel(kind)
		var worstGap float64
		for _, net := range regionNets(kind) {
			sVals := trace.Values(static.ByMetric(net, trace.MetricUDPKbps))
			// Compare site 0's zone only: the static node and the orbiting
			// car must share a zone for the closeness claim to make sense.
			pAll := proximate.ByMetric(net, trace.MetricUDPKbps)
			var pVals []float64
			for _, s := range pAll {
				if len(pAll) > 0 && s.ClientID == pAll[0].ClientID {
					pVals = append(pVals, s.Value)
				}
			}
			if len(sVals) == 0 || len(pVals) == 0 {
				continue
			}
			sm, pm := stats.Mean(sVals), stats.Mean(pVals)
			gap := math.Abs(sm-pm) / sm
			if gap > worstGap {
				worstGap = gap
			}
			r.AddSeries("%s %s UDP: static %5.0f (%4.0f)  proximate %5.0f (%4.0f)  gap %4.1f%%",
				label, net, sm, stats.StdDev(sVals), pm, stats.StdDev(pVals), gap*100)

			sj := trace.Values(static.ByMetric(net, trace.MetricJitterMs))
			pjAll := proximate.ByMetric(net, trace.MetricJitterMs)
			var pj []float64
			for _, s := range pjAll {
				if s.ClientID == pjAll[0].ClientID {
					pj = append(pj, s.Value)
				}
			}
			if len(sj) > 0 && len(pj) > 0 {
				r.AddSeries("%s %s jitter: static %4.1f ms  proximate %4.1f ms", label, net,
					stats.Mean(sj), stats.Mean(pj))
			}
		}
		r.AddRow(label+" static-vs-proximate gap", "within ~1-6% (e.g. NetB-WI 876 vs 855 Kbps, <1%)",
			fmt.Sprintf("worst UDP mean gap %.1f%%", worstGap*100))
	}
	r.AddRow("conclusion", "client-sourced samples approximate ground truth at the same zone", "gaps above")
	return r
}

// Table4Timescales regenerates Table 4: the standard deviation of 30-minute
// vs 10-second binned data — fine timescales are far noisier, ruling out
// tiny infrequent measurements.
func Table4Timescales(o Options) Report {
	o = o.fill()
	r := Report{ID: "table4", Title: "Std dev at 30-minute vs 10-second bins (Spot)"}

	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		label := regionLabel(kind)
		key := fmt.Sprintf("spot-fine/%d/%d/%g", kind, o.Seed, o.Scale)
		ds := cached(key, func() *trace.Dataset {
			c := trace.SpotCampaign(kind, o.Seed, campaignStart, o.scaleDur(18*time.Hour, 6*time.Hour), 10*time.Second)
			c.Clients = c.Clients[:1]
			c.TCPBytes = 64 << 10
			c.UDPPackets = 50
			return c.Run()
		})
		var ratios []float64
		for _, net := range regionNets(kind) {
			for _, metric := range []trace.Metric{trace.MetricTCPKbps, trace.MetricUDPKbps, trace.MetricJitterMs} {
				timed := trace.Timed(ds.ByMetric(net, metric))
				long := stats.BinMeans(timed, 30*time.Minute)
				short := stats.BinMeans(timed, 10*time.Second)
				ls, ss := stats.StdDev(long), stats.StdDev(short)
				if ls > 0 && metric != trace.MetricJitterMs {
					ratios = append(ratios, ss/ls)
				}
				r.AddSeries("%s %s %-9s: sigma(30min)=%7.1f  sigma(10s)=%7.1f  ratio %.1fx",
					label, net, metric, ls, ss, ss/math.Max(ls, 1e-9))
			}
		}
		r.AddRow(label+" short vs long sigma", "short-term sigma ~3x the long-term sigma (e.g. 377 vs 211, 408 vs 126)",
			fmt.Sprintf("mean throughput ratio %.1fx", stats.Mean(ratios)))
	}
	r.AddRow("conclusion", "high short-timescale variation rules out tiny infrequent probes", "ratios above")
	return r
}

// Table5PacketCounts regenerates Table 5: the number of back-to-back
// measurement packets needed to estimate throughput within 97% of the
// expected value, per network and region.
func Table5PacketCounts(o Options) Report {
	o = o.fill()
	r := Report{ID: "table5", Title: "Packets needed for a 97%-accurate throughput estimate"}

	paper := map[string]string{
		"WI/NetA": "UDP 90 / TCP 60",
		"WI/NetB": "UDP 60 / TCP 40",
		"WI/NetC": "UDP 40 / TCP 40",
		"NJ/NetB": "UDP 120 / TCP 120",
		"NJ/NetC": "UDP 70 / TCP 50",
	}
	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		label := regionLabel(kind)
		origin := geo.Madison().Center()
		site := geo.MadisonStaticSites()[0]
		if kind == radio.RegionNJ {
			origin = geo.NJStaticSites()[0]
			site = geo.NJStaticSites()[0]
		}
		for _, net := range regionNets(kind) {
			field := radio.NewPresetField(net, kind, o.Seed, origin)
			p := simnet.NewProber(field, o.Seed)
			at := campaignStart.Add(36 * time.Hour)
			udpN := packetsFor97(p, site, at, false)
			tcpN := packetsFor97(p, site, at, true)
			r.AddRow(fmt.Sprintf("%s %s", label, net), paper[label+"/"+string(net)],
				fmt.Sprintf("UDP %d / TCP %d", udpN, tcpN))
		}
	}
	r.AddRow("shape", "NetA needs more than NetB/NetC; NJ needs more than WI", "see rows")
	return r
}

// packetsFor97 finds the smallest packet count whose goodput estimate lands
// within 3% of the expected value, following the paper's procedure
// (§3.3.1): the ground truth is what a long concurrent transfer achieves at
// the same instant (the paper measured estimate and truth simultaneously,
// so both share the channel's slow state); 100 repetitions per count, mean
// absolute error <= 3%.
func packetsFor97(p *simnet.Prober, loc geo.Point, at time.Time, tcp bool) int {
	const reps = 100
	const fullLen = 800
	// Precompute full flows; the n-packet estimate is the prefix goodput of
	// the same flow, so only packet-scale noise separates it from truth.
	type flow struct {
		truth    float64
		prefixes map[int]float64
	}
	counts := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120, 150, 200, 250, 300, 400}
	flows := make([]flow, 0, reps)
	for i := 0; i < reps; i++ {
		var fr simnet.FlowResult
		if tcp {
			fr = p.TCPDownload(loc, at, fullLen*1460)
		} else {
			fr = p.UDPDownload(loc, at, fullLen, 1200)
		}
		// TCP windows start past slow start (the client measures the steady
		// portion); UDP bursts are steady from the first packet.
		skip := 0
		if tcp {
			skip = 100
		}
		steady := fr.Packets[skip:]
		fl := flow{prefixes: make(map[int]float64, len(counts))}
		for _, n := range counts {
			if n >= len(steady) {
				continue
			}
			// Estimate from the first n packets; the concurrent ground truth
			// is the remainder of the same transfer (disjoint windows of the
			// same channel state, as in the paper's concurrent measurement).
			fl.prefixes[n] = robustGoodputKbps(steady[:n])
		}
		fl.truth = robustGoodputKbps(steady[len(steady)/2:])
		flows = append(flows, fl)
	}
	for _, n := range counts {
		var errSum float64
		m := 0
		for _, fl := range flows {
			est, ok := fl.prefixes[n]
			if !ok || fl.truth == 0 {
				continue
			}
			errSum += math.Abs(est-fl.truth) / fl.truth
			m++
		}
		if m > 0 && errSum/float64(m) <= 0.03 {
			return n
		}
	}
	return 400
}

// robustGoodputKbps computes goodput from packet records with
// retransmission stalls filtered out: inter-arrival gaps are capped at 3x
// the median gap (measurement tools discount recovery stalls the same way).
func robustGoodputKbps(packets []simnet.PacketRecord) float64 {
	var gaps []float64
	bits := 0
	var prev time.Time
	havePrev := false
	for _, pk := range packets {
		if pk.Lost {
			continue
		}
		if havePrev {
			gaps = append(gaps, pk.Recv.Sub(prev).Seconds())
			bits += pk.SizeBytes * 8
		}
		prev = pk.Recv
		havePrev = true
	}
	if len(gaps) == 0 {
		return 0
	}
	med := stats.Median(gaps)
	total := 0.0
	for _, g := range gaps {
		if g > 3*med {
			g = 3 * med
		}
		total += g
	}
	if total <= 0 {
		return 0
	}
	return float64(bits) / 1000 / total
}

// Table6HTTPLatency regenerates Table 6: total latency for downloading the
// 1000-page SURGE pool — multi-sim with WiScape vs fixed carriers, and MAR
// with WiScape vs round robin.
func Table6HTTPLatency(o Options) Report {
	o = o.fill()
	r := Report{ID: "table6", Title: "HTTP latency over the SURGE pool (road stretch)"}

	ctrl, env := trainedController(o)
	nPages := int(200 * o.Scale)
	if nPages < 60 {
		nPages = 60
	}
	if nPages > 1000 {
		nPages = 1000
	}
	pool := webload.NewSURGEPool(nPages, o.Seed)
	pages := pool.Pages()
	track := mobility.NewCarLoop(geo.ShortSegment(), o.Seed, 31)
	// Requests are spaced so the experiment spans the whole road stretch
	// (the paper drove the segment repeatedly during the download runs).
	routeTime := geo.ShortSegment().Length() / (55.0 / 3.6) // seconds for one pass
	requestGap := time.Duration(2 * routeTime / float64(nPages) * float64(time.Second))

	ps := mar.NewProbers(env, radio.AllNetworks, o.Seed+5)
	results := map[string]time.Duration{}
	for _, n := range radio.AllNetworks {
		res := multisim.RunDownloads(multisim.Fixed{Net: n}, ps, track, campaignStart, pages, requestGap)
		results["Multisim-"+string(n)] = res.Total
	}
	ws := multisim.RunDownloads(&multisim.WiScape{
		Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks, Fallback: radio.NetB,
	}, ps, track, campaignStart, pages, requestGap)
	results["Multisim-WiScape"] = ws.Total

	// MAR serves a busy gateway: requests are back to back (its win is
	// parallel aggregation), so makespan is the latency measure.
	rr := mar.RunDownloads(&mar.RoundRobin{Networks: radio.AllNetworks},
		mar.NewProbers(env, radio.AllNetworks, o.Seed+6), track, campaignStart, pages, 10*time.Millisecond)
	mws := mar.RunDownloads(&mar.WiScapeScheduler{Ctrl: ctrl, Metric: trace.MetricTCPKbps, Networks: radio.AllNetworks},
		mar.NewProbers(env, radio.AllNetworks, o.Seed+6), track, campaignStart, pages, 10*time.Millisecond)
	results["MAR-RR"] = rr.Makespan
	results["MAR-WiScape"] = mws.Makespan

	for _, name := range []string{"Multisim-WiScape", "Multisim-NetA", "Multisim-NetB", "Multisim-NetC", "MAR-WiScape", "MAR-RR"} {
		r.AddSeries("%-17s total %8.1f s (%d pages)", name, results[name].Seconds(), nPages)
	}

	bestFixed := results["Multisim-NetA"]
	for _, n := range []string{"Multisim-NetB", "Multisim-NetC"} {
		if results[n] < bestFixed {
			bestFixed = results[n]
		}
	}
	msImp := 1 - float64(results["Multisim-WiScape"])/float64(bestFixed)
	marImp := 1 - float64(results["MAR-WiScape"])/float64(results["MAR-RR"])
	r.AddRow("multi-sim improvement", "~30% over the best fixed carrier (87.7s vs 124.3s NetA)",
		fmt.Sprintf("%.0f%% over best fixed", msImp*100))
	r.AddRow("MAR improvement", "~32% over round robin (25.7s vs 36.8s)",
		fmt.Sprintf("%.0f%% over MAR-RR", marImp*100))
	r.AddRow("MAR vs multi-sim", "MAR ~3.4x faster (3 parallel interfaces)",
		fmt.Sprintf("%.1fx faster", float64(results["Multisim-WiScape"])/float64(results["MAR-WiScape"])))
	return r
}

// BandwidthTools regenerates the §3.3.1 estimator comparison: Pathload and
// WBest under-estimate cellular bandwidth badly; plain UDP downloads do
// not. This is why WiScape measures with UDP downloads.
func BandwidthTools(o Options) Report {
	o = o.fill()
	r := Report{ID: "bwtools", Title: "Bandwidth estimation tools vs UDP downloads (NetB, WI)"}

	field := radio.NewPresetField(radio.NetB, radio.RegionWI, o.Seed, geo.Madison().Center())
	at := campaignStart.Add(30 * time.Hour)
	var locs []geo.Point
	for i := 0; i < 8; i++ {
		locs = append(locs, geo.Madison().Center().Offset(float64(i*45), 800+float64(i)*900))
	}

	estimators := []bandwidth.Estimator{
		&bandwidth.UDPDownloadEstimator{Prober: simnet.NewProber(field, o.Seed+1)},
		&bandwidth.PathloadEstimator{Field: field, Seed: o.Seed},
		&bandwidth.WBestEstimator{Field: field, Seed: o.Seed},
	}
	paper := map[string]string{
		"udp-download": "accurate (WiScape's choice)",
		"pathload":     "under-estimates by up to 40%",
		"wbest":        "under-estimates by up to 70%",
	}
	for _, e := range estimators {
		var errs []float64
		for li, loc := range locs {
			p := simnet.NewProber(field, o.Seed+uint64(100+li))
			truth := bandwidth.GroundTruthKbps(p, loc, at)
			for i := 0; i < 10; i++ {
				est := e.EstimateKbps(loc, at.Add(time.Duration(i)*time.Second))
				errs = append(errs, (est-truth)/truth)
			}
		}
		r.AddRow(e.Name(), paper[e.Name()],
			fmt.Sprintf("mean error %+.0f%% (worst %+.0f%%) over %d locations", stats.Mean(errs)*100, stats.Min(errs)*100, len(locs)))
	}
	return r
}
