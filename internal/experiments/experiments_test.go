package experiments

import (
	"strings"
	"testing"
)

// tinyOpts keeps campaign durations at their floors so the whole suite
// smoke-tests in tens of seconds.
var tinyOpts = Options{Seed: 424242, Scale: 0.01}

// checkReport asserts the structural invariants every experiment must hold:
// an id, a title, at least one paper-vs-measured row, and no empty measured
// cells.
func checkReport(t *testing.T, r Report) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Fatalf("report missing id/title: %+v", r)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s: no comparison rows", r.ID)
	}
	for _, row := range r.Rows {
		if row.Label == "" {
			t.Fatalf("%s: row with empty label", r.ID)
		}
		if strings.TrimSpace(row.Measured) == "" {
			t.Fatalf("%s: row %q has no measured value", r.ID, row.Label)
		}
	}
	if s := r.String(); !strings.Contains(s, r.ID) || !strings.Contains(s, "paper:") {
		t.Fatalf("%s: rendering broken:\n%s", r.ID, s)
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	reports := All(tinyOpts)
	if len(reports) != 18 {
		t.Fatalf("expected 18 paper experiments, got %d", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		checkReport(t, r)
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, want := range []string{
		"fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"table3", "table4", "table5", "table6", "bwtools",
	} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestExtensionsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("extension suite")
	}
	reports := Extensions(tinyOpts)
	if len(reports) != 6 {
		t.Fatalf("expected 6 extension reports, got %d", len(reports))
	}
	for _, r := range reports {
		checkReport(t, r)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check")
	}
	a := Fig10Stadium(tinyOpts)
	b := Fig10Stadium(tinyOpts)
	if a.String() != b.String() {
		t.Fatal("same options must reproduce the same report")
	}
}

func TestOptionsFill(t *testing.T) {
	var o Options
	f := o.fill()
	if f.Seed == 0 || f.Scale != 1 {
		t.Fatalf("fill defaults wrong: %+v", f)
	}
	// Explicit values survive.
	o2 := Options{Seed: 7, Scale: 0.5}.fill()
	if o2.Seed != 7 || o2.Scale != 0.5 {
		t.Fatalf("fill clobbered values: %+v", o2)
	}
}

func TestScaleDurFloors(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.001}.fill()
	if got := o.scaleDur(1000, 500); got != 500 {
		t.Fatalf("floor not applied: %v", got)
	}
	o = Options{Seed: 1, Scale: 2}.fill()
	if got := o.scaleDur(1000, 500); got != 2000 {
		t.Fatalf("scaling wrong: %v", got)
	}
}

func TestStadiumShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check")
	}
	// The one shape claim cheap enough to assert in tests: the game-day
	// surge factor is ~3.7x.
	r := Fig10Stadium(tinyOpts)
	var surge string
	for _, row := range r.Rows {
		if strings.Contains(row.Label, "NetB") {
			surge = row.Measured
		}
	}
	if !strings.Contains(surge, "3.7x") && !strings.Contains(surge, "3.6x") && !strings.Contains(surge, "3.8x") {
		t.Fatalf("stadium surge factor drifted: %q", surge)
	}
}

func TestRepresentativeSitesQualify(t *testing.T) {
	if testing.Short() {
		t.Skip("site scan")
	}
	sites := representativeSites(tinyOpts, 0, 2) // RegionWI
	if len(sites) != 2 {
		t.Fatalf("got %d sites", len(sites))
	}
	if sites[0] == sites[1] {
		t.Fatal("sites must be distinct")
	}
}
