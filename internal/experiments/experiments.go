// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment function builds its workload (a simulated
// measurement campaign over the radio ground truth), runs the WiScape
// analysis pipeline, and returns a printable result carrying both the
// paper's claim and the measured value, so reports read as
// paper-vs-measured comparisons.
//
// Absolute numbers depend on the synthetic substrate; what must hold is the
// shape: who wins, by what rough factor, and where thresholds/crossovers
// fall. See EXPERIMENTS.md at the repository root for the recorded values.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/radio"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives all simulation randomness; a fixed seed reproduces a run
	// exactly.
	Seed uint64

	// Scale multiplies campaign durations. 1.0 is the bench default
	// (minutes of wall clock for the full suite); tests use ~0.2 for
	// speed. Larger values sharpen statistics at proportional cost.
	Scale float64
}

// DefaultOptions returns the bench configuration.
func DefaultOptions() Options {
	return Options{Seed: 20111102, Scale: 1.0} // IMC'11 dates, naturally
}

func (o Options) fill() Options {
	if o.Seed == 0 {
		o.Seed = DefaultOptions().Seed
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// scaleDur multiplies a duration by the scale factor, flooring at min.
func (o Options) scaleDur(d, min time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.Scale)
	if s < min {
		return min
	}
	return s
}

// campaignStart is a Monday 00:00 UTC two weeks into the simulated study,
// so diurnal and service-window phases line up predictably.
var campaignStart = radio.Epoch.Add(14 * 24 * time.Hour)

// Row is one labelled comparison row of a result table.
type Row struct {
	Label    string
	Paper    string // the paper's reported value (verbatim shape claim)
	Measured string // what this run measured
}

// Report is the uniform result carrier: a title, comparison rows and
// optional free-form series lines.
type Report struct {
	ID     string // e.g. "fig04"
	Title  string
	Rows   []Row
	Series []string // rendered data series (CDF points etc.)
}

// String renders the report as aligned text.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	labelW, paperW := 0, 0
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s  paper: %-*s  measured: %s\n", labelW, row.Label, paperW, row.Paper, row.Measured)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  | %s\n", s)
	}
	return b.String()
}

// AddRow appends a comparison row.
func (r *Report) AddRow(label, paper, measured string) {
	r.Rows = append(r.Rows, Row{Label: label, Paper: paper, Measured: measured})
}

// AddSeries appends a rendered series line.
func (r *Report) AddSeries(format string, args ...any) {
	r.Series = append(r.Series, fmt.Sprintf(format, args...))
}

// All runs every experiment in paper order and returns the reports. This is
// what cmd/wiscape-report prints.
func All(opts Options) []Report {
	return []Report{
		Fig01CityMap(opts),
		Fig02SpeedLatency(opts),
		Fig04ZoneRadius(opts),
		Fig05SpotCDFs(opts),
		Fig06AllanDeviation(opts),
		Fig07NKLD(opts),
		Fig08ValidationError(opts),
		Fig09PingFailures(opts),
		Fig10Stadium(opts),
		Fig11Dominance(opts),
		Fig12RoadDominance(opts),
		Fig13RoadThroughput(opts),
		Fig14Applications(opts),
		Table3StaticProximate(opts),
		Table4Timescales(opts),
		Table5PacketCounts(opts),
		Table6HTTPLatency(opts),
		BandwidthTools(opts),
	}
}

// Extensions runs the beyond-the-paper experiments: the §3.3/§6 future-work
// items and the ablations of DESIGN.md's called-out design choices.
func Extensions(opts Options) []Report {
	return []Report{
		Ext01DeviceHeterogeneity(opts),
		Ext02ClientOverhead(opts),
		AblationZoneRadius(opts),
		AblationSampleBudget(opts),
		AblationEpochPolicy(opts),
		AblationChangeSigmas(opts),
	}
}
