package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
)

// representativeSites picks zones for the Spot/Proximate analyses the way
// the paper did (§3.1): "we selected representative zones with overall
// performance variability [...] between 2% and 8%" — i.e. low in-zone
// spatial variability, away from coverage edges and trouble spots. It
// scans candidate points around the region's nominal sites and returns the
// count best-qualified ones.
func representativeSites(o Options, kind radio.RegionKind, count int) []geo.Point {
	nominal := geo.MadisonStaticSites()
	origin := geo.Madison().Center()
	if kind == radio.RegionNJ {
		nominal = geo.NJStaticSites()
		origin = geo.NJStaticSites()[0]
	}
	field := radio.NewPresetField(radio.NetB, kind, o.Seed, origin)
	at := campaignStart.Add(12 * time.Hour)
	meanKbps := field.Params().MeanKbps

	spatialRel := func(p geo.Point) float64 {
		var vals []float64
		for i := 0; i < 24; i++ {
			q := p.Offset(float64(i*15), 250*float64(i%6)/6)
			vals = append(vals, field.At(q, at).CapacityKbps)
		}
		return stats.RelStdDev(vals)
	}
	// The paper's exact criterion: overall performance variability between
	// 2% and 8% (zones more stable than 2% or wilder than ~10% are not
	// representative).
	temporalRel := func(p geo.Point) float64 {
		var vals []float64
		for i := 0; i < 144; i++ {
			vals = append(vals, field.At(p, campaignStart.Add(time.Duration(i)*30*time.Minute)).CapacityKbps)
		}
		return stats.RelStdDev(vals)
	}

	var candidates []geo.Point
	for _, s := range nominal {
		candidates = append(candidates, s)
		for i := 1; i <= 8; i++ {
			candidates = append(candidates, s.Offset(float64(i*45), float64(i)*600))
		}
	}
	type scored struct {
		p   geo.Point
		rel float64
	}
	var ok []scored
	for _, c := range candidates {
		if field.Troubled(c) {
			continue
		}
		// Not inside a coverage hole of the reference network.
		if field.At(c, at).CapacityKbps < 0.75*meanKbps {
			continue
		}
		if tr := temporalRel(c); tr < 0.02 || tr > 0.10 {
			continue
		}
		ok = append(ok, scored{p: c, rel: spatialRel(c)})
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].rel < ok[j].rel })
	var out []geo.Point
	for i := 0; i < len(ok) && len(out) < count; i++ {
		out = append(out, ok[i].p)
	}
	for len(out) < count { // degenerate region: fall back to nominal sites
		out = append(out, nominal[len(out)%len(nominal)])
	}
	return out
}

// spotDataset returns the Static (Spot) dataset for a region at a 1-minute
// cadence, restricted to one representative site as in the paper's
// presentation.
func spotDataset(o Options, kind radio.RegionKind) *trace.Dataset {
	key := fmt.Sprintf("spot/%d/%d/%g", kind, o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.SpotCampaign(kind, o.Seed, campaignStart, o.scaleDur(4*24*time.Hour, 24*time.Hour), time.Minute)
		c.Clients = c.Clients[:1] // one representative location, as presented
		c.Clients[0].Track = mobility.Static{P: representativeSites(o, kind, 1)[0]}
		c.TCPBytes = 128 << 10
		return c.Run()
	})
}

// proximateDataset returns the Proximate dataset (orbiting car) for a
// region, two representative sites, UDP-only at a 1-minute cadence over a
// longer horizon — the input to the Allan (Fig. 6) and NKLD (Fig. 7)
// analyses.
func proximateDataset(o Options, kind radio.RegionKind) *trace.Dataset {
	key := fmt.Sprintf("proximate/%d/%d/%g", kind, o.Seed, o.Scale)
	return cached(key, func() *trace.Dataset {
		c := trace.ProximateCampaign(kind, o.Seed, campaignStart, o.scaleDur(14*24*time.Hour, 4*24*time.Hour), time.Minute)
		c.Clients = c.Clients[:2] // two sites per region, representatively chosen
		sites := representativeSites(o, kind, 2)
		for i := range c.Clients {
			c.Clients[i].Track = mobility.NewOrbitCar(sites[i], 250, o.Seed, i)
		}
		c.Metrics = []trace.Metric{trace.MetricUDPKbps, trace.MetricJitterMs}
		return c.Run()
	})
}

func regionLabel(kind radio.RegionKind) string {
	if kind == radio.RegionNJ {
		return "NJ"
	}
	return "WI"
}

func regionNets(kind radio.RegionKind) []radio.NetworkID {
	if kind == radio.RegionNJ {
		return []radio.NetworkID{radio.NetB, radio.NetC}
	}
	return radio.AllNetworks
}

// Fig05SpotCDFs regenerates Figure 5: CDFs of 30-minute-binned TCP/UDP
// throughput, jitter and loss at the representative WI and NJ locations.
func Fig05SpotCDFs(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig05", Title: "Spot 30-minute CDFs: throughput, jitter, loss (representative WI and NJ sites)"}

	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		ds := spotDataset(o, kind)
		label := regionLabel(kind)
		var maxRel float64
		for _, net := range regionNets(kind) {
			tcp := stats.BinMeans(trace.Timed(ds.ByMetric(net, trace.MetricTCPKbps)), 30*time.Minute)
			udp := stats.BinMeans(trace.Timed(ds.ByMetric(net, trace.MetricUDPKbps)), 30*time.Minute)
			jit := stats.BinMeans(trace.Timed(ds.ByMetric(net, trace.MetricJitterMs)), 30*time.Minute)
			loss := stats.BinMeans(trace.Timed(ds.ByMetric(net, trace.MetricLossRate)), 30*time.Minute)
			for _, rel := range []float64{stats.RelStdDev(tcp), stats.RelStdDev(udp)} {
				if rel > maxRel {
					maxRel = rel
				}
			}
			r.AddSeries("%s %s: TCP %4.0f Kbps (rel %4.1f%%)  UDP %4.0f Kbps (rel %4.1f%%)  jitter %4.1f ms  loss %.2f%%",
				label, net,
				stats.Mean(tcp), stats.RelStdDev(tcp)*100,
				stats.Mean(udp), stats.RelStdDev(udp)*100,
				stats.Mean(jit), stats.Mean(loss)*100)
		}
		r.AddRow(label+" throughput variability", "rel.std below 0.15 across all networks",
			fmt.Sprintf("max rel.std %.3f", maxRel))
	}

	// Cross-network shape claims at the WI site.
	wi := spotDataset(o, radio.RegionWI)
	tputA := stats.Mean(trace.Values(wi.ByMetric(radio.NetA, trace.MetricTCPKbps)))
	worst := tputA
	for _, net := range []radio.NetworkID{radio.NetB, radio.NetC} {
		if m := stats.Mean(trace.Values(wi.ByMetric(net, trace.MetricTCPKbps))); m < worst {
			worst = m
		}
	}
	r.AddRow("WI: NetA advantage", "NetA > 50% better than the worst network (TCP and UDP)",
		fmt.Sprintf("NetA %.0f vs worst %.0f Kbps (+%.0f%%)", tputA, worst, (tputA/worst-1)*100))
	jitA := stats.Mean(trace.Values(wi.ByMetric(radio.NetA, trace.MetricJitterMs)))
	jitB := stats.Mean(trace.Values(wi.ByMetric(radio.NetB, trace.MetricJitterMs)))
	r.AddRow("WI: jitter levels", "~7 ms on NetA, ~3 ms on NetB/NetC",
		fmt.Sprintf("NetA %.1f ms, NetB %.1f ms", jitA, jitB))
	lossMax := 0.0
	for _, net := range radio.AllNetworks {
		if m := stats.Mean(trace.Values(wi.ByMetric(net, trace.MetricLossRate))); m > lossMax {
			lossMax = m
		}
	}
	r.AddRow("WI: packet loss", "below 1% on all networks", fmt.Sprintf("max %.2f%%", lossMax*100))
	return r
}

// Fig06AllanDeviation regenerates Figure 6: the Allan deviation of UDP
// throughput versus averaging time at a representative zone per region,
// whose minimum defines the zone's epoch (~75 min in WI, ~15 min in NJ).
func Fig06AllanDeviation(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig06", Title: "Allan deviation vs averaging time (Proximate, NetB)"}
	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		ds := proximateDataset(o, kind)
		all := ds.ByMetric(radio.NetB, trace.MetricUDPKbps)
		// Each Proximate client orbits one zone; analyse each site and
		// present the representative (best-covered) one, like the paper.
		clients := map[string]bool{}
		for _, s := range all {
			clients[s.ClientID] = true
		}
		var sites []string
		for id := range clients {
			sites = append(sites, id)
		}
		sort.Strings(sites)
		paper := "~75 minutes"
		if kind == radio.RegionNJ {
			paper = "~15 minutes"
		}
		for _, site := range sites {
			var samples []trace.Sample
			for _, s := range all {
				if s.ClientID == site {
					samples = append(samples, s)
				}
			}
			series := stats.RegularSeries(trace.Timed(samples), time.Minute)
			// Cap the sweep so every window size has at least ten windows of
			// data; Allan estimates from fewer are noise and produce
			// spurious minima at the right edge.
			maxW := 1000
			if limit := len(series) / 10; limit < maxW {
				maxW = limit
			}
			windows := stats.LogSpacedWindows(1, maxW, 25)
			best, dev := stats.MinAllanWindow(series, windows)
			r.AddRow(fmt.Sprintf("%s %s Allan minimum", regionLabel(kind), site), paper,
				fmt.Sprintf("%d minutes (dev %.3f)", best, dev))
			for _, p := range stats.AllanSweep(series, stats.LogSpacedWindows(1, maxW, 10)) {
				r.AddSeries("%s %s tau=%4d min: sigma_A=%.4f", regionLabel(kind), site, p.WindowSamples, p.Deviation)
			}
		}
	}
	return r
}

// Fig07NKLD regenerates Figure 7: NKLD between n-sample subsets and the
// long-term distribution, temporally (same location, different times — the
// Static view) and spatially (different locations in the zone — the
// Proximate view), for WI and NJ.
func Fig07NKLD(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig07", Title: "NKLD vs number of samples (UDP throughput, NetB)"}
	cfg := core.DefaultConfig()
	ns := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120, 150, 200, 250}

	for _, kind := range []radio.RegionKind{radio.RegionWI, radio.RegionNJ} {
		label := regionLabel(kind)
		temporal := trace.Values(spotDataset(o, kind).ByMetric(radio.NetB, trace.MetricUDPKbps))
		// The spatial view is one zone's orbiting-car collection (site 0);
		// pooling sites would mix genuinely different zones.
		proxAll := proximateDataset(o, kind).ByMetric(radio.NetB, trace.MetricUDPKbps)
		var spatial []float64
		for _, s := range proxAll {
			if s.ClientID == proxAll[0].ClientID {
				spatial = append(spatial, s.Value)
			}
		}

		views := []struct {
			name string
			hist []float64
		}{{"temporal", temporal}, {"spatial", spatial}}
		for _, v := range views {
			name, hist := v.name, v.hist
			curve := core.NKLDCurve(hist, ns, cfg.NKLDBins, 100, o.Seed)
			conv := 0
			for _, p := range curve {
				if p.P <= cfg.NKLDThreshold {
					conv = int(p.X)
					break
				}
			}
			paper := map[string]string{
				"WI/temporal": "<=0.1 after ~50-60 samples",
				"WI/spatial":  "<=0.1 after ~80 samples",
				"NJ/temporal": "<=0.1 after ~80-90 samples",
				"NJ/spatial":  "<=0.1 after ~100 samples",
			}[label+"/"+name]
			measured := "never within 250 samples"
			if conv > 0 {
				measured = fmt.Sprintf("<=0.1 at %d samples", conv)
			}
			r.AddRow(fmt.Sprintf("%s %s convergence", label, name), paper, measured)
			line := ""
			for _, p := range curve {
				line += fmt.Sprintf("n=%.0f:%.3f ", p.X, p.P)
			}
			r.AddSeries("%s %s NKLD: %s", label, name, line)
		}
	}
	r.AddRow("headline", "~100 samples characterize an epoch; WiScape uses that as its budget",
		fmt.Sprintf("default budget %d", cfg.DefaultSamplesPerEpoch))
	return r
}
