package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
)

// zoneStat is one zone's throughput statistics.
type zoneStat struct {
	Mean float64
	Rel  float64
	N    int
}

// zoneSampleStats computes, for every zone with at least minSamples
// samples, the mean and relative standard deviation of the raw throughput
// samples — the Fig. 1 / Fig. 4 quantity. The 1 MB downloads behind these
// samples average the fast fading, so the statistic reflects the zone's
// intrinsic spatial and epoch-scale variability.
func zoneSampleStats(samples []trace.Sample, origin geo.Point, radiusM float64, minSamples int) map[geo.ZoneID]zoneStat {
	grid := geo.GridForZoneRadius(origin, radiusM)
	byZone := trace.ByZone(samples, grid)
	out := make(map[geo.ZoneID]zoneStat)
	for z, ss := range byZone {
		if len(ss) < minSamples {
			continue
		}
		vals := trace.Values(ss)
		out[z] = zoneStat{Mean: stats.Mean(vals), Rel: stats.RelStdDev(vals), N: len(ss)}
	}
	return out
}

// Fig01CityMap regenerates Figure 1: the city-wide TCP throughput map from
// the Standalone dataset — per-zone mean and variance dots over the 155 km²
// Madison area.
func Fig01CityMap(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig01", Title: "City-wide TCP throughput map (Standalone, NetB, 0.2 km² zones)"}
	ds := standaloneTCP(o)
	zs := zoneSampleStats(ds.ByMetric(radio.NetB, trace.MetricTCPKbps), geo.Madison().Center(), 250, 100)

	var means, rels []float64
	for _, st := range zs {
		means = append(means, st.Mean)
		rels = append(rels, st.Rel)
	}
	r.AddRow("zones mapped", "~400 zones with >=200 samples",
		fmt.Sprintf("%d zones with >=100 samples", len(zs)))
	r.AddRow("mean zone throughput", "dots around ~1080 Kbps (NetB)",
		fmt.Sprintf("%.0f Kbps (min %.0f, max %.0f)", stats.Mean(means), stats.Min(means), stats.Max(means)))
	r.AddRow("shade (variance)", "most zones low-variance, a few dark high-variance spots",
		fmt.Sprintf("median rel.std %.1f%%, p95 %.1f%%", stats.Median(rels)*100, stats.Percentile(rels, 95)*100))

	// Render a few map dots (zone center, mean, rel std) as the "figure".
	ids := make([]geo.ZoneID, 0, len(zs))
	for z := range zs {
		ids = append(ids, z)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].X != ids[j].X {
			return ids[i].X < ids[j].X
		}
		return ids[i].Y < ids[j].Y
	})
	grid := geo.GridForZoneRadius(geo.Madison().Center(), 250)
	step := len(ids)/8 + 1
	for i := 0; i < len(ids); i += step {
		st := zs[ids[i]]
		r.AddSeries("dot %-9s at %s  mean=%6.0f Kbps  relstd=%4.1f%%  n=%d",
			ids[i], grid.Center(ids[i]), st.Mean, st.Rel*100, st.N)
	}
	return r
}

// Fig02SpeedLatency regenerates Figure 2: latency vs vehicle speed
// scatter (a) and the CDF of per-zone speed-latency correlation
// coefficients (b) from the WiRover dataset.
func Fig02SpeedLatency(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig02", Title: "Latency vs vehicle speed (WiRover)"}
	ds := wirover(o)
	grid := geo.GridForZoneRadius(geo.Madison().Center(), 250)

	var ccs []float64
	var speedBuckets [7]stats.Accum // 0-20,20-40,...,120+
	for _, net := range []radio.NetworkID{radio.NetB, radio.NetC} {
		byZone := trace.ByZone(ds.ByMetric(net, trace.MetricRTTMs), grid)
		for _, ss := range byZone {
			if len(ss) < 50 {
				continue
			}
			speeds := make([]float64, len(ss))
			rtts := make([]float64, len(ss))
			for i, s := range ss {
				speeds[i] = s.SpeedKmh
				rtts[i] = s.Value
				b := int(s.SpeedKmh / 20)
				if b > 6 {
					b = 6
				}
				speedBuckets[b].Add(s.Value)
			}
			ccs = append(ccs, stats.Correlation(speeds, rtts))
		}
	}
	absCCs := make([]float64, len(ccs))
	for i, c := range ccs {
		if c < 0 {
			absCCs[i] = -c
		} else {
			absCCs[i] = c
		}
	}
	p95 := stats.Percentile(absCCs, 95)
	r.AddRow("zones analysed", "all WiRover zones", fmt.Sprintf("%d zone-network series (>=50 pings)", len(ccs)))
	r.AddRow("|corr(speed, latency)| p95", "< 0.16 for 95% of zones", fmt.Sprintf("%.3f", p95))
	r.AddRow("latency level", "mostly around 120 ms, no trend with speed",
		fmt.Sprintf("bucket means %s", bucketLine(speedBuckets[:])))
	r.AddRow("confound note", "speeds above ~60 km/h occur only on the intercity corridor",
		"elevated high-speed buckets are the rural corridor's RTT (location, not speed); per-zone correlations isolate the speed effect")
	for i, a := range speedBuckets {
		if a.Count() == 0 {
			continue
		}
		r.AddSeries("speed %3d-%3d km/h: mean RTT %5.0f ms (n=%d)", i*20, i*20+20, a.Mean(), a.Count())
	}
	return r
}

func bucketLine(bs []stats.Accum) string {
	out := ""
	for i := range bs {
		if bs[i].Count() == 0 {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%.0f", bs[i].Mean())
	}
	return out + " ms"
}

// Fig04ZoneRadius regenerates Figure 4: the CDF of per-zone relative
// standard deviation of TCP throughput as the zone radius sweeps from 50 m
// to 750 m, justifying the 250 m choice.
func Fig04ZoneRadius(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig04", Title: "Zone radius sweep: rel.std of TCP throughput CDFs (Standalone, NetB)"}
	ds := standaloneTCP(o)
	samples := ds.ByMetric(radio.NetB, trace.MetricTCPKbps)

	type radiusResult struct {
		radius float64
		p80    float64
		rels   []float64
	}
	var results []radiusResult
	for radius := 50.0; radius <= 750; radius += 100 {
		minSamples := 60
		if radius <= 100 {
			minSamples = 30 // tiny zones see few bus passes; the paper filtered similarly
		}
		zs := zoneSampleStats(samples, geo.Madison().Center(), radius, minSamples)
		var rels []float64
		for _, st := range zs {
			rels = append(rels, st.Rel)
		}
		if len(rels) == 0 {
			continue
		}
		results = append(results, radiusResult{radius: radius, p80: stats.Percentile(rels, 80), rels: rels})
	}
	for _, rr := range results {
		cdf := stats.NewCDF(rr.rels)
		r.AddSeries("radius %3.0fm: zones=%3d  p80=%4.1f%%  frac<=4%%=%3.0f%%  frac<=8%%=%3.0f%%",
			rr.radius, len(rr.rels), rr.p80*100, cdf.FractionBelow(0.04)*100, cdf.FractionBelow(0.08)*100)
	}
	if len(results) >= 2 {
		first, last := results[0], results[len(results)-1]
		r.AddRow("p80 at smallest vs largest radius", "~2.5% at 50 m rising to ~7% at 750 m",
			fmt.Sprintf("%.1f%% at %.0f m rising to %.1f%% at %.0f m", first.p80*100, first.radius, last.p80*100, last.radius))
		grew := 0
		for i := 1; i < len(results); i++ {
			if results[i].p80 >= results[i-1].p80 {
				grew++
			}
		}
		r.AddRow("monotone growth with radius", "curves shift right slowly as radius grows",
			fmt.Sprintf("p80 grows in %d of %d steps", grew, len(results)-1))
	}
	for _, rr := range results {
		if rr.radius == 250 {
			cdf := stats.NewCDF(rr.rels)
			r.AddRow("250 m zones", "80% of zones <= 4% rel.std; 97% <= 8%",
				fmt.Sprintf("%.0f%% <= 4%%; %.0f%% <= 8%%", cdf.FractionBelow(0.04)*100, cdf.FractionBelow(0.08)*100))
		}
	}
	return r
}

// Fig08ValidationError regenerates Figure 8: the CDF of WiScape's
// client-sourced estimation error against ground truth across Standalone
// zones.
func Fig08ValidationError(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig08", Title: "WiScape estimation error vs ground truth (Standalone split)"}
	ds := standaloneTCP(o)
	samples := ds.ByMetric(radio.NetB, trace.MetricTCPKbps)

	minSamples := 200
	errs := core.Validate(samples, geo.Madison().Center(), 250, minSamples, 100, o.Seed)
	if len(errs) < 20 {
		// Thin campaign (small Scale): relax to keep the figure meaningful,
		// and say so.
		minSamples = 80
		errs = core.Validate(samples, geo.Madison().Center(), 250, minSamples, 60, o.Seed)
	}
	cdf := core.ErrorCDF(errs)
	var maxErr float64
	for _, e := range errs {
		if e.RelativeErr > maxErr {
			maxErr = e.RelativeErr
		}
	}
	r.AddRow("zones validated", "~400 zones with >=200 samples",
		fmt.Sprintf("%d zones with >=%d samples (100-sample client subsets)", len(errs), minSamples))
	r.AddRow("error <= 4%", "more than 70% of zones", fmt.Sprintf("%.0f%% of zones", cdf.FractionBelow(0.04)*100))
	r.AddRow("maximum error", "~15%", fmt.Sprintf("%.1f%%", maxErr*100))
	for _, q := range []float64{0.5, 0.7, 0.9, 0.97} {
		r.AddSeries("error CDF: p%.0f = %.2f%%", q*100, cdf.Quantile(q)*100)
	}
	return r
}

// Fig09PingFailures regenerates Figure 9: zones with persistent daily ping
// failures have far higher TCP throughput variability, making failed pings
// a cheap trouble-spot detector for operators.
func Fig09PingFailures(o Options) Report {
	o = o.fill()
	r := Report{ID: "fig09", Title: "Ping failures mark high-variance zones (Standalone)"}

	// TCP variability per zone.
	tcp := standaloneTCP(o)
	zs := zoneSampleStats(tcp.ByMetric(radio.NetB, trace.MetricTCPKbps), geo.Madison().Center(), 250, 100)

	// Ping failure runs per zone: feed the ping dataset through a
	// controller, which tracks per-day failures.
	pings := standalonePing(o)
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	ctrl.IngestDataset(pings)

	// The paper's criterion is >= 20 consecutive days with at least one
	// failed ping out of daily observation; our buses are randomly
	// re-routed each day, so a zone's observation is gappy. Scale the
	// criterion to each zone's own observed days: failures on at least 80%
	// of a zone's observed-day run, with a campaign-scaled floor.
	campaignDays := int(o.scaleDur(24*24*time.Hour, 8*24*time.Hour) / (24 * time.Hour))
	floorRun := campaignDays / 4
	if floorRun < 3 {
		floorRun = 3
	}

	qualifies := func(z geo.ZoneID) bool {
		observed, run := ctrl.DaysWithPingFailures(z, radio.NetB)
		if observed < floorRun {
			return false
		}
		need := observed * 8 / 10
		if need < floorRun {
			need = floorRun
		}
		return run >= need
	}
	minRun := floorRun // reported in the row below

	var all, failed []float64
	for z, st := range zs {
		all = append(all, st.Rel)
		if qualifies(z) {
			failed = append(failed, st.Rel)
		}
	}
	allCDF := stats.NewCDF(all)
	r.AddRow("zones / failed-ping zones", "all vs zones with >=20 consecutive failure days",
		fmt.Sprintf("%d vs %d (criterion: failures on >=80%% of observed days, floor %d)", len(all), len(failed), minRun))
	if len(failed) > 0 {
		failedCDF := stats.NewCDF(failed)
		r.AddRow("failed-ping zones are high-variance", "65% of them have rel.std >= 40%... far above the rest",
			fmt.Sprintf("median rel.std %.0f%% vs %.1f%% overall", stats.Median(failed)*100, stats.Median(all)*100))
		r.AddRow("high-variance zones are flagged", "97% of zones with rel.std > 20% have back-to-back ping failures",
			coverageLine(zs, qualifies))
		for _, p := range []float64{25, 50, 75, 95} {
			r.AddSeries("rel.std p%2.0f: overall %5.1f%%  failed-ping %5.1f%%",
				p, stats.Percentile(all, p)*100, failedCDF.Quantile(p/100)*100)
		}
	} else {
		r.AddRow("failed-ping zones", "present", "none found at this scale — increase Scale")
	}
	_ = allCDF
	return r
}

// coverageLine computes what fraction of high-variance zones (rel.std >
// 20%) show persistent ping failures.
func coverageLine(zs map[geo.ZoneID]zoneStat, qualifies func(geo.ZoneID) bool) string {
	high, covered := 0, 0
	for z, st := range zs {
		if st.Rel <= 0.20 {
			continue
		}
		high++
		if qualifies(z) {
			covered++
		}
	}
	if high == 0 {
		return "no zones above 20% rel.std at this scale"
	}
	return fmt.Sprintf("%d/%d (%.0f%%) of >20%% zones have failure runs", covered, high, 100*float64(covered)/float64(high))
}
