package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Ablations isolate the design choices DESIGN.md calls out: the 250 m zone
// radius, the Allan-derived epochs, the ~100-sample budget, and the 2-sigma
// update rule. Each ablation swaps one choice and measures what the paper's
// validation metric (estimation accuracy or alert behaviour) loses.

// AblationZoneRadius sweeps the zone radius through the Fig. 8 validation:
// small zones starve for samples, large zones blur genuinely different
// places; 250 m is the knee.
func AblationZoneRadius(o Options) Report {
	o = o.fill()
	r := Report{ID: "abl-radius", Title: "Ablation: zone radius vs validation accuracy and coverage"}
	ds := standaloneTCP(o)
	samples := ds.ByMetric(radio.NetB, trace.MetricTCPKbps)

	for _, radius := range []float64{100, 250, 500, 1000, 2000} {
		errs := core.Validate(samples, geo.Madison().Center(), radius, 200, 100, o.Seed)
		if len(errs) == 0 {
			r.AddSeries("radius %5.0fm: no zones reach 200 samples", radius)
			continue
		}
		cdf := core.ErrorCDF(errs)
		r.AddSeries("radius %5.0fm: zones=%3d  p70 err=%5.2f%%  p97 err=%5.2f%%",
			radius, len(errs), cdf.Quantile(0.70)*100, cdf.Quantile(0.97)*100)
	}
	r.AddRow("design choice", "250 m balances in-zone homogeneity against per-zone sample supply (§3.1)",
		"see series: smaller radii cover few zones; much larger radii inflate the error tail")
	return r
}

// AblationSampleBudget sweeps the per-epoch sample budget through the
// Fig. 8 validation: the paper's ~100 samples sit at the point of
// diminishing returns.
func AblationSampleBudget(o Options) Report {
	o = o.fill()
	r := Report{ID: "abl-budget", Title: "Ablation: samples per epoch vs estimation error"}
	ds := standaloneTCP(o)
	samples := ds.ByMetric(radio.NetB, trace.MetricTCPKbps)

	for _, budget := range []int{10, 30, 100, 300} {
		errs := core.Validate(samples, geo.Madison().Center(), 250, 200, budget, o.Seed)
		if len(errs) == 0 {
			continue
		}
		cdf := core.ErrorCDF(errs)
		r.AddSeries("budget %4d samples: p70 err=%5.2f%%  p97 err=%5.2f%%",
			budget, cdf.Quantile(0.70)*100, cdf.Quantile(0.97)*100)
	}
	r.AddRow("design choice", "~100 samples per epoch (NKLD-derived, §3.3)",
		"see series: error falls steeply to ~100 and flattens after — more measurement buys little")
	return r
}

// AblationEpochPolicy compares the Allan-derived epochs against fixed
// epochs by tracking how well the published record follows ground truth at
// a representative zone (record error sampled hourly).
func AblationEpochPolicy(o Options) Report {
	o = o.fill()
	r := Report{ID: "abl-epoch", Title: "Ablation: Allan-derived epochs vs fixed epochs (record tracking error)"}

	field := radio.NewPresetField(radio.NetB, radio.RegionWI, o.Seed, geo.Madison().Center())
	site := representativeSites(o, radio.RegionWI, 1)[0]
	p := simnet.NewProber(field, o.Seed+3)
	days := 6

	run := func(fixed time.Duration, adaptive bool) (rmse float64, alerts int) {
		cfg := core.DefaultConfig()
		if !adaptive {
			cfg.DefaultEpoch = fixed
			cfg.DisableEpochAdaptation = true
		}
		ctrl := core.NewController(cfg, geo.Madison().Center())
		var errSq, nChecks float64
		at := campaignStart
		for i := 0; i < days*24*60; i += 2 { // a sample every 2 minutes
			ts := at.Add(time.Duration(i) * time.Minute)
			ctrl.Ingest(trace.Sample{
				Time: ts, Loc: site, Network: radio.NetB, Metric: trace.MetricUDPKbps,
				Value: p.UDPDownload(site, ts, 100, 1200).ThroughputKbps(), ClientID: "abl",
			})
			if i%60 == 0 && i > 12*60 {
				if rec, ok := ctrl.EstimateAt(site, radio.NetB, trace.MetricUDPKbps); ok {
					truth := field.At(site, ts).CapacityKbps
					d := (rec.MeanValue - truth) / truth
					errSq += d * d
					nChecks++
				}
			}
		}
		alerts = len(ctrl.Alerts())
		if nChecks == 0 {
			return 1, alerts
		}
		return 100 * math.Sqrt(errSq/nChecks), alerts
	}

	adaptiveRMSE, adaptiveAlerts := run(0, true)
	r.AddSeries("allan-derived epochs : record RMSE %5.2f%%  alerts %d", adaptiveRMSE, adaptiveAlerts)
	for _, fixed := range []time.Duration{5 * time.Minute, 30 * time.Minute, 6 * time.Hour} {
		rmse, alerts := run(fixed, false)
		r.AddSeries("fixed %-14v: record RMSE %5.2f%%  alerts %d", fixed, rmse, alerts)
	}
	r.AddRow("design choice", "per-zone epochs at the Allan minimum (§3.2.2)",
		"see series: too-short epochs chase noise (alert churn), too-long epochs lag the drift")
	return r
}

// AblationChangeSigmas sweeps the update rule's threshold: at 1 sigma the
// operator drowns in alerts from ordinary drift; at 4 sigma real events
// (the stadium surge) slip through late or entirely. The paper's 2 sigma is
// the workable middle.
func AblationChangeSigmas(o Options) Report {
	o = o.fill()
	r := Report{ID: "abl-sigma", Title: "Ablation: change-detection threshold vs alert noise and event detection"}

	gameStart := campaignStart.Add(5*24*time.Hour + 13*time.Hour)
	field := radio.NewPresetField(radio.NetB, radio.RegionWI, o.Seed, geo.Madison().Center())
	field.AddEvent(radio.FootballGame(gameStart))
	site := geo.CampRandallStadium
	quiet := representativeSites(o, radio.RegionWI, 1)[0]

	for _, sigmas := range []float64{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.ChangeSigmas = sigmas
		cfg.DefaultEpoch = 20 * time.Minute
		ctrl := core.NewController(cfg, geo.Madison().Center())
		p := simnet.NewProber(field, o.Seed+9)
		var gameAlert *core.Alert
		falseAlerts := 0
		for i := 0; i < 6*24*60; i += 2 {
			ts := campaignStart.Add(time.Duration(i) * time.Minute)
			for _, loc := range []geo.Point{site, quiet} {
				pr := p.Ping(loc, ts)
				ctrl.Ingest(trace.Sample{
					Time: ts, Loc: loc, Network: radio.NetB, Metric: trace.MetricRTTMs,
					Value: pr.RTTMs, Failed: pr.Failed, ClientID: "abl",
				})
			}
			for _, a := range ctrl.Alerts() {
				inGame := !a.At.Before(gameStart) && a.At.Before(gameStart.Add(4*time.Hour))
				if a.Key.Zone == ctrl.ZoneOf(site) && inGame && a.Current.MeanValue > a.Previous.MeanValue {
					if gameAlert == nil {
						aa := a
						gameAlert = &aa
					}
				} else {
					falseAlerts++
				}
			}
		}
		detect := "MISSED"
		if gameAlert != nil {
			detect = fmt.Sprintf("detected after %v", gameAlert.At.Sub(gameStart).Round(time.Minute))
		}
		r.AddSeries("threshold %.0f sigma: stadium surge %s, %3d other alerts over 6 days", sigmas, detect, falseAlerts)
	}
	r.AddRow("design choice", "update/alert on >2 sigma moves (§3.4)",
		"see series: 1 sigma is noisy, high thresholds detect late or never")
	return r
}
