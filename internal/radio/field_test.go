package radio

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stats"
)

const testSeed = 1011

func wiField(net NetworkID) *Field {
	return NewPresetField(net, RegionWI, testSeed, geo.Madison().Center())
}

func TestDeterminism(t *testing.T) {
	f1 := wiField(NetB)
	f2 := wiField(NetB)
	p := geo.Madison().Center()
	at := Epoch.Add(37 * time.Hour)
	c1 := f1.At(p, at)
	c2 := f2.At(p, at)
	if c1 != c2 {
		t.Fatalf("fields diverge: %+v vs %+v", c1, c2)
	}
}

func TestNetworksDiffer(t *testing.T) {
	p := geo.Madison().Center()
	at := Epoch.Add(48 * time.Hour)
	a := wiField(NetA).At(p, at)
	b := wiField(NetB).At(p, at)
	if a.CapacityKbps == b.CapacityKbps {
		t.Fatal("independent networks should not coincide")
	}
	if a.Network != NetA || b.Network != NetB {
		t.Fatal("network labels missing")
	}
}

func TestConditionsSanity(t *testing.T) {
	at := Epoch.Add(24 * time.Hour)
	box := geo.Madison()
	for _, net := range AllNetworks {
		f := wiField(net)
		max := f.Params().MaxKbps
		for i := 0; i < 500; i++ {
			frac := float64(i) / 500
			p := geo.Point{
				Lat: box.MinLat + (box.MaxLat-box.MinLat)*frac,
				Lon: box.MinLon + (box.MaxLon-box.MinLon)*math.Mod(frac*7.3, 1),
			}
			c := f.At(p, at)
			if c.CapacityKbps <= 0 || c.CapacityKbps > max {
				t.Fatalf("%s capacity %v outside (0, %v]", net, c.CapacityKbps, max)
			}
			if c.TCPKbps <= 0 || c.TCPKbps > c.CapacityKbps {
				t.Fatalf("%s TCP %v vs UDP %v", net, c.TCPKbps, c.CapacityKbps)
			}
			if c.RTTMs <= 10 || c.RTTMs > 2000 {
				t.Fatalf("%s RTT %v implausible", net, c.RTTMs)
			}
			if c.LossProb < 0 || c.LossProb > 0.2 {
				t.Fatalf("%s loss %v implausible", net, c.LossProb)
			}
			if c.JitterMs <= 0 || c.JitterMs > 50 {
				t.Fatalf("%s jitter %v implausible", net, c.JitterMs)
			}
			if c.PingFailProb < 0 || c.PingFailProb >= 1 {
				t.Fatalf("%s ping fail prob %v", net, c.PingFailProb)
			}
		}
	}
}

func TestSpatialSmoothness(t *testing.T) {
	// Points 50 m apart must see nearly identical mean capacity; points 5 km
	// apart should often differ noticeably. This is the Fig. 4 structure.
	f := wiField(NetB)
	at := Epoch.Add(12 * time.Hour)
	center := geo.Madison().Center()
	c0 := f.At(center, at).CapacityKbps
	near := f.At(center.Offset(45, 50), at).CapacityKbps
	if rel := math.Abs(near-c0) / c0; rel > 0.03 {
		t.Fatalf("capacity changed %.1f%% over 50 m", rel*100)
	}
	// Sample many distant pairs; at least some should differ by > 10%.
	diffs := 0
	for i := 0; i < 20; i++ {
		far := f.At(center.Offset(float64(i)*18, 5000+float64(i)*200), at).CapacityKbps
		if math.Abs(far-c0)/c0 > 0.10 {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("capacity surface looks flat at 5 km scale")
	}
}

func TestInZoneRelativeDeviation(t *testing.T) {
	// Within a 250 m zone the spatial relative standard deviation of mean
	// capacity should be small (paper: ~4% for 80% of zones at this radius,
	// which includes temporal effects; the pure spatial part must be well
	// under that).
	// Individual zones on coverage-patch edges can vary more (that is the
	// Fig. 9 tail), so check the median over a spread of candidate zones.
	f := wiField(NetB)
	at := Epoch.Add(12 * time.Hour)
	var rels []float64
	for c := 0; c < 20; c++ {
		center := geo.Madison().Center().Offset(float64(c*37%360), 600+float64(c)*520)
		var vals []float64
		for i := 0; i < 60; i++ {
			bearing := float64(i) * 6
			dist := 250 * float64(i%6) / 6
			vals = append(vals, f.At(center.Offset(bearing, dist), at).CapacityKbps)
		}
		rels = append(rels, stats.RelStdDev(vals))
	}
	if med := stats.Median(rels); med > 0.055 {
		t.Fatalf("median in-zone spatial relative deviation %.3f too high (%v)", med, rels)
	}
}

func TestTemporalDriftScale(t *testing.T) {
	// The mean capacity at a fixed clean place should move on epoch
	// timescales but only a few percent per half hour (paper Table 4:
	// coarse bins are stable). Troubled zones (the Fig. 9 population) are
	// exempt by design.
	f := wiField(NetB)
	p := geo.Madison().Center()
	for i := 0; f.Troubled(p) && i < 300; i++ {
		p = geo.Madison().Center().Offset(float64(i*29%360), float64(i)*90)
	}
	var halfHourDeltas []float64
	var dayRange []float64
	for d := 0; d < 20; d++ {
		base := Epoch.Add(time.Duration(d*24+9) * time.Hour)
		c0 := f.At(p, base).CapacityKbps
		c1 := f.At(p, base.Add(30*time.Minute)).CapacityKbps
		halfHourDeltas = append(halfHourDeltas, math.Abs(c1-c0)/c0)
		dayRange = append(dayRange, c0)
	}
	if m := stats.Mean(halfHourDeltas); m > 0.05 {
		t.Fatalf("mean 30-minute drift %.3f too large", m)
	}
	if r := stats.RelStdDev(dayRange); r <= 0 || r > 0.15 {
		t.Fatalf("day-to-day variation %.3f outside (0, 0.15]", r)
	}
}

func TestDiurnalDip(t *testing.T) {
	f := wiField(NetB)
	p := geo.Madison().Center()
	day := Epoch.Add(72 * time.Hour)
	morning := f.At(p, day.Add(5*time.Hour)).CapacityKbps
	evening := f.At(p, day.Add(19*time.Hour)).CapacityKbps
	// Evening peak-hour capacity should be lower on average; drift can mask
	// it at a single instant, so average over days.
	var mSum, eSum float64
	for d := 0; d < 30; d++ {
		b := Epoch.Add(time.Duration(d) * 24 * time.Hour)
		mSum += f.At(p, b.Add(5*time.Hour)).CapacityKbps
		eSum += f.At(p, b.Add(19*time.Hour)).CapacityKbps
	}
	if eSum >= mSum {
		t.Fatalf("expected evening dip: morning avg %.0f, evening avg %.0f (single day %.0f/%.0f)",
			mSum/30, eSum/30, morning, evening)
	}
}

func TestTroubledZonesExistButRare(t *testing.T) {
	f := wiField(NetB)
	box := geo.Madison()
	grid := geo.GridForZoneRadius(box.Center(), 250)
	zones := grid.ZonesInBox(box)
	troubled := 0
	for _, z := range zones {
		if f.Troubled(grid.Center(z)) {
			troubled++
		}
	}
	frac := float64(troubled) / float64(len(zones))
	if frac == 0 {
		t.Fatal("no troubled zones at all; Fig. 9 needs some")
	}
	if frac > 0.30 {
		t.Fatalf("%.0f%% of zones troubled; should be a small minority", frac*100)
	}
}

func TestTroubledZoneBehaviour(t *testing.T) {
	f := wiField(NetB)
	box := geo.Madison()
	grid := geo.GridForZoneRadius(box.Center(), 250)
	var troubled, clean *Conditions
	at := Epoch.Add(24 * time.Hour)
	for _, z := range grid.ZonesInBox(box) {
		c := f.At(grid.Center(z), at)
		if c.Troubled && troubled == nil {
			cc := c
			troubled = &cc
		}
		if !c.Troubled && clean == nil {
			cc := c
			clean = &cc
		}
		if troubled != nil && clean != nil {
			break
		}
	}
	if troubled == nil || clean == nil {
		t.Fatal("need both troubled and clean zones")
	}
	if troubled.PingFailProb <= clean.PingFailProb {
		t.Fatal("troubled zones must fail pings more often")
	}
	if troubled.LossProb <= clean.LossProb {
		t.Fatal("troubled zones must lose more packets")
	}
}

func TestTroubledZoneHighVariance(t *testing.T) {
	// Capacity in a troubled zone should swing widely over hours (the gate),
	// producing the Fig. 9 relative deviations of 20-60%.
	f := wiField(NetB)
	box := geo.Madison()
	grid := geo.GridForZoneRadius(box.Center(), 250)
	var troubledPt, cleanPt *geo.Point
	for _, z := range grid.ZonesInBox(box) {
		c := grid.Center(z)
		if f.Troubled(c) && troubledPt == nil {
			cc := c
			troubledPt = &cc
		}
		if !f.Troubled(c) && cleanPt == nil {
			cc := c
			cleanPt = &cc
		}
	}
	series := func(p geo.Point) []float64 {
		var out []float64
		for i := 0; i < 400; i++ {
			out = append(out, f.At(p, Epoch.Add(time.Duration(i)*30*time.Minute)).CapacityKbps)
		}
		return out
	}
	relTroubled := stats.RelStdDev(series(*troubledPt))
	relClean := stats.RelStdDev(series(*cleanPt))
	if relTroubled < 2*relClean {
		t.Fatalf("troubled zone rel dev %.3f not clearly above clean %.3f", relTroubled, relClean)
	}
	if relTroubled < 0.15 {
		t.Fatalf("troubled zone rel dev %.3f too tame for Fig. 9", relTroubled)
	}
}

func TestFootballGameEvent(t *testing.T) {
	f := wiField(NetB)
	gameStart := Epoch.Add(40*24*time.Hour + 13*time.Hour) // a Saturday afternoon
	f.AddEvent(FootballGame(gameStart))

	before := f.At(geo.CampRandallStadium, gameStart.Add(-2*time.Hour))
	during := f.At(geo.CampRandallStadium, gameStart.Add(90*time.Minute))
	after := f.At(geo.CampRandallStadium, gameStart.Add(5*time.Hour))

	if during.RTTMs < 3*before.RTTMs {
		t.Fatalf("game should raise RTT ~3.7x: before %.0f, during %.0f", before.RTTMs, during.RTTMs)
	}
	if !during.InEvent() || before.InEvent() || after.InEvent() {
		t.Fatal("event activity window wrong")
	}
	if during.CapacityKbps >= before.CapacityKbps {
		t.Fatal("game should depress capacity")
	}
	// Far away, the game is invisible.
	farPoint := geo.CampRandallStadium.Offset(90, 5000)
	far := f.At(farPoint, gameStart.Add(90*time.Minute))
	if far.InEvent() {
		t.Fatal("event should be local to the stadium")
	}
}

func TestRegionPersonalities(t *testing.T) {
	wi := Preset(NetB, RegionWI, testSeed)
	nj := Preset(NetB, RegionNJ, testSeed)
	if nj.DriftSigmaRel <= wi.DriftSigmaRel {
		t.Fatal("NJ must drift harder than WI")
	}
	if nj.MeanKbps <= wi.MeanKbps {
		t.Fatal("NJ throughput should be higher (Table 3)")
	}
	if wi.Seed == nj.Seed {
		t.Fatal("region fields must have distinct seeds")
	}
}

func TestPresetTable1Shapes(t *testing.T) {
	// NetA is HSPA with a higher ceiling; NetB/NetC are EV-DO at 3.1 Mbps.
	a := Preset(NetA, RegionWI, testSeed)
	b := Preset(NetB, RegionWI, testSeed)
	c := Preset(NetC, RegionWI, testSeed)
	if a.MaxKbps != 7200 || b.MaxKbps != 3100 || c.MaxKbps != 3100 {
		t.Fatal("technology ceilings must match Table 1")
	}
	if !(a.JitterMs > b.JitterMs && a.JitterMs > c.JitterMs) {
		t.Fatal("NetA jitter should be the highest (Table 3: ~7 ms vs ~3 ms)")
	}
	if !(a.MeanKbps > c.MeanKbps && c.MeanKbps > b.MeanKbps) {
		t.Fatal("mean ordering should be NetA > NetC > NetB (Table 3 WI)")
	}
}

func TestEnvironment(t *testing.T) {
	env := NewEnvironment(AllNetworks, RegionWI, testSeed, geo.Madison().Center())
	if len(env.Networks()) != 3 {
		t.Fatalf("networks: %v", env.Networks())
	}
	if env.Field(NetA) == nil || env.Field(NetB) == nil || env.Field(NetC) == nil {
		t.Fatal("missing fields")
	}
	if env.Field("NetX") != nil {
		t.Fatal("unknown network should be nil")
	}
	// Event propagation.
	start := Epoch.Add(10 * 24 * time.Hour)
	env.AddEvent(FootballGame(start))
	for _, n := range AllNetworks {
		c := env.Field(n).At(geo.CampRandallStadium, start.Add(time.Hour))
		if !c.InEvent() {
			t.Fatalf("event not applied to %s", n)
		}
	}
}

func TestAllanStructure(t *testing.T) {
	// The core calibration: *measured* every minute at a fixed WI location
	// (field mean plus the per-sample fading simnet applies), the series
	// must have a U-shaped normalized Allan curve with its minimum at tens
	// of minutes — not at the smallest or largest window.
	f := wiField(NetB)
	windows := stats.LogSpacedWindows(1, 1000, 25) // the paper's Fig. 6 x-range
	var minima []float64
	for loc := 0; loc < 12; loc++ {
		r := rng.New(uint64(77 + loc))
		p := geo.Madison().Center().Offset(float64(loc)*30, 500+float64(loc)*950)
		series := make([]float64, 14*24*60) // two weeks at 1-minute sampling
		for i := range series {
			c := f.At(p, Epoch.Add(time.Duration(i)*time.Minute))
			// A 100-packet UDP sample lasts ~1 s, so its fading deviation is
			// FastSigmaRel scaled by sqrt(tau/(tau+T)) ~ 0.76 (see simnet).
			eff := c.FastSigmaRel * 0.76
			series[i] = c.CapacityKbps * (1 + eff*r.NormFloat64())
		}
		best, _ := stats.MinAllanWindow(series, windows)
		minima = append(minima, float64(best))
	}
	med := stats.Median(minima)
	if med < 20 || med > 300 {
		t.Fatalf("WI median Allan minimum at %v minutes (%v); want tens-of-minutes scale", med, minima)
	}
}

func BenchmarkFieldAt(b *testing.B) {
	f := wiField(NetB)
	p := geo.Madison().Center()
	at := Epoch.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.At(p, at.Add(time.Duration(i)*time.Second))
	}
}
