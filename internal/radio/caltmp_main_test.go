package radio

// Calibration probe run as a test (removed tooling; invoke with -run Calib -v).

import (
	"sort"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestCalibProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, kind := range []RegionKind{RegionWI, RegionNJ} {
		origin := geo.Madison().Center()
		if kind == RegionNJ {
			origin = geo.NJStaticSites()[0]
		}
		f := NewPresetField(NetB, kind, 1011, origin)
		var mins []float64
		for loc := 0; loc < 10; loc++ {
			r := rng.New(uint64(77 + loc))
			pt := origin.Offset(float64(loc)*30, 500+float64(loc)*950)
			series := make([]float64, 21*24*60)
			for i := range series {
				c := f.At(pt, Epoch.Add(time.Duration(i)*time.Minute))
				// effective 100-pkt UDP sample noise incl duration averaging
				eff := c.FastSigmaRel * 0.764
				series[i] = c.CapacityKbps * (1 + eff*r.NormFloat64())
			}
			best, _ := stats.MinAllanWindow(series, stats.LogSpacedWindows(1, 1000, 25))
			mins = append(mins, float64(best))
		}
		sort.Float64s(mins)
		t.Logf("kind=%v minima=%v median=%v", kind, mins, mins[len(mins)/2])
	}
}
