package radio

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Field is the deterministic ground truth of one network over one region.
// It is safe for concurrent use: evaluation is pure (all state is immutable
// after construction).
type Field struct {
	params Params
	proj   *geo.Projection
	events []Event
	net    NetworkID // label carried into Conditions

	capNoise     *rng.Noise2D // spatial capacity surface
	rttNoise     *rng.Noise2D // spatial latency surface
	troubleNoise *rng.Noise2D // trouble-spot mask
	coverNoise   *rng.Noise2D // weak-coverage patch mask
	wanderNoise  *rng.Noise2D // per-cell load wander (red spectrum, minutes to days)
	gateNoise    *rng.Noise2D // troubled-zone deep-fade gate
}

// NewField builds a ground-truth field with the given parameters, centered
// on origin.
func NewField(p Params, origin geo.Point) *Field {
	if p.SpatialCorrM <= 0 {
		p.SpatialCorrM = 2500
	}
	if p.MaxKbps <= 0 {
		p.MaxKbps = math.Inf(1)
	}
	return &Field{
		params:       p,
		proj:         geo.NewProjection(origin),
		capNoise:     rng.NewNoise2D(rng.Hash64(p.Seed, 1), 4, 0.55, 2.1),
		rttNoise:     rng.NewNoise2D(rng.Hash64(p.Seed, 2), 3, 0.5, 2.0),
		troubleNoise: rng.NewNoise2D(rng.Hash64(p.Seed, 3), 3, 0.5, 2.0),
		coverNoise:   rng.NewNoise2D(rng.Hash64(p.Seed, 9), 2, 0.45, 2.0),
		wanderNoise:  rng.NewNoise2D(rng.Hash64(p.Seed, 4), 11, 0.9, 2.0),
		gateNoise:    rng.NewNoise2D(rng.Hash64(p.Seed, 5), 2, 0.5, 2.0),
	}
}

// NewPresetField builds a field from Preset(net, kind, seed) centered on
// origin.
func NewPresetField(net NetworkID, kind RegionKind, seed uint64, origin geo.Point) *Field {
	f := NewField(Preset(net, kind, seed), origin)
	f.net = net
	return f
}

// Network returns the label set by NewPresetField (empty for NewField).
func (f *Field) Network() NetworkID { return f.net }

// AddEvent overlays an event on the field. Not safe to call concurrently
// with At; add events during setup.
func (f *Field) AddEvent(e Event) { f.events = append(f.events, e) }

// Params returns the field's parameters.
func (f *Field) Params() Params { return f.params }

// minutesSinceEpoch converts a time to simulation minutes.
func minutesSinceEpoch(t time.Time) float64 {
	return t.Sub(Epoch).Minutes()
}

// spatialCapacity returns the time-invariant mean capacity surface at local
// coordinates (x, y) meters.
func (f *Field) spatialCapacity(x, y float64) float64 {
	n := f.capNoise.At(x/f.params.SpatialCorrM, y/f.params.SpatialCorrM)
	c := f.params.MeanKbps * (1 + f.params.SpatialAmp*n)
	if c < f.params.MeanKbps*0.1 {
		c = f.params.MeanKbps * 0.1
	}
	return math.Min(c, f.params.MaxKbps)
}

// driftCellM is the spatial granularity at which temporal drift decorrelates
// (base stations serve areas of roughly this size).
const driftCellM = 2000.0

// wanderPeriodMin is the base (longest) period of the load wander. With
// eleven octaves the wander has spectral content from four days down to ~6
// minutes, a red spectrum matching the nonstationary load real cellular
// networks show at every timescale the paper measured. Keeping the base
// period well above the Allan sweep ceiling (1000 min) avoids a spurious
// deviation dip at the right edge of Fig. 6.
const wanderPeriodMin = 5760 // four days

// cellWander returns one drift cell's load-wander value at time t, with a
// per-cell amplitude jitter in [0.7, 1.3]: some zones drift harder and
// therefore get shorter epochs, as the paper observes.
func (f *Field) cellWander(cx, cy int64, tMin float64) float64 {
	h := rng.Hash64(f.params.Seed, 6, uint64(cx), uint64(cy))
	row := float64(h%100000) + 0.5
	amp := 0.7 + 0.6*float64(h>>32%1000)/1000
	return amp * f.wanderNoise.At(tMin/wanderPeriodMin, row)
}

// drift returns the multiplicative load-drift factor at local coordinates
// and time t: a bilinear blend of the four surrounding drift cells' load
// wanders, so the field is spatially smooth (clients moving within a zone
// see one coherent load history, not hard cell edges). The wander amplitude
// (DriftSigmaRel) against the white measurement noise (FastSigmaRel) sets
// where each zone's Allan-deviation minimum falls: the calibrated presets
// put it near 75 minutes in Madison and near 15 minutes in New Brunswick
// (Fig. 6), with natural per-zone spread.
func (f *Field) drift(x, y float64, tMin float64) float64 {
	gx := x/driftCellM - 0.5
	gy := y/driftCellM - 0.5
	x0 := math.Floor(gx)
	y0 := math.Floor(gy)
	tx := gx - x0
	ty := gy - y0
	cx := int64(x0)
	cy := int64(y0)
	w00 := f.cellWander(cx, cy, tMin)
	w10 := f.cellWander(cx+1, cy, tMin)
	w01 := f.cellWander(cx, cy+1, tMin)
	w11 := f.cellWander(cx+1, cy+1, tMin)
	top := w00 + (w10-w00)*tx
	bot := w01 + (w11-w01)*tx
	n := top + (bot-top)*ty
	return 1 + f.params.DriftSigmaRel*2*n
}

// diurnal returns the time-of-day load factor in (0, 1]: capacity dips by
// DiurnalAmp at evening peak.
func (f *Field) diurnal(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	// Peak load around 19:00, trough around 05:00.
	load := (1 + math.Cos((hour-19)/24*2*math.Pi)) / 2 // in [0,1], max at 19h
	return 1 - f.params.DiurnalAmp*load
}

// coverWeakness returns the weak-coverage degree in [0, 1] at local
// coordinates: 0 in well-covered areas, ramping smoothly to 1 deep inside a
// weak patch. Patches are ~2 km features with soft 500 m edges, so zones
// are almost always uniformly inside or outside one.
func (f *Field) coverWeakness(x, y float64) float64 {
	const coverCorrM = 4200
	v := f.coverNoise.At01(x/coverCorrM, y/coverCorrM)
	th := f.params.CoverageThreshold
	const band = 0.012 // sharp cell-boundary edge (~150 m transition)
	switch {
	case v <= th-band:
		return 0
	case v >= th+band:
		return 1
	default:
		t := (v - (th - band)) / (2 * band)
		return t * t * (3 - 2*t) // smoothstep
	}
}

// troubleAt returns whether local coordinates lie in a trouble spot.
func (f *Field) troubleAt(x, y float64) bool {
	const troubleCorrM = 1200 // trouble spots are smaller features
	return f.troubleNoise.At01(x/troubleCorrM, y/troubleCorrM) > f.params.TroubleThreshold
}

// gate returns the deep-fade capacity gate for troubled zones: a value in
// [TroubleGateMin, 1] with ~20-minute coherence, producing the large
// throughput variance of Fig. 9's failed-ping zones.
func (f *Field) gate(x, y float64, tMin float64) float64 {
	cx := math.Floor(x / driftCellM)
	cy := math.Floor(y / driftCellM)
	row := float64(rng.Hash64(f.params.Seed, 7, uint64(int64(cx)), uint64(int64(cy)))%100000) + 0.5
	n := f.gateNoise.At01(tMin/20, row)
	return f.params.TroubleGateMin + (1-f.params.TroubleGateMin)*n
}

// At evaluates the ground truth at a location and time.
func (f *Field) At(p geo.Point, t time.Time) Conditions {
	x, y := f.proj.ToXY(p)
	tMin := minutesSinceEpoch(t)

	capacity := f.spatialCapacity(x, y) * f.drift(x, y, tMin) * f.diurnal(t)
	weak := f.coverWeakness(x, y)
	capacity *= 1 - f.params.CoverageCapLoss*weak

	rttN := f.rttNoise.At(x/f.params.SpatialCorrM, y/f.params.SpatialCorrM)
	rtt := f.params.BaseRTTMs * (1 + f.params.RTTSpatialAmp*rttN)
	if floor := f.params.BaseRTTMs * 0.3; rtt < floor {
		rtt = floor
	}
	rtt *= 1 + f.params.CoverageRTTGain*weak
	// Latency rises slightly when capacity drifts down (load coupling,
	// damped: latency wander is milder than throughput wander).
	rtt *= 1 + 0.3*(1-f.drift(x, y, tMin))

	jitter := f.params.JitterMs
	loss := f.params.LossProb
	pingFail := f.params.BasePingFail

	troubled := f.troubleAt(x, y)
	if troubled {
		capacity *= f.gate(x, y, tMin)
		loss = f.params.TroubleLossProb
		pingFail = f.params.TroublePingFail
		jitter *= 1.5
	}

	c := Conditions{
		Network:      f.net,
		RTTMs:        rtt,
		JitterMs:     jitter,
		LossProb:     loss,
		PingFailProb: pingFail,
		FastSigmaRel: f.params.FastSigmaRel,
		Troubled:     troubled,
	}

	for _, e := range f.events {
		if e.Active(p, t) {
			c.inEvent = true
			if e.RTTFactor > 0 {
				c.RTTMs *= e.RTTFactor
			}
			if e.CapacityFactor > 0 {
				capacity *= e.CapacityFactor
			}
			if e.JitterFactor > 0 {
				c.JitterMs *= e.JitterFactor
			}
			c.LossProb += e.ExtraLoss
		}
	}

	if capacity < 1 {
		capacity = 1
	}
	c.CapacityKbps = math.Min(capacity, f.params.MaxKbps)
	c.TCPKbps = c.CapacityKbps * f.params.TCPFactor
	// Uplink shares the downlink's signal conditions (same towers, same
	// load), scaled to the technology's asymmetry.
	if f.params.UplinkFrac > 0 {
		up := c.CapacityKbps * f.params.UplinkFrac
		if f.params.UplinkMax > 0 {
			up = math.Min(up, f.params.UplinkMax)
		}
		c.UplinkKbps = up
	}
	return c
}

// Troubled reports whether p lies in a trouble spot (time-invariant mask).
func (f *Field) Troubled(p geo.Point) bool {
	x, y := f.proj.ToXY(p)
	return f.troubleAt(x, y)
}

// Environment bundles the per-network fields a campaign measures against.
type Environment struct {
	fields map[NetworkID]*Field
}

// NewEnvironment builds preset fields for the given networks over a region,
// all derived from one campaign seed.
func NewEnvironment(nets []NetworkID, kind RegionKind, seed uint64, origin geo.Point) *Environment {
	env := &Environment{fields: make(map[NetworkID]*Field, len(nets))}
	for _, n := range nets {
		env.fields[n] = NewPresetField(n, kind, seed, origin)
	}
	return env
}

// Field returns the ground-truth field for a network, or nil if the network
// is not part of this environment.
func (e *Environment) Field(n NetworkID) *Field {
	return e.fields[n]
}

// Networks lists the environment's networks in canonical order.
func (e *Environment) Networks() []NetworkID {
	var out []NetworkID
	for _, n := range AllNetworks {
		if _, ok := e.fields[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// AddEvent overlays an event on every network in the environment (a stadium
// crowd loads all carriers).
func (e *Environment) AddEvent(ev Event) {
	for _, f := range e.fields {
		f.AddEvent(ev)
	}
}
