// Package radio simulates the ground truth of wide-area cellular networks:
// for any (location, time) it answers "what would a client experience
// here, now?" on a given network.
//
// The paper measured three commercial networks (Table 1): NetA (GSM HSPA,
// downlink <= 7.2 Mbps) and NetB/NetC (CDMA2000 1xEV-DO Rev. A, downlink
// <= 3.1 Mbps) for over a year. That data is not available, so this package
// builds a synthetic substitute with the statistical structure the paper
// reports:
//
//   - spatially smooth performance surfaces (low in-zone relative standard
//     deviation, rising slowly with zone radius — Fig. 4),
//   - stable coarse-timescale behaviour with much noisier fine timescales
//     (Table 4), with a drift/noise crossover that puts the Allan-deviation
//     minimum at tens of minutes (Fig. 6),
//   - a small population of "troubled" zones with ping failures and high
//     throughput variance (Fig. 9),
//   - localized transient events such as the football-game latency surge
//     (Fig. 10),
//   - per-network independent spatial structure, producing persistent
//     network dominance in most zones (Figs. 11-13).
//
// All randomness is derived deterministically from the field seed, so the
// same (seed, location, time) always yields the same conditions.
package radio

import (
	"time"

	"repro/internal/geo"
)

// NetworkID names one of the monitored cellular networks.
type NetworkID string

// The paper's three anonymized nation-wide carriers.
const (
	NetA NetworkID = "NetA" // GSM HSPA, downlink <= 7.2 Mbps
	NetB NetworkID = "NetB" // CDMA2000 1xEV-DO Rev. A, downlink <= 3.1 Mbps
	NetC NetworkID = "NetC" // CDMA2000 1xEV-DO Rev. A, downlink <= 3.1 Mbps
)

// AllNetworks lists the three networks in canonical order.
var AllNetworks = []NetworkID{NetA, NetB, NetC}

// Epoch is the simulation time origin (start of the paper's data
// collection, fall 2010). All temporal processes are phased from it.
var Epoch = time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)

// Params describes the statistical personality of one network's ground
// truth field. The defaults in Preset are calibrated so that the WiScape
// analysis pipeline reproduces the paper's reported shapes; they are inputs
// to the simulation, never outputs reported by experiments.
type Params struct {
	Seed uint64

	// Spatial structure.
	MeanKbps     float64 // area-wide mean downlink UDP capacity
	MaxKbps      float64 // technology ceiling (Table 1)
	SpatialAmp   float64 // fractional amplitude of the spatial capacity surface
	SpatialCorrM float64 // spatial correlation length in meters

	// Transport.
	TCPFactor float64 // TCP throughput as a fraction of UDP capacity

	// Uplink. The paper collected uplink measurements too but analyses the
	// downlink (most traffic is downlink); the model carries both.
	UplinkFrac float64 // uplink capacity as a fraction of downlink
	UplinkMax  float64 // technology uplink ceiling (Table 1)

	// Latency.
	BaseRTTMs     float64 // typical UDP ping RTT
	RTTSpatialAmp float64 // fractional spatial variation of RTT
	JitterMs      float64 // IPDV jitter scale (Table 3: ~3 ms EV-DO, ~7 ms HSPA)

	// Loss.
	LossProb float64 // steady-state packet loss probability (paper: < 1%)

	// Temporal structure.
	DiurnalAmp    float64 // fractional capacity dip at peak hours
	FastSigmaRel  float64 // relative sigma of second-scale fading (drives Table 4 "short")
	DriftSigmaRel float64 // relative sigma of the red-spectrum load wander; its
	// ratio to FastSigmaRel sets where the Allan-deviation minimum (the
	// zone epoch) falls

	// Per-network weak-coverage patches: static km-scale regions where this
	// network's signal is poor (capacity down, latency up). Independent
	// across networks, these create the per-zone winner diversity behind
	// persistent dominance (Figs. 11-13) and the multi-network application
	// gains (Fig. 14, Table 6).
	CoverageThreshold float64 // mask quantile in (0,1); lower = more weak area
	CoverageCapLoss   float64 // fractional capacity loss deep inside a patch
	CoverageRTTGain   float64 // fractional RTT increase deep inside a patch

	// Trouble spots (Fig. 9).
	TroubleThreshold float64 // trouble-field quantile threshold in (0,1); higher = fewer troubled zones
	TroubleGateMin   float64 // deepest capacity fade inside troubled zones (fraction)
	TroublePingFail  float64 // per-ping failure probability in troubled zones
	TroubleLossProb  float64 // packet loss probability in troubled zones
	BasePingFail     float64 // per-ping failure probability elsewhere
}

// RegionKind selects a temporal personality. The paper found Madison (WI)
// locations stable over ~75-minute epochs while New Brunswick (NJ) locations
// varied faster (~15-minute epochs) with roughly twice the throughput
// variance (§3.2.2, Table 3).
type RegionKind int

const (
	// RegionWI is the stable Madison-like personality.
	RegionWI RegionKind = iota
	// RegionNJ is the faster-varying New Jersey personality.
	RegionNJ
)

// Preset returns calibrated parameters for a network in a region. seed
// namespaces the whole field; two fields built from the same (net, kind,
// seed) are identical.
func Preset(net NetworkID, kind RegionKind, seed uint64) Params {
	p := Params{
		Seed:              fieldSeed(seed, net, kind),
		TCPFactor:         0.95,
		SpatialAmp:        0.90,
		SpatialCorrM:      2500,
		RTTSpatialAmp:     1.10,
		LossProb:          0.002,
		DiurnalAmp:        0.06,
		CoverageThreshold: 0.62,
		CoverageCapLoss:   0.55,
		CoverageRTTGain:   0.90,
		TroubleThreshold:  0.72,
		TroubleGateMin:    0.25,
		TroublePingFail:   0.25,
		TroubleLossProb:   0.015,
		BasePingFail:      0.0002,
	}
	switch net {
	case NetA:
		p.MeanKbps = 1150
		p.MaxKbps = 7200
		p.UplinkFrac = 0.28 // HSPA uplink <= 1.2 Mbps
		p.UplinkMax = 1200
		p.BaseRTTMs = 140
		p.JitterMs = 7.4
		// NetA clients see more variation (paper §3.3.1: NetA needs the most
		// packets for an accurate estimate), and HSPA coverage is patchier
		// than EV-DO: strong near its towers, weak at the edges — which is
		// what lets NetB/NetC dominate some road zones (Fig. 12) despite
		// NetA's higher mean.
		p.FastSigmaRel = 0.10
		p.SpatialAmp = 1.3
	case NetB:
		p.MeanKbps = 900
		p.MaxKbps = 3100
		p.UplinkFrac = 0.55 // EV-DO Rev. A uplink <= 1.8 Mbps
		p.UplinkMax = 1800
		p.BaseRTTMs = 113 // Fig. 10 baseline
		p.JitterMs = 3.0
		p.FastSigmaRel = 0.07
	case NetC:
		p.MeanKbps = 1060
		p.MaxKbps = 3100
		p.UplinkFrac = 0.50
		p.UplinkMax = 1800
		p.BaseRTTMs = 125
		p.JitterMs = 3.4
		p.FastSigmaRel = 0.06
	default:
		p.MeanKbps = 1000
		p.MaxKbps = 3100
		p.UplinkFrac = 0.5
		p.UplinkMax = 1800
		p.BaseRTTMs = 120
		p.JitterMs = 3.0
		p.FastSigmaRel = 0.07
	}
	switch kind {
	case RegionNJ:
		// Larger, faster-acting drift: Allan minimum near 15 minutes,
		// higher coarse-timescale variance (Table 3 NJ columns), higher
		// throughput.
		p.DriftSigmaRel = 0.45
		p.FastSigmaRel *= 1.15
		p.MeanKbps *= 1.7
	default:
		// Stable Madison personality: Allan minimum near 75 minutes.
		p.DriftSigmaRel = 0.070
	}
	return p
}

// fieldSeed derives a deterministic per-(net, region) seed from a campaign
// seed.
func fieldSeed(seed uint64, net NetworkID, kind RegionKind) uint64 {
	h := uint64(kind) + 0x9e37
	for i := 0; i < len(net); i++ {
		h = h*131 + uint64(net[i])
	}
	return seed*0x9e3779b97f4a7c15 + h
}

// Conditions is the ground truth at one (location, time): the parameters a
// measurement taken here-and-now would be drawn from.
type Conditions struct {
	Network NetworkID

	CapacityKbps float64 // instantaneous mean UDP downlink capacity
	TCPKbps      float64 // instantaneous mean TCP downlink throughput
	UplinkKbps   float64 // instantaneous mean UDP uplink capacity
	RTTMs        float64 // mean UDP ping round-trip time
	JitterMs     float64 // IPDV jitter scale
	LossProb     float64 // per-packet loss probability
	PingFailProb float64 // probability a ping probe fails entirely
	FastSigmaRel float64 // relative sigma of per-sample fading around the means
	Troubled     bool    // inside a trouble spot (Fig. 9 population)

	inEvent bool
}

// InEvent reports whether an event overlay (e.g. the stadium surge) is
// active at this location and time.
func (c Conditions) InEvent() bool { return c.inEvent }

// Event is a localized, time-bounded disturbance overlaid on a field — the
// football game of Fig. 10 raises latency ~3.7x for ~3 hours around the
// stadium.
type Event struct {
	Name    string
	Center  geo.Point
	RadiusM float64
	Start   time.Time
	End     time.Time

	// Multipliers applied inside the event's space-time extent.
	RTTFactor      float64 // e.g. 3.7
	CapacityFactor float64 // e.g. 0.5
	JitterFactor   float64 // e.g. 2
	ExtraLoss      float64 // added loss probability
}

// Active reports whether the event covers (p, t).
func (e Event) Active(p geo.Point, t time.Time) bool {
	if t.Before(e.Start) || !t.Before(e.End) {
		return false
	}
	return e.Center.DistanceTo(p) <= e.RadiusM
}

// FootballGame returns the Fig. 10 event: a game-day crowd of 80,000 at
// Camp Randall driving mean ping latency from ~113 ms to ~418 ms for about
// three hours on the networks serving the stadium area.
func FootballGame(start time.Time) Event {
	return Event{
		Name:           "football-game",
		Center:         geo.CampRandallStadium,
		RadiusM:        1200,
		Start:          start,
		End:            start.Add(3*time.Hour + 20*time.Minute),
		RTTFactor:      3.7,
		CapacityFactor: 0.45,
		JitterFactor:   2.0,
		ExtraLoss:      0.004,
	}
}
