package replication

import "repro/internal/telemetry"

// sourceMetrics holds the primary side's resolved instruments. Every field
// is nil-safe, so the stream path updates them unconditionally.
type sourceMetrics struct {
	attaches       *telemetry.Counter
	recordsShipped *telemetry.Counter
	snapshotsSent  *telemetry.Counter
}

// newSourceMetrics registers the source families on reg. The connected
// replica gauge is computed at scrape time from the live conn set, so
// there is no update site to forget.
func newSourceMetrics(reg *telemetry.Registry, connected func() int) sourceMetrics {
	reg.GaugeFunc("wiscape_replication_connected_replicas",
		"Replica streams currently attached to this primary.",
		func() float64 { return float64(connected()) })
	return sourceMetrics{
		attaches: reg.Counter("wiscape_replication_attaches_total",
			"Replica handshakes accepted by this primary.").With(),
		recordsShipped: reg.Counter("wiscape_replication_records_shipped_total",
			"WAL records streamed to replicas (counted per replica stream).").With(),
		snapshotsSent: reg.Counter("wiscape_replication_snapshots_sent_total",
			"Snapshot bootstraps shipped to replicas (first attach or resync).").With(),
	}
}

// replicaMetrics holds the consumer side's resolved instruments.
type replicaMetrics struct {
	recordsApplied *telemetry.Counter
	resyncs        *telemetry.Counter
	reconnects     *telemetry.Counter
}

// newReplicaMetrics registers the replica families on reg. The lag gauge —
// the cluster tier's catch-up signal — is computed at scrape time from the
// replica's own Status.
func newReplicaMetrics(reg *telemetry.Registry, status func() Status) replicaMetrics {
	reg.GaugeFunc("wiscape_replication_lag_records",
		"Catch-up distance in records: primary's last LSN minus applied LSN.",
		func() float64 { return float64(status().Lag) })
	reg.GaugeFunc("wiscape_replication_applied_lsn",
		"Last LSN applied by this replica.",
		func() float64 { return float64(status().AppliedLSN) })
	return replicaMetrics{
		recordsApplied: reg.Counter("wiscape_replication_records_applied_total",
			"WAL records applied from the primary's stream.").With(),
		resyncs: reg.Counter("wiscape_replication_resyncs_total",
			"Snapshot bootstraps applied (first attach or forced resync).").With(),
		reconnects: reg.Counter("wiscape_replication_reconnects_total",
			"Stream drops followed by a redial.").With(),
	}
}
