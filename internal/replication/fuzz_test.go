package replication

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// frameBytes encodes one frame exactly as the wire does.
func frameBytes(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, typ, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameRoundTrip feeds arbitrary bytes through readFrame and checks
// two invariants: every frame that parses re-encodes to exactly the
// bytes consumed, and every typed payload that decodes re-encodes to
// the identical payload. The seed corpus covers all six frame types.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(frameBytes(f, frameHello, encodeHello(hello{from: 42, id: "replica-a"})))
	f.Add(frameBytes(f, frameHello, encodeHello(hello{from: 0, id: ""})))
	f.Add(frameBytes(f, frameSnapshot, encodeSnapshot(7, []byte(`{"zones":{}}`))))
	f.Add(frameBytes(f, frameRecords, encodeRecords([]record{
		{lsn: 1, body: []byte(`{"rssi":-70}`)},
		{lsn: 2, body: nil},
	})))
	f.Add(frameBytes(f, frameRecords, encodeRecords(nil)))
	f.Add(frameBytes(f, frameHeartbeat, encodeU64(99)))
	f.Add(frameBytes(f, frameAck, encodeU64(3)))
	f.Add(frameBytes(f, frameReject, []byte("version 9 unsupported")))
	// Truncated header and oversized-length headers must error, not panic.
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, frameHello})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			// Malformed input is fine; it must just be rejected cleanly.
			return
		}
		consumed := 5 + len(payload)
		if consumed > len(data) {
			t.Fatalf("readFrame claims %d bytes from a %d-byte input", consumed, len(data))
		}

		// Frame-level round trip: re-encoding what we read must
		// reproduce the consumed prefix byte for byte.
		if got := frameBytes(t, typ, payload); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("frame round trip drifted:\n got %x\nwant %x", got, data[:consumed])
		}

		// Payload-level round trips for every typed decoder.
		switch typ {
		case frameHello:
			h, err := decodeHello(payload)
			if err != nil {
				return
			}
			if got := encodeHello(h); !bytes.Equal(got, payload) {
				t.Fatalf("hello round trip drifted:\n got %x\nwant %x", got, payload)
			}
		case frameSnapshot:
			lsn, body, err := decodeSnapshot(payload)
			if err != nil {
				return
			}
			if got := encodeSnapshot(lsn, body); !bytes.Equal(got, payload) {
				t.Fatalf("snapshot round trip drifted:\n got %x\nwant %x", got, payload)
			}
		case frameRecords:
			recs, err := decodeRecords(payload)
			if err != nil {
				return
			}
			if got := encodeRecords(recs); !bytes.Equal(got, payload) {
				t.Fatalf("records round trip drifted:\n got %x\nwant %x", got, payload)
			}
		case frameHeartbeat, frameAck:
			v, err := decodeU64(payload)
			if err != nil {
				return
			}
			if got := encodeU64(v); !bytes.Equal(got, payload) {
				t.Fatalf("u64 round trip drifted:\n got %x\nwant %x", got, payload)
			}
		}

		// Whatever follows the first frame must itself read as frames or
		// fail cleanly — the stream parser never panics on trailing junk.
		for {
			if _, _, err := readFrame(br, maxFrameBytes); err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, errBadFrame) {
					t.Fatalf("trailing frame failed with unexpected error: %v", err)
				}
				return
			}
		}
	})
}
