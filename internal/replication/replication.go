// Package replication turns a coordinator shard into a replicated pair:
// a primary streams its write-ahead log (internal/store segments, CRC32
// records) to one or more replicas over a versioned length-prefixed binary
// protocol, and replicas bootstrap from the primary's latest atomic
// checkpoint — sketch bytes included, so per-zone distributions survive the
// hop — then tail the log with acknowledged offsets and a tracked lag.
//
// The package deliberately splits along the wire:
//
//   - Source is the primary side: it serves a replication listener off the
//     shard's durable store, answers each replica's handshake with either a
//     snapshot (when the requested offset was compacted away, or when a
//     resync is forced) or a log stream from the requested LSN, and tracks
//     per-replica acknowledged offsets — the substrate for semi-synchronous
//     acks (WaitCommitted) and for the gateway's freshest-replica choice.
//
//   - Replica is the consumer side: it dials the primary, applies the
//     bootstrap snapshot and then every streamed record through an Applier
//     (the coordinator journals to its own WAL at the primary's LSNs and
//     ingests into its controller), acknowledges applied offsets, and
//     redials with jittered backoff when the stream drops. Replication lag
//     (primary's last LSN minus applied LSN) is exported as the catch-up
//     gauge the cluster tier promotes by.
//
// Protocol (version 1): every frame is u32le payload length, one type
// byte, payload. The replica opens with a hello (magic, version, replica
// id, first wanted LSN — 0 forces a snapshot); the source answers with an
// optional snapshot frame and then record batches and heartbeats; the
// replica sends acks carrying its applied LSN. Either side closes on any
// malformed frame: this is a trusted intra-cluster link, and the CRC-backed
// WAL plus the snapshot's own checksum already guard the payloads.
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic opens every hello frame: "WREP".
	Magic uint32 = 0x57524550

	// Version is the protocol version this package speaks. A source
	// rejects hellos from futures it does not understand.
	Version uint16 = 1
)

// Frame types.
const (
	frameHello     byte = 1 // replica -> source: magic, version, from LSN, id
	frameSnapshot  byte = 2 // source -> replica: covered LSN, snapshot JSON
	frameRecords   byte = 3 // source -> replica: batch of (LSN, sample JSON)
	frameHeartbeat byte = 4 // source -> replica: primary's last LSN
	frameAck       byte = 5 // replica -> source: applied LSN
	frameReject    byte = 6 // source -> replica: refusal message, then close
)

// Frame size caps. Snapshots carry whole-controller state (sketch bytes
// for every zone) and get the generous cap; everything else is small.
const (
	maxFrameBytes         = 8 << 20
	maxSnapshotFrameBytes = 256 << 20
	maxRecordsPerBatch    = 256
)

var (
	// ErrClosed is returned by operations on a closed Source or Replica.
	ErrClosed = errors.New("replication: closed")

	// errBadFrame covers any framing-level protocol violation.
	errBadFrame = errors.New("replication: malformed frame")
)

// writeFrame emits one length-prefixed frame. The writer is expected to be
// buffered by the caller; writeFrame does not flush.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing a per-type size cap chosen by the
// caller via maxLen.
func readFrame(r *bufio.Reader, maxLen uint32) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxLen {
		return 0, nil, fmt.Errorf("%w: %d byte payload exceeds %d cap", errBadFrame, n, maxLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// hello is the replica's opening frame.
type hello struct {
	from uint64 // first LSN wanted; 0 forces a snapshot bootstrap
	id   string
}

func encodeHello(h hello) []byte {
	buf := make([]byte, 0, 16+len(h.id))
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, h.from)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.id)))
	return append(buf, h.id...)
}

func decodeHello(p []byte) (hello, error) {
	if len(p) < 16 {
		return hello{}, errBadFrame
	}
	if binary.LittleEndian.Uint32(p[0:4]) != Magic {
		return hello{}, fmt.Errorf("%w: bad magic", errBadFrame)
	}
	if v := binary.LittleEndian.Uint16(p[4:6]); v != Version {
		return hello{}, fmt.Errorf("replication: peer speaks version %d, want %d", v, Version)
	}
	h := hello{from: binary.LittleEndian.Uint64(p[6:14])}
	n := int(binary.LittleEndian.Uint16(p[14:16]))
	if len(p) != 16+n {
		return hello{}, errBadFrame
	}
	h.id = string(p[16:])
	return h, nil
}

// encodeSnapshot frames a bootstrap snapshot: the LSN it covers, then the
// core.WriteSnapshot JSON body.
func encodeSnapshot(lsn uint64, body []byte) []byte {
	buf := make([]byte, 0, 8+len(body))
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	return append(buf, body...)
}

func decodeSnapshot(p []byte) (lsn uint64, body []byte, err error) {
	if len(p) < 8 {
		return 0, nil, errBadFrame
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8:], nil
}

// record is one (LSN, encoded sample) pair inside a records frame.
type record struct {
	lsn  uint64
	body []byte // JSON-encoded trace.Sample
}

// encodeRecords frames a batch: u32 count, then per record u64 LSN, u32
// body length, body.
func encodeRecords(recs []record) []byte {
	n := 4
	for _, r := range recs {
		n += 12 + len(r.body)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, r.lsn)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.body)))
		buf = append(buf, r.body...)
	}
	return buf
}

func decodeRecords(p []byte) ([]record, error) {
	if len(p) < 4 {
		return nil, errBadFrame
	}
	count := binary.LittleEndian.Uint32(p[0:4])
	if count > maxRecordsPerBatch {
		return nil, fmt.Errorf("%w: %d records in one batch", errBadFrame, count)
	}
	p = p[4:]
	recs := make([]record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 12 {
			return nil, errBadFrame
		}
		lsn := binary.LittleEndian.Uint64(p[0:8])
		n := binary.LittleEndian.Uint32(p[8:12])
		p = p[12:]
		if uint32(len(p)) < n {
			return nil, errBadFrame
		}
		recs = append(recs, record{lsn: lsn, body: p[:n]})
		p = p[n:]
	}
	if len(p) != 0 {
		return nil, errBadFrame
	}
	return recs, nil
}

func encodeU64(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), v)
}

func decodeU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errBadFrame
	}
	return binary.LittleEndian.Uint64(p), nil
}
