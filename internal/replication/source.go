package replication

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// SourceOptions configures the primary side of a replicated shard.
type SourceOptions struct {
	// PollInterval bounds how stale a stream can go when no Notify arrives
	// (the source also polls the store on this cadence). Default 25ms.
	PollInterval time.Duration

	// HeartbeatInterval is how often an idle stream still tells replicas
	// the primary's last LSN, keeping lag observable. Default 500ms.
	HeartbeatInterval time.Duration

	// Snapshot, when set, produces a consistent live snapshot and the LSN
	// it covers — the coordinator's locked capture. When nil, bootstraps
	// fall back to the store's newest durable checkpoint (or an empty
	// snapshot at LSN 0 for a store that has never checkpointed).
	Snapshot func() (core.Snapshot, uint64)

	// Telemetry receives replication metrics; nil disables instrumentation.
	Telemetry *telemetry.Registry

	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *SourceOptions) fill() {
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// ReplicaInfo is one replica's replication state as the primary sees it.
type ReplicaInfo struct {
	ID        string `json:"id"`
	AckedLSN  uint64 `json:"acked_lsn"`
	Connected bool   `json:"connected"`
}

// replicaConn is one attached replica stream.
type replicaConn struct {
	id   string
	nc   net.Conn
	wake chan struct{} // collapsed append notifications
}

// commitWaiter parks one WaitCommitted call until some replica acks lsn.
type commitWaiter struct {
	lsn uint64
	ch  chan struct{}
}

// Source serves a shard's WAL to replicas. It reads the store directly —
// appends, rotations and compactions proceed concurrently — so attaching a
// replica never stalls the ingest path.
type Source struct {
	st   *store.Store
	opts SourceOptions
	met  sourceMetrics
	addr string // first bound address; stable across Suspend/Resume

	mu        sync.Mutex
	ln        net.Listener
	conns     map[*replicaConn]struct{}
	acked     map[string]uint64 // per replica id, survives reconnects
	waiters   []commitWaiter
	suspended bool
	closed    bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSource starts a replication listener on addr serving st's log.
func NewSource(st *store.Store, addr string, opts SourceOptions) (*Source, error) {
	opts.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replication: source listen %s: %w", addr, err)
	}
	s := &Source{
		st:    st,
		opts:  opts,
		ln:    ln,
		addr:  ln.Addr().String(),
		conns: make(map[*replicaConn]struct{}),
		acked: make(map[string]uint64),
		stop:  make(chan struct{}),
	}
	s.met = newSourceMetrics(opts.Telemetry, s.ConnectedReplicas)
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return s, nil
}

// Addr returns the replication listener's bound address.
func (s *Source) Addr() string { return s.addr }

// Notify wakes every attached stream: call it after appending to the store
// so replication latency is bounded by the network, not the poll interval.
// The wake channels are buffered and sent to outside the lock, so a slow
// stream can never stall the appender.
func (s *Source) Notify() {
	s.mu.Lock()
	wakes := make([]chan struct{}, 0, len(s.conns))
	for rc := range s.conns {
		wakes = append(wakes, rc.wake)
	}
	s.mu.Unlock()
	for _, w := range wakes {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// ConnectedReplicas returns the number of attached replica streams.
func (s *Source) ConnectedReplicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Replicas returns per-replica replication state: every replica ever
// acked (offsets survive reconnects) plus its current connection state.
func (s *Source) Replicas() []ReplicaInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	connected := make(map[string]bool, len(s.conns))
	for rc := range s.conns {
		connected[rc.id] = true
	}
	out := make([]ReplicaInfo, 0, len(s.acked))
	for id, lsn := range s.acked {
		out = append(out, ReplicaInfo{ID: id, AckedLSN: lsn, Connected: connected[id]})
	}
	return out
}

// WaitCommitted blocks until some replica has acknowledged lsn (or a later
// record), reporting false on timeout or source shutdown. This is the
// semi-synchronous ack primitive: a primary that waits here before acking
// an agent guarantees the sample survives its own death.
func (s *Source) WaitCommitted(lsn uint64, timeout time.Duration) bool {
	s.mu.Lock()
	if s.maxAckedLocked() >= lsn {
		s.mu.Unlock()
		return true
	}
	if s.closed {
		s.mu.Unlock()
		return false
	}
	w := commitWaiter{lsn: lsn, ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return true
	case <-t.C:
		return false
	case <-s.stop:
		return false
	}
}

func (s *Source) maxAckedLocked() uint64 {
	var mx uint64
	for _, lsn := range s.acked {
		if lsn > mx {
			mx = lsn
		}
	}
	return mx
}

// recordAck stores a replica's applied offset and releases satisfied
// commit waiters.
func (s *Source) recordAck(id string, lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn <= s.acked[id] {
		return
	}
	s.acked[id] = lsn
	mx := s.maxAckedLocked()
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.lsn <= mx {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
}

// Suspend severs every replica stream and stops accepting new ones,
// simulating primary death for the chaos harness without tearing down the
// process. Resume undoes it.
func (s *Source) Suspend() {
	s.mu.Lock()
	if s.suspended || s.closed {
		s.mu.Unlock()
		return
	}
	s.suspended = true
	ln := s.ln
	s.ln = nil
	conns := s.takeConnsLocked()
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
}

// Resume re-opens the replication listener on the original address after a
// Suspend.
func (s *Source) Resume() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !s.suspended {
		s.mu.Unlock()
		return nil
	}
	addr := s.addr
	s.mu.Unlock()
	// Listen outside the lock (lockio: binds can block), then re-check the
	// state we released it in — a concurrent Close or double Resume loses.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("replication: source re-listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed || !s.suspended {
		closed := s.closed
		s.mu.Unlock()
		_ = ln.Close()
		if closed {
			return ErrClosed
		}
		return nil
	}
	s.suspended = false
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// takeConnsLocked empties the conn set and returns the raw conns so the
// caller can close them after releasing s.mu (net.Conn.Close can block).
func (s *Source) takeConnsLocked() []net.Conn {
	conns := make([]net.Conn, 0, len(s.conns))
	for rc := range s.conns {
		conns = append(conns, rc.nc)
	}
	clear(s.conns)
	return conns
}

// Close stops the source and severs every stream. Idempotent.
func (s *Source) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	conns := s.takeConnsLocked()
	for _, w := range s.waiters {
		close(w.ch)
	}
	s.waiters = nil
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Source) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			// Closed by Suspend or Close; either way this loop is done
			// (Resume starts a fresh one).
			return
		}
		s.wg.Add(1)
		go s.serve(nc)
	}
}

// serve runs one replica stream: handshake, optional snapshot bootstrap,
// then the record/heartbeat loop, with acks drained concurrently.
func (s *Source) serve(nc net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 256<<10)

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil || typ != frameHello {
		_ = nc.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		//lint:ignore errdrop best-effort refusal on a handshake already failing
		_ = writeFrame(bw, frameReject, []byte(err.Error()))
		//lint:ignore errdrop best-effort refusal on a handshake already failing
		_ = bw.Flush()
		_ = nc.Close()
		return
	}

	rc := &replicaConn{id: h.id, nc: nc, wake: make(chan struct{}, 1)}
	s.mu.Lock()
	if s.closed || s.suspended {
		s.mu.Unlock()
		_ = nc.Close()
		return
	}
	s.conns[rc] = struct{}{}
	if _, seen := s.acked[h.id]; !seen {
		s.acked[h.id] = 0
	}
	s.mu.Unlock()
	s.met.attaches.Inc()
	s.opts.Logf("replication: replica %s attached (from LSN %d)", h.id, h.from)
	defer func() {
		s.mu.Lock()
		delete(s.conns, rc)
		s.mu.Unlock()
		_ = nc.Close()
	}()

	// Ack reader: one goroutine per stream, bounded by the conn itself —
	// severing the conn (Suspend/Close/stream error) ends it.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			typ, payload, err := readFrame(br, maxFrameBytes)
			if err != nil || typ != frameAck {
				_ = nc.Close() // wakes the writer loop out of any blocking write
				return
			}
			lsn, err := decodeU64(payload)
			if err != nil {
				_ = nc.Close()
				return
			}
			s.recordAck(h.id, lsn)
		}
	}()

	if err := s.stream(rc, bw, h.from); err != nil {
		s.opts.Logf("replication: replica %s stream ended: %v", h.id, err)
	}
}

// stream ships the log to one replica until the conn dies or the source
// stops. from==0 (or a compacted-away offset) bootstraps via snapshot.
func (s *Source) stream(rc *replicaConn, bw *bufio.Writer, from uint64) error {
	next := from
	if next == 0 {
		n, err := s.sendSnapshot(bw)
		if err != nil {
			return err
		}
		next = n
	}
	hb := time.NewTicker(s.opts.HeartbeatInterval)
	defer hb.Stop()
	poll := time.NewTicker(s.opts.PollInterval)
	defer poll.Stop()
	for {
		batch, err := s.st.ReadBatch(next, maxRecordsPerBatch)
		if errors.Is(err, store.ErrCompacted) {
			// The replica's position predates retained history; restart it
			// from a fresh snapshot (the resync path).
			next, err = s.sendSnapshot(bw)
			if err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if len(batch) > 0 {
			recs := make([]record, len(batch))
			for i, e := range batch {
				body, err := json.Marshal(e.Sample)
				if err != nil {
					return fmt.Errorf("encoding record %d: %w", e.LSN, err)
				}
				recs[i] = record{lsn: e.LSN, body: body}
			}
			if err := writeFrame(bw, frameRecords, encodeRecords(recs)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			s.met.recordsShipped.Add(float64(len(batch)))
			next = batch[len(batch)-1].LSN + 1
			continue
		}
		// Caught up: wait for an append (or the poll fallback), keeping
		// the replica's view of the primary LSN fresh via heartbeats.
		select {
		case <-rc.wake:
		case <-poll.C:
		case <-hb.C:
			if err := writeFrame(bw, frameHeartbeat, encodeU64(s.st.LastLSN())); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-s.stop:
			return nil
		}
	}
}

// sendSnapshot ships a bootstrap snapshot and returns the next LSN to
// stream. Preference order: the configured live-capture hook, then the
// store's newest durable checkpoint, then an empty snapshot at LSN 0 (a
// primary that has never checkpointed simply replays its whole WAL).
func (s *Source) sendSnapshot(bw *bufio.Writer) (next uint64, err error) {
	var snap core.Snapshot
	var lsn uint64
	switch {
	case s.opts.Snapshot != nil:
		snap, lsn = s.opts.Snapshot()
	default:
		ck, at, err := s.st.LatestCheckpoint()
		if err != nil {
			return 0, err
		}
		if ck != nil {
			snap, lsn = *ck, at
		}
	}
	var body bytes.Buffer
	if err := core.WriteSnapshot(&body, snap); err != nil {
		return 0, err
	}
	if err := writeFrame(bw, frameSnapshot, encodeSnapshot(lsn, body.Bytes())); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	s.met.snapshotsSent.Inc()
	return lsn + 1, nil
}
