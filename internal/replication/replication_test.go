package replication

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/store"
	"repro/internal/trace"
)

var start = time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC)

func testSample(i int) trace.Sample {
	return trace.Sample{
		Time:     start.Add(time.Duration(i) * time.Second),
		Loc:      geo.Point{Lat: 43.07, Lon: -89.4 + float64(i)*1e-4},
		Network:  radio.NetworkID("evdo-a"),
		Metric:   trace.MetricTCPKbps,
		Value:    100 + float64(i),
		ClientID: "bus-17",
	}
}

// memApplier records everything the replica applies, standing in for the
// coordinator's WAL+controller pair.
type memApplier struct {
	mu      sync.Mutex
	bootLSN uint64
	boots   int
	applied []uint64
}

func (m *memApplier) Bootstrap(lsn uint64, snap core.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bootLSN = lsn
	m.boots++
	m.applied = nil
	return nil
}

func (m *memApplier) Apply(lsn uint64, smp trace.Sample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applied = append(m.applied, lsn)
	return nil
}

func (m *memApplier) snapshot() (bootLSN uint64, boots int, applied []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bootLSN, m.boots, append([]uint64(nil), m.applied...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func openStore(t *testing.T, opts store.Options) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

func startSource(t *testing.T, st *store.Store, opts SourceOptions) *Source {
	t.Helper()
	src, err := NewSource(st, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = src.Close() })
	return src
}

func TestStreamFromEmptyAndTail(t *testing.T) {
	st := openStore(t, store.Options{})
	src := startSource(t, st, SourceOptions{})

	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r1"})
	defer r.Close()

	// Fresh replica on an empty primary: an empty snapshot at LSN 0, then
	// records as they are appended.
	waitFor(t, 5*time.Second, "bootstrap", func() bool {
		_, boots, _ := ap.snapshot()
		return boots == 1
	})
	for i := 0; i < 25; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
		src.Notify()
	}
	waitFor(t, 5*time.Second, "25 applied records", func() bool {
		_, _, applied := ap.snapshot()
		return len(applied) == 25
	})
	_, _, applied := ap.snapshot()
	for i, lsn := range applied {
		if lsn != uint64(i+1) {
			t.Fatalf("applied[%d] = LSN %d, want %d", i, lsn, i+1)
		}
	}
	waitFor(t, 5*time.Second, "ack at 25", func() bool {
		return r.Status().AppliedLSN == 25 && src.WaitCommitted(25, time.Second)
	})
}

func TestSnapshotBootstrapSkipsCheckpointedHistory(t *testing.T) {
	st := openStore(t, store.Options{})
	for i := 0; i < 40; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := core.Snapshot{TakenAt: start, Origin: geo.Madison().Center()}
	if err := st.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 50; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	src := startSource(t, st, SourceOptions{})

	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r1"})
	defer r.Close()

	waitFor(t, 5*time.Second, "bootstrap + tail", func() bool {
		_, boots, applied := ap.snapshot()
		return boots == 1 && len(applied) == 10
	})
	bootLSN, _, applied := ap.snapshot()
	if bootLSN != 40 {
		t.Fatalf("bootstrapped at LSN %d, want 40 (the checkpoint)", bootLSN)
	}
	if applied[0] != 41 || applied[len(applied)-1] != 50 {
		t.Fatalf("tail applied %v, want 41..50", applied)
	}
}

func TestWarmRestartResumesFromOffset(t *testing.T) {
	st := openStore(t, store.Options{})
	for i := 0; i < 30; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	src := startSource(t, st, SourceOptions{})

	// A replica that already holds LSNs 1..20 asks for 21 and gets no
	// snapshot, only the missing tail.
	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r1", From: 21})
	defer r.Close()

	waitFor(t, 5*time.Second, "10 tail records", func() bool {
		_, boots, applied := ap.snapshot()
		return boots == 0 && len(applied) == 10
	})
	_, _, applied := ap.snapshot()
	if applied[0] != 21 || applied[9] != 30 {
		t.Fatalf("resumed tail %v, want 21..30", applied)
	}
}

func TestCompactedOffsetForcesResync(t *testing.T) {
	// The replica asks for history the primary already compacted away; the
	// source must answer with a snapshot, not an error or silence.
	st := openStore(t, store.Options{SegmentMaxBytes: 512, CheckpointKeep: 1})
	for i := 0; i < 40; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(core.Snapshot{TakenAt: start}); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 45; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	src := startSource(t, st, SourceOptions{})

	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r1", From: 2})
	defer r.Close()

	waitFor(t, 5*time.Second, "resync bootstrap", func() bool {
		bootLSN, boots, applied := ap.snapshot()
		return boots == 1 && bootLSN == 40 && len(applied) == 5
	})
	if st := r.Status(); st.Resyncs != 1 {
		t.Fatalf("replica counted %d resyncs, want 1", st.Resyncs)
	}
}

func TestSuspendResumeReconnects(t *testing.T) {
	st := openStore(t, store.Options{})
	src := startSource(t, st, SourceOptions{})

	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r1"})
	defer r.Close()
	waitFor(t, 5*time.Second, "initial attach", func() bool {
		return src.ConnectedReplicas() == 1
	})

	// Primary "dies": the stream severs and the replica keeps redialing.
	src.Suspend()
	waitFor(t, 5*time.Second, "stream severed", func() bool {
		return src.ConnectedReplicas() == 0 && !r.Status().Connected
	})
	for i := 0; i < 5; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Primary returns on the same address; the replica reattaches and
	// catches up on what it missed.
	if err := src.Resume(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "catch-up after resume", func() bool {
		_, _, applied := ap.snapshot()
		return len(applied) == 5 && r.Status().AppliedLSN == 5
	})
	if st := r.Status(); st.Reconnects == 0 {
		t.Fatal("replica should have counted at least one reconnect")
	}
}

func TestWaitCommittedTimesOutWithoutReplicas(t *testing.T) {
	st := openStore(t, store.Options{})
	src := startSource(t, st, SourceOptions{})
	if _, err := st.Append(testSample(0)); err != nil {
		t.Fatal(err)
	}
	if src.WaitCommitted(1, 50*time.Millisecond) {
		t.Fatal("WaitCommitted succeeded with no replica attached")
	}
}

func TestReplicasReportsAckedOffsets(t *testing.T) {
	st := openStore(t, store.Options{})
	for i := 0; i < 10; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	src := startSource(t, st, SourceOptions{})
	ap := &memApplier{}
	r := StartReplica(src.Addr(), ap, ReplicaOptions{ID: "r-east"})
	defer r.Close()

	waitFor(t, 5*time.Second, "acked offset visible", func() bool {
		for _, ri := range src.Replicas() {
			if ri.ID == "r-east" && ri.AckedLSN == 10 && ri.Connected {
				return true
			}
		}
		return false
	})
}
