package replication

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Applier receives the replicated state on the consumer side. The
// coordinator's implementation journals each record to the replica's own
// WAL (at the primary's LSNs) and ingests it into the live controller, so
// a promoted replica is immediately both durable and queryable.
type Applier interface {
	// Bootstrap replaces all local state with the snapshot, which covers
	// records up to and including lsn.
	Bootstrap(lsn uint64, snap core.Snapshot) error

	// Apply applies one record. Records arrive in LSN order, each exactly
	// once per session (reconnect replays are filtered before Apply).
	Apply(lsn uint64, smp trace.Sample) error
}

// ReplicaOptions configures the consumer side of a replicated shard.
type ReplicaOptions struct {
	// ID names this replica to the primary (acked offsets are tracked per
	// ID across reconnects). Default "replica".
	ID string

	// From is the first LSN to request: a warm restart passes its local
	// store's LastLSN()+1 to resume tailing. Zero (or ForceSnapshot)
	// requests a snapshot bootstrap.
	From uint64

	// ForceSnapshot requests a fresh snapshot bootstrap regardless of
	// From — the demotion/rejoin path, where local state may have diverged
	// from the new primary and must be discarded wholesale.
	ForceSnapshot bool

	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration

	// Backoff shapes redial delays; the zero value uses 50ms base, 2s cap.
	Backoff rng.Backoff

	// Seed drives the deterministic redial jitter.
	Seed uint64

	// Telemetry receives replication metrics (catch-up lag gauge
	// included); nil disables instrumentation.
	Telemetry *telemetry.Registry

	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *ReplicaOptions) fill() {
	if o.ID == "" {
		o.ID = "replica"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Backoff == (rng.Backoff{}) {
		o.Backoff = rng.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Status is a replica's replication progress at a glance.
type Status struct {
	Connected  bool   `json:"connected"`
	AppliedLSN uint64 `json:"applied_lsn"`
	PrimaryLSN uint64 `json:"primary_lsn"`
	// Lag is PrimaryLSN - AppliedLSN as last observed: the catch-up
	// distance in records.
	Lag        uint64 `json:"lag_records"`
	Resyncs    uint64 `json:"resyncs"`
	Reconnects uint64 `json:"reconnects"`
}

// Replica tails a primary's log, applying snapshot bootstraps and records
// through the Applier and acknowledging applied offsets. It redials with
// jittered backoff until Close.
type Replica struct {
	primary string
	ap      Applier
	opts    ReplicaOptions
	met     replicaMetrics

	applied    atomic.Uint64
	primaryLSN atomic.Uint64
	connected  atomic.Bool
	resyncs    atomic.Uint64
	reconnects atomic.Uint64

	mu     sync.Mutex
	nc     net.Conn // current conn, severed by Close
	closed bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartReplica begins replicating from the primary's replication address.
func StartReplica(primaryAddr string, ap Applier, opts ReplicaOptions) *Replica {
	opts.fill()
	r := &Replica{
		primary: primaryAddr,
		ap:      ap,
		opts:    opts,
		stop:    make(chan struct{}),
	}
	if opts.From > 0 && !opts.ForceSnapshot {
		r.applied.Store(opts.From - 1)
	}
	r.met = newReplicaMetrics(opts.Telemetry, r.Status)
	r.wg.Add(1)
	go r.run()
	return r
}

// Status reports current replication progress.
func (r *Replica) Status() Status {
	applied := r.applied.Load()
	primary := r.primaryLSN.Load()
	var lag uint64
	if primary > applied {
		lag = primary - applied
	}
	return Status{
		Connected:  r.connected.Load(),
		AppliedLSN: applied,
		PrimaryLSN: primary,
		Lag:        lag,
		Resyncs:    r.resyncs.Load(),
		Reconnects: r.reconnects.Load(),
	}
}

// Close stops replicating. Idempotent; safe to call from any goroutine.
func (r *Replica) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	r.closed = true
	nc := r.nc
	r.nc = nil
	r.mu.Unlock()
	if nc != nil {
		_ = nc.Close()
	}
	r.wg.Wait()
	return nil
}

// run is the replica's whole life: dial, stream, backoff, redial.
func (r *Replica) run() {
	defer r.wg.Done()
	jitter := rng.NewNamed(r.opts.Seed, "replication-"+r.opts.ID)
	forceSnapshot := r.opts.ForceSnapshot || r.opts.From == 0
	attempt := 0
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		err := r.session(forceSnapshot)
		if err == nil {
			return // Close severed us cleanly
		}
		select {
		case <-r.stop:
			return
		default:
		}
		// After a successful bootstrap the session tracks its own offset;
		// reconnects resume from what was applied.
		if r.applied.Load() > 0 {
			forceSnapshot = false
		}
		r.reconnects.Add(1)
		r.met.reconnects.Inc()
		r.opts.Logf("replication: %s: stream to %s lost (%v), redialing", r.opts.ID, r.primary, err)
		t := time.NewTimer(r.opts.Backoff.Delay(attempt, jitter))
		select {
		case <-t.C:
		case <-r.stop:
			t.Stop()
			return
		}
		attempt++
	}
}

// session runs one connected stream until it fails or Close severs it.
// A nil return means the replica is shutting down.
func (r *Replica) session(forceSnapshot bool) error {
	nc, err := net.DialTimeout("tcp", r.primary, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = nc.Close()
		return nil
	}
	r.nc = nc
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.nc == nc {
			r.nc = nil
		}
		r.mu.Unlock()
		_ = nc.Close()
	}()

	br := bufio.NewReaderSize(nc, 256<<10)
	bw := bufio.NewWriterSize(nc, 16<<10)

	from := uint64(0)
	if !forceSnapshot {
		from = r.applied.Load() + 1
	}
	if err := writeFrame(bw, frameHello, encodeHello(hello{from: from, id: r.opts.ID})); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	r.connected.Store(true)
	defer r.connected.Store(false)

	for {
		typ, payload, err := readFrame(br, maxSnapshotFrameBytes)
		if err != nil {
			if r.isClosed() {
				return nil
			}
			return err
		}
		switch typ {
		case frameSnapshot:
			lsn, body, err := decodeSnapshot(payload)
			if err != nil {
				return err
			}
			snap, err := core.ReadSnapshot(bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("decoding snapshot: %w", err)
			}
			if err := r.ap.Bootstrap(lsn, snap); err != nil {
				return fmt.Errorf("applying snapshot: %w", err)
			}
			r.applied.Store(lsn)
			if lsn > r.primaryLSN.Load() {
				r.primaryLSN.Store(lsn)
			}
			r.resyncs.Add(1)
			r.met.resyncs.Inc()
			r.opts.Logf("replication: %s: bootstrapped from snapshot at LSN %d (%d zones)", r.opts.ID, lsn, len(snap.Entries))
			if err := r.sendAck(bw, lsn); err != nil {
				return err
			}

		case frameRecords:
			recs, err := decodeRecords(payload)
			if err != nil {
				return err
			}
			applied := r.applied.Load()
			for _, rec := range recs {
				if rec.lsn <= applied {
					continue // replayed across a reconnect seam
				}
				var smp trace.Sample
				if err := json.Unmarshal(rec.body, &smp); err != nil {
					return fmt.Errorf("decoding record %d: %w", rec.lsn, err)
				}
				if err := r.ap.Apply(rec.lsn, smp); err != nil {
					return fmt.Errorf("applying record %d: %w", rec.lsn, err)
				}
				applied = rec.lsn
				r.met.recordsApplied.Inc()
			}
			r.applied.Store(applied)
			if applied > r.primaryLSN.Load() {
				r.primaryLSN.Store(applied)
			}
			if err := r.sendAck(bw, applied); err != nil {
				return err
			}

		case frameHeartbeat:
			lsn, err := decodeU64(payload)
			if err != nil {
				return err
			}
			r.primaryLSN.Store(lsn)
			if err := r.sendAck(bw, r.applied.Load()); err != nil {
				return err
			}

		case frameReject:
			return fmt.Errorf("rejected by source: %s", payload)

		default:
			return errors.New("replication: unexpected frame type")
		}
	}
}

func (r *Replica) sendAck(bw *bufio.Writer, lsn uint64) error {
	if err := writeFrame(bw, frameAck, encodeU64(lsn)); err != nil {
		return err
	}
	return bw.Flush()
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}
