package store

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// readAll walks ReadBatch from `from` until caught up and returns the
// collected entries.
func readAll(t *testing.T, st *Store, from uint64, batch int) []Entry {
	t.Helper()
	var out []Entry
	for {
		es, err := st.ReadBatch(from, batch)
		if err != nil {
			t.Fatalf("ReadBatch(%d): %v", from, err)
		}
		if len(es) == 0 {
			return out
		}
		out = append(out, es...)
		from = es[len(es)-1].LSN + 1
	}
}

func TestReadBatchTailsAcrossRotation(t *testing.T) {
	// A segment holds only a handful of records, so 60 appends rotate the
	// WAL several times; a reader tailing in small batches must cross every
	// seam without losing or reordering records.
	st, err := Open(t.TempDir(), Options{SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	appendN(t, st, 0, 30)
	got := readAll(t, st, 1, 7)
	if len(got) != 30 {
		t.Fatalf("read %d records, want 30", len(got))
	}

	// Tail: more appends arrive after the reader caught up; the next batch
	// from the last-seen LSN picks them up, again across rotations.
	appendN(t, st, 30, 30)
	got = append(got, readAll(t, st, got[len(got)-1].LSN+1, 7)...)
	if len(got) != 60 {
		t.Fatalf("after tailing: %d records, want 60", len(got))
	}
	for i, e := range got {
		if e.LSN != uint64(i+1) {
			t.Fatalf("entry %d has LSN %d, want %d", i, e.LSN, i+1)
		}
		if !sampleEqual(e.Sample, testSample(i)) {
			t.Fatalf("entry %d sample mismatch: %+v", i, e.Sample)
		}
	}
}

func TestReadBatchFromMidSegmentOffset(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendN(t, st, 0, 20) // one segment; LSNs 1..20

	got := readAll(t, st, 13, 100)
	if len(got) != 8 {
		t.Fatalf("ReadBatch from mid-segment: %d records, want 8", len(got))
	}
	for i, e := range got {
		if want := uint64(13 + i); e.LSN != want {
			t.Fatalf("entry %d: LSN %d, want %d", i, e.LSN, want)
		}
	}
	// Past the end: caught up, not an error.
	if es, err := st.ReadBatch(21, 10); err != nil || len(es) != 0 {
		t.Fatalf("read past end: %d entries, err %v; want 0, nil", len(es), err)
	}
}

func TestReadBatchCompactedHistory(t *testing.T) {
	// Small segments + CheckpointKeep 1 makes compaction aggressive: after
	// a checkpoint covering everything, early segments are deleted and a
	// reader asking for LSN 1 must get ErrCompacted — not silence.
	st, err := Open(t.TempDir(), Options{SegmentMaxBytes: 512, CheckpointKeep: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendN(t, st, 0, 40)
	if err := st.Checkpoint(core.Snapshot{TakenAt: start}); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 40, 5) // live tail past the checkpoint

	if _, err := st.ReadBatch(1, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadBatch(1) after compaction: err %v, want ErrCompacted", err)
	}
	// The records past the last compacted segment are still readable.
	got := readAll(t, st, 41, 10)
	if len(got) != 5 || got[0].LSN != 41 {
		t.Fatalf("tail after compaction: %d records starting %d, want 5 from 41", len(got), got[0].LSN)
	}
	// Bootstrapping from the checkpoint + tailing covers everything.
	snap, lsn, err := st.LatestCheckpoint()
	if err != nil || snap == nil {
		t.Fatalf("LatestCheckpoint: %v %v", snap, err)
	}
	if lsn != 40 {
		t.Fatalf("checkpoint covers LSN %d, want 40", lsn)
	}
	if got := readAll(t, st, lsn+1, 10); len(got) != 5 {
		t.Fatalf("checkpoint+tail: %d tail records, want 5", len(got))
	}
}

func TestReadBatchRacesCompactionAndCheckpoint(t *testing.T) {
	// The replication reader's worst case: a reader replaying from the
	// start while the writer keeps appending and checkpointing (which
	// compacts segments under the reader). The reader must only ever see
	// in-order records or ErrCompacted — never a gap it silently skips.
	st, err := Open(t.TempDir(), Options{SegmentMaxBytes: 256, CheckpointKeep: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const total = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := st.Append(testSample(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%50 == 49 {
				if err := st.Checkpoint(core.Snapshot{TakenAt: start, Origin: geo.Madison().Center()}); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()

	from := uint64(1)
	deadline := time.Now().Add(10 * time.Second)
	for from <= total && time.Now().Before(deadline) {
		es, err := st.ReadBatch(from, 16)
		if errors.Is(err, ErrCompacted) {
			// Re-bootstrap exactly as a replica would: the checkpoint's
			// covered LSN becomes the new floor.
			_, lsn, cerr := st.LatestCheckpoint()
			if cerr != nil {
				t.Fatalf("LatestCheckpoint during race: %v", cerr)
			}
			if lsn+1 < from {
				t.Fatalf("checkpoint regressed below reader position: ckpt %d, reader %d", lsn, from)
			}
			from = lsn + 1
			continue
		}
		if err != nil {
			t.Fatalf("ReadBatch(%d): %v", from, err)
		}
		for _, e := range es {
			if e.LSN != from {
				t.Fatalf("reader saw LSN %d, want %d (silent gap)", e.LSN, from)
			}
			from++
		}
	}
	wg.Wait()
	if from <= total {
		// Writer done; one final catch-up drain must finish the log.
		got := readAll(t, st, from, 64)
		if len(got) == 0 || got[len(got)-1].LSN != total {
			t.Fatalf("reader stalled at %d of %d", from-1, total)
		}
	}
}

func TestAppendAtAndResetTo(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 3) // local history the reset must wipe

	snap := core.Snapshot{TakenAt: start, Origin: geo.Madison().Center()}
	if err := st.ResetTo(100, snap); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	if got := st.LastLSN(); got != 100 {
		t.Fatalf("LastLSN after reset: %d, want 100", got)
	}
	for i := 0; i < 5; i++ {
		if err := st.AppendAt(uint64(101+i), testSample(i)); err != nil {
			t.Fatalf("AppendAt %d: %v", 101+i, err)
		}
	}
	if err := st.AppendAt(50, testSample(9)); err == nil {
		t.Fatal("AppendAt must reject a regressing LSN")
	}
	// Old history is gone: the reader reports it compacted.
	if _, err := st.ReadBatch(1, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pre-reset history: err %v, want ErrCompacted", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees the bootstrap checkpoint at 100 plus the tail 101..105,
	// exactly as if the store had always lived at the primary's offsets.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Snapshot == nil || rec.CheckpointLSN != 100 {
		t.Fatalf("recovered checkpoint LSN %d (snapshot %v), want 100", rec.CheckpointLSN, rec.Snapshot != nil)
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("recovered %d tail samples, want 5", len(rec.Tail))
	}
	if next, err := st2.Append(testSample(7)); err != nil || next != 106 {
		t.Fatalf("append after recovery: lsn %d err %v, want 106", next, err)
	}
}
