package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

// Entry is one WAL record surfaced to log readers: the sequence number the
// primary assigned and the journaled sample.
type Entry struct {
	LSN    uint64
	Sample trace.Sample
}

// ErrCompacted is returned by ReadBatch when the requested LSN predates the
// oldest retained WAL record — compaction has deleted the segments that held
// it. A reader that needs that history must re-bootstrap from a checkpoint
// (LatestCheckpoint) instead of the log.
var ErrCompacted = errors.New("store: requested records compacted away")

// ReadBatch returns up to max journaled records with LSN >= from, in LSN
// order. It is the replication source's log reader: safe to call while
// appends, rotations and compactions are in flight.
//
//   - An empty batch with a nil error means the reader is caught up (from is
//     past the newest record); poll again after more appends.
//   - ErrCompacted means from predates the oldest retained record; the
//     caller must restart from LatestCheckpoint.
//
// Consistency under concurrency: a record is written as a single line whose
// CRC is validated here, so a read racing an in-flight append sees either
// the whole record or stops cleanly at the torn tail — never a phantom
// record. A segment deleted by compaction mid-scan is detected (the file
// open fails) and reported as ErrCompacted only when the batch is still
// empty; otherwise the partial batch is returned and the next call resolves
// the position afresh.
func (st *Store) ReadBatch(from uint64, max int) ([]Entry, error) {
	if from == 0 {
		from = 1
	}
	if max <= 0 {
		max = 1024
	}
	segs, err := listSegments(st.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, nil
	}
	// Find the first segment that can contain from: the last segment whose
	// first LSN is <= from. Everything before it is skipped wholesale.
	start := 0
	for i, sg := range segs {
		if sg.first <= from {
			start = i
		}
	}
	if segs[start].first > from {
		// Even the oldest retained segment starts past from: compacted.
		return nil, ErrCompacted
	}
	var out []Entry
	for _, sg := range segs[start:] {
		done, err := scanBatch(sg.path, from, max, &out)
		if err != nil {
			if os.IsNotExist(err) && len(out) == 0 {
				// Compaction deleted the segment between listing and
				// opening; the records we wanted are gone with it.
				return nil, ErrCompacted
			}
			if os.IsNotExist(err) {
				return out, nil
			}
			return out, err
		}
		if done {
			break
		}
	}
	return out, nil
}

// scanBatch appends records with LSN >= from out of one segment into out,
// stopping at max entries. done=true means the batch is full. Invalid
// complete lines are skipped (recovery's rule); an incomplete tail line ends
// the scan — it is an append in flight, not an error.
func scanBatch(path string, from uint64, max int, out *[]Entry) (done bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	for {
		line, consumed, complete := readLineCapped(br, maxWALLineBytes)
		if !complete {
			_ = consumed
			break
		}
		smp, lsn, ok := parseRecordLine(line)
		if !ok || lsn < from {
			continue
		}
		*out = append(*out, Entry{LSN: lsn, Sample: smp})
		if len(*out) >= max {
			done = true
			break
		}
	}
	// Read-only handle; nothing durable rides on this close.
	//lint:ignore errdrop read-only segment scan, no durability at stake
	_ = f.Close()
	return done, nil
}

// LatestCheckpoint returns the newest checkpoint that validates, with the
// LSN it covers. A nil snapshot with a nil error means no valid checkpoint
// exists yet (a fresh store).
func (st *Store) LatestCheckpoint() (*core.Snapshot, uint64, error) {
	cks, err := listCheckpoints(st.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, ck := range cks {
		snap, lsn, err := readCheckpoint(ck.path)
		if err != nil {
			continue // recovery's rule: fall back past corrupt checkpoints
		}
		return &snap, lsn, nil
	}
	return nil, 0, nil
}

// AppendAt journals one sample under an explicit sequence number — the
// replica-side write path, which must preserve the primary's LSNs so a
// promoted replica's log lines up with what the old primary acked. lsn must
// be >= the store's next LSN (monotonic; forward gaps are allowed and
// survive recovery, which keys off per-record LSNs).
func (st *Store) AppendAt(lsn uint64, smp trace.Sample) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if lsn < st.nextLSN {
		return fmt.Errorf("store: AppendAt %d behind next LSN %d", lsn, st.nextLSN)
	}
	st.nextLSN = lsn
	if _, err := st.appendLocked(smp); err != nil {
		st.met.appendErrors.Inc()
		return err
	}
	return nil
}

// CheckpointAt atomically persists snap as a checkpoint covering records up
// to and including lsn, then compacts. Unlike Checkpoint, the caller names
// the covered LSN — required whenever the snapshot was captured at a known
// log position (the coordinator's consistent-capture path) rather than
// "whatever has been appended by now".
func (st *Store) CheckpointAt(lsn uint64, snap core.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.checkpointLocked(lsn, snap)
}

// ResetTo wipes the store — every WAL segment and checkpoint — and
// re-seeds it with snap as a checkpoint covering lsn, with the log
// positioned to accept lsn+1 next. This is the snapshot-bootstrap path: a
// replica (or a demoted ex-primary resyncing) replaces its entire local
// history with the primary's checkpoint and tails the log from there.
func (st *Store) ResetTo(lsn uint64, snap core.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if err := st.f.Close(); err != nil {
		return fmt.Errorf("store: reset: sealing active segment: %w", err)
	}
	segs, err := listSegments(st.dir)
	if err != nil {
		return err
	}
	cks, err := listCheckpoints(st.dir)
	if err != nil {
		return err
	}
	for _, ref := range append(segs, cks...) {
		if err := os.Remove(ref.path); err != nil {
			return fmt.Errorf("store: reset: %w", err)
		}
	}
	st.nextLSN = lsn + 1
	st.unsynced = 0
	if err := st.openSegmentLocked(st.nextLSN); err != nil {
		return err
	}
	return st.checkpointLocked(lsn, snap)
}
