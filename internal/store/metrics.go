package store

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// metrics holds the store's resolved telemetry instruments. Every field is
// nil-safe (a nil registry produces all-nil instruments), so the WAL hot
// path can update them unconditionally.
type metrics struct {
	walAppends    *telemetry.Counter
	walBytes      *telemetry.Counter
	walFsyncs     *telemetry.Counter
	walFsyncSec   *telemetry.Histogram
	walRotations  *telemetry.Counter
	checkpoints   *telemetry.Counter
	checkpointSec *telemetry.Histogram
	appendErrors  *telemetry.Counter
}

// newMetrics registers the store families on reg and resolves each series
// once. lastCkptUnixNano backs the scrape-time checkpoint-age gauge: it is
// owned by the Store and updated on every successful checkpoint.
func newMetrics(reg *telemetry.Registry, lastCkptUnixNano *atomic.Int64) metrics {
	reg.GaugeFunc("wiscape_store_checkpoint_age_seconds",
		"Seconds since the newest durable checkpoint (recovery seeds this from the recovered checkpoint's timestamp; store open time when starting clean).",
		func() float64 {
			return time.Since(time.Unix(0, lastCkptUnixNano.Load())).Seconds()
		})
	return metrics{
		walAppends: reg.Counter("wiscape_store_wal_appends_total",
			"Sample records appended to the write-ahead log.").With(),
		walBytes: reg.Counter("wiscape_store_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead log.").With(),
		walFsyncs: reg.Counter("wiscape_store_wal_fsyncs_total",
			"fsync calls issued against the active WAL segment.").With(),
		walFsyncSec: reg.Histogram("wiscape_store_wal_fsync_seconds",
			"Latency of WAL fsync calls.", nil).With(),
		walRotations: reg.Counter("wiscape_store_wal_rotations_total",
			"WAL segment rotations (size limit reached).").With(),
		checkpoints: reg.Counter("wiscape_store_checkpoints_total",
			"Checkpoints durably written.").With(),
		checkpointSec: reg.Histogram("wiscape_store_checkpoint_seconds",
			"Wall time of one checkpoint write + compaction pass.", nil).With(),
		appendErrors: reg.Counter("wiscape_store_wal_append_errors_total",
			"Append attempts that failed (encode, write, rotate, or fsync error).").With(),
	}
}

// recordRecovery publishes what crash recovery found as one-shot gauges,
// so a scrape can tell a clean start from a tolerated-damage start without
// grepping logs.
func recordRecovery(reg *telemetry.Registry, rec Recovery) {
	set := func(name, help string, v float64) {
		reg.Gauge(name, help).With().Set(v)
	}
	set("wiscape_store_recovery_corrupt_checkpoints",
		"Checkpoints skipped as corrupt during the last recovery.", float64(rec.CorruptCheckpoints))
	set("wiscape_store_recovery_corrupt_records",
		"WAL records skipped as corrupt during the last recovery.", float64(rec.CorruptRecords))
	set("wiscape_store_recovery_truncated_bytes",
		"Torn-tail bytes truncated from the WAL during the last recovery.", float64(rec.TruncatedBytes))
	set("wiscape_store_recovery_tail_samples",
		"WAL tail samples replayed into the controller during the last recovery.", float64(len(rec.Tail)))
}
