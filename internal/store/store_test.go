package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

var start = time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)

func testSample(i int) trace.Sample {
	return trace.Sample{
		Time:     start.Add(time.Duration(i) * time.Minute),
		Loc:      geo.Madison().Center(),
		Network:  radio.NetB,
		Metric:   trace.MetricUDPKbps,
		Value:    900 + float64(i),
		ClientID: "store-test",
	}
}

func appendN(t *testing.T, st *Store, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := st.Append(testSample(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func sampleEqual(a, b trace.Sample) bool {
	return a.Time.Equal(b.Time) && a.Value == b.Value && a.ClientID == b.ClientID &&
		a.Network == b.Network && a.Metric == b.Metric
}

func TestEmptyDirCleanStart(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := st.Recovery()
	if rec.Snapshot != nil || len(rec.Tail) != 0 || rec.CorruptRecords != 0 || rec.CorruptCheckpoints != 0 {
		t.Fatalf("empty dir must recover clean: %+v", rec)
	}
	if lsn, err := st.Append(testSample(0)); err != nil || lsn != 1 {
		t.Fatalf("first append: lsn=%d err=%v", lsn, err)
	}
}

func TestAppendCloseReopenReplaysTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 25)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Snapshot != nil {
		t.Fatal("no checkpoint was written")
	}
	if len(rec.Tail) != 25 {
		t.Fatalf("tail %d, want 25", len(rec.Tail))
	}
	for i, smp := range rec.Tail {
		if !sampleEqual(smp, testSample(i)) {
			t.Fatalf("tail[%d] = %+v, want %+v", i, smp, testSample(i))
		}
	}
	// LSNs continue where the previous incarnation stopped.
	if lsn, err := st2.Append(testSample(25)); err != nil || lsn != 26 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestCheckpointSplitsCoveredFromTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	for i := 0; i < 10; i++ {
		smp := testSample(i)
		if _, err := st.Append(smp); err != nil {
			t.Fatal(err)
		}
		ctrl.Ingest(smp)
	}
	if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 10, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Snapshot == nil || rec.CheckpointLSN != 10 {
		t.Fatalf("checkpoint not recovered: lsn=%d snap=%v", rec.CheckpointLSN, rec.Snapshot != nil)
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("tail %d, want 5 (only records past the checkpoint)", len(rec.Tail))
	}
	if !sampleEqual(rec.Tail[0], testSample(10)) {
		t.Fatalf("tail starts at %+v", rec.Tail[0])
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentMaxBytes: 512, CheckpointKeep: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 200)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several rotated segments, got %d", len(segs))
	}

	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the active segment is covered by the checkpoint.
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1 (the active one)", len(segs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The covered records are gone from the WAL but live in the checkpoint.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Snapshot == nil || rec.CheckpointLSN != 200 || len(rec.Tail) != 0 {
		t.Fatalf("post-compaction recovery: lsn=%d tail=%d", rec.CheckpointLSN, len(rec.Tail))
	}
	if lsn, err := st2.Append(testSample(200)); err != nil || lsn != 201 {
		t.Fatalf("append after compaction: lsn=%d err=%v", lsn, err)
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{CheckpointKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	for round := 0; round < 4; round++ {
		appendN(t, st, round*5, 5)
		if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil {
			t.Fatal(err)
		}
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(cks))
	}
	if cks[0].lsn != 20 || cks[1].lsn != 15 {
		t.Fatalf("retained wrong checkpoints: %d, %d", cks[0].lsn, cks[1].lsn)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, mode := range []string{"off", "always", "every=10", "interval=10ms"} {
		t.Run(mode, func(t *testing.T) {
			p, err := ParseFsyncPolicy(mode)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Open(t.TempDir(), Options{Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, st, 0, 30)
			if p.Interval > 0 {
				time.Sleep(30 * time.Millisecond) // let the background flusher run
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, bad := range []string{"nope", "every=0", "every=x", "interval=", "interval=-1s"} {
		if _, err := ParseFsyncPolicy(bad); err == nil {
			t.Fatalf("policy %q should not parse", bad)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(testSample(0)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := st.Checkpoint(core.Snapshot{}); err != ErrClosed {
		t.Fatalf("checkpoint after close: %v, want ErrClosed", err)
	}
}

// newestSegment returns the path of the newest WAL segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial record with no newline.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"lsn":11,"sample":{"t":"2010-09-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must not prevent recovery: %v", err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if len(rec.Tail) != 10 {
		t.Fatalf("tail %d, want 10 intact records", len(rec.Tail))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn bytes not truncated")
	}
	// The torn write never happened as far as LSNs are concerned.
	if lsn, err := st2.Append(testSample(10)); err != nil || lsn != 11 {
		t.Fatalf("append after truncation: lsn=%d err=%v", lsn, err)
	}
}

func TestCRCMismatchMidSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle of the segment: the CRC no longer
	// matches, but the line framing is intact.
	seg := newestSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) != 10 {
		t.Fatalf("segment has %d lines", len(lines))
	}
	mid := lines[4]
	data[mid.start+15] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("mid-segment corruption must not prevent recovery: %v", err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.CorruptRecords != 1 {
		t.Fatalf("corrupt records %d, want 1", rec.CorruptRecords)
	}
	if len(rec.Tail) != 9 {
		t.Fatalf("tail %d, want 9 (the bad record skipped, its successors kept)", len(rec.Tail))
	}
	if rec.TruncatedBytes != 0 {
		t.Fatal("mid-segment corruption must not truncate valid successors")
	}
}

func TestOversizedWALLineSkippedMidSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, 0, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Splice a framed line far over the recovery cap into the middle of
	// the segment: it must be counted corrupt and skipped, without taking
	// down the scan or the valid records on either side.
	seg := newestSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) != 10 {
		t.Fatalf("segment has %d lines", len(lines))
	}
	huge := make([]byte, maxWALLineBytes+4096)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	var out []byte
	out = append(out, data[:lines[5].start]...)
	out = append(out, huge...)
	out = append(out, data[lines[5].start:]...)
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("oversized line must not prevent recovery: %v", err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.CorruptRecords != 1 {
		t.Fatalf("corrupt records %d, want 1 (the oversized line)", rec.CorruptRecords)
	}
	if len(rec.Tail) != 10 {
		t.Fatalf("tail %d, want all 10 valid records kept", len(rec.Tail))
	}
	if rec.TruncatedBytes != 0 {
		t.Fatal("mid-segment garbage must not truncate valid successors")
	}
	if lsn, err := st2.Append(testSample(10)); err != nil || lsn != 11 {
		t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
	}
}

type lineSpan struct{ start, end int }

func splitLines(data []byte) []lineSpan {
	var out []lineSpan
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, lineSpan{start, i + 1})
			start = i + 1
		}
	}
	return out
}

func TestTruncatedCheckpointFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{CheckpointKeep: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	for i := 0; i < 5; i++ {
		smp := testSample(i)
		if _, err := st.Append(smp); err != nil {
			t.Fatal(err)
		}
		ctrl.Ingest(smp)
	}
	if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil { // covers 1..5
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		smp := testSample(i)
		if _, err := st.Append(smp); err != nil {
			t.Fatal(err)
		}
		ctrl.Ingest(smp)
	}
	if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil { // covers 1..10
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the newest checkpoint mid-JSON.
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) != 2 {
		t.Fatalf("checkpoints: %d %v", len(cks), err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cks[0].path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("corrupt newest checkpoint must not prevent recovery: %v", err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.CorruptCheckpoints != 1 {
		t.Fatalf("corrupt checkpoints %d, want 1", rec.CorruptCheckpoints)
	}
	if rec.Snapshot == nil || rec.CheckpointLSN != 5 {
		t.Fatalf("should fall back to the lsn=5 checkpoint, got lsn=%d", rec.CheckpointLSN)
	}
	// Records 6..10 are no longer covered and must come back via the tail —
	// possible precisely because compaction keys off the oldest retained
	// checkpoint.
	if len(rec.Tail) != 5 {
		t.Fatalf("tail %d, want 5", len(rec.Tail))
	}
	if !sampleEqual(rec.Tail[0], testSample(5)) {
		t.Fatalf("tail starts at %+v", rec.Tail[0])
	}
}

func TestAllCheckpointsCorruptFallsBackToFullWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	appendN(t, st, 0, 8)
	if err := st.Checkpoint(ctrl.Snapshot(start)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cks, _ := listCheckpoints(dir)
	for _, ck := range cks {
		if err := os.WriteFile(ck.path, []byte("garbage, not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("all-corrupt checkpoints must not prevent recovery: %v", err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Snapshot != nil {
		t.Fatal("no checkpoint should have validated")
	}
	if len(rec.Tail) != 8 {
		t.Fatalf("tail %d, want the full WAL (8)", len(rec.Tail))
	}
}

func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "wal-x.seg", "checkpoint-.ckpt", "checkpoint-5.ckpt.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("stray files must be ignored: %v", err)
	}
	defer st.Close()
	if rec := st.Recovery(); rec.Snapshot != nil || len(rec.Tail) != 0 {
		t.Fatalf("stray files leaked into recovery: %+v", rec)
	}
}
