// Package store implements the coordinator's durability subsystem: an
// append-only write-ahead log (WAL) of ingested samples plus periodic
// checkpoints of the controller's published state. Together they let a
// coordinator restart recover exactly where it left off — the checkpoint
// restores published records and epochs instantly, and replaying the WAL
// tail (records newer than the checkpoint) rebuilds in-progress epoch
// accumulators — so a restart never blinds querying applications.
//
// Layout of a data directory:
//
//	wal-<firstLSN>.seg       append-only sample journal segments
//	checkpoint-<lsn>.ckpt    controller snapshots; <lsn> is the last WAL
//	                         record the snapshot covers
//
// Every WAL record is one line: an 8-hex-digit CRC32 (IEEE) of the JSON
// payload, a space, and the payload {"lsn":N,"sample":{...}}. Line framing
// means one corrupt record never hides its successors, and a torn tail (a
// crash mid-write) is detected and truncated on recovery instead of
// refusing to start. Segments rotate by size; compaction deletes segments
// wholly covered by the oldest *retained* checkpoint, so falling back to
// an older checkpoint when the newest is corrupt never loses records.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// FsyncPolicy controls when the WAL is flushed to stable storage. The zero
// value never fsyncs (the OS page cache decides): fastest, but a machine
// crash can lose recent records. EveryRecords trades latency for a bounded
// loss window in records; Interval bounds the loss window in time.
type FsyncPolicy struct {
	EveryRecords int           // fsync after every N appended records (0 = disabled)
	Interval     time.Duration // background fsync at least every T (0 = disabled)
}

// Enabled reports whether any fsync is configured.
func (p FsyncPolicy) Enabled() bool { return p.EveryRecords > 0 || p.Interval > 0 }

// String renders the policy in the flag syntax accepted by ParseFsyncPolicy.
func (p FsyncPolicy) String() string {
	switch {
	case p.EveryRecords == 1:
		return "always"
	case p.EveryRecords > 0:
		return fmt.Sprintf("every=%d", p.EveryRecords)
	case p.Interval > 0:
		return fmt.Sprintf("interval=%s", p.Interval)
	}
	return "off"
}

// ParseFsyncPolicy parses the -fsync flag syntax:
// "off" | "always" | "every=N" | "interval=DURATION".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch {
	case s == "" || s == "off":
		return FsyncPolicy{}, nil
	case s == "always":
		return FsyncPolicy{EveryRecords: 1}, nil
	case strings.HasPrefix(s, "every="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "every="))
		if err != nil || n <= 0 {
			return FsyncPolicy{}, fmt.Errorf("store: bad fsync policy %q: want every=N with N>0", s)
		}
		return FsyncPolicy{EveryRecords: n}, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return FsyncPolicy{}, fmt.Errorf("store: bad fsync policy %q: want interval=DURATION", s)
		}
		return FsyncPolicy{Interval: d}, nil
	}
	return FsyncPolicy{}, fmt.Errorf("store: unknown fsync policy %q (off | always | every=N | interval=DUR)", s)
}

// Options configures a Store.
type Options struct {
	// SegmentMaxBytes rotates the active WAL segment once it exceeds this
	// size. Default 4 MiB.
	SegmentMaxBytes int64

	// Fsync is the WAL durability policy. Default: off.
	Fsync FsyncPolicy

	// CheckpointKeep is how many checkpoints to retain. Default 3: the
	// newest can be torn by a crash mid-rename-window or corrupted by the
	// disk, and recovery falls back to an older one.
	CheckpointKeep int

	// Telemetry receives WAL/checkpoint/recovery metrics. Nil disables
	// instrumentation at zero cost (see internal/telemetry's nil contract).
	Telemetry *telemetry.Registry

	// Logf receives store diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 4 << 20
	}
	if o.CheckpointKeep <= 0 {
		o.CheckpointKeep = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// walRecord is the JSON payload of one WAL line.
type walRecord struct {
	LSN    uint64       `json:"lsn"`
	Sample trace.Sample `json:"sample"`
}

// Store is a durable sample journal plus checkpoint manager. All methods
// are safe for concurrent use; Close is idempotent.
type Store struct {
	dir      string
	opts     Options
	recovery Recovery
	met      metrics
	lastCkpt atomic.Int64 // unix nanos of the newest checkpoint (age gauge)

	mu       sync.Mutex
	f        *os.File // active WAL segment
	segFirst uint64   // first LSN of the active segment
	segSize  int64
	nextLSN  uint64
	unsynced int // records appended since the last fsync
	closed   bool
	buf      []byte // line assembly scratch, reused across Appends

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) a data directory, runs crash recovery
// over its contents, and starts a fresh WAL segment for new appends. The
// outcome of recovery — newest valid checkpoint plus the WAL tail to
// replay — is available via Recovery.
func Open(dir string, opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	rec, nextLSN, err := recoverDir(dir, opts)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:      dir,
		opts:     opts,
		recovery: rec,
		nextLSN:  nextLSN,
		stop:     make(chan struct{}),
	}
	// The age gauge needs a reference point before the first checkpoint:
	// the recovered checkpoint's timestamp if there is one, else "now".
	if rec.Snapshot != nil && !rec.Snapshot.TakenAt.IsZero() {
		st.lastCkpt.Store(rec.Snapshot.TakenAt.UnixNano())
	} else {
		st.lastCkpt.Store(time.Now().UnixNano())
	}
	st.met = newMetrics(opts.Telemetry, &st.lastCkpt)
	recordRecovery(opts.Telemetry, rec)
	// Nothing else can hold a *Store yet, but taking mu here keeps the
	// "*Locked helpers run under mu" convention true at every call site —
	// which is what lets lockguard check it.
	st.mu.Lock()
	err = st.openSegmentLocked(st.nextLSN)
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if opts.Fsync.Interval > 0 {
		st.wg.Add(1)
		go st.syncLoop()
	}
	return st, nil
}

// Recovery returns what Open found in the data directory.
func (st *Store) Recovery() Recovery { return st.recovery }

// Dir returns the data directory.
func (st *Store) Dir() string { return st.dir }

// LastLSN returns the sequence number of the most recently appended
// record (0 if none yet).
func (st *Store) LastLSN() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextLSN - 1
}

// segName returns the path of the segment whose first record is lsn.
func (st *Store) segName(lsn uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%016d%s", segPrefix, lsn, segSuffix))
}

// openSegmentLocked starts a fresh active segment beginning at first.
// O_TRUNC is safe: a same-named file can only be a leftover empty (or
// fully invalid, already truncated by recovery) segment — any valid record
// in it would have advanced nextLSN past first.
func (st *Store) openSegmentLocked(first uint64) error {
	f, err := os.OpenFile(st.segName(first), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	st.f = f
	st.segFirst = first
	st.segSize = 0
	return nil
}

// syncLocked is f.Sync with fsync count + latency instrumentation; every
// WAL fsync in the store funnels through it.
func (st *Store) syncLocked() error {
	t0 := time.Now()
	err := st.f.Sync()
	st.met.walFsyncs.Inc()
	st.met.walFsyncSec.Observe(time.Since(t0).Seconds())
	return err
}

// rotateLocked seals the active segment and starts a new one at next.
func (st *Store) rotateLocked(next uint64) error {
	if st.opts.Fsync.Enabled() && st.unsynced > 0 {
		if err := st.syncLocked(); err != nil {
			return fmt.Errorf("store: fsync on rotation: %w", err)
		}
		st.unsynced = 0
	}
	if err := st.f.Close(); err != nil {
		return fmt.Errorf("store: sealing segment: %w", err)
	}
	st.met.walRotations.Inc()
	return st.openSegmentLocked(next)
}

// Append journals one sample and returns its sequence number. The write
// reaches the OS before Append returns; it reaches the disk per the
// configured FsyncPolicy.
func (st *Store) Append(smp trace.Sample) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	lsn, err := st.appendLocked(smp)
	if err != nil {
		st.met.appendErrors.Inc()
	}
	return lsn, err
}

func (st *Store) appendLocked(smp trace.Sample) (uint64, error) {
	lsn := st.nextLSN
	payload, err := json.Marshal(walRecord{LSN: lsn, Sample: smp})
	if err != nil {
		return 0, fmt.Errorf("store: encoding sample: %w", err)
	}
	if st.segSize >= st.opts.SegmentMaxBytes {
		if err := st.rotateLocked(lsn); err != nil {
			return 0, err
		}
	}
	st.buf = appendRecordLine(st.buf[:0], payload)
	if _, err := st.f.Write(st.buf); err != nil {
		return 0, fmt.Errorf("store: appending record %d: %w", lsn, err)
	}
	st.segSize += int64(len(st.buf))
	st.nextLSN = lsn + 1
	st.unsynced++
	st.met.walAppends.Inc()
	st.met.walBytes.Add(float64(len(st.buf)))
	if n := st.opts.Fsync.EveryRecords; n > 0 && st.unsynced >= n {
		if err := st.syncLocked(); err != nil {
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		st.unsynced = 0
	}
	return lsn, nil
}

// appendRecordLine frames one WAL line: "crc32hex payload\n".
func appendRecordLine(buf, payload []byte) []byte {
	crc := crc32.ChecksumIEEE(payload)
	const hexdig = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		buf = append(buf, hexdig[(crc>>uint(shift))&0xf])
	}
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	return append(buf, '\n')
}

// Sync forces the WAL to stable storage regardless of policy.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if err := st.syncLocked(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	st.unsynced = 0
	return nil
}

// Checkpoint atomically persists snap as the newest checkpoint, covering
// every record appended so far, then compacts: WAL segments wholly covered
// by the oldest retained checkpoint and checkpoints beyond CheckpointKeep
// are deleted.
func (st *Store) Checkpoint(snap core.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.checkpointLocked(st.nextLSN-1, snap)
}

// checkpointLocked persists snap covering lsn and compacts; the caller
// holds st.mu.
func (st *Store) checkpointLocked(lsn uint64, snap core.Snapshot) error {
	t0 := time.Now()
	if err := writeCheckpoint(st.dir, lsn, snap); err != nil {
		return err
	}
	st.compactLocked()
	st.met.checkpoints.Inc()
	st.met.checkpointSec.Observe(time.Since(t0).Seconds())
	if !snap.TakenAt.IsZero() {
		st.lastCkpt.Store(snap.TakenAt.UnixNano())
	} else {
		st.lastCkpt.Store(t0.UnixNano())
	}
	return nil
}

// compactLocked deletes checkpoints beyond CheckpointKeep and WAL segments
// wholly covered by the oldest retained checkpoint. Coverage is judged
// against the oldest retained checkpoint — not the newest — so recovery's
// fallback chain never points at deleted records.
func (st *Store) compactLocked() {
	cks, err := listCheckpoints(st.dir)
	if err != nil || len(cks) == 0 {
		return
	}
	keep := st.opts.CheckpointKeep
	if keep > len(cks) {
		keep = len(cks)
	}
	for _, ck := range cks[keep:] {
		if err := os.Remove(ck.path); err != nil {
			st.opts.Logf("store: removing old checkpoint %s: %v", ck.path, err)
		}
	}
	covered := cks[keep-1].lsn // oldest retained checkpoint
	segs, err := listSegments(st.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].first == st.segFirst {
			continue // never delete the active segment
		}
		// A sealed segment's records all precede the next segment's first
		// LSN; it is disposable once the checkpoint covers them all.
		if segs[i+1].first <= covered+1 {
			if err := os.Remove(segs[i].path); err != nil {
				st.opts.Logf("store: compacting segment %s: %v", segs[i].path, err)
			}
		}
	}
}

// syncLoop is the interval-fsync policy's background flusher.
func (st *Store) syncLoop() {
	defer st.wg.Done()
	//lint:ignore lockguard opts is write-once in Open, before this goroutine starts
	t := time.NewTicker(st.opts.Fsync.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			st.mu.Lock()
			if !st.closed && st.unsynced > 0 {
				if err := st.syncLocked(); err != nil {
					st.opts.Logf("store: interval fsync: %v", err)
				}
				st.unsynced = 0
			}
			st.mu.Unlock()
		case <-st.stop:
			return
		}
	}
}

// Close flushes the WAL to disk and closes the store. It is idempotent and
// safe to call concurrently with Append: in-flight appends either complete
// before the flush or observe ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	close(st.stop)
	// A graceful shutdown always leaves a durable WAL; both the flush and
	// the close error are worth reporting, so neither masks the other.
	err := errors.Join(st.syncLocked(), st.f.Close())
	st.mu.Unlock()
	st.wg.Wait()
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}
