package store

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	ckptMagic  = "wiscape-checkpoint"
	ckptVer    = "v1"
)

// Recovery is the outcome of scanning a data directory on Open: the state
// a coordinator needs to resume, plus counters describing what damage was
// tolerated along the way.
type Recovery struct {
	// Snapshot is the newest valid checkpoint, nil when none exists (clean
	// start). CheckpointLSN is the last WAL record it covers.
	Snapshot      *core.Snapshot
	CheckpointLSN uint64

	// Tail holds the WAL records newer than the checkpoint, in append
	// order; replaying them into the restored controller reconstructs the
	// in-progress epoch state.
	Tail []trace.Sample

	// Damage tolerated: checkpoints skipped for CRC/JSON corruption,
	// mid-segment records skipped for CRC/JSON corruption, and bytes
	// truncated from a torn WAL tail.
	CorruptCheckpoints int
	CorruptRecords     int
	TruncatedBytes     int64
}

type fileRef struct {
	path string
	// first LSN for segments; covered LSN for checkpoints
	first uint64
	lsn   uint64
}

// listSegments returns the WAL segments sorted by first LSN ascending.
func listSegments(dir string) ([]fileRef, error) {
	return listNumbered(dir, segPrefix, segSuffix, true)
}

// listCheckpoints returns the checkpoints sorted by covered LSN descending
// (newest first).
func listCheckpoints(dir string) ([]fileRef, error) {
	return listNumbered(dir, ckptPrefix, ckptSuffix, false)
}

func listNumbered(dir, prefix, suffix string, asc bool) ([]fileRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	var out []fileRef
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		out = append(out, fileRef{path: filepath.Join(dir, name), first: n, lsn: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if asc {
			return out[i].first < out[j].first
		}
		return out[i].first > out[j].first
	})
	return out, nil
}

// writeCheckpoint atomically persists a snapshot covering records up to
// lsn: the body is written to a temp file, fsynced, and renamed into
// place. The header line carries a CRC32 of the JSON body so recovery can
// reject torn or bit-rotted checkpoints.
func writeCheckpoint(dir string, lsn uint64, snap core.Snapshot) error {
	var body bytes.Buffer
	if err := core.WriteSnapshot(&body, snap); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016d%s", ckptPrefix, lsn, ckptSuffix))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	header := fmt.Sprintf("%s %s %d %08x\n", ckptMagic, ckptVer, lsn, crc32.ChecksumIEEE(body.Bytes()))
	_, err = io.WriteString(f, header)
	if err == nil {
		_, err = f.Write(body.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	// Close errors matter here — a failed close can mean the fsync'd bytes
	// never reached the disk — and must not be masked by a write error.
	err = errors.Join(err, f.Close())
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint validates and parses one checkpoint file.
func readCheckpoint(path string) (core.Snapshot, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Snapshot{}, 0, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return core.Snapshot{}, 0, fmt.Errorf("missing header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != ckptMagic || fields[1] != ckptVer {
		return core.Snapshot{}, 0, fmt.Errorf("bad header %q", string(data[:nl]))
	}
	lsn, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return core.Snapshot{}, 0, fmt.Errorf("bad lsn: %w", err)
	}
	wantCRC, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil {
		return core.Snapshot{}, 0, fmt.Errorf("bad crc: %w", err)
	}
	body := data[nl+1:]
	if got := crc32.ChecksumIEEE(body); got != uint32(wantCRC) {
		return core.Snapshot{}, 0, fmt.Errorf("crc mismatch: header %08x, body %08x", wantCRC, got)
	}
	snap, err := core.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		return core.Snapshot{}, 0, err
	}
	return snap, lsn, nil
}

// recoverDir scans a data directory: it picks the newest checkpoint that
// validates (skipping corrupt ones), then replays every WAL segment,
// collecting records newer than the checkpoint. Corrupt records followed
// by valid ones are skipped; a corrupt or partial run extending to the end
// of the newest segment is a torn tail and is truncated away. Returns the
// recovery outcome and the next LSN to assign.
func recoverDir(dir string, opts Options) (Recovery, uint64, error) {
	var rec Recovery
	nextLSN := uint64(1)

	cks, err := listCheckpoints(dir)
	if err != nil {
		return rec, 0, err
	}
	for _, ck := range cks {
		snap, lsn, err := readCheckpoint(ck.path)
		if err != nil {
			rec.CorruptCheckpoints++
			opts.Logf("store: skipping corrupt checkpoint %s: %v", ck.path, err)
			continue
		}
		rec.Snapshot = &snap
		rec.CheckpointLSN = lsn
		if lsn+1 > nextLSN {
			nextLSN = lsn + 1
		}
		break
	}

	segs, err := listSegments(dir)
	if err != nil {
		return rec, 0, err
	}
	for i, sg := range segs {
		last := i == len(segs)-1
		if err := scanSegment(sg.path, last, &rec, &nextLSN, opts); err != nil {
			return rec, 0, err
		}
	}
	return rec, nextLSN, nil
}

// maxWALLineBytes caps one WAL line during recovery. A legitimate record
// is a few hundred bytes; anything past this is corruption, and reading
// it through an unbounded ReadBytes would let one damaged (or hostile)
// segment balloon memory before the CRC even gets a look.
const maxWALLineBytes = 1 << 20

// scanSegment replays one WAL segment into rec. For the last (active at
// crash time) segment, invalid data extending to EOF is truncated so the
// next crash-free run starts from a clean journal.
func scanSegment(path string, last bool, rec *Recovery, nextLSN *uint64, opts Options) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	var offset, goodEnd int64 // goodEnd: file offset just past the last valid record
	pendingBad := 0           // invalid lines seen since the last valid record
	for {
		line, consumed, complete := readLineCapped(br, maxWALLineBytes)
		offset += consumed
		if complete {
			if smp, lsn, ok := parseRecordLine(line); ok {
				rec.CorruptRecords += pendingBad
				pendingBad = 0
				goodEnd = offset
				if lsn+1 > *nextLSN {
					*nextLSN = lsn + 1
				}
				if lsn > rec.CheckpointLSN {
					rec.Tail = append(rec.Tail, smp)
				}
			} else {
				// Includes over-cap lines (line == nil): corrupt either way.
				pendingBad++
			}
			continue
		}
		if consumed > 0 {
			pendingBad++ // partial line at EOF: torn write
		}
		break
	}
	size := offset
	cerr := f.Close()
	if cerr != nil {
		cerr = fmt.Errorf("store: closing segment: %w", cerr)
	}
	if last && goodEnd < size {
		// Torn tail: drop everything past the last valid record.
		rec.TruncatedBytes += size - goodEnd
		opts.Logf("store: truncating torn WAL tail of %s: %d bytes", path, size-goodEnd)
		if err := os.Truncate(path, goodEnd); err != nil {
			return errors.Join(fmt.Errorf("store: truncating torn tail: %w", err), cerr)
		}
	} else {
		rec.CorruptRecords += pendingBad
	}
	return cerr
}

// readLineCapped reads one '\n'-terminated line of at most limit bytes,
// without ever buffering more than limit (+ one bufio chunk). It returns
// the line including its delimiter (nil when the line exceeded the cap
// but was still consumed through its delimiter), the number of bytes
// consumed from br, and whether a delimiter was found. complete=false
// means EOF or a read error ended the line early.
func readLineCapped(br *bufio.Reader, limit int) (line []byte, consumed int64, complete bool) {
	overflow := false
	for {
		chunk, err := br.ReadSlice('\n')
		consumed += int64(len(chunk))
		if !overflow {
			line = append(line, chunk...)
			if len(line) > limit {
				overflow = true
				line = nil
			}
		}
		switch {
		case err == nil:
			return line, consumed, true
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			return line, consumed, false
		}
	}
}

// parseRecordLine validates one "crc32hex payload\n" WAL line.
func parseRecordLine(line []byte) (trace.Sample, uint64, bool) {
	// 8 hex digits + ' ' + at least "{}" + '\n'.
	if len(line) < 12 || line[8] != ' ' || line[len(line)-1] != '\n' {
		return trace.Sample{}, 0, false
	}
	var crcBytes [4]byte
	if _, err := hex.Decode(crcBytes[:], line[:8]); err != nil {
		return trace.Sample{}, 0, false
	}
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	payload := line[9 : len(line)-1]
	if crc32.ChecksumIEEE(payload) != want {
		return trace.Sample{}, 0, false
	}
	var wr walRecord
	if err := json.Unmarshal(payload, &wr); err != nil {
		return trace.Sample{}, 0, false
	}
	return wr.Sample, wr.LSN, true
}
