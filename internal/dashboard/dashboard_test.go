package dashboard

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	origin = geo.Madison().Center()
	start  = radio.Epoch.Add(10 * 24 * time.Hour)
)

// filled returns a controller with three zones of UDP records, one of them
// high-variance.
func filled(t *testing.T) *core.Controller {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.DefaultEpoch = 10 * time.Minute
	c := core.NewController(cfg, origin)
	r := rng.New(7)
	for zi, spec := range []struct {
		distM float64
		mean  float64
		sigma float64
	}{{0, 900, 20}, {1500, 1200, 25}, {3000, 700, 250}} {
		loc := origin.Offset(float64(zi*90), spec.distM)
		at := start
		for i := 0; i < 120; i++ {
			c.Ingest(trace.Sample{
				Time: at, Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps,
				Value: spec.mean + spec.sigma*r.NormFloat64(), ClientID: "d",
			})
			at = at.Add(time.Minute)
		}
	}
	return c
}

func TestRenderTable(t *testing.T) {
	c := filled(t)
	var b strings.Builder
	err := RenderTable(&b, c, TableOptions{
		Network: radio.NetB, Metric: trace.MetricUDPKbps,
		Stale: time.Hour, Now: start.Add(3 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ZONE") || !strings.Contains(out, "SAMPLES") {
		t.Fatalf("header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 { // header + 3 zones
		t.Fatalf("expected 3 zone rows:\n%s", out)
	}
	if !strings.Contains(out, "HIGH-VAR") {
		t.Fatalf("high-variance zone not flagged:\n%s", out)
	}
}

func TestRenderTableTopAndEmpty(t *testing.T) {
	c := filled(t)
	var b strings.Builder
	if err := RenderTable(&b, c, TableOptions{Network: radio.NetB, Metric: trace.MetricUDPKbps, Top: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "\n") != 2 {
		t.Fatalf("Top=1 should print one row:\n%s", b.String())
	}
	b.Reset()
	if err := RenderTable(&b, c, TableOptions{Network: radio.NetA, Metric: trace.MetricUDPKbps}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no records") {
		t.Fatalf("empty table should say so: %q", b.String())
	}
}

func TestRenderMap(t *testing.T) {
	c := filled(t)
	var b strings.Builder
	err := RenderMap(&b, c, MapOptions{
		Network: radio.NetB, Metric: trace.MetricUDPKbps, Grid: c.Grid(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3 zones") {
		t.Fatalf("map header wrong:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("high-variance zone should render as '!':\n%s", out)
	}
	if !strings.ContainsAny(out, "0123456789") {
		t.Fatalf("no level digits rendered:\n%s", out)
	}
	// Requires a grid.
	if err := RenderMap(&b, c, MapOptions{Network: radio.NetB, Metric: trace.MetricUDPKbps}); err == nil {
		t.Fatal("missing grid must error")
	}
}

func TestRenderAlerts(t *testing.T) {
	var b strings.Builder
	if err := RenderAlerts(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no alerts") {
		t.Fatal("empty alert log should say so")
	}
	b.Reset()
	alerts := []core.Alert{{
		Key:      core.Key{Net: radio.NetB, Metric: trace.MetricRTTMs},
		Previous: core.Record{MeanValue: 113, StdDev: 5},
		Current:  core.Record{MeanValue: 420},
		At:       start,
	}}
	if err := RenderAlerts(&b, alerts); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "113.0 -> 420.0") {
		t.Fatalf("alert line wrong: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	c := filled(t)
	s := Summarize(c, radio.NetB, trace.MetricUDPKbps)
	if s.Zones != 3 {
		t.Fatalf("zones %d", s.Zones)
	}
	if s.HighVarZones != 1 {
		t.Fatalf("high-var zones %d", s.HighVarZones)
	}
	if s.TotalSamples == 0 || s.MeanValue < 700 || s.MeanValue > 1200 {
		t.Fatalf("summary stats off: %+v", s)
	}
	if !strings.Contains(s.String(), "3 zones") {
		t.Fatalf("summary string: %q", s.String())
	}
	empty := Summarize(c, radio.NetC, trace.MetricUDPKbps)
	if empty.Zones != 0 || empty.MeanValue != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}
