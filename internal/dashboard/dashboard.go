// Package dashboard renders operator views of WiScape state: the zone
// record table, a Figure-1-style ASCII coverage map, and the alert log —
// the "broad performance characteristics of the network" the paper says
// operators and users need, in a form a terminal can show.
package dashboard

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Source is the slice of controller state the dashboard needs. Both
// *core.Controller (local) and a network client wrapper satisfy it.
type Source interface {
	Records(net radio.NetworkID, m trace.Metric) []core.Record
}

// TableOptions configures RenderTable.
type TableOptions struct {
	Network radio.NetworkID
	Metric  trace.Metric
	Top     int           // rows to show (by sample volume); 0 = all
	Stale   time.Duration // mark records older than this; 0 disables
	Now     time.Time
}

// RenderTable writes the per-zone record table.
func RenderTable(w io.Writer, src Source, opts TableOptions) error {
	records := src.Records(opts.Network, opts.Metric)
	if len(records) == 0 {
		_, err := fmt.Fprintf(w, "no records for %s/%s\n", opts.Network, opts.Metric)
		return err
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Samples > records[j].Samples })
	n := len(records)
	if opts.Top > 0 && opts.Top < n {
		n = opts.Top
	}
	if _, err := fmt.Fprintf(w, "%-10s %12s %10s %8s %10s %s\n",
		"ZONE", "MEAN", "STDDEV", "SAMPLES", "UPDATED", "FLAGS"); err != nil {
		return err
	}
	for _, rec := range records[:n] {
		flags := ""
		if rec.MeanValue > 0 && rec.StdDev/rec.MeanValue > 0.2 {
			flags += "HIGH-VAR "
		}
		if opts.Stale > 0 && !opts.Now.IsZero() && opts.Now.Sub(rec.UpdatedAt) > opts.Stale {
			flags += "STALE "
		}
		updated := "-"
		if !rec.UpdatedAt.IsZero() {
			updated = rec.UpdatedAt.Format("01-02 15:04")
		}
		if _, err := fmt.Fprintf(w, "%-10s %12.1f %10.1f %8d %10s %s\n",
			rec.Key.Zone, rec.MeanValue, rec.StdDev, rec.Samples, updated, strings.TrimSpace(flags)); err != nil {
			return err
		}
	}
	return nil
}

// MapOptions configures RenderMap.
type MapOptions struct {
	Network radio.NetworkID
	Metric  trace.Metric
	// Grid must match the controller's zone grid to place records.
	Grid *geo.Grid
	// HighVarThreshold marks zones whose rel.std exceeds it (default 0.2).
	HighVarThreshold float64
}

// RenderMap writes a Figure-1-style ASCII map: digits 0-9 scale the metric
// between the observed min and max, '!' marks high-variance zones, '.' is
// no data.
func RenderMap(w io.Writer, src Source, opts MapOptions) error {
	if opts.Grid == nil {
		return fmt.Errorf("dashboard: RenderMap requires a grid")
	}
	if opts.HighVarThreshold <= 0 {
		opts.HighVarThreshold = 0.2
	}
	records := src.Records(opts.Network, opts.Metric)
	if len(records) == 0 {
		_, err := fmt.Fprintf(w, "no records for %s/%s\n", opts.Network, opts.Metric)
		return err
	}

	byZone := make(map[geo.ZoneID]core.Record, len(records))
	var lo, hi geo.ZoneID
	var vals []float64
	for i, rec := range records {
		z := rec.Key.Zone
		byZone[z] = rec
		vals = append(vals, rec.MeanValue)
		if i == 0 {
			lo, hi = z, z
			continue
		}
		if z.X < lo.X {
			lo.X = z.X
		}
		if z.Y < lo.Y {
			lo.Y = z.Y
		}
		if z.X > hi.X {
			hi.X = z.X
		}
		if z.Y > hi.Y {
			hi.Y = z.Y
		}
	}
	minV, maxV := stats.Min(vals), stats.Max(vals)

	if _, err := fmt.Fprintf(w, "%s/%s: %d zones (0=%.0f .. 9=%.0f, !=rel.std>%.0f%%)\n",
		opts.Network, opts.Metric, len(records), minV, maxV, opts.HighVarThreshold*100); err != nil {
		return err
	}
	for y := hi.Y; y >= lo.Y; y-- {
		var line strings.Builder
		for x := lo.X; x <= hi.X; x++ {
			rec, ok := byZone[geo.ZoneID{X: x, Y: y}]
			switch {
			case !ok:
				line.WriteByte('.')
			case rec.MeanValue > 0 && rec.StdDev/rec.MeanValue > opts.HighVarThreshold:
				line.WriteByte('!')
			default:
				level := 0
				if maxV > minV {
					level = int(9 * (rec.MeanValue - minV) / (maxV - minV))
				}
				line.WriteByte(byte('0' + level))
			}
		}
		if _, err := fmt.Fprintln(w, line.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderAlerts writes the alert log, most recent last.
func RenderAlerts(w io.Writer, alerts []core.Alert) error {
	if len(alerts) == 0 {
		_, err := fmt.Fprintln(w, "no alerts")
		return err
	}
	for _, a := range alerts {
		if _, err := fmt.Fprintf(w, "%s  zone %-9s %-5s %-10s %10.1f -> %-10.1f (%.1f sigma)\n",
			a.At.Format("2006-01-02 15:04"), a.Key.Zone, a.Key.Net, a.Key.Metric,
			a.Previous.MeanValue, a.Current.MeanValue, a.SigmasMoved()); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates fleet-level health for the header line.
type Summary struct {
	Zones        int
	TotalSamples int64
	MeanValue    float64
	HighVarZones int
}

// Summarize computes the header summary for one network/metric.
func Summarize(src Source, net radio.NetworkID, m trace.Metric) Summary {
	records := src.Records(net, m)
	var s Summary
	var vals []float64
	for _, rec := range records {
		s.Zones++
		s.TotalSamples += rec.Samples
		vals = append(vals, rec.MeanValue)
		if rec.MeanValue > 0 && rec.StdDev/rec.MeanValue > 0.2 {
			s.HighVarZones++
		}
	}
	s.MeanValue = stats.Mean(vals)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%d zones, %d samples, mean %.1f, %d high-variance",
		s.Zones, s.TotalSamples, s.MeanValue, s.HighVarZones)
}
