package geo

// Polyline is an ordered sequence of waypoints, used to describe bus and car
// routes. Distances along the line are measured in meters from the first
// waypoint.
type Polyline []Point

// Length returns the total polyline length in meters.
func (pl Polyline) Length() float64 {
	total := 0.0
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].DistanceTo(pl[i])
	}
	return total
}

// At returns the point at distance distM along the line. Distances below 0
// clamp to the start; distances beyond the end clamp to the last waypoint.
func (pl Polyline) At(distM float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if distM <= 0 || len(pl) == 1 {
		return pl[0]
	}
	remaining := distM
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].DistanceTo(pl[i])
		if remaining <= seg {
			if seg == 0 {
				return pl[i]
			}
			return Interpolate(pl[i-1], pl[i], remaining/seg)
		}
		remaining -= seg
	}
	return pl[len(pl)-1]
}

// Sample returns n points evenly spaced along the polyline (including both
// endpoints when n >= 2).
func (pl Polyline) Sample(n int) []Point {
	if n <= 0 || len(pl) == 0 {
		return nil
	}
	if n == 1 {
		return []Point{pl[0]}
	}
	length := pl.Length()
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = pl.At(length * float64(i) / float64(n-1))
	}
	return out
}

// Reverse returns a copy of the polyline with waypoint order reversed.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}
