package geo

// Preset geography mirroring the paper's measurement areas (Table 2):
// Madison WI (155 km² city area), a 20 km "Short segment" road stretch, the
// 240 km Madison–Chicago intercity route, and the New Brunswick / Princeton
// NJ sites. Coordinates are real-world, so maps produced by the examples are
// geographically sensible, but nothing in the system depends on these exact
// values — all analysis derives from the simulated radio fields.

// Madison returns the bounding box of the Madison, WI study area,
// approximately 155 km² (the paper's city-wide extent).
func Madison() BoundingBox {
	// ~12.5 km (E-W) x ~12.5 km (N-S) around the isthmus.
	return BoundingBox{
		MinLat: 43.0150, MaxLat: 43.1275,
		MinLon: -89.4850, MaxLon: -89.3310,
	}
}

// CampRandallStadium is the UW–Madison football stadium (80,000 seats), the
// site of the Fig. 10 latency-surge event.
var CampRandallStadium = Point{Lat: 43.0699, Lon: -89.4124}

// MadisonStaticSites returns the five Spot dataset static locations in
// Madison (paper Table 2: Static-WI, 5 locations).
func MadisonStaticSites() []Point {
	return []Point{
		{Lat: 43.0766, Lon: -89.4125}, // campus west
		{Lat: 43.0731, Lon: -89.3861}, // capitol square
		{Lat: 43.0989, Lon: -89.3561}, // east side
		{Lat: 43.0415, Lon: -89.4431}, // southwest
		{Lat: 43.1131, Lon: -89.4226}, // north side
	}
}

// NJStaticSites returns the two Spot dataset locations in New Jersey
// (New Brunswick and Princeton).
func NJStaticSites() []Point {
	return []Point{
		{Lat: 40.4862, Lon: -74.4518}, // New Brunswick
		{Lat: 40.3573, Lon: -74.6672}, // Princeton
	}
}

// ShortSegment returns the ~20 km Madison road stretch used by the Short
// segment dataset (Figs. 12–13) as a polyline.
func ShortSegment() Polyline {
	return Polyline{
		{Lat: 43.0731, Lon: -89.3861},
		{Lat: 43.0608, Lon: -89.3402},
		{Lat: 43.0519, Lon: -89.3011},
		{Lat: 43.0492, Lon: -89.2581},
		{Lat: 43.0576, Lon: -89.2190},
		{Lat: 43.0680, Lon: -89.1780},
		{Lat: 43.0790, Lon: -89.1380},
	}
}

// MadisonChicago returns the ~240 km intercity route between Madison and
// Chicago used by the WiRover intercity buses.
func MadisonChicago() Polyline {
	return Polyline{
		{Lat: 43.0731, Lon: -89.3861}, // Madison
		{Lat: 42.9130, Lon: -89.2360}, // Stoughton area
		{Lat: 42.6828, Lon: -89.0187}, // Janesville
		{Lat: 42.5005, Lon: -88.9860}, // Beloit
		{Lat: 42.3250, Lon: -89.0600}, // South Beloit / Roscoe
		{Lat: 42.2597, Lon: -89.0640}, // Rockford (I-90 dips southwest)
		{Lat: 42.2020, Lon: -88.9000}, // Cherry Valley
		{Lat: 42.2639, Lon: -88.8443}, // Belvidere
		{Lat: 42.1580, Lon: -88.4360}, // Marengo area
		{Lat: 42.0450, Lon: -88.2740}, // Elgin
		{Lat: 41.9670, Lon: -87.9980}, // Itasca
		{Lat: 41.8980, Lon: -87.8200}, // O'Hare corridor
		{Lat: 41.8781, Lon: -87.6298}, // Chicago
	}
}

// MadisonBusRoutes returns a set of transit-bus route polylines crossing the
// Madison study area. The Standalone/WiRover datasets were collected from up
// to five public transit buses randomly assigned to routes each day.
func MadisonBusRoutes() []Polyline {
	box := Madison()
	c := box.Center()
	mk := func(pts ...Point) Polyline { return Polyline(pts) }
	return []Polyline{
		// East-west through the isthmus.
		mk(Point{Lat: c.Lat, Lon: box.MinLon}, Point{Lat: 43.0731, Lon: -89.3861}, Point{Lat: c.Lat + 0.01, Lon: box.MaxLon}),
		// North-south.
		mk(Point{Lat: box.MinLat, Lon: c.Lon}, Point{Lat: 43.0731, Lon: -89.3861}, Point{Lat: box.MaxLat, Lon: c.Lon - 0.02}),
		// Campus loop to the west side.
		mk(Point{Lat: 43.0766, Lon: -89.4125}, Point{Lat: 43.0550, Lon: -89.4600}, Point{Lat: 43.0300, Lon: -89.4700}, Point{Lat: 43.0200, Lon: -89.4200}),
		// Northeast diagonal.
		mk(Point{Lat: 43.0400, Lon: -89.4500}, Point{Lat: 43.0731, Lon: -89.3861}, Point{Lat: 43.1100, Lon: -89.3400}),
		// Southern arc.
		mk(Point{Lat: 43.0200, Lon: -89.4700}, Point{Lat: 43.0250, Lon: -89.4000}, Point{Lat: 43.0350, Lon: -89.3450}),
		// Stadium corridor (passes Camp Randall, feeds Fig. 10).
		mk(Point{Lat: 43.0500, Lon: -89.4450}, CampRandallStadium, Point{Lat: 43.0850, Lon: -89.3750}),
	}
}

// NewBrunswickArea returns a small bounding box around the NJ sites used for
// the Proximate-NJ dataset.
func NewBrunswickArea() BoundingBox {
	return BoundingBox{
		MinLat: 40.470, MaxLat: 40.505,
		MinLon: -74.475, MaxLon: -74.425,
	}
}
