package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// randPoint maps two arbitrary float64 seeds into a sane mid-latitude point,
// keeping property tests away from the poles where equirectangular
// assumptions break.
func randPoint(a, b float64) Point {
	frac := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0.5
		}
		_, f := math.Modf(math.Abs(v))
		return f
	}
	return Point{Lat: 25 + 40*frac(a), Lon: -120 + 60*frac(b)}
}

func TestDistanceKnown(t *testing.T) {
	madison := Point{Lat: 43.0731, Lon: -89.3861}
	chicago := Point{Lat: 41.8781, Lon: -87.6298}
	d := madison.DistanceTo(chicago)
	// Great-circle Madison-Chicago is about 196 km.
	if d < 190000 || d > 205000 {
		t.Fatalf("Madison-Chicago distance %v m, want ~196 km", d)
	}
}

func TestDistanceZero(t *testing.T) {
	p := Point{Lat: 43, Lon: -89}
	if d := p.DistanceTo(p); d != 0 {
		t.Fatalf("self distance %v, want 0", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		p := randPoint(a1, a2)
		q := randPoint(b1, b2)
		d1 := p.DistanceTo(q)
		d2 := q.DistanceTo(p)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 float64) bool {
		p := randPoint(a1, a2)
		q := randPoint(b1, b2)
		r := randPoint(c1, c2)
		return p.DistanceTo(r) <= p.DistanceTo(q)+q.DistanceTo(r)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	p := Point{Lat: 43.07, Lon: -89.4}
	for _, bearing := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{10, 250, 5000, 100000} {
			q := p.Offset(bearing, dist)
			got := p.DistanceTo(q)
			if math.Abs(got-dist) > dist*1e-6+1e-6 {
				t.Fatalf("Offset(%v,%v): distance came back %v", bearing, dist, got)
			}
			back := q.BearingTo(p)
			// The reverse bearing should be roughly bearing+180 (within a
			// degree at these short distances).
			diff := math.Abs(math.Mod(back-(bearing+180)+540, 360) - 180)
			if dist <= 5000 && diff > 1 {
				t.Fatalf("bearing %v dist %v: reverse bearing %v (off by %v deg)", bearing, dist, back, diff)
			}
		}
	}
}

func TestInterpolate(t *testing.T) {
	a := Point{Lat: 43.0, Lon: -89.4}
	b := Point{Lat: 43.1, Lon: -89.3}
	mid := Interpolate(a, b, 0.5)
	dA := a.DistanceTo(mid)
	dB := b.DistanceTo(mid)
	if math.Abs(dA-dB) > 1 {
		t.Fatalf("midpoint distances differ: %v vs %v", dA, dB)
	}
	if got := Interpolate(a, b, 0); got.DistanceTo(a) > 0.001 {
		t.Fatalf("Interpolate(0) != a")
	}
	if got := Interpolate(a, b, 1); got.DistanceTo(b) > 0.01 {
		t.Fatalf("Interpolate(1) != b: off by %v m", got.DistanceTo(b))
	}
	if got := Interpolate(a, a, 0.5); got != a {
		t.Fatal("Interpolate between identical points must return the point")
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Point{Lat: 43.07, Lon: -89.4})
	f := func(a1, a2 float64) bool {
		p := Point{
			Lat: 43.07 + 0.1*(math.Mod(math.Abs(a1), 1.0)-0.5),
			Lon: -89.4 + 0.1*(math.Mod(math.Abs(a2), 1.0)-0.5),
		}
		if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
			return true
		}
		x, y := pr.ToXY(p)
		q := pr.FromXY(x, y)
		return p.DistanceTo(q) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionDistances(t *testing.T) {
	pr := NewProjection(Point{Lat: 43.07, Lon: -89.4})
	a := Point{Lat: 43.07, Lon: -89.4}
	b := a.Offset(90, 1000)
	ax, ay := pr.ToXY(a)
	bx, by := pr.ToXY(b)
	planar := math.Hypot(bx-ax, by-ay)
	if math.Abs(planar-1000) > 1 {
		t.Fatalf("projected distance %v, want ~1000", planar)
	}
}

func TestGridZoneStability(t *testing.T) {
	g := GridForZoneRadius(Madison().Center(), 250)
	f := func(a1, a2 float64) bool {
		p := randPoint(a1, a2)
		return g.Zone(p) == g.Zone(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridCenterInOwnZone(t *testing.T) {
	g := GridForZoneRadius(Madison().Center(), 250)
	box := Madison()
	for _, z := range g.ZonesInBox(box) {
		if got := g.Zone(g.Center(z)); got != z {
			t.Fatalf("center of %v maps to %v", z, got)
		}
	}
}

func TestGridCellArea(t *testing.T) {
	g := GridForZoneRadius(Madison().Center(), 250)
	// 250 m radius circle = 0.196 km²; cell should have the same area.
	area := g.CellM() * g.CellM() / 1e6
	if math.Abs(area-0.196) > 0.002 {
		t.Fatalf("cell area %.4f km², want ~0.196", area)
	}
	if math.Abs(g.EquivalentRadiusM()-250) > 0.01 {
		t.Fatalf("equivalent radius %.2f, want 250", g.EquivalentRadiusM())
	}
}

func TestGridNeighborsDiffer(t *testing.T) {
	g := GridForZoneRadius(Madison().Center(), 250)
	p := Madison().Center()
	q := p.Offset(90, g.CellM()*1.5)
	if g.Zone(p) == g.Zone(q) {
		t.Fatal("points 1.5 cells apart should be in different zones")
	}
}

func TestZonesInBoxCoversMadison(t *testing.T) {
	g := GridForZoneRadius(Madison().Center(), 250)
	zones := g.ZonesInBox(Madison())
	// 155 km² at ~0.196 km²/zone: expect on the order of 700-800 zones.
	if len(zones) < 500 || len(zones) > 1100 {
		t.Fatalf("Madison produced %d zones, expected ~790", len(zones))
	}
	seen := make(map[ZoneID]bool, len(zones))
	for _, z := range zones {
		if seen[z] {
			t.Fatalf("duplicate zone %v", z)
		}
		seen[z] = true
	}
}

func TestNewGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive cell size")
		}
	}()
	NewGrid(Point{}, 0)
}

func TestCircularZone(t *testing.T) {
	c := CircularZone{Center: Point{Lat: 43.07, Lon: -89.4}, RadiusM: 250}
	if !c.Contains(c.Center) {
		t.Fatal("center not contained")
	}
	if !c.Contains(c.Center.Offset(45, 249)) {
		t.Fatal("point at 249 m should be inside")
	}
	if c.Contains(c.Center.Offset(45, 251)) {
		t.Fatal("point at 251 m should be outside")
	}
	if math.Abs(c.AreaSqKm()-0.196) > 0.001 {
		t.Fatalf("area %.4f, want ~0.196", c.AreaSqKm())
	}
}

func TestPolylineLengthAndAt(t *testing.T) {
	pl := Polyline{
		{Lat: 43.0, Lon: -89.4},
		{Lat: 43.0, Lon: -89.35},
		{Lat: 43.05, Lon: -89.35},
	}
	length := pl.Length()
	if length <= 0 {
		t.Fatal("polyline has no length")
	}
	if got := pl.At(0); got != pl[0] {
		t.Fatal("At(0) != first waypoint")
	}
	end := pl.At(length * 2)
	if end.DistanceTo(pl[2]) > 0.01 {
		t.Fatal("At beyond end should clamp to last waypoint")
	}
	mid := pl.At(length / 2)
	if !(mid.Lat >= 42.99 && mid.Lat <= 43.06 && mid.Lon >= -89.41 && mid.Lon <= -89.34) {
		t.Fatalf("midpoint %v outside the polyline hull", mid)
	}
}

func TestPolylineAtMonotone(t *testing.T) {
	pl := ShortSegment()
	length := pl.Length()
	prev := 0.0
	prevPt := pl.At(0)
	for i := 1; i <= 100; i++ {
		d := length * float64(i) / 100
		pt := pl.At(d)
		step := prevPt.DistanceTo(pt)
		// Straight-line distance between consecutive samples can't exceed
		// the along-line distance.
		if step > (d-prev)+1 {
			t.Fatalf("polyline jumped %v m for along-line step %v m", step, d-prev)
		}
		prev, prevPt = d, pt
	}
}

func TestPolylineSample(t *testing.T) {
	pl := ShortSegment()
	pts := pl.Sample(45)
	if len(pts) != 45 {
		t.Fatalf("Sample returned %d points", len(pts))
	}
	if pts[0].DistanceTo(pl[0]) > 0.01 {
		t.Fatal("first sample should be the route start")
	}
	if pts[44].DistanceTo(pl[len(pl)-1]) > 0.01 {
		t.Fatal("last sample should be the route end")
	}
	if got := pl.Sample(0); got != nil {
		t.Fatal("Sample(0) should be nil")
	}
	if got := pl.Sample(1); len(got) != 1 || got[0] != pl[0] {
		t.Fatal("Sample(1) should return the start")
	}
}

func TestPolylineReverse(t *testing.T) {
	pl := ShortSegment()
	rev := pl.Reverse()
	if len(rev) != len(pl) {
		t.Fatal("reverse changed length")
	}
	if rev[0] != pl[len(pl)-1] || rev[len(rev)-1] != pl[0] {
		t.Fatal("reverse endpoints wrong")
	}
	if math.Abs(rev.Length()-pl.Length()) > 1e-6 {
		t.Fatal("reverse changed length measure")
	}
}

func TestRegionPresets(t *testing.T) {
	area := Madison().AreaSqKm()
	if area < 140 || area > 175 {
		t.Fatalf("Madison area %.1f km², paper says ~155", area)
	}
	if l := MadisonChicago().Length(); l < 220000 || l > 280000 {
		t.Fatalf("Madison-Chicago route %v m, paper says ~240 km", l)
	}
	if l := ShortSegment().Length(); l < 18000 || l > 25000 {
		t.Fatalf("short segment %v m, paper says ~20 km", l)
	}
	if n := len(MadisonStaticSites()); n != 5 {
		t.Fatalf("want 5 Madison static sites, got %d", n)
	}
	if n := len(NJStaticSites()); n != 2 {
		t.Fatalf("want 2 NJ static sites, got %d", n)
	}
	if !Madison().Contains(CampRandallStadium) {
		t.Fatal("stadium must be inside the Madison box")
	}
	for i, s := range MadisonStaticSites() {
		if !Madison().Contains(s) {
			t.Fatalf("static site %d outside Madison box", i)
		}
	}
	if len(MadisonBusRoutes()) < 5 {
		t.Fatal("need at least 5 bus routes")
	}
	for i, r := range MadisonBusRoutes() {
		if r.Length() < 3000 {
			t.Fatalf("bus route %d too short: %v m", i, r.Length())
		}
	}
}

func TestBoundingBoxContains(t *testing.T) {
	box := Madison()
	if !box.Contains(box.Center()) {
		t.Fatal("center must be contained")
	}
	if box.Contains(Point{Lat: 0, Lon: 0}) {
		t.Fatal("null island is not in Madison")
	}
}

func BenchmarkDistance(b *testing.B) {
	p := Point{Lat: 43.0731, Lon: -89.3861}
	q := Point{Lat: 41.8781, Lon: -87.6298}
	for i := 0; i < b.N; i++ {
		_ = p.DistanceTo(q)
	}
}

func BenchmarkGridZone(b *testing.B) {
	g := GridForZoneRadius(Madison().Center(), 250)
	p := Madison().Center()
	for i := 0; i < b.N; i++ {
		_ = g.Zone(p)
	}
}
