// Package geo provides the geographic primitives WiScape aggregates over:
// WGS-84 points, great-circle distances, local projections, zone grids and
// route polylines.
//
// WiScape partitions the world into zones — contiguous areas with similar
// user experience (paper §3.1, radius ≈ 250 m). This package supplies the
// spatial machinery for that partitioning; the statistical choice of zone
// radius lives in internal/core.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusM is the mean Earth radius in meters used for all spherical
// computations.
const EarthRadiusM = 6371000.0

// Point is a WGS-84 coordinate in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String renders the point as "lat,lon" with 6 decimal places (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceTo returns the great-circle (haversine) distance to q in meters.
func (p Point) DistanceTo(q Point) float64 {
	lat1 := deg2rad(p.Lat)
	lat2 := deg2rad(q.Lat)
	dLat := lat2 - lat1
	dLon := deg2rad(q.Lon - p.Lon)

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadiusM * math.Asin(math.Min(1, math.Sqrt(a)))
}

// BearingTo returns the initial great-circle bearing from p to q in degrees
// clockwise from north, in [0, 360).
func (p Point) BearingTo(q Point) float64 {
	lat1 := deg2rad(p.Lat)
	lat2 := deg2rad(q.Lat)
	dLon := deg2rad(q.Lon - p.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := rad2deg(math.Atan2(y, x))
	return math.Mod(b+360, 360)
}

// Offset returns the point reached by travelling dist meters from p along
// the given bearing (degrees clockwise from north).
func (p Point) Offset(bearingDeg, distM float64) Point {
	lat1 := deg2rad(p.Lat)
	lon1 := deg2rad(p.Lon)
	brng := deg2rad(bearingDeg)
	d := distM / EarthRadiusM

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	return Point{Lat: rad2deg(lat2), Lon: rad2deg(math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi)}
}

// Interpolate returns the point a fraction f of the way from a to b along
// the great circle. f outside [0, 1] extrapolates.
func Interpolate(a, b Point, f float64) Point {
	d := a.DistanceTo(b)
	if d == 0 {
		return a
	}
	return a.Offset(a.BearingTo(b), d*f)
}

// Projection is a local equirectangular projection centered on Origin,
// accurate for the few-hundred-kilometre extents WiScape campaigns cover.
// X grows eastward, Y northward, both in meters.
type Projection struct {
	Origin Point
	cosLat float64
}

// NewProjection returns a projection centered on origin.
func NewProjection(origin Point) *Projection {
	return &Projection{Origin: origin, cosLat: math.Cos(deg2rad(origin.Lat))}
}

// ToXY projects p to local meters.
func (pr *Projection) ToXY(p Point) (x, y float64) {
	x = deg2rad(p.Lon-pr.Origin.Lon) * pr.cosLat * EarthRadiusM
	y = deg2rad(p.Lat-pr.Origin.Lat) * EarthRadiusM
	return x, y
}

// FromXY inverts ToXY.
func (pr *Projection) FromXY(x, y float64) Point {
	return Point{
		Lat: pr.Origin.Lat + rad2deg(y/EarthRadiusM),
		Lon: pr.Origin.Lon + rad2deg(x/(EarthRadiusM*pr.cosLat)),
	}
}

// BoundingBox is an axis-aligned lat/lon rectangle.
type BoundingBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside (or on the edge of) the box.
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box midpoint.
func (b BoundingBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// AreaSqKm returns the approximate area in square kilometers.
func (b BoundingBox) AreaSqKm() float64 {
	sw := Point{Lat: b.MinLat, Lon: b.MinLon}
	se := Point{Lat: b.MinLat, Lon: b.MaxLon}
	nw := Point{Lat: b.MaxLat, Lon: b.MinLon}
	return sw.DistanceTo(se) * sw.DistanceTo(nw) / 1e6
}
