package geo

import (
	"fmt"
	"math"
)

// ZoneID identifies one cell of a Grid. IDs are stable for a given grid
// origin and cell size, so they can be used as map keys and serialized.
type ZoneID struct {
	X int32 `json:"x"`
	Y int32 `json:"y"`
}

// String renders the zone id as "x:y".
func (z ZoneID) String() string { return fmt.Sprintf("%d:%d", z.X, z.Y) }

// Grid partitions the plane (under a local projection) into square cells.
// WiScape's zones are nominally circles of radius R; a grid cell with side
// R·√π has the same area (0.2 km² at R = 250 m, matching the paper), and the
// cell's inscribed statistics behave equivalently for the zone analysis.
type Grid struct {
	proj  *Projection
	cellM float64
}

// NewGrid returns a grid of square cells with side cellM meters centered on
// origin. It panics if cellM <= 0.
func NewGrid(origin Point, cellM float64) *Grid {
	if cellM <= 0 {
		panic("geo: grid cell size must be positive")
	}
	return &Grid{proj: NewProjection(origin), cellM: cellM}
}

// GridForZoneRadius returns a grid whose square cells have the same area as
// circular zones of radius radiusM meters.
func GridForZoneRadius(origin Point, radiusM float64) *Grid {
	return NewGrid(origin, radiusM*math.Sqrt(math.Pi))
}

// CellM returns the cell side length in meters.
func (g *Grid) CellM() float64 { return g.cellM }

// Origin returns the grid origin.
func (g *Grid) Origin() Point { return g.proj.Origin }

// Zone returns the id of the cell containing p.
func (g *Grid) Zone(p Point) ZoneID {
	x, y := g.proj.ToXY(p)
	return ZoneID{X: int32(math.Floor(x / g.cellM)), Y: int32(math.Floor(y / g.cellM))}
}

// Center returns the geographic center of zone z.
func (g *Grid) Center(z ZoneID) Point {
	return g.proj.FromXY((float64(z.X)+0.5)*g.cellM, (float64(z.Y)+0.5)*g.cellM)
}

// EquivalentRadiusM returns the radius of the circle with the same area as
// one grid cell.
func (g *Grid) EquivalentRadiusM() float64 {
	return g.cellM / math.Sqrt(math.Pi)
}

// ZonesInBox returns the ids of all cells whose centers fall inside box.
func (g *Grid) ZonesInBox(box BoundingBox) []ZoneID {
	sw := g.Zone(Point{Lat: box.MinLat, Lon: box.MinLon})
	ne := g.Zone(Point{Lat: box.MaxLat, Lon: box.MaxLon})
	var out []ZoneID
	for x := sw.X; x <= ne.X; x++ {
		for y := sw.Y; y <= ne.Y; y++ {
			id := ZoneID{X: x, Y: y}
			if box.Contains(g.Center(id)) {
				out = append(out, id)
			}
		}
	}
	return out
}

// CircularZone is an explicit circle used when analysing zones centered at
// chosen sites (the Spot/Proximate datasets measure within 250 m of a static
// location).
type CircularZone struct {
	Center  Point
	RadiusM float64
}

// Contains reports whether p lies within the circle.
func (c CircularZone) Contains(p Point) bool {
	return c.Center.DistanceTo(p) <= c.RadiusM
}

// AreaSqKm returns the circle area in km².
func (c CircularZone) AreaSqKm() float64 {
	return math.Pi * c.RadiusM * c.RadiusM / 1e6
}
