package analysis_test

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// loadFixtureFacts loads the named fixture packages (plus everything
// they import) and computes facts over the whole load, exactly as the
// drivers do.
func loadFixtureFacts(t *testing.T, pkgPaths ...string) (*load.Loader, *analysis.Facts, map[string]*load.Package) {
	t.Helper()
	modDir, modPath := findModuleDir(t)
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := load.New()
	ld.ModulePath = modPath
	ld.ModuleDir = modDir
	ld.Overrides = map[string]string{}
	for _, p := range pkgPaths {
		ld.Overrides[p] = filepath.Join(src, filepath.FromSlash(p))
	}
	pkgs := make(map[string]*load.Package)
	for _, p := range pkgPaths {
		lp, err := ld.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		for _, e := range append(lp.ParseErrors, lp.TypeErrors...) {
			t.Fatalf("fixture %s does not check cleanly: %v", p, e)
		}
		pkgs[p] = lp
	}
	var infos []*analysis.PackageInfo
	for _, lp := range ld.Packages() {
		infos = append(infos, &analysis.PackageInfo{Files: lp.Files, Pkg: lp.Pkg, Info: lp.Info})
	}
	return ld, analysis.ComputeFacts(infos), pkgs
}

func findModuleDir(t *testing.T) (dir, modPath string) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest)
				}
			}
			t.Fatalf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// method fetches a named type's method object by name.
func method(t *testing.T, pkg *load.Package, typeName, methodName string) types.Object {
	t.Helper()
	obj := pkg.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("type %s not found in %s", typeName, pkg.Path)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s is not a named type", typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == methodName {
			return m
		}
	}
	t.Fatalf("method %s.%s not found", typeName, methodName)
	return nil
}

func pkgFunc(t *testing.T, pkg *load.Package, name string) types.Object {
	t.Helper()
	obj := pkg.Pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("func %s not found in %s", name, pkg.Path)
	}
	return obj
}

func TestFactsGoroutineLifecycle(t *testing.T) {
	_, facts, pkgs := loadFixtureFacts(t, "goleak")
	p := pkgs["goleak"]

	pump := facts.Of(method(t, p, "svc", "pump"))
	if pump == nil || !pump.MayBlock {
		t.Fatalf("pump: want MayBlock (channel send), got %+v", pump)
	}
	if pump.ShutdownSignal || pump.WGDone {
		t.Errorf("pump: want no lifecycle evidence, got %+v", pump)
	}

	run := facts.Of(method(t, p, "svc", "run"))
	if run == nil || !run.ShutdownSignal {
		t.Fatalf("run: want ShutdownSignal from select on stop, got %+v", run)
	}

	// The select evidence must propagate one call up.
	outer := facts.Of(method(t, p, "svc", "outerRun"))
	if outer == nil || !outer.ShutdownSignal {
		t.Fatalf("outerRun: want propagated ShutdownSignal, got %+v", outer)
	}

	// And the leak must propagate too: outerLeak calls pump, gaining
	// MayBlock but no shutdown evidence.
	outerLeak := facts.Of(method(t, p, "svc", "outerLeak"))
	if outerLeak == nil || !outerLeak.MayBlock || outerLeak.ShutdownSignal {
		t.Fatalf("outerLeak: want MayBlock without ShutdownSignal, got %+v", outerLeak)
	}
}

func TestFactsReturnsIOError(t *testing.T) {
	_, facts, pkgs := loadFixtureFacts(t, "errdrop")
	p := pkgs["errdrop"]

	flushAll := facts.Of(pkgFunc(t, p, "flushAll"))
	if flushAll == nil || !flushAll.ReturnsIOError || flushAll.IOErrorKind != "file" {
		t.Fatalf("flushAll: want file-kind ReturnsIOError, got %+v", flushAll)
	}

	// Two hops: persist -> syncIt -> (os.File).Sync.
	persist := facts.Of(pkgFunc(t, p, "persist"))
	if persist == nil || !persist.ReturnsIOError || persist.IOErrorKind != "file" {
		t.Fatalf("persist: want propagated file-kind ReturnsIOError, got %+v", persist)
	}
	if !strings.Contains(persist.IOErrorVia, "syncIt") {
		t.Errorf("persist: via should name the chain, got %q", persist.IOErrorVia)
	}

	pure := facts.Of(pkgFunc(t, p, "pureWrapper"))
	if pure == nil || pure.ReturnsIOError {
		t.Fatalf("pureWrapper: want no IO-error fact, got %+v", pure)
	}

	// A function that does I/O but returns nothing carries no obligation.
	bare := facts.Of(pkgFunc(t, p, "bareFileClose"))
	if bare == nil || bare.ReturnsIOError {
		t.Fatalf("bareFileClose: returns no error, want no IO-error fact, got %+v", bare)
	}
}

func TestFactsCrossPackageMayBlock(t *testing.T) {
	_, facts, pkgs := loadFixtureFacts(t, "lockio", "lockio/remote")
	rp := pkgs["lockio/remote"]

	dial := facts.Of(pkgFunc(t, rp, "Dial"))
	if dial == nil || !dial.MayBlock || dial.BlockVia != "net.Dial" {
		t.Fatalf("remote.Dial: want MayBlock via net.Dial, got %+v", dial)
	}
	ping := facts.Of(pkgFunc(t, rp, "Ping"))
	if ping == nil || !ping.MayBlock {
		t.Fatalf("remote.Ping: want MayBlock via conn write, got %+v", ping)
	}
	dist := facts.Of(pkgFunc(t, rp, "Distance"))
	if dist == nil || dist.MayBlock {
		t.Fatalf("remote.Distance: pure function must not block, got %+v", dist)
	}

	// The caller package sees the facts across the package boundary.
	lp := pkgs["lockio"]
	notify := facts.Of(method(t, lp, "server", "notify"))
	if notify == nil || !notify.MayBlock || notify.BlockVia != "channel send" {
		t.Fatalf("(server).notify: want MayBlock via channel send, got %+v", notify)
	}
}

func TestLockFactsAcquiresAndCycles(t *testing.T) {
	_, facts, pkgs := loadFixtureFacts(t, "lockorder", "lockorder/pair")
	p := pkgs["lockorder"]

	// Direct acquisition, keyed by struct-field identity.
	mark := facts.Of(method(t, p, "gateway", "markDirty"))
	if mark == nil {
		t.Fatal("markDirty: no facts")
	}
	if acq, ok := mark.Acquires["(lockorder.gateway).mu"]; !ok || acq.Via != "" {
		t.Fatalf("markDirty: want direct acquire of (lockorder.gateway).mu, got %+v", mark.Acquires)
	}

	// Transitive acquisition with the call chain named.
	evict := facts.Of(method(t, p, "registry", "evict"))
	if evict == nil {
		t.Fatal("evict: no facts")
	}
	if _, ok := evict.Acquires["(lockorder.registry).mu"]; !ok {
		t.Fatalf("evict: want direct acquire of its own mu, got %+v", evict.Acquires)
	}
	if acq, ok := evict.Acquires["(lockorder.gateway).mu"]; !ok || !strings.Contains(acq.Via, "markDirty") {
		t.Fatalf("evict: want transitive acquire via markDirty, got %+v", evict.Acquires)
	}

	// Cross-package: publish acquires (pair.Table).Mu through Bump.
	publish := facts.Of(method(t, p, "store", "publish"))
	if publish == nil {
		t.Fatal("publish: no facts")
	}
	if acq, ok := publish.Acquires["(pair.Table).Mu"]; !ok || !strings.Contains(acq.Via, "Bump") {
		t.Fatalf("publish: want cross-package acquire via Bump, got %+v", publish.Acquires)
	}

	// Three cycles in the fixture graph: gateway/registry, store/pair,
	// and the suppressed alpha/beta pair (suppression is the analyzer's
	// job; the facts still see the cycle).
	cycles := facts.Cycles()
	if len(cycles) != 3 {
		for _, c := range cycles {
			t.Logf("cycle: %s", c.Message)
		}
		t.Fatalf("want 3 lock cycles, got %d", len(cycles))
	}
	var sawCross bool
	for _, c := range cycles {
		if !c.Pos.IsValid() {
			t.Errorf("cycle without a position: %s", c.Message)
		}
		if strings.Contains(c.Message, "(pair.Table).Mu") &&
			strings.Contains(c.Message, "via call to (Table).Bump") {
			sawCross = true
		}
	}
	if !sawCross {
		t.Error("no cycle names the cross-package edge via (Table).Bump")
	}

	// The consistent-order pair contributes edges but no cycle.
	for _, c := range cycles {
		if strings.Contains(c.Message, "(lockorder.outer).mu") {
			t.Errorf("outer/inner is consistently ordered, must not cycle: %s", c.Message)
		}
	}
}

func TestTaintFactsFindings(t *testing.T) {
	_, facts, _ := loadFixtureFacts(t, "taintalloc", "taintalloc/codec")

	taint := facts.Taint()
	// One finding per positive in the fixture, including the suppressed
	// one (suppression is applied at report time, not fact time).
	const wantFindings = 7
	if len(taint) != wantFindings {
		for _, tf := range taint {
			t.Logf("taint: %s (%s)", tf.What, tf.Via)
		}
		t.Fatalf("want %d taint findings, got %d", wantFindings, len(taint))
	}
	var sawRet, sawArg bool
	for _, tf := range taint {
		if !tf.Pos.IsValid() {
			t.Errorf("taint finding without a position: %s (%s)", tf.What, tf.Via)
		}
		if tf.Via == "codec.FrameLen → binary.Uint64" {
			sawRet = true
		}
		if strings.Contains(tf.Via, "argument from taintalloc.caller") {
			sawArg = true
		}
	}
	if !sawRet {
		t.Error("no finding derives through codec.FrameLen's return value")
	}
	if !sawArg {
		t.Error("no finding derives through allocFor's parameter")
	}
}
