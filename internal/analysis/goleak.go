package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goleak enforces goroutine lifecycle discipline in the long-lived server
// packages. WiScape's estimator state stays correct only while the
// processes mutating it can be drained and stopped: a goroutine spawned
// without a shutdown path outlives Close, keeps mutating zone/epoch
// state (or holding its WAL segment) after the owner thinks the world
// has stopped, and corrupts an epoch estimate without ever failing a
// test. Race detectors catch the write, not the leak.
//
// Every `go` statement in a server package must therefore carry one of
// the accepted pieces of lifecycle evidence:
//
//   - sync.WaitGroup accounting — a wg.Add in the spawning function, or
//     a (transitive) wg.Done inside the spawned function;
//   - a shutdown signal — the spawned function (transitively) selects or
//     receives on a done/ctx-style channel, or ranges over a channel;
//   - an audited suppression: //lint:ignore goleak <reason>.
//
// Evidence is resolved interprocedurally through the facts engine:
// `go s.loop()` is fine when loop (or anything it statically calls)
// selects on the stop channel. Spawns whose target cannot be resolved
// (function values, interface methods) are not reported — the analyzer
// only speaks when it can prove the absence of evidence.
//
// Scope: packages with a path element in serverPkgElems, plus any
// package with a file carrying the lone directive "//wiscape:server".
var Goleak = &Analyzer{
	Name: "goleak",
	Doc: "require goroutines in server packages to have a shutdown path: " +
		"done/ctx-channel select, sync.WaitGroup accounting, or an audited suppression",
	Run: runGoleak,
}

// serverPkgElems are the long-lived server packages: anything under
// these path elements serves traffic or owns background state.
var serverPkgElems = map[string]bool{
	"coordinator": true,
	"cluster":     true,
	"telemetry":   true,
	"store":       true,
	"agent":       true,
	"replication": true,
}

// ServerDirective opts a package into goleak from its own source.
const ServerDirective = "//wiscape:server"

func runGoleak(pass *Pass) error {
	if !goleakInScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		// Track the innermost enclosing function body at every go
		// statement so spawn-site wg.Add evidence can be checked.
		var stack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				stack = append(stack, n.Body)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				stack = append(stack, n.Body)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.GoStmt:
				var spawnSite *ast.BlockStmt
				if len(stack) > 0 {
					spawnSite = stack[len(stack)-1]
				}
				pass.checkGoStmt(n, spawnSite)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func goleakInScope(pass *Pass) bool {
	for _, elem := range strings.Split(pass.Pkg.Path(), "/") {
		if serverPkgElems[elem] {
			return true
		}
	}
	for _, f := range pass.Files {
		if hasDirective(f, ServerDirective) {
			return true
		}
	}
	return false
}

// checkGoStmt reports g unless lifecycle evidence is found at the spawn
// site or (transitively) inside the spawned function.
func (p *Pass) checkGoStmt(g *ast.GoStmt, spawnSite *ast.BlockStmt) {
	if spawnSite != nil && blockCallsWGAdd(p.TypesInfo, spawnSite, g) {
		return
	}
	ev, resolved := p.spawnEvidence(g.Call)
	if !resolved {
		return
	}
	if ev.WGDone || ev.ShutdownSignal {
		return
	}
	p.Reportf(g.Pos(), "goroutine has no shutdown path: no done/ctx-channel select, "+
		"no sync.WaitGroup accounting; bound its lifetime or //lint:ignore goleak <reason>")
}

// spawnEvidence gathers lifecycle evidence for the spawned call: a
// function literal is scanned directly (one level of its own callees'
// facts included); a named function or method is answered from facts.
// resolved=false means the target is opaque (function value, interface
// method without facts) and the analyzer must stay silent.
func (p *Pass) spawnEvidence(call *ast.CallExpr) (ev FuncFacts, resolved bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		scanBodyFacts(p.TypesInfo, lit.Body, &ev)
		for _, callee := range ev.callees {
			if cf := p.Facts.Of(callee); cf != nil {
				ev.WGDone = ev.WGDone || cf.WGDone
				ev.ShutdownSignal = ev.ShutdownSignal || cf.ShutdownSignal
			}
		}
		return ev, true
	}
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return ev, false
	}
	if cf := p.Facts.Of(fn); cf != nil {
		return *cf, true
	}
	return ev, false
}

// blockCallsWGAdd reports whether the spawning function calls
// (*sync.WaitGroup).Add anywhere outside nested function literals — the
// `wg.Add(1); go f()` idiom. The check is deliberately positional-blind:
// an Add anywhere in the function is accepted as accounting intent.
func blockCallsWGAdd(info *types.Info, body *ast.BlockStmt, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if n != g {
				// Another spawn's subtree; its Adds are its own.
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && isWaitGroupMethod(fn, "Add") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
