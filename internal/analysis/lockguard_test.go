package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysis.Lockguard, "lockguard")
}
