package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, analysis.Goleak, "goleak", "goleak/notserver")
}
