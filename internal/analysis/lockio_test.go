package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, analysis.Lockio, "lockio")
}
