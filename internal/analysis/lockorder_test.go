package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysis.Lockorder, "lockorder")
}
