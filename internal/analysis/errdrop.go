package analysis

import (
	"go/ast"
)

// Errdrop forbids discarding error results on I/O paths. The durable
// sample store's whole contract is that an acked sample survives a
// crash; a dropped fsync or Close error converts "durable" into
// "probably durable" silently, and a dropped Flush error truncates an
// exported dataset without failing anything. The analyzer uses the facts
// engine's returns-IO-error fact, so module-level wrappers (a WAL
// Append, a Store.Close, an export helper layered on bufio.Flush) carry
// the same obligation as the stdlib calls at the bottom of them.
//
// What is flagged, by discard form:
//
//   - a bare call statement (`f.Close()`, `st.Sync()`) discarding a
//     must-check error of either kind — the silent drop is never OK;
//   - an explicit blank discard (`_ = f.Sync()`, `x, _ := w.Write(b)`)
//     or a deferred bare call (`defer f.Close()`) on a *durability*
//     ("file"-kind) path — fsync/flush/WAL errors are the product;
//   - explicit blank discards on "net"-kind paths (connection teardown,
//     best-effort error replies) are accepted: `_ = nc.Close()` is the
//     repo's documented best-effort idiom and stays legal.
//
// Suppression: //lint:ignore errdrop <reason>.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding error results on I/O, Close, Flush and WAL paths " +
		"(facts-aware: module wrappers carry the same obligation)",
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if _, desc, ok := pass.mustCheckIOCall(call); ok {
						pass.Reportf(call.Pos(),
							"error from %s silently dropped: handle it, assign it, or //lint:ignore errdrop <reason>", desc)
					}
					return false
				}
			case *ast.DeferStmt:
				if kind, desc, ok := pass.mustCheckIOCall(n.Call); ok && kind == "file" {
					pass.Reportf(n.Call.Pos(),
						"error from deferred %s dropped on a durability path: close explicitly and check, or //lint:ignore errdrop <reason>", desc)
				}
				return false
			case *ast.AssignStmt:
				pass.checkBlankDiscard(n)
			}
			return true
		})
	}
	return nil
}

// checkBlankDiscard flags `_ = call` / `x, _ := call()` where the blank
// swallows a durability-path error result.
func (p *Pass) checkBlankDiscard(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(as.Lhs) == 0 {
		return
	}
	// The error is the callee's last result, so it lands in the last LHS.
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	kind, desc, must := p.mustCheckIOCall(call)
	if !must || kind != "file" {
		return
	}
	p.Reportf(as.Pos(),
		"error from %s explicitly discarded on a durability path: a dropped fsync/flush/close error un-durables an acked write", desc)
}

// mustCheckIOCall classifies call's callee: intrinsic stdlib I/O methods
// first, then the facts engine's returns-IO-error fact for module
// functions (which is how wrappers are caught).
func (p *Pass) mustCheckIOCall(call *ast.CallExpr) (kind, desc string, ok bool) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return "", "", false
	}
	if kind, desc, ok := intrinsicIOError(fn); ok {
		return kind, desc, true
	}
	if ff := p.Facts.Of(fn); ff != nil && ff.ReturnsIOError {
		return ff.IOErrorKind, shortFuncName(fn) + " (" + ff.IOErrorVia + ")", true
	}
	return "", "", false
}
