package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilsafemetric enforces the telemetry contract: instrumentation is
// nil-safe opt-in. An uninstrumented process passes nil bundles around and
// must pay nothing — so every instrument comes from a Registry (whose
// resolution methods return working no-ops even on a nil Registry), and
// any metrics bundle the surrounding code treats as optional must only be
// touched through nil guards or the bundle's own nil-safe methods.
//
// Two rules:
//
//  1. Instruments (telemetry.Counter, Gauge, Histogram, and their Vec
//     types) must not be constructed with composite literals or new()
//     outside package telemetry itself. A hand-built instrument is
//     disconnected from every exposition surface; Registry resolution
//     (reg.Counter(...).With(...)) is the only construction path.
//
//  2. If a package nil-compares a *T where T is a metrics bundle (a struct
//     of telemetry instruments and sub-bundles), it has declared *T
//     optional: every field access through a *T expression must then be
//     dominated by an `x != nil` guard on that same expression, or happen
//     inside T's own methods (where the `if m == nil` receiver guard is
//     the sanctioned pattern). Method calls on *T are always allowed —
//     bundle methods are written nil-safe. This catches the mixed regime
//     where half a file guards `g.met` and the other half dereferences it
//     bare: the unguarded half panics exactly on the uninstrumented
//     configurations no test exercises.
//
// The guard analysis understands `if x != nil { ... }` (including `&&`
// conjunctions) and the early-return form `if x == nil { return }`.
var Nilsafemetric = &Analyzer{
	Name: "nilsafemetric",
	Doc: "telemetry instruments must be Registry-resolved, and optional metrics " +
		"bundles accessed only under nil guards or via their own nil-safe methods",
	Run: runNilsafemetric,
}

const telemetryPkgPath = "repro/internal/telemetry"

// instrumentTypes are the telemetry value types a Registry resolves.
var instrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func runNilsafemetric(pass *Pass) error {
	n := &nilsafe{pass: pass, bundles: make(map[*types.TypeName]int)}
	if pass.Pkg.Path() != telemetryPkgPath {
		n.checkConstruction()
	}
	n.checkOptionalAccess()
	return nil
}

type nilsafe struct {
	pass *Pass
	// bundles memoizes isBundle per type: 0 unknown, 1 yes, -1 no/visiting.
	bundles map[*types.TypeName]int
}

// ---- rule 1: construction outside the Registry ----

func (n *nilsafe) checkConstruction() {
	for _, f := range n.pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CompositeLit:
				if name, ok := n.instrumentType(n.pass.typeOf(node)); ok {
					n.pass.Reportf(node.Pos(),
						"telemetry.%s constructed outside a Registry: resolve it via reg.%s(...).With(...) so it is wired to exposition",
						name, strippedVec(name))
				}
			case *ast.CallExpr:
				if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "new" && len(node.Args) == 1 {
					if _, isBuiltin := n.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if name, ok := n.instrumentType(n.pass.typeOf(node.Args[0])); ok {
							n.pass.Reportf(node.Pos(),
								"telemetry.%s constructed outside a Registry: resolve it via reg.%s(...).With(...) so it is wired to exposition",
								name, strippedVec(name))
						}
					}
				}
			}
			return true
		})
	}
}

// instrumentType reports whether t (possibly behind one pointer) is one of
// the telemetry instrument value types.
func (n *nilsafe) instrumentType(t types.Type) (string, bool) {
	pkg, name, ok := namedIn(t)
	if ok && pkg == telemetryPkgPath && instrumentTypes[name] {
		return name, true
	}
	return "", false
}

// strippedVec maps an instrument type to the Registry method resolving it.
func strippedVec(name string) string {
	if cut, ok := cutSuffix(name, "Vec"); ok {
		return cut
	}
	return name
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// ---- rule 2: optional bundle access discipline ----

// isBundle reports whether named is a metrics bundle: a struct whose every
// field is instrument-like — a telemetry-package type, another bundle, a
// map of those, or a plain function (scrape-time gauge callbacks). The
// all-fields requirement keeps ordinary structs that merely carry a
// metrics field (servers, sessions) out of scope.
func (n *nilsafe) isBundle(named *types.Named) bool {
	tn := named.Obj()
	if tn == nil {
		return false
	}
	if v, ok := n.bundles[tn]; ok {
		return v == 1
	}
	n.bundles[tn] = -1 // visiting: cycles and non-structs are not bundles
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if !n.instrumentLike(st.Field(i).Type()) {
			return false
		}
	}
	n.bundles[tn] = 1
	return true
}

func (n *nilsafe) instrumentLike(t types.Type) bool {
	switch u := deref(t).(type) {
	case *types.Named:
		if pkg, _, ok := namedIn(u); ok && pkg == telemetryPkgPath {
			return true
		}
		return n.isBundle(u)
	case *types.Map:
		return n.instrumentLike(u.Elem())
	case *types.Signature:
		return true
	}
	if _, ok := deref(t).Underlying().(*types.Signature); ok {
		return true
	}
	return false
}

// bundlePointee returns the bundle type behind a pointer type, if any.
// Only pointer expressions can be nil, so only they carry optionality.
func (n *nilsafe) bundlePointee(t types.Type) (*types.TypeName, bool) {
	if t == nil {
		return nil, false
	}
	pt, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil, false
	}
	named, ok := pt.Elem().(*types.Named)
	if !ok || !n.isBundle(named) {
		return nil, false
	}
	return named.Obj(), true
}

func (n *nilsafe) checkOptionalAccess() {
	optional := n.collectOptional()
	if len(optional) == 0 {
		return
	}
	for _, f := range n.pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			recv := n.receiverType(decl)
			n.walkGuarded(body.List, map[string]bool{}, recv, optional)
		})
	}
}

// collectOptional finds the bundle types this package has declared
// optional: *T compared against nil anywhere outside T's own methods
// (inside them, the nil-receiver guard is the convention, not evidence).
func (n *nilsafe) collectOptional() map[*types.TypeName]bool {
	optional := make(map[*types.TypeName]bool)
	for _, f := range n.pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			recv := n.receiverType(decl)
			ast.Inspect(body, func(node ast.Node) bool {
				be, ok := node.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				other, ok := nilComparand(be)
				if !ok {
					return true
				}
				if tn, ok := n.bundlePointee(n.pass.typeOf(other)); ok && tn != recv {
					optional[tn] = true
				}
				return true
			})
		})
	}
	return optional
}

// receiverType returns the named type a method declaration belongs to.
func (n *nilsafe) receiverType(decl *ast.FuncDecl) *types.TypeName {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) != 1 {
		return nil
	}
	t := n.pass.typeOf(decl.Recv.List[0].Type)
	if named, ok := deref(t).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// nilComparand returns the non-nil side of a comparison against nil.
func nilComparand(be *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(be.Y) {
		return be.X, true
	}
	if isNilIdent(be.X) {
		return be.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkGuarded walks statements in order, tracking which optional-bundle
// expressions are dominated by a nil guard, and reports bare field
// accesses through unguarded ones.
func (n *nilsafe) walkGuarded(stmts []ast.Stmt, guarded map[string]bool, recv *types.TypeName, optional map[*types.TypeName]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				n.walkGuarded([]ast.Stmt{s.Init}, guarded, recv, optional)
			}
			n.checkExpr(s.Cond, guarded, recv, optional)
			pos, neg := guardsIn(s.Cond)
			n.walkGuarded(s.Body.List, withGuards(guarded, pos), recv, optional)
			if s.Else != nil {
				n.walkGuarded([]ast.Stmt{s.Else}, withGuards(guarded, neg), recv, optional)
			}
			// `if x == nil { return }` guards everything after the if.
			if terminates(s.Body) && s.Else == nil {
				for _, g := range neg {
					guarded[g] = true
				}
			}
		case *ast.BlockStmt:
			n.walkGuarded(s.List, cloneGuards(guarded), recv, optional)
		case *ast.ForStmt:
			n.checkExpr(s.Cond, guarded, recv, optional)
			n.walkGuarded(s.Body.List, cloneGuards(guarded), recv, optional)
		case *ast.RangeStmt:
			n.checkExpr(s.X, guarded, recv, optional)
			n.walkGuarded(s.Body.List, cloneGuards(guarded), recv, optional)
		case *ast.SwitchStmt:
			n.checkExpr(s.Tag, guarded, recv, optional)
			for _, c := range s.Body.List {
				n.walkGuarded(c.(*ast.CaseClause).Body, cloneGuards(guarded), recv, optional)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				n.walkGuarded(c.(*ast.CaseClause).Body, cloneGuards(guarded), recv, optional)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					n.walkGuarded([]ast.Stmt{cc.Comm}, guarded, recv, optional)
				}
				n.walkGuarded(cc.Body, cloneGuards(guarded), recv, optional)
			}
		case *ast.LabeledStmt:
			n.walkGuarded([]ast.Stmt{s.Stmt}, guarded, recv, optional)
		case *ast.AssignStmt:
			n.checkStmtExprs(s, guarded, recv, optional)
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					key := exprString(s.Lhs[i])
					if key == "" {
						continue
					}
					// `m := &bundle{...}` proves m non-nil by construction;
					// any other reassignment revokes an earlier guard.
					if isConstruction(rhs) {
						guarded[key] = true
					} else {
						delete(guarded, key)
					}
				}
			}
		default:
			n.checkStmtExprs(s, guarded, recv, optional)
		}
	}
}

// checkStmtExprs scans a simple statement's expressions (function literals
// get their own scope via funcScopes, with an empty guard set — a closure
// may outlive the guard it was created under).
func (n *nilsafe) checkStmtExprs(s ast.Stmt, guarded map[string]bool, recv *types.TypeName, optional map[*types.TypeName]bool) {
	ast.Inspect(s, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := node.(ast.Expr); ok {
			n.checkOne(e, guarded, recv, optional)
		}
		return true
	})
}

func (n *nilsafe) checkExpr(e ast.Expr, guarded map[string]bool, recv *types.TypeName, optional map[*types.TypeName]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if ex, ok := node.(ast.Expr); ok {
			n.checkOne(ex, guarded, recv, optional)
		}
		return true
	})
}

// checkOne reports e when it is a bare field access through an unguarded
// optional bundle pointer.
func (n *nilsafe) checkOne(e ast.Expr, guarded map[string]bool, recv *types.TypeName, optional map[*types.TypeName]bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := n.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return // method calls on the bundle are nil-safe by convention
	}
	tn, ok := n.bundlePointee(n.pass.typeOf(sel.X))
	if !ok || !optional[tn] || tn == recv {
		return
	}
	key := exprString(sel.X)
	if key == "" || guarded[key] {
		return
	}
	n.pass.Reportf(sel.Pos(),
		"field %s read on optional metrics bundle %s without a nil guard: wrap in `if %s != nil` or go through a nil-safe method",
		sel.Sel.Name, key, key)
}

// guardsIn splits cond into positive guards (exprs proven non-nil inside
// the then-branch) and negative guards (exprs proven non-nil when the
// then-branch exits): `x != nil && y != nil` yields pos={x,y};
// `x == nil || y == nil` yields neg={x,y}.
func guardsIn(cond ast.Expr) (pos, neg []string) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return guardsIn(c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			p1, _ := guardsIn(c.X)
			p2, _ := guardsIn(c.Y)
			return append(p1, p2...), nil
		case token.LOR:
			_, n1 := guardsIn(c.X)
			_, n2 := guardsIn(c.Y)
			return nil, append(n1, n2...)
		case token.NEQ:
			if other, ok := nilComparand(c); ok {
				if s := exprString(other); s != "" {
					return []string{s}, nil
				}
			}
		case token.EQL:
			if other, ok := nilComparand(c); ok {
				if s := exprString(other); s != "" {
					return nil, []string{s}
				}
			}
		}
	}
	return nil, nil
}

func withGuards(guarded map[string]bool, add []string) map[string]bool {
	c := cloneGuards(guarded)
	for _, g := range add {
		c[g] = true
	}
	return c
}

func cloneGuards(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// isConstruction reports whether e is a value that cannot be nil: a
// composite literal, its address, or a new() allocation.
func isConstruction(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// terminates reports whether a block always transfers control out
// (return, branch, panic, or os.Exit-style call as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
