package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWirebound(t *testing.T) {
	analysistest.Run(t, analysis.Wirebound, "wirebound")
}
