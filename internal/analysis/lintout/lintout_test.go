package lintout

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{Analyzer: "goleak", File: "internal/telemetry/ops.go", Line: 97, Col: 2, Message: "goroutine has no shutdown path"},
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 10, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 40, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var got []Finding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(got) != 3 || got[0] != sampleFindings()[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Fatalf("zero findings must emit [], got %q", got)
	}
}

func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	rules := []Rule{{ID: "goleak", Doc: "goroutine lifecycle"}, {ID: "errdrop", Doc: "dropped IO errors"}}
	if err := WriteSARIF(&buf, rules, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	// Decode generically and assert the SARIF 2.1.0 schema fields a
	// consumer (GitHub code scanning) actually keys on.
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", log["version"])
	}
	if log["$schema"] != SARIFSchemaURI {
		t.Errorf("$schema = %v", log["$schema"])
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("want exactly one run, got %v", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "wiscape-lint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	if rules, ok := driver["rules"].([]any); !ok || len(rules) != 2 {
		t.Errorf("want 2 rules, got %v", driver["rules"])
	}
	results := run["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	r0 := results[0].(map[string]any)
	if r0["ruleId"] != "goleak" {
		t.Errorf("ruleId = %v", r0["ruleId"])
	}
	if r0["message"].(map[string]any)["text"] == "" {
		t.Error("empty message text")
	}
	loc := r0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/telemetry/ops.go" {
		t.Errorf("uri = %v", art["uri"])
	}
	if reg := loc["region"].(map[string]any); reg["startLine"].(float64) != 97 {
		t.Errorf("startLine = %v", reg["startLine"])
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	fs := sampleFindings()
	b := NewBaseline(fs)

	// Round-trip through disk.
	dir := t.TempDir()
	path := filepath.Join(dir, "lint-baseline.json")
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Identical findings are fully suppressed...
	newFs, supp := rb.Filter(fs)
	if len(newFs) != 0 || len(supp) != 3 {
		t.Fatalf("identical run: new=%d suppressed=%d, want 0/3", len(newFs), len(supp))
	}

	// ...a line shift still matches (lines are not part of the key)...
	shifted := append([]Finding(nil), fs...)
	shifted[0].Line = 120
	newFs, _ = rb.Filter(shifted)
	if len(newFs) != 0 {
		t.Fatalf("line-shifted findings must stay suppressed, got %d new", len(newFs))
	}

	// ...a brand-new finding is reported...
	withNew := append(shifted, Finding{Analyzer: "lockio", File: "internal/x.go", Line: 5, Col: 1, Message: "mu held across net.Dial"})
	newFs, supp = rb.Filter(withNew)
	if len(newFs) != 1 || newFs[0].Analyzer != "lockio" {
		t.Fatalf("new finding not surfaced: new=%+v", newFs)
	}
	if len(supp) != 3 {
		t.Fatalf("suppressed = %d, want 3", len(supp))
	}

	// ...and a fourth occurrence of a baselined duplicate exceeds the
	// count budget and is new.
	extra := append(shifted, Finding{Analyzer: "errdrop", File: "internal/store/store.go", Line: 77, Col: 3, Message: "error from (os.File).Sync explicitly discarded"})
	newFs, _ = rb.Filter(extra)
	if len(newFs) != 1 || newFs[0].Line != 77 {
		t.Fatalf("count budget not enforced: new=%+v", newFs)
	}
}

func TestReadBaselineRejectsBadVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	if err := os.WriteFile(path, []byte(`{"version":9,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Fatal("want error for unsupported version")
	}
}

func TestBaselineDuplicateEntriesSumCounts(t *testing.T) {
	// A hand-edited baseline can carry the same (analyzer, file, message)
	// key on several entries; Filter must sum their budgets rather than
	// letting the last one win.
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "errdrop", File: "internal/store/store.go", Message: "error from (os.File).Sync explicitly discarded", Count: 1},
		{Analyzer: "errdrop", File: "internal/store/store.go", Message: "error from (os.File).Sync explicitly discarded", Count: 1},
	}}
	three := []Finding{
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 10, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 40, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 70, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
	}
	newFs, supp := b.Filter(three)
	if len(supp) != 2 {
		t.Fatalf("split entries must absorb 1+1 occurrences, suppressed %d", len(supp))
	}
	if len(newFs) != 1 || newFs[0].Line != 70 {
		t.Fatalf("third occurrence must be new: %+v", newFs)
	}
}

func TestBaselineCountDriftDownward(t *testing.T) {
	// Fixing some — but not all — occurrences of a baselined finding must
	// not surface the survivors: the budget is an upper bound.
	b := NewBaseline(sampleFindings()) // errdrop count = 2 in store.go
	one := sampleFindings()[:2]        // goleak + only one errdrop remain
	newFs, supp := b.Filter(one)
	if len(newFs) != 0 {
		t.Fatalf("shrunken occurrence count must stay clean, got new=%+v", newFs)
	}
	if len(supp) != 2 {
		t.Fatalf("suppressed = %d, want 2", len(supp))
	}
}

func TestBaselineDeletedFileEntriesAreInert(t *testing.T) {
	// Entries for files that no longer exist (or no longer produce the
	// finding) must neither surface anything nor absorb findings from
	// other files with the same analyzer and message.
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "errdrop", File: "internal/gone/deleted.go", Message: "error from (os.File).Sync explicitly discarded", Count: 5},
	}}
	fs := []Finding{
		{Analyzer: "errdrop", File: "internal/store/store.go", Line: 10, Col: 3, Message: "error from (os.File).Sync explicitly discarded"},
	}
	newFs, supp := b.Filter(fs)
	if len(newFs) != 1 || len(supp) != 0 {
		t.Fatalf("stale-file budget leaked across files: new=%d suppressed=%d", len(newFs), len(supp))
	}
}

func TestBaselineWriteRoundTripStable(t *testing.T) {
	// The -write-baseline path must be a fixed point: write, read back,
	// regenerate from the same findings, and the bytes are identical —
	// otherwise regenerating the ledger produces spurious diffs.
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")

	b1 := NewBaseline(sampleFindings())
	var buf1 bytes.Buffer
	if err := b1.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := rb.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("read-then-write drifted:\n%s\nvs\n%s", buf1.Bytes(), buf2.Bytes())
	}

	// Regenerating from an equivalent findings list (different order) is
	// also byte-identical — NewBaseline sorts, map iteration must not leak.
	shuffled := []Finding{sampleFindings()[2], sampleFindings()[0], sampleFindings()[1]}
	var buf3 bytes.Buffer
	if err := NewBaseline(shuffled).Write(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Errorf("regeneration is order-sensitive:\n%s\nvs\n%s", buf1.Bytes(), buf3.Bytes())
	}
}
