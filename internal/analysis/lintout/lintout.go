// Package lintout is wiscape-lint's machine-readable output layer:
// findings as a stable struct, JSON and SARIF 2.1.0 emitters, and the
// accept/diff baseline that lets CI fail only on *new* findings while an
// existing debt list is burned down deliberately.
//
// Baselines match findings by (analyzer, file, message) with an
// occurrence count — deliberately not by line, so unrelated edits that
// shift a legacy finding up or down the file do not break the gate,
// while a *new* instance of the same message in the same file (count
// exceeded) still fails.
package lintout

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Finding is one diagnostic from one analyzer, positioned
// module-relative with slash-separated paths (stable across machines).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Sort orders findings by file, line, column, analyzer — the order the
// text emitter prints and the JSON/SARIF emitters preserve.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText prints the human-facing one-line-per-finding form.
func WriteText(w io.Writer, fs []Finding) {
	for _, f := range fs {
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
}

// WriteJSON emits the findings as a JSON array (empty array, not null,
// for zero findings — consumers get a stable shape).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// Rule describes one analyzer for the SARIF tool.driver.rules table.
type Rule struct {
	ID  string
	Doc string
}

// sarif* types model the slice of SARIF 2.1.0 the emitter produces.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSchemaURI and SARIFVersion pin the emitted dialect.
const (
	SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

// WriteSARIF emits the findings as a single-run SARIF 2.1.0 log suitable
// for GitHub code-scanning upload (PR annotations come for free).
func WriteSARIF(w io.Writer, rules []Rule, fs []Finding) error {
	srules := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		srules = append(srules, sarifRule{ID: r.ID, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(f.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "wiscape-lint",
				InformationURI: "https://example.invalid/wiscape-lint",
				Rules:          srules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Baseline is the accepted-findings ledger checked into the repo root.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry accepts Count occurrences of one (analyzer, file,
// message) triple.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineKey is the match key: lines deliberately excluded.
type baselineKey struct {
	analyzer, file, message string
}

// NewBaseline builds a baseline accepting exactly the given findings.
func NewBaseline(fs []Finding) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range fs {
		counts[baselineKey{f.Analyzer, f.File, f.Message}]++
	}
	b := &Baseline{Version: 1}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		x, y := b.Findings[i], b.Findings[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Analyzer != y.Analyzer {
			return x.Analyzer < y.Analyzer
		}
		return x.Message < y.Message
	})
	return b
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lintout: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lintout: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lintout: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Write writes the baseline to w.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Filter splits findings into (new, suppressed): each baseline entry
// absorbs up to Count matching findings; everything beyond the budget —
// and everything the baseline has never seen — is new.
func (b *Baseline) Filter(fs []Finding) (newFindings, suppressed []Finding) {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, f := range fs {
		k := baselineKey{f.Analyzer, f.File, f.Message}
		if budget[k] > 0 {
			budget[k]--
			suppressed = append(suppressed, f)
			continue
		}
		newFindings = append(newFindings, f)
	}
	return newFindings, suppressed
}
