package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the field-access fact domain: for every struct-field
// identity "(pkg.Type).field" (the same keying as lockfacts.go, embedded
// fields resolved through their field path), every read and write in the
// load is recorded together with the flow-sensitive held-lock set at
// that program point. The per-function records are composed
// interprocedurally: a must-hold intersection over the call graph
// computes, for each function, the locks *every* known caller holds at
// *every* call site, so accesses inside a helper method inherit the
// caller's held set — the "caller must hold mu" convention becomes
// checkable instead of a comment.
//
// Two analyzers consume the assembled domain:
//
//   - lockguard infers a field's guard by dominant association: when a
//     lock of the field's own receiver type is held on a supermajority
//     of the field's accesses (at least three guarded sites for every
//     unguarded one), that lock is taken to guard the field, and the
//     minority accesses that do not hold it are flagged. An explicit
//     //wiscape:guardedby <lockField> annotation on the field
//     declaration pins the guard and skips the statistics.
//   - atomicmix flags fields accessed through sync/atomic (function
//     form or atomic.Int64-style typed values, including by-pointer
//     handoffs) in one place and by plain load/store in another — both
//     interleavings "work" under the race detector's schedules, which
//     is exactly why this bug class survives testing.
//
// Principled escapes, shared by both rules: accesses through a local
// born from a composite literal or new() in the same body (constructor
// initialization before the value can escape), sync/atomic accesses
// (lockguard only — they are atomicmix's subject), accesses in
// Close/Stop/Shutdown bodies and after a (*sync.WaitGroup).Wait call
// (teardown, when the writers are gone), and the audited
// //lint:ignore suppression every analyzer honors.
//
// The biases inherited from the call graph are deliberate: calls
// through interfaces, function values and closures contribute neither
// accesses nor caller edges, go statements contribute an *empty* caller
// context (a goroutine does not inherit its spawner's locks), and a
// deferred call's context is approximated by the held set at the defer
// statement. Every bias points toward missing a finding, never toward
// inventing one — with one documented exception: a helper reached only
// through locked call sites *and* an invisible unlocked path (interface
// dispatch, closure) can over-count its accesses as guarded, which can
// only promote a guard inference, and the flagged minority sites are
// real accesses either way.

// fieldAccess is one struct-field read or write observed in a function
// body, with the flow-sensitive lock context at that point.
type fieldAccess struct {
	key      string // "(core.Controller).zones"
	pos      token.Pos
	write    bool
	atomic   bool     // via sync/atomic (function or typed-value form)
	held     []string // lock identity keys held locally at the access
	ctor     bool     // through a constructor-fresh local
	teardown bool     // in a Close/Stop/Shutdown body or after wg.Wait()
}

// Access kind bits passed to recordAccess.
const (
	accessWrite = 1 << iota
	accessAtomic
)

// GuardFinding is one lockguard diagnostic: an access that does not hold
// the field's inferred (or declared) guard. The message carries function
// names, never positions, so the lintout baseline survives line drift.
type GuardFinding struct {
	Pos     token.Pos
	Message string
}

// MixFinding is one atomicmix diagnostic: a plain access to a field that
// is elsewhere accessed atomically.
type MixFinding struct {
	Pos     token.Pos
	Message string
}

// recordAccess appends one field access with the current lock and escape
// context.
func (w *lockFactsWalker) recordAccess(e ast.Expr, key string, held []heldLock, kind int) {
	w.ff.fieldAccesses = append(w.ff.fieldAccesses, fieldAccess{
		key:      key,
		pos:      e.Pos(),
		write:    kind&accessWrite != 0,
		atomic:   kind&accessAtomic != 0,
		held:     dedupHeldIDs(held),
		ctor:     w.baseIsFresh(e),
		teardown: w.teardown || w.afterWait,
	})
}

// fieldSel resolves e as a struct-field selection and returns its
// identity key. Fields whose own type is a sync primitive (Mutex,
// RWMutex, WaitGroup, …) are the locks, not the data, and are excluded;
// atomicTyped reports a sync/atomic typed value (atomic.Int64 and
// friends), whose method calls and by-pointer handoffs count as atomic
// accesses.
func (w *lockFactsWalker) fieldSel(e ast.Expr) (key string, atomicTyped bool, ok bool) {
	sel, okSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	fs, okFS := w.info.Selections[sel]
	if !okFS || fs.Kind() != types.FieldVal {
		return "", false, false
	}
	v, okVar := fs.Obj().(*types.Var)
	if !okVar || !v.IsField() {
		return "", false, false
	}
	if p, _, okN := namedIn(v.Type()); okN {
		if p == "sync" {
			return "", false, false
		}
		atomicTyped = p == "sync/atomic"
	}
	key = fieldPathKey(fs.Recv(), fs.Index())
	if key == "" {
		return "", false, false
	}
	return key, atomicTyped, true
}

// selBase returns the base expression of a selector chain (the x of
// x.f), or nil — what remains worth scanning after the selector itself
// has been recorded.
func selBase(e ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// baseIsFresh reports whether the root of e's access path is a
// constructor-fresh local (see freshLocals).
func (w *lockFactsWalker) baseIsFresh(e ast.Expr) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			if v, ok := w.info.Uses[t].(*types.Var); ok {
				return w.fresh[v]
			}
			return false
		default:
			return false
		}
	}
}

// freshLocals prescans a body for locals born from a composite literal,
// &literal, new(), or a zero-value var declaration: values that cannot
// have escaped to another goroutine yet, so initializing their fields
// without the (eventual) guard is the normal constructor shape, not a
// race. Reassignment later in the body is not tracked — the escape stays
// attached to the variable, a deliberate false-negative bias.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	mark := func(id *ast.Ident, def bool) {
		var obj types.Object
		if def {
			obj = info.Defs[id]
		} else {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && !pkgLevelVar(v) {
			fresh[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !freshExpr(info, n.Rhs[i]) {
					continue
				}
				mark(id, n.Tok == token.DEFINE)
			}
		case *ast.ValueSpec:
			// var c counter (zero value) or var c = counter{...}.
			for i, id := range n.Names {
				if len(n.Values) == 0 || (i < len(n.Values) && freshExpr(info, n.Values[i])) {
					mark(id, true)
				}
			}
		}
		return true
	})
	return fresh
}

// freshExpr reports whether e constructs a brand-new value: T{...},
// &T{...}, or new(T).
func freshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, okB := info.Uses[id].(*types.Builtin); okB && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// teardownFuncName reports whether a function name marks its whole body
// as teardown: by the time Close/Stop/Shutdown runs, the concurrent
// phase is over by contract.
func teardownFuncName(name string) bool {
	switch strings.ToLower(name) {
	case "close", "stop", "shutdown", "teardown":
		return true
	}
	return false
}

// scanGuardDecls collects //wiscape:guardedby annotations attached to
// struct field declarations. The directive names a sibling lock field
// and pins the field's guard, replacing lockguard's supermajority
// inference for that field:
//
//	type Controller struct {
//		mu sync.Mutex
//		//wiscape:guardedby mu
//		zones map[string]*zoneState
//	}
func scanGuardDecls(info *types.Info, f *ast.File, out map[string]string) {
	if info == nil {
		return
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, okTS := spec.(*ast.TypeSpec)
			if !okTS {
				continue
			}
			st, okST := ts.Type.(*ast.StructType)
			if !okST {
				continue
			}
			tn, okTN := info.Defs[ts.Name].(*types.TypeName)
			if !okTN || tn.Pkg() == nil {
				continue
			}
			owner := "(" + tn.Pkg().Name() + "." + tn.Name() + ")"
			for _, field := range st.Fields.List {
				guard := guardDirective(field.Doc)
				if guard == "" {
					guard = guardDirective(field.Comment)
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					out[owner+"."+name.Name] = owner + "." + guard
				}
			}
		}
	}
}

// guardDirective extracts the lock name from a //wiscape:guardedby
// comment group, or "".
func guardDirective(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//wiscape:guardedby "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// computeCallerHeld runs the must-hold intersection over the call graph:
// for each function, the set of lock identities held at *every* known
// call site, caller contexts included transitively. Functions with no
// recorded callers (entry points, or targets only of unresolvable
// dispatch) are guaranteed nothing. The iteration is a standard
// descending Kleene fixed point — sets only shrink from the implicit
// "everything" start — so it terminates, and it walks facts.order so the
// result is deterministic run to run.
func computeCallerHeld(facts *Facts) map[types.Object]map[string]bool {
	type edge struct {
		caller types.Object
		held   []string
	}
	incoming := make(map[types.Object][]edge)
	for _, obj := range facts.order {
		for _, hc := range facts.funcs[obj].heldCalls {
			if _, known := facts.funcs[hc.callee]; !known {
				continue
			}
			incoming[hc.callee] = append(incoming[hc.callee], edge{caller: obj, held: hc.held})
		}
	}
	// state[fn] absent = still top (every lock, not yet lowered).
	state := make(map[types.Object]map[string]bool)
	for _, obj := range facts.order {
		if len(incoming[obj]) == 0 {
			state[obj] = map[string]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, obj := range facts.order {
			edges := incoming[obj]
			if len(edges) == 0 {
				continue
			}
			var meet map[string]bool // nil = no lowered caller seen yet
			for _, e := range edges {
				callerSet, lowered := state[e.caller]
				if !lowered {
					continue // top caller: contributes everything, no constraint
				}
				ctx := make(map[string]bool, len(callerSet)+len(e.held))
				for k := range callerSet {
					ctx[k] = true
				}
				for _, k := range e.held {
					ctx[k] = true
				}
				if meet == nil {
					meet = ctx
					continue
				}
				for k := range meet {
					if !ctx[k] {
						delete(meet, k)
					}
				}
			}
			if meet == nil {
				continue
			}
			if cur, lowered := state[obj]; !lowered || len(meet) != len(cur) {
				state[obj] = meet
				changed = true
			}
		}
	}
	// Call cycles with no entry edge never lower: dead code gets no
	// guarantees rather than infinite ones.
	for _, obj := range facts.order {
		if _, ok := state[obj]; !ok {
			state[obj] = map[string]bool{}
		}
	}
	return state
}

// fieldSite is one access joined with its enclosing function and
// effective held set (local ∪ guaranteed caller-held).
type fieldSite struct {
	fa  fieldAccess
	fn  types.Object
	eff map[string]bool
}

// Inference thresholds: a guard needs guardRatio guarded sites per
// unguarded one (a 75% supermajority) before the minority is flagged.
const guardRatio = 3

// computeFieldFindings assembles the whole-load field-access domain and
// runs both rules over it, returning the lockguard and atomicmix
// findings in deterministic order.
func computeFieldFindings(facts *Facts, guardDecls map[string]string) (guards []GuardFinding, mixes []MixFinding) {
	callerHeld := computeCallerHeld(facts)
	groups := make(map[string][]fieldSite)
	var keys []string
	for _, obj := range facts.order {
		for _, fa := range facts.funcs[obj].fieldAccesses {
			eff := make(map[string]bool, len(fa.held)+len(callerHeld[obj]))
			for _, id := range fa.held {
				eff[id] = true
			}
			for id := range callerHeld[obj] {
				eff[id] = true
			}
			if _, seen := groups[fa.key]; !seen {
				keys = append(keys, fa.key)
			}
			groups[fa.key] = append(groups[fa.key], fieldSite{fa: fa, fn: obj, eff: eff})
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		sites := groups[key]
		guards = append(guards, lockguardFindings(key, sites, guardDecls[key])...)
		mixes = append(mixes, atomicmixFindings(key, sites)...)
	}
	return guards, mixes
}

// lockguardFindings applies the guard rule to one field's sites.
func lockguardFindings(key string, sites []fieldSite, declared string) []GuardFinding {
	// Escapes: atomic accesses belong to atomicmix; constructor and
	// teardown accesses are single-threaded by contract.
	var eligible []fieldSite
	for _, s := range sites {
		if !s.fa.atomic && !s.fa.ctor && !s.fa.teardown {
			eligible = append(eligible, s)
		}
	}
	var out []GuardFinding
	if declared != "" {
		for _, s := range eligible {
			if s.eff[declared] {
				continue
			}
			out = append(out, GuardFinding{Pos: s.fa.pos, Message: fmt.Sprintf(
				"field %s is annotated //wiscape:guardedby %s but this %s in %s does not hold %s: acquire it, or //lint:ignore lockguard <reason>",
				key, shortLockName(declared), accessWord(s.fa), shortFuncName(s.fn), declared)})
		}
		return out
	}
	// Inference: dominant association with a lock of the same receiver
	// type, counted over the effective (caller-inherited) held sets.
	owner := key[:strings.Index(key, ").")+1]
	counts := make(map[string]int)
	for _, s := range eligible {
		for id := range s.eff {
			if strings.HasPrefix(id, owner+".") {
				counts[id]++
			}
		}
	}
	best, bestN := "", 0
	for _, id := range sortedCountKeys(counts) {
		if counts[id] > bestN {
			best, bestN = id, counts[id]
		}
	}
	n := len(eligible)
	if best == "" || bestN == n || bestN < guardRatio*(n-bestN) {
		return nil
	}
	for _, s := range eligible {
		if s.eff[best] {
			continue
		}
		out = append(out, GuardFinding{Pos: s.fa.pos, Message: fmt.Sprintf(
			"field %s is guarded by %s on a supermajority of accesses but this %s in %s does not hold it: acquire %s, annotate the field //wiscape:guardedby %s, or //lint:ignore lockguard <reason>",
			key, best, accessWord(s.fa), shortFuncName(s.fn), best, shortLockName(best))})
	}
	return out
}

// atomicmixFindings applies the mixed-access rule to one field's sites.
func atomicmixFindings(key string, sites []fieldSite) []MixFinding {
	var atomics, plains []fieldSite
	for _, s := range sites {
		switch {
		case s.fa.atomic:
			atomics = append(atomics, s)
		case !s.fa.ctor && !s.fa.teardown:
			plains = append(plains, s)
		}
	}
	if len(atomics) == 0 || len(plains) == 0 {
		return nil
	}
	where := shortFuncName(atomics[0].fn)
	var out []MixFinding
	for _, s := range plains {
		out = append(out, MixFinding{Pos: s.fa.pos, Message: fmt.Sprintf(
			"field %s is accessed via sync/atomic in %s but by a plain %s in %s: mixed atomic and plain access is a data race the race detector rarely schedules — make every access atomic, or guard all of them with one lock",
			key, where, accessWord(s.fa), shortFuncName(s.fn))})
	}
	return out
}

func accessWord(fa fieldAccess) string {
	if fa.write {
		return "write"
	}
	return "read"
}

// shortLockName strips a lock identity key to its field name, for the
// "//wiscape:guardedby mu" hint.
func shortLockName(id string) string {
	if i := strings.LastIndex(id, ")."); i >= 0 {
		return id[i+2:]
	}
	return id
}

func sortedCountKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
