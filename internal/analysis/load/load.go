// Package load type-checks Go packages from source using only the
// standard library's go/* toolchain packages (go/build for build-tag file
// selection, go/parser for syntax, go/types for semantics).
//
// It exists because the wiscape-lint analyzers (internal/analysis) need
// full type information — "is this receiver a sync.Mutex?", "is this field
// a *telemetry.Counter?" — and the repository deliberately carries no
// external dependencies, so golang.org/x/tools/go/packages is not
// available. The loader resolves three kinds of import paths:
//
//   - module-local paths ("repro/...") against the module root,
//   - standard-library paths against GOROOT/src (and GOROOT/src/vendor),
//   - explicit overrides, which analysistest uses to map fixture packages
//     like "nodeterm" onto testdata/src/nodeterm.
//
// Target packages (module-local and overrides) are checked with function
// bodies; dependencies reached only through imports (the standard library)
// are checked declarations-only, which is both much faster and immune to
// body-level oddities in GOROOT sources. Type errors are collected, not
// fatal: analyzers are written to degrade gracefully when type information
// is partial, so one broken file never hides every other finding.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path the package was requested under.
	Path string
	// Dir is the directory its files were read from.
	Dir string
	// Files are the parsed (non-test) source files, in file-name order.
	Files []*ast.File
	// Pkg is the type-checked package object (never nil, possibly
	// incomplete when TypeErrors is non-empty).
	Pkg *types.Package
	// Info holds the use/def/type maps for target packages; nil for
	// declarations-only dependencies.
	Info *types.Info
	// ParseErrors are the syntax errors encountered, one per position
	// (scanner error lists are flattened). A file that fails to parse
	// entirely is dropped from Files, but its errors are preserved here
	// so drivers can surface them as file:line diagnostics instead of
	// silently analyzing a package with a hole in it.
	ParseErrors []error
	// TypeErrors are the soft type-checking errors encountered.
	TypeErrors []error
}

// Loader loads packages, memoizing by import path. It is not safe for
// concurrent use; lint runs load sequentially.
type Loader struct {
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet

	// ModulePath / ModuleDir root module-local import resolution
	// (e.g. "repro" -> /path/to/repo).
	ModulePath string
	ModuleDir  string

	// Overrides maps import paths onto directories ahead of module and
	// GOROOT resolution. analysistest points fixture paths here.
	Overrides map[string]string

	// IncludeTests adds _test.go files of target packages (the in-package
	// test files only; external _test packages are out of scope).
	IncludeTests bool

	ctxt build.Context
	pkgs map[string]*entry
}

type entry struct {
	pkg     *Package
	err     error
	loading bool
}

// New returns a loader with cgo disabled (GOROOT sources are selected in
// their pure-Go configuration, so packages like net type-check without
// running cgo).
func New() *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset: token.NewFileSet(),
		ctxt: ctxt,
		pkgs: make(map[string]*entry),
	}
}

// resolve maps an import path to (directory, target?). Target packages get
// full type-checking with bodies and an Info; dependencies do not.
func (l *Loader) resolve(path string) (dir string, target bool, err error) {
	if d, ok := l.Overrides[path]; ok {
		return d, true, nil
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir, true, nil
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true, nil
		}
	}
	goroot := l.ctxt.GOROOT
	for _, d := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, false, nil
		}
	}
	return "", false, fmt.Errorf("load: cannot resolve import %q", path)
}

// Load parses and type-checks the package at the given import path (and,
// transitively, everything it imports). Results are memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("load: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &entry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.load(path)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Pkg: types.Unsafe}, nil
	}
	dir, target, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: scanning %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if target && l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	var files []*ast.File
	var parseErrs, softErrs []error
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A scanner.ErrorList carries one positioned error per
			// syntax problem; flatten it so each surfaces individually.
			if list, ok := err.(scanner.ErrorList); ok {
				for _, e := range list {
					parseErrs = append(parseErrs, e)
				}
			} else {
				parseErrs = append(parseErrs, err)
			}
			if f == nil {
				continue
			}
		}
		files = append(files, f)
	}

	pkg := &Package{Path: path, Dir: dir, ParseErrors: parseErrs}
	if target {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer:         importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		IgnoreFuncBodies: !target,
		FakeImportC:      true,
		Error:            func(err error) { softErrs = append(softErrs, err) },
	}
	// Check never returns a nil package; soft errors land in softErrs.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Files = files
	pkg.Pkg = tpkg
	pkg.TypeErrors = softErrs
	return pkg, nil
}

// Packages returns every fully-checked target package loaded so far (the
// ones with bodies and an Info), sorted by import path. Facts engines
// consume this to see the whole load, not just the requested roots.
func (l *Loader) Packages() []*Package {
	var out []*Package
	for _, e := range l.pkgs {
		if e.pkg != nil && e.pkg.Info != nil {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// importPkg backs the types.Importer needed while checking: dependencies
// of the package under load.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
