package analysis

// Taintalloc flags allocation sizes that an attacker on the wire gets to
// pick: an integer decoded from a peer-controlled buffer
// (binary.ByteOrder Uint32/Uint64, varint reads) that reaches make,
// io.ReadFull/ReadAtLeast/CopyN, bufio reader/writer sizing, or
// Buffer/Builder/slices Grow without a dominating bound check. One
// unchecked length-prefix in a frame decoder is a remote
// memory-exhaustion primitive — the replication protocol caps its
// frames by hand today, and the upcoming binary wire codec will be
// built under this gate so the discipline is mechanical, not manual.
//
// The taint is interprocedural (see taintfacts.go): a length returned
// by a helper, or passed down into one, is tracked through the call
// graph to a fixed point, and the diagnostic names the derivation chain
// back to the network read. Comparing the value against anything,
// anywhere in the function, counts as the bound check — the analyzer
// verifies that the author thought about the bound, not that the
// arithmetic is right.
var Taintalloc = &Analyzer{
	Name: "taintalloc",
	Doc: "flag network-read integers reaching allocation or read-size sinks " +
		"(make, io.ReadFull/CopyN, bufio sizing, Grow) without a bound check",
	Run: runTaintalloc,
}

func runTaintalloc(pass *Pass) error {
	for _, tf := range pass.Facts.Taint() {
		if pass.ownsPos(tf.Pos) {
			pass.Reportf(tf.Pos, "%s sized by network-read value (%s) with no dominating bound check: compare against a limit first",
				tf.What, tf.Via)
		}
	}
	return nil
}
