package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNilsafemetric(t *testing.T) {
	analysistest.Run(t, analysis.Nilsafemetric, "nilsafemetric", "nilsafemetric/alwayson")
}
