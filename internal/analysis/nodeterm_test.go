package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, analysis.Nodeterm, "nodeterm", "nodeterm/clock")
}
