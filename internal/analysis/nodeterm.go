package analysis

import (
	"go/ast"
)

// Nodeterm enforces the simulator's reproducibility contract: the
// packages that produce the paper's numbers (the simulated substrate, the
// statistics and epoch/NKLD machinery, the experiment harness) must be
// pure functions of their seeds. Wall-clock reads and global randomness
// make a campaign unrepeatable, so inside deterministic packages every
// clock must be injected (virtual campaign time, or a clock function
// passed by the caller) and every random draw must come from an explicit
// repro/internal/rng stream.
//
// Flagged: calls to time.Now, time.Since, time.Until, time.Sleep,
// time.Tick, time.After, time.AfterFunc, time.NewTimer, time.NewTicker,
// and any package-level call into math/rand or math/rand/v2. Referencing
// time.Sleep as a value (the injected-sleeper default idiom) is allowed:
// the rule targets where wall time is consumed, not where the injection
// point is wired.
//
// Scope: the packages listed in deterministicPkgs, plus any package with a
// file carrying the lone comment directive "//wiscape:deterministic"
// (which is also how new packages opt in without touching the linter).
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock time and global randomness in deterministic packages; " +
		"inject clocks and draw from repro/internal/rng instead",
	Run: runNodeterm,
}

// deterministicPkgs is the seed-stable core: every package here feeds the
// reproduced figures or the campaign machinery, directly or transitively.
var deterministicPkgs = map[string]bool{
	"repro/internal/simnet":      true,
	"repro/internal/stats":       true,
	"repro/internal/experiments": true,
	"repro/internal/trace":       true,
	"repro/internal/mobility":    true,
	"repro/internal/radio":       true,
	"repro/internal/webload":     true,
	"repro/internal/device":      true,
	"repro/internal/bandwidth":   true,
	"repro/internal/geo":         true,
	"repro/internal/core":        true,
	"repro/internal/rng":         true,
	// The agent executes campaigns in virtual time; its only wall-clock
	// dependency (the reconnect backoff sleeper) must stay injectable.
	"repro/internal/agent": true,
}

// DeterministicDirective opts a package into nodeterm from its own source.
const DeterministicDirective = "//wiscape:deterministic"

// nondetTimeFuncs are the time package entry points that consume the wall
// clock (constructors like time.Date/time.Unix are pure and stay legal).
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runNodeterm(pass *Pass) error {
	inScope := deterministicPkgs[pass.Pkg.Path()]
	if !inScope {
		for _, f := range pass.Files {
			if hasDirective(f, DeterministicDirective) {
				inScope = true
				break
			}
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pass.pkgFunc(call)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if nondetTimeFuncs[name] {
					pass.Reportf(call.Pos(),
						"call to time.%s in deterministic package %s: inject a clock (or virtual campaign time) instead",
						name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(),
					"call to %s.%s in deterministic package %s: draw from a seeded repro/internal/rng stream instead",
					pkgPath, name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
