package analysis

// Lockorder reports lock-ordering cycles: two (or more) identity-keyed
// locks that different code paths acquire in opposite orders, the
// classic recipe for a deadlock that no test catches until two requests
// interleave just wrong in production. lockio keeps critical sections
// free of blocking I/O; lockorder keeps the set of critical sections
// globally consistent — the property the coordinator↔gateway↔replication
// interplay (registry route rewrites during failover, promote/demote
// under the coordinator's locks) has to preserve as it grows.
//
// The graph is whole-load: an edge A→B means some function held A while
// acquiring B, either directly in its body or through any chain of
// static calls (a function that calls a helper which locks B under A
// contributes the same edge, with the chain named in the diagnostic).
// Each cycle is reported once, at the acquisition site of its first
// edge; fixing or suppressing that edge re-anchors any remaining cycle
// on the next run. See lockfacts.go for the identity rules and their
// deliberate biases (instances of one type are conflated; local mutexes
// are invisible; RLock orders like Lock).
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "detect lock-acquisition ordering cycles (potential deadlocks) across the " +
		"whole load's call graph",
	Run: runLockorder,
}

func runLockorder(pass *Pass) error {
	for _, c := range pass.Facts.Cycles() {
		// Cycles are a whole-load property; each pass reports only the
		// ones anchored in its own files, so a multi-package run emits
		// each cycle exactly once.
		if pass.ownsPos(c.Pos) {
			pass.Reportf(c.Pos, "%s", c.Message)
		}
	}
	return nil
}
