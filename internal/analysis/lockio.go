package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockio enforces the hot-path scaling rule from the cluster tier: never
// hold a mutex across network I/O or a channel send. A lock held across a
// blocking conn write serializes every other handler behind one slow
// peer's TCP window — at swarm scale that converts a single stalled agent
// into a coordinator-wide stall, which race tests only catch
// probabilistically and load tests catch too late.
//
// The analyzer tracks sync.Mutex/RWMutex Lock/RLock state through each
// function body (a deferred Unlock keeps the lock held to the end of the
// body, matching Go's runtime behavior) and reports any statically
// reachable point where a lock is held at:
//
//   - a net.Conn / net.Listener / net.Dialer I/O method (Read, Write,
//     Close, Accept, Dial, DialContext),
//   - a wire.Conn protocol call (Send, Recv, Request, Close),
//   - a dial or listen (net.Dial, net.DialTimeout, net.Listen), or
//   - a channel send (including select send cases).
//
// Function literals are separate scopes: a closure that runs later (go,
// callbacks) does not execute under the lock held at its creation site.
// The lock tracking is intraprocedural and over-approximates reachability
// (both branches of an if are assumed reachable), which is the right bias
// for a gate: a narrowed critical section is always available as the fix.
//
// Call classification, however, is interprocedural: beyond the direct
// net/wire intrinsics, any call into a function whose transitive facts
// (facts.go) say it may block — it dials, writes a conn, or performs an
// unconditional channel send somewhere down its static call chain — is
// flagged with the evidence chain in the diagnostic. A blocking helper
// hidden one function deep no longer hides the stall.
var Lockio = &Analyzer{
	Name: "lockio",
	Doc: "forbid holding a sync.Mutex/RWMutex across network I/O, wire protocol calls, " +
		"or channel sends",
	Run: runLockio,
}

// netIOMethods are the blocking I/O entry points on net package types.
var netIOMethods = map[string]bool{
	"Read": true, "Write": true, "Close": true,
	"Accept": true, "Dial": true, "DialContext": true,
}

// wireIOMethods are wire.Conn's blocking protocol calls.
var wireIOMethods = map[string]bool{
	"Send": true, "Recv": true, "Request": true, "Close": true,
}

const wirePkgPath = "repro/internal/wire"

func runLockio(pass *Pass) error {
	w := &lockWalker{pass: pass}
	for _, f := range pass.Files {
		funcScopes(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			w.walkBlock(body, lockSet{})
		})
	}
	return nil
}

// lockSet maps a lock's textual key ("s.mu") to the position it was
// acquired at.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// any returns an arbitrary held lock's key, for diagnostics.
func (ls lockSet) any() string {
	for k := range ls {
		return k
	}
	return ""
}

type lockWalker struct {
	pass *Pass
}

// walkBlock walks statements in order, threading lock state through
// sequential statements and forking copies into branches and loop bodies.
func (w *lockWalker) walkBlock(b *ast.BlockStmt, held lockSet) {
	for _, s := range b.List {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(s, held)
	case *ast.ExprStmt:
		if key, op, ok := w.lockMethod(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.scanExpr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(s.Pos(), "%s held across channel send: release the lock (or buffer outside the critical section) before sending", held.any())
		}
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held through the body (no state
		// change); any other deferred call runs at function exit, outside
		// this statement's lock context, so it is not scanned.
	case *ast.GoStmt:
		// The goroutine body runs on its own stack, not under our locks.
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkBlock(s.Body, held.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		body := held.clone()
		w.walkBlock(s.Body, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkBlock(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Tag, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			branch := held.clone()
			for _, e := range cc.List {
				w.scanExpr(e, branch)
			}
			for _, st := range cc.Body {
				w.walkStmt(st, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			branch := held.clone()
			for _, st := range c.(*ast.CaseClause).Body {
				w.walkStmt(st, branch)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, branch)
			}
			for _, st := range cc.Body {
				w.walkStmt(st, branch)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr reports I/O calls inside e while locks are held. Function
// literals are not descended into: their bodies execute later, as their
// own scope.
func (w *lockWalker) scanExpr(e ast.Expr, held lockSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc, ok := w.ioCall(call); ok {
			w.pass.Reportf(call.Pos(), "%s held across %s: release the lock before blocking network I/O", held.any(), desc)
			return true
		}
		if name, via, ok := w.factsBlockingCall(call); ok {
			w.pass.Reportf(call.Pos(), "%s held across call to %s (may block: %s): release the lock before calling into blocking code", held.any(), name, via)
		}
		return true
	})
}

// lockMethod recognizes X.Lock / X.RLock / X.Unlock / X.RUnlock where the
// selected method belongs to package sync (covering embedded mutexes and
// sync.Locker values), returning the lock's textual key.
func (w *lockWalker) lockMethod(e ast.Expr) (key, op string, ok bool) {
	call, okCall := e.(*ast.CallExpr)
	if !okCall {
		return "", "", false
	}
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, okFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	key = exprString(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, op, true
}

// factsBlockingCall consults the interprocedural facts: a call to a
// module function whose transitive facts say it may block. Intrinsic
// net/wire calls are already reported by ioCall, and stdlib functions
// carry no facts, so this only fires for module-level wrappers.
func (w *lockWalker) factsBlockingCall(call *ast.CallExpr) (name, via string, ok bool) {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return "", "", false
	}
	ff := w.pass.Facts.Of(fn)
	if ff == nil || !ff.MayBlock {
		return "", "", false
	}
	return shortFuncName(fn), ff.BlockVia, true
}

// ioCall classifies call as blocking network I/O, returning a short
// description for the diagnostic.
func (w *lockWalker) ioCall(call *ast.CallExpr) (string, bool) {
	if pkgPath, name, ok := w.pass.pkgFunc(call); ok {
		if pkgPath == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen") {
			return "net." + name, true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgPath, typeName, ok := namedIn(w.pass.typeOf(sel.X))
	if !ok {
		return "", false
	}
	switch {
	case pkgPath == "net" && netIOMethods[sel.Sel.Name]:
		return "(net." + typeName + ")." + sel.Sel.Name, true
	case pkgPath == wirePkgPath && typeName == "Conn" && wireIOMethods[sel.Sel.Name]:
		return "(wire.Conn)." + sel.Sel.Name, true
	}
	return "", false
}
