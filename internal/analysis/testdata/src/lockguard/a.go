// Package lockguard is the fixture for the lockguard analyzer: fields
// whose guard is inferred by dominant association (or declared by
// //wiscape:guardedby), minority accesses that skip it, and every escape
// that must stay silent.
package lockguard

import (
	"sync"

	"lockguard/box"
)

// ---- the seeded known race: written under mu in one method, bare in another ----

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

// racyBump is the race: three sibling accesses hold mu, this write does
// not, and the diagnostic names the inferred guard.
func (c *counter) racyBump() {
	c.n++ // want `field \(lockguard\.counter\)\.n is guarded by \(lockguard\.counter\)\.mu on a supermajority of accesses but this write in \(counter\)\.racyBump does not hold it: acquire \(lockguard\.counter\)\.mu`
}

// newCounter initializes through a constructor-fresh local: not an
// access as far as the guard statistics are concerned.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// Close is teardown by name: by contract the concurrent phase is over.
func (c *counter) Close() error {
	c.n = 0
	return nil
}

// ---- caller-inherited context: the helper never locks, its callers always do ----

type table struct {
	mu      sync.Mutex
	entries map[string]int
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[k] = v
	t.bump(k)
}

func (t *table) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.entries {
		t.bump(k)
	}
}

// bump inherits mu from its callers: every call site holds it, so the
// must-hold intersection counts this access as guarded.
func (t *table) bump(k string) {
	t.entries[k]++
}

// peek is the minority unguarded read.
func (t *table) peek(k string) int {
	return t.entries[k] // want `field \(lockguard\.table\)\.entries is guarded by \(lockguard\.table\)\.mu on a supermajority of accesses but this read in \(table\)\.peek does not hold it`
}

// ---- post-Wait teardown: reads after the WaitGroup drains are the idiom ----

type pool struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	total int
}

func (p *pool) add(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

func (p *pool) snapshot() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

func (p *pool) drain() int {
	p.wg.Wait()
	return p.total
}

// ---- declared guard: //wiscape:guardedby needs no supermajority ----

type annotated struct {
	mu sync.Mutex
	//wiscape:guardedby mu
	hits int
}

func (a *annotated) touch() {
	a.mu.Lock()
	a.hits++
	a.mu.Unlock()
}

// racyTouch would survive inference (one guarded site against one
// unguarded is no supermajority); the annotation pins the guard.
func (a *annotated) racyTouch() {
	a.hits++ // want `field \(lockguard\.annotated\)\.hits is annotated //wiscape:guardedby mu but this write in \(annotated\)\.racyTouch does not hold \(lockguard\.annotated\)\.mu`
}

// audited demonstrates the suppression escape hatch.
func (a *annotated) audited() int {
	//lint:ignore lockguard fixture: single-threaded stats probe audited by a human
	return a.hits
}

// ---- below the supermajority: no guard is inferred, nothing fires ----

type loose struct {
	mu sync.Mutex
	a  int
}

func (l *loose) lockedSet(v int) {
	l.mu.Lock()
	l.a = v
	l.mu.Unlock()
}

func (l *loose) bareGet() int  { return l.a }
func (l *loose) bareSet(v int) { l.a = v }

// ---- cross-package positive: the guarded field lives in lockguard/box ----

// racyLen reads the box map without its lock; the guard association
// comes entirely from box's own methods.
func racyLen(b *box.Box) int {
	return len(b.Items) // want `field \(box\.Box\)\.Items is guarded by \(box\.Box\)\.Mu on a supermajority of accesses but this read in lockguard\.racyLen does not hold it`
}
