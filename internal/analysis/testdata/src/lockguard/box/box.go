// Package box is the cross-package half of the lockguard fixture: a map
// consistently guarded by its exported lock, so an unguarded access in
// the parent package is the minority.
package box

import "sync"

// Box is a shared map guarded by Mu on every access its own package
// makes.
type Box struct {
	Mu    sync.Mutex
	Items map[string]int
}

func (b *Box) Put(k string, v int) {
	b.Mu.Lock()
	b.Items[k] = v
	b.Mu.Unlock()
}

func (b *Box) Len() int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return len(b.Items)
}

func (b *Box) Del(k string) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	delete(b.Items, k)
}
