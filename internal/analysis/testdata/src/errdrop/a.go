// Package errdrop is a fixture for the errdrop analyzer: discarded
// error results on I/O, Close, Flush and durability paths, including
// module wrappers whose obligation is only visible through facts.
package errdrop

import (
	"bufio"
	"net"
	"os"
)

// ---- direct (intrinsic) positives ----

func bareFileClose(f *os.File) {
	f.Close() // want `error from \(os\.File\)\.Close silently dropped`
}

func blankFileSync(f *os.File) {
	_ = f.Sync() // want `error from \(os\.File\)\.Sync explicitly discarded on a durability path`
}

func blankWriteCount(f *os.File, b []byte) {
	n, _ := f.Write(b) // want `error from \(os\.File\)\.Write explicitly discarded on a durability path`
	_ = n
}

func deferredFileClose(f *os.File) {
	defer f.Close() // want `error from deferred \(os\.File\)\.Close dropped on a durability path`
}

func bareFlush(bw *bufio.Writer) {
	bw.Flush() // want `error from \(bufio\.Writer\)\.Flush silently dropped`
}

func bareConnClose(nc net.Conn) {
	nc.Close() // want `error from \(net\.Conn\)\.Close silently dropped`
}

// ---- cross-function positives (the wrapper carries the fact) ----

// flushAll is a durability wrapper: it returns an error sourced from
// bufio.Writer.Flush, so discarding its result is discarding the flush.
func flushAll(bw *bufio.Writer) error {
	return bw.Flush()
}

func bareWrapper(bw *bufio.Writer) {
	flushAll(bw) // want `error from errdrop\.flushAll .* silently dropped`
}

func blankWrapper(bw *bufio.Writer) {
	_ = flushAll(bw) // want `error from errdrop\.flushAll .* explicitly discarded on a durability path`
}

// persist is two hops from the os.File.Sync at the bottom.
func persist(f *os.File) error {
	return syncIt(f)
}

func syncIt(f *os.File) error {
	return f.Sync()
}

func deepBare(f *os.File) {
	persist(f) // want `error from errdrop\.persist .* silently dropped`
}

// ---- negatives ----

// checked returns the error: the obligation moves to the caller.
func checked(f *os.File) error {
	return f.Close()
}

// handled inspects the error.
func handled(f *os.File) {
	if err := f.Sync(); err != nil {
		_ = err
	}
}

// blankConnClose: explicit best-effort teardown of a connection is the
// repo's documented idiom and stays legal ("net" kind).
func blankConnClose(nc net.Conn) {
	_ = nc.Close()
}

// deferredConnClose: deferred teardown of a connection is likewise fine.
func deferredConnClose(nc net.Conn) {
	defer nc.Close()
}

// pureWrapper returns an error with no I/O under it: no obligation.
func pureWrapper(ok bool) error {
	if !ok {
		return os.ErrInvalid
	}
	return nil
}

func dropsPure(ok bool) {
	_ = pureWrapper(ok)
}

// suppressed is the audited escape hatch.
func suppressed(f *os.File) {
	//lint:ignore errdrop fixture demonstrates the audited escape hatch
	f.Close()
}
