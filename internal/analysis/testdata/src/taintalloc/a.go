// Package taintalloc is the fixture for the taintalloc analyzer:
// network-read lengths reaching sizing sinks with and without bound
// checks, including flows that are only visible interprocedurally.
package taintalloc

import (
	"bufio"
	"encoding/binary"
	"io"

	"taintalloc/codec"
)

const maxFrame = 1 << 20

// ---- positives ----

// readFrame allocates whatever the peer asks for.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n) // want `make\(\[\]byte, …\) sized by network-read value \(binary\.Uint32\)`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// copyBody streams a peer-chosen number of bytes; the int64 conversion
// is transparent to the taint.
func copyBody(dst io.Writer, src io.Reader, hdr []byte) error {
	n := binary.BigEndian.Uint64(hdr)
	_, err := io.CopyN(dst, src, int64(n)) // want `io\.CopyN sized by network-read value \(binary\.Uint64\)`
	return err
}

// readInto fills big[:n] — the tainted length rides a slice bound.
func readInto(r io.Reader, hdr []byte, big []byte) error {
	n := binary.BigEndian.Uint32(hdr)
	_, err := io.ReadFull(r, big[:n]) // want `io\.ReadFull sized by network-read value \(binary\.Uint32\)`
	return err
}

// sizeReader sizes a bufio.Reader from the wire.
func sizeReader(r io.Reader, hdr []byte) *bufio.Reader {
	n := int(binary.BigEndian.Uint32(hdr))
	return bufio.NewReaderSize(r, n) // want `bufio\.NewReaderSize sized by network-read value \(binary\.Uint32\)`
}

// ---- interprocedural positives ----

// allocFor's caller hands it a wire-read length; the finding lands on
// the allocation with the argument chain named.
func allocFor(n uint32) []byte {
	return make([]byte, n) // want `make\(\[\]byte, …\) sized by network-read value \(binary\.Uint32 \(argument from taintalloc\.caller\)\)`
}

func caller(hdr []byte) []byte {
	return allocFor(binary.BigEndian.Uint32(hdr))
}

// readVia pulls its length through a cross-package helper.
func readVia(r io.Reader, hdr []byte) ([]byte, error) {
	n := codec.FrameLen(hdr)
	buf := make([]byte, n) // want `make\(\[\]byte, …\) sized by network-read value \(codec\.FrameLen → binary\.Uint64\)`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// ---- negatives ----

// Comparing the length anywhere in the body is the accepted bound.
func readFrameBounded(r io.Reader, hdr []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// The helper bounds its result before returning it, so its return value
// is clean.
func readCapped(hdr []byte) []byte {
	return make([]byte, codec.BoundedLen(hdr, maxFrame))
}

// 16-bit lengths allocate at most 64 KiB and are not sources.
func readSmall(hdr []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(hdr))
}

// A mask bounds by construction.
func readMasked(hdr []byte) []byte {
	n := binary.BigEndian.Uint64(hdr) & 0xffff
	return make([]byte, n)
}

// Constant sizing is obviously fine.
func newReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, 64<<10)
}

// Suppression: the audited escape hatch.
func trusted(hdr []byte) []byte {
	n := binary.BigEndian.Uint64(hdr)
	//lint:ignore taintalloc fixture: header comes from an authenticated local peer
	return make([]byte, n)
}
