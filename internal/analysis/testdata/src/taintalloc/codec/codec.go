// Package codec is the cross-package half of the taintalloc fixture:
// one helper that leaks a wire-read length to its callers and one that
// bounds it first.
package codec

import "encoding/binary"

// FrameLen returns the raw length prefix of a frame header; callers who
// allocate from it unchecked inherit the taint.
func FrameLen(hdr []byte) uint64 {
	return binary.LittleEndian.Uint64(hdr)
}

// BoundedLen caps the prefix, so its result is safe to allocate from.
func BoundedLen(hdr []byte, max uint64) uint64 {
	n := binary.LittleEndian.Uint64(hdr)
	if n > max {
		return max
	}
	return n
}
