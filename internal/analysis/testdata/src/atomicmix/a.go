// Package atomicmix is the fixture for the atomicmix analyzer: fields
// accessed via sync/atomic in one place and by plain load/store in
// another, plus the all-atomic, typed-atomic, constructor and teardown
// shapes that must stay silent.
package atomicmix

import (
	"sync"
	"sync/atomic"

	"atomicmix/ctr"
)

// ---- function-form atomics mixed with a plain read ----

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) miss() {
	atomic.AddInt64(&s.misses, 1)
}

// report mixes a plain read with hit's atomic increments.
func (s *stats) report() int64 {
	return s.hits // want `field \(atomicmix\.stats\)\.hits is accessed via sync/atomic in \(stats\)\.hit but by a plain read in \(stats\)\.report`
}

// missCount keeps misses all-atomic: no finding.
func (s *stats) missCount() int64 {
	return atomic.LoadInt64(&s.misses)
}

// newStats initializes through a constructor-fresh local: plain by
// necessity, silent by design.
func newStats(seed int64) *stats {
	s := &stats{}
	s.hits = seed
	return s
}

// ---- typed atomics: methods and by-pointer handoff are both atomic ----

type gauge struct {
	v atomic.Int64
}

func (g *gauge) set(x int64) { g.v.Store(x) }
func (g *gauge) get() int64  { return g.v.Load() }

// bumpBy hands the typed atomic off by pointer — still an atomic
// access, not a plain read of v.
func (g *gauge) bumpBy(d int64) { addTo(&g.v, d) }

func addTo(v *atomic.Int64, d int64) { v.Add(d) }

// ---- post-Wait teardown: a plain read after the workers drained ----

type worker struct {
	wg   sync.WaitGroup
	done int64
}

func (w *worker) start(n int) {
	for i := 0; i < n; i++ {
		w.wg.Add(1)
		go w.step()
	}
}

func (w *worker) step() {
	defer w.wg.Done()
	atomic.AddInt64(&w.done, 1)
}

// finish reads plainly after Wait: the writers are gone.
func (w *worker) finish() int64 {
	w.wg.Wait()
	return w.done
}

// ---- cross-package positive: the atomic discipline lives in atomicmix/ctr ----

// racyReset zeroes the counter with a plain store.
func racyReset(c *ctr.Counter) {
	c.N = 0 // want `field \(ctr\.Counter\)\.N is accessed via sync/atomic in \(Counter\)\.(Inc|Get) but by a plain write in atomicmix\.racyReset`
}

// auditedPeek demonstrates the suppression escape hatch.
func auditedPeek(c *ctr.Counter) int64 {
	//lint:ignore atomicmix fixture: single-threaded test hook audited by a human
	return c.N
}
