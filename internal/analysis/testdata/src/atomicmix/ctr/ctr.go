// Package ctr is the cross-package half of the atomicmix fixture: a
// counter its own package only ever touches atomically, so a plain
// access in the parent package is the mix.
package ctr

import "sync/atomic"

// Counter is an exported atomic counter.
type Counter struct {
	N int64
}

func (c *Counter) Inc()       { atomic.AddInt64(&c.N, 1) }
func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.N) }
