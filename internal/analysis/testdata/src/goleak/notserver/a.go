// Package notserver has no //wiscape:server directive and no server path
// element: goleak must not report here even for an evidence-free spawn.
package notserver

type worker struct {
	ch chan int
}

func (w *worker) spawn() {
	go func() {
		for {
			w.ch <- 1
		}
	}()
}
