// Package goleak is a fixture for the goleak analyzer: goroutine spawns
// with and without lifecycle evidence, including evidence that is only
// visible interprocedurally.
//
//wiscape:server
package goleak

import (
	"context"
	"sync"
)

type svc struct {
	wg   sync.WaitGroup
	stop chan struct{}
	ch   chan int
}

// ---- positives ----

// spawnLitLeak: a literal with an unbounded pump loop and no evidence.
func (s *svc) spawnLitLeak() {
	go func() { // want `goroutine has no shutdown path`
		for {
			s.ch <- 1
		}
	}()
}

// spawnNamedLeak is the cross-function positive: the spawned method is
// resolved through facts, and pump has no shutdown evidence either.
func (s *svc) spawnNamedLeak() {
	go s.pump() // want `goroutine has no shutdown path`
}

func (s *svc) pump() {
	for {
		s.ch <- 1
	}
}

// spawnDeepLeak: two hops down the call chain, still no evidence.
func (s *svc) spawnDeepLeak() {
	go s.outerLeak() // want `goroutine has no shutdown path`
}

func (s *svc) outerLeak() { s.pump() }

// ---- negatives ----

// spawnWithAdd: WaitGroup accounting at the spawn site.
func (s *svc) spawnWithAdd() {
	s.wg.Add(1)
	go s.pump()
}

// spawnWithDone: WaitGroup accounting inside the spawned literal.
func (s *svc) spawnWithDone() {
	go func() {
		defer s.wg.Done()
		s.ch <- 1
	}()
}

// spawnSelectStop is the cross-function negative: run's select on the
// stop channel is found through facts.
func (s *svc) spawnSelectStop() {
	go s.run()
}

func (s *svc) run() {
	for {
		select {
		case <-s.stop:
			return
		case v := <-s.ch:
			_ = v
		}
	}
}

// spawnDeepStop: the shutdown select two hops down still counts.
func (s *svc) spawnDeepStop() {
	go s.outerRun()
}

func (s *svc) outerRun() { s.run() }

// spawnCtx: a direct ctx.Done receive in the literal.
func (s *svc) spawnCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// spawnRange: ranging a channel ends when the channel closes.
func (s *svc) spawnRange() {
	go func() {
		for v := range s.ch {
			_ = v
		}
	}()
}

// spawnOpaque: a function value cannot be resolved; goleak stays silent
// rather than guessing.
func (s *svc) spawnOpaque(f func()) {
	go f()
}

// spawnIgnored: the audited escape hatch.
func (s *svc) spawnIgnored() {
	//lint:ignore goleak fixture demonstrates the audited escape hatch
	go s.pump()
}
