// Package clock is the nodeterm negative fixture: no directive, not in
// the deterministic set, so wall-clock use is fine.
package clock

import "time"

func Stamp() time.Time {
	return time.Now()
}

func Nap() {
	time.Sleep(time.Millisecond)
}
