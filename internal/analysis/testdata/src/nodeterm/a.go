//wiscape:deterministic

// Package nodeterm is a fixture for the nodeterm analyzer: the directive
// above opts the whole package into the deterministic set.
package nodeterm

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()             // want `call to time\.Now in deterministic package`
	time.Sleep(time.Millisecond) // want `call to time\.Sleep in deterministic package`
	return time.Since(t0)        // want `call to time\.Since in deterministic package`
}

func timers() {
	_ = time.After(time.Second)     // want `call to time\.After in deterministic package`
	_ = time.NewTicker(time.Second) // want `call to time\.NewTicker in deterministic package`
}

func globalRand() int {
	return rand.Intn(6) // want `call to math/rand\.Intn in deterministic package`
}

func seededButStillGlobal() {
	r := rand.New(rand.NewSource(1)) // want `call to math/rand\.New in deterministic package` `call to math/rand\.NewSource in deterministic package`
	_ = r
}

// Negative cases: pure time constructors, type and constant uses, and
// referencing time.Sleep as a value (the injected-sleeper default idiom)
// are all legal.
func pureTimeUse() {
	var sleep func(time.Duration) = time.Sleep
	_ = sleep
	_ = time.Date(2011, time.November, 1, 0, 0, 0, 0, time.UTC)
	_ = 3 * time.Second
	_ = time.Unix(1320105600, 0)
}

func suppressed() {
	//lint:ignore nodeterm fixture demonstrates the audited escape hatch
	_ = time.Now()
}
