// Package lockio is a fixture for the lockio analyzer: mutexes held
// across network I/O, wire protocol calls, and channel sends.
package lockio

import (
	"net"
	"sync"

	"lockio/remote"

	"repro/internal/wire"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	conns map[net.Conn]struct{}
	ch    chan int
}

func (s *server) closeAllBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for nc := range s.conns {
		_ = nc.Close() // want `s\.mu held across \(net\.Conn\)\.Close`
	}
}

func (s *server) sendBad() {
	s.mu.Lock()
	s.ch <- 1 // want `s\.mu held across channel send`
	s.mu.Unlock()
}

func (s *server) rlockIsStillHeld(nc net.Conn, buf []byte) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = nc.Read(buf) // want `s\.rw held across \(net\.Conn\)\.Read`
}

func (s *server) wireBad(c *wire.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = c.Send(wire.Envelope{}) // want `s\.mu held across \(wire\.Conn\)\.Send`
}

func (s *server) dialBad(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = net.Dial("tcp", addr) // want `s\.mu held across net\.Dial`
}

func (s *server) selectSendBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1: // want `s\.mu held across channel send`
	default:
	}
}

// Negative cases.

// closeAllGood snapshots under the lock and does I/O after releasing it —
// the fix lockio always points at.
func (s *server) closeAllGood() {
	s.mu.Lock()
	snapshot := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		snapshot = append(snapshot, nc)
	}
	s.mu.Unlock()
	for _, nc := range snapshot {
		_ = nc.Close()
	}
}

// sendAfterUnlock releases before sending.
func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	v := len(s.conns)
	s.mu.Unlock()
	s.ch <- v
}

// closureEscapes builds a closure under the lock; its body runs later,
// outside the critical section.
func (s *server) closureEscapes() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.ch <- 1
	}
}

// branchScoped: the lock taken in one branch does not leak into the next
// statement's analysis once the branch unlocks.
func (s *server) branchScoped(fast bool) {
	if fast {
		s.mu.Lock()
		s.mu.Unlock()
	}
	s.ch <- 1
}

// ---- interprocedural cases (the facts engine at work) ----

// notify blocks on a channel send; count is pure. Neither is flagged
// here — the lock context is the caller's.
func (s *server) notify() { s.ch <- 1 }
func (s *server) count() int {
	return len(s.conns)
}

// helperBad: the blocking send is one function deep.
func (s *server) helperBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify() // want `s\.mu held across call to \(server\)\.notify \(may block: channel send\)`
}

// crossPkgDialBad: the dial hides behind a package boundary.
func (s *server) crossPkgDialBad(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = remote.Dial(addr) // want `s\.mu held across call to remote\.Dial \(may block: net\.Dial\)`
}

// crossPkgWriteBad: same, for a conn write wrapper.
func (s *server) crossPkgWriteBad(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = remote.Ping(nc) // want `s\.mu held across call to remote\.Ping \(may block: \(net\.Conn\)\.Write\)`
}

// helperGood: pure helpers stay legal under the lock.
func (s *server) helperGood(addr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return remote.Distance(s.count(), len(addr))
}

// suppressedInterproc: facts findings use the same audited escape hatch.
func (s *server) suppressedInterproc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockio fixture demonstrates suppression of a facts finding
	s.notify()
}

func (s *server) suppressed(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockio fixture demonstrates the audited escape hatch
	_ = nc.Close()
}
