// Package remote is the cross-package half of the lockio facts fixture:
// its functions block (dial, conn write) without that being visible at
// any call site outside this package.
package remote

import "net"

// Dial blocks on the network.
func Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// Ping writes to the connection; the write can block on the peer's TCP
// window.
func Ping(nc net.Conn) error {
	_, err := nc.Write([]byte("ping"))
	return err
}

// Distance is pure: calling it under a lock is fine.
func Distance(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
