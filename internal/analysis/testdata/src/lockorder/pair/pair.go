// Package pair is the cross-package half of the lockorder fixture: a
// table whose lock is acquired both by its own methods and, in the
// opposite order, by the parent fixture package.
package pair

import "sync"

// Table is a shared counter guarded by an exported lock so the parent
// fixture can order against it directly.
type Table struct {
	Mu  sync.Mutex
	gen int
}

// Bump locks the table; a caller holding its own lock orders that lock
// before (pair.Table).Mu.
func (t *Table) Bump() {
	t.Mu.Lock()
	t.gen++
	t.Mu.Unlock()
}

// Gen expects t.Mu to be held by the caller.
func (t *Table) Gen() int {
	return t.gen
}
