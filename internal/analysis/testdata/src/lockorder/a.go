// Package lockorder is the fixture for the lockorder analyzer:
// lock-ordering cycles assembled across functions and packages, plus
// the shapes that must stay silent.
package lockorder

import (
	"sync"

	"lockorder/pair"
)

// ---- cycle 1: two locks, the reverse edge only visible through a call ----

type registry struct {
	mu     sync.Mutex
	routes map[string]string
}

type gateway struct {
	mu    sync.Mutex
	dirty bool
	reg   *registry
}

// addRoute nests registry.mu under gateway.mu: the forward edge. The
// cycle is reported once, anchored here (the first edge of the shortest
// cycle through the smallest lock key).
func (g *gateway) addRoute(k, v string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reg.mu.Lock() // want `lock ordering cycle .*\(lockorder\.gateway\)\.mu acquired before \(lockorder\.registry\)\.mu in \(gateway\)\.addRoute; \(lockorder\.registry\)\.mu acquired before \(lockorder\.gateway\)\.mu in \(registry\)\.evict via call to \(gateway\)\.markDirty`
	g.reg.routes[k] = v
	g.reg.mu.Unlock()
}

// evict holds registry.mu and calls a gateway-locking helper: the
// reverse edge exists only interprocedurally.
func (r *registry) evict(g *gateway, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.routes, k)
	g.markDirty()
}

func (g *gateway) markDirty() {
	g.mu.Lock()
	g.dirty = true
	g.mu.Unlock()
}

// ---- cycle 2: cross-package — the opposing lock lives in lockorder/pair ----

type store struct {
	mu sync.Mutex
	n  int
}

// publish holds store.mu while bumping the shared table; the edge into
// (pair.Table).Mu comes from pair's own facts.
func (s *store) publish(t *pair.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Bump() // want `lock ordering cycle .*\(lockorder\.store\)\.mu acquired before \(pair\.Table\)\.Mu in \(store\)\.publish via call to \(Table\)\.Bump`
	s.n++
}

// refresh nests store.mu under the table lock: the reverse edge.
func refresh(t *pair.Table, s *store) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	s.mu.Lock()
	s.n = t.Gen()
	s.mu.Unlock()
}

// ---- suppression: a cycle silenced at its anchor edge ----

type alpha struct {
	mu sync.Mutex
	b  *beta
}

type beta struct {
	mu sync.Mutex
	a  *alpha
}

func (a *alpha) crossB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:ignore lockorder fixture: demonstrates an audited two-lock crossing
	a.b.mu.Lock()
	a.b.mu.Unlock()
}

func (b *beta) crossA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
}

// ---- negatives ----

// Consistent order: both paths (one direct, one through a call) take
// outer before inner — no cycle.
type outer struct {
	mu sync.Mutex
	in *inner
}

type inner struct {
	mu sync.Mutex
	n  int
}

func (o *outer) touch() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	o.in.n++
	o.in.mu.Unlock()
}

func (o *outer) reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.bump()
}

func (i *inner) bump() {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

// Sequential acquisition — released before crossing — contributes no
// edge in either direction, so inner-then-outer here cannot close a
// cycle against touch's outer-then-inner.
func handoff(o *outer, i *inner) {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
}

// Different instances of one type conflate to one node and self-edges
// are dropped: iterating peers cannot manufacture a cycle.
func pairwise(a, b *inner) {
	a.mu.Lock()
	b.mu.Lock()
	b.n = a.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// Local mutexes have no cross-function identity.
func scratch() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 1
}
