// Package wirebound is a fixture for the wirebound analyzer: envelope
// codec bypasses and unbounded delimiter reads.
package wirebound

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/wire"
)

func marshalBypass(e wire.Envelope) ([]byte, error) {
	return json.Marshal(e) // want `wire\.Envelope passed to json\.Marshal`
}

func unmarshalBypass(data []byte) (wire.Envelope, error) {
	var e wire.Envelope
	err := json.Unmarshal(data, &e) // want `wire\.Envelope passed to json\.Unmarshal`
	return e, err
}

func streamBypass(w io.Writer, e wire.Envelope) error {
	return json.NewEncoder(w).Encode(e) // want `wire\.Envelope passed to \(\*json\.Encoder\)\.Encode`
}

func decodeBypass(r io.Reader) (wire.Envelope, error) {
	var e wire.Envelope
	err := json.NewDecoder(r).Decode(&e) // want `wire\.Envelope passed to \(\*json\.Decoder\)\.Decode`
	return e, err
}

func unboundedLine(br *bufio.Reader) ([]byte, error) {
	return br.ReadBytes('\n') // want `unbounded \(\*bufio\.Reader\)\.ReadBytes`
}

func unboundedString(br *bufio.Reader) (string, error) {
	return br.ReadString('\n') // want `unbounded \(\*bufio\.Reader\)\.ReadString`
}

// Negative cases: the capped codec, non-envelope JSON, and bounded
// line readers are all fine.

func throughConn(c *wire.Conn, e wire.Envelope) error {
	return c.Send(e)
}

func otherJSON(v map[string]int) ([]byte, error) {
	return json.Marshal(v)
}

func boundedScanner(r io.Reader) bool {
	return bufio.NewScanner(r).Scan()
}

func boundedSlice(br *bufio.Reader) ([]byte, error) {
	return br.ReadSlice('\n')
}

func suppressed(br *bufio.Reader) ([]byte, error) {
	//lint:ignore wirebound fixture demonstrates the audited escape hatch
	return br.ReadBytes('\n')
}
