// Package alwayson is the nilsafemetric negative fixture: this package
// never nil-compares its bundle (it is constructed unconditionally, the
// coordinator's pattern), so bare field access is fine — the analyzer only
// polices bundles the code itself treats as optional.
package alwayson

import "repro/internal/telemetry"

type metrics struct {
	hits *telemetry.Counter
}

type server struct {
	met *metrics
}

func newServer(reg *telemetry.Registry) *server {
	return &server{met: &metrics{hits: reg.Counter("alwayson_hits_total", "Hits.").With()}}
}

func (s *server) handle() {
	s.met.hits.Inc()
}
