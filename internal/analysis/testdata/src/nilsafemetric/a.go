// Package nilsafemetric is a fixture for the nilsafemetric analyzer: an
// optional metrics bundle (nil-compared by the surrounding code) accessed
// both correctly (guards, nil-safe methods) and incorrectly (bare field
// reads).
package nilsafemetric

import "repro/internal/telemetry"

type metrics struct {
	hits *telemetry.Counter
	errs *telemetry.Counter
}

type server struct {
	met *metrics
}

// guardedThenBare mixes the regimes: the first access is guarded (and is
// the optionality evidence), the second dereferences bare.
func (s *server) guardedThenBare() {
	if s.met != nil {
		s.met.hits.Inc()
	}
	s.met.errs.Inc() // want `field errs read on optional metrics bundle s\.met without a nil guard`
}

// earlyReturn is the other sanctioned guard shape.
func (s *server) earlyReturn() {
	if s.met == nil {
		return
	}
	s.met.hits.Inc()
	s.met.errs.Inc()
}

// conjunction guards inside a compound condition count too.
func (s *server) conjunction(n int) {
	if s.met != nil && n > 0 {
		s.met.hits.Add(float64(n))
	}
}

// bump shows the sanctioned in-method pattern: bundle methods are the
// nil-safe surface, so field access inside them is fine.
func (m *metrics) bump() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

// viaMethod calls the bundle's own nil-safe method bare — always allowed.
func (s *server) viaMethod() {
	s.met.bump()
}

// constructedLocal is provably non-nil: a bundle fresh from a composite
// literal needs no guard.
func constructedLocal() {
	m := &metrics{}
	m.hits.Inc()
}

// reassigned shows a construction guard being revoked: after m is
// overwritten with a value of unknown nilness, bare access is flagged
// again.
func reassigned(other *metrics) {
	m := &metrics{}
	m.hits.Inc()
	m = other
	m.hits.Inc() // want `field hits read on optional metrics bundle m without a nil guard`
}

// Construction rule: instruments come from a Registry, never literals.
func handRolled() *telemetry.Counter {
	return &telemetry.Counter{} // want `telemetry\.Counter constructed outside a Registry`
}

func handRolledNew() *telemetry.Gauge {
	return new(telemetry.Gauge) // want `telemetry\.Gauge constructed outside a Registry`
}

func resolved(reg *telemetry.Registry) *telemetry.Counter {
	return reg.Counter("fixture_total", "Fixture counter.").With()
}

func suppressedLiteral() *telemetry.Counter {
	//lint:ignore nilsafemetric fixture demonstrates the audited escape hatch
	return &telemetry.Counter{}
}
