package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the interprocedural half of the suite: a two-pass facts
// engine mirroring golang.org/x/tools' go/analysis Facts. Pass 1 walks
// every loaded package once and records per-function facts (may-block,
// has-shutdown-signal, does-WaitGroup-accounting,
// returns-error-that-must-be-checked) keyed by the function's
// types.Object; a fixed-point pass then propagates those facts over the
// static call graph, so pass 2 — the analyzers — can ask "does anything
// this call reaches block?" instead of going blind one function deep.
//
// Two whole-load dataflow domains run on top of the boolean facts:
// lock-acquisition order (lockfacts.go — which locks a function may
// take, directly or transitively, assembled into a global ordering graph
// whose cycles the lockorder analyzer reports) and tainted lengths
// (taintfacts.go — integers read off the wire tracked to a fixed point
// through assignments, returns and arguments; unbounded arrivals at
// sizing sinks become taintalloc findings).
//
// The call graph is deliberately the cheap one: direct calls to named
// functions and methods resolved through types.Info. Calls through
// interfaces, function values and `go`/closure boundaries contribute no
// edges, which biases every fact toward false negatives — the right
// failure mode both for facts that *add* findings (lockio, errdrop) and
// for facts that *excuse* them (goleak's shutdown evidence is likewise
// only believed when it can be proven).

// FuncFacts are the propagated per-function facts.
type FuncFacts struct {
	// MayBlock: the function (or something it transitively calls)
	// performs blocking network I/O, a wire protocol call, or an
	// unconditional channel send. BlockVia names the evidence, e.g.
	// "net.Dial" or "(server).notify → channel send".
	MayBlock bool
	BlockVia string

	// ReturnsIOError: the function's last result is an error whose
	// plausible origin is I/O — it directly performs, or transitively
	// calls something that performs, a must-check I/O operation.
	// IOErrorKind is "file" for durability paths (os.File writes/fsync,
	// bufio flush, and everything layered on them, like the WAL) and
	// "net" for connection teardown and best-effort replies; "file" wins
	// when both contribute. IOErrorVia names the evidence chain.
	ReturnsIOError bool
	IOErrorKind    string
	IOErrorVia     string

	// ShutdownSignal: the function (transitively) selects or receives on
	// a done/ctx-style channel, or ranges over a channel — evidence that
	// a goroutine running it has a designed exit.
	ShutdownSignal bool

	// WGDone: the function (transitively) calls (*sync.WaitGroup).Done,
	// the other accepted goroutine-lifecycle evidence.
	WGDone bool

	// Acquires: identity keys of the locks this function may take,
	// directly or through its static call chain (see lockfacts.go).
	Acquires map[string]LockAcquire

	// callees are the static call edges used by the fixed point.
	callees []types.Object

	// lockEdges/heldCalls are the lock-order domain's scan-time evidence
	// (lockfacts.go); fieldAccesses are the field-access domain's
	// per-function records (fieldfacts.go); taint is the tainted-length
	// domain's per-function summary (taintfacts.go). All are consumed by
	// ComputeFacts.
	lockEdges     []lockEdge
	heldCalls     []heldCall
	fieldAccesses []fieldAccess
	taint         *taintSummary
}

// Facts indexes FuncFacts by function object. The zero/nil Facts is
// usable and knows nothing (every lookup returns nil). After
// ComputeFacts returns, a Facts value is read-only and safe to share
// across concurrently running analyzer passes.
type Facts struct {
	funcs map[types.Object]*FuncFacts
	// order holds the functions in declaration order (packages as
	// loaded, files name-sorted, decls top to bottom); the fixed points
	// iterate it so via chains are deterministic run to run.
	order []types.Object

	// LockCycles are the whole-load lock-ordering cycles (lockfacts.go),
	// reported by the lockorder analyzer.
	LockCycles []LockCycle
	// TaintFindings are the tainted-length sink reaches (taintfacts.go),
	// reported by the taintalloc analyzer.
	TaintFindings []TaintFinding
	// GuardFindings/MixFindings are the whole-load field-access verdicts
	// (fieldfacts.go), reported by the lockguard and atomicmix analyzers.
	GuardFindings []GuardFinding
	MixFindings   []MixFinding
}

// Cycles returns the whole-load lock-ordering cycles. Nil-safe.
func (f *Facts) Cycles() []LockCycle {
	if f == nil {
		return nil
	}
	return f.LockCycles
}

// Taint returns the whole-load tainted-length findings. Nil-safe.
func (f *Facts) Taint() []TaintFinding {
	if f == nil {
		return nil
	}
	return f.TaintFindings
}

// Guards returns the whole-load lockguard findings. Nil-safe.
func (f *Facts) Guards() []GuardFinding {
	if f == nil {
		return nil
	}
	return f.GuardFindings
}

// Mixes returns the whole-load atomicmix findings. Nil-safe.
func (f *Facts) Mixes() []MixFinding {
	if f == nil {
		return nil
	}
	return f.MixFindings
}

// Of returns the facts for fn, or nil when unknown. Nil-safe.
func (f *Facts) Of(fn types.Object) *FuncFacts {
	if f == nil || fn == nil {
		return nil
	}
	return f.funcs[fn]
}

// Len returns the number of functions with recorded facts.
func (f *Facts) Len() int {
	if f == nil {
		return 0
	}
	return len(f.funcs)
}

// PackageInfo is the slice of a loaded package the facts builder needs;
// drivers adapt their loader's packages into it.
type PackageInfo struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ComputeFacts runs fact extraction over every function declared in pkgs
// and propagates the facts over the static call graph to a fixed point.
// Packages without type information are skipped (their functions simply
// have no facts, and the analyzers degrade to their intraprocedural
// selves).
func ComputeFacts(pkgs []*PackageInfo) *Facts {
	facts := &Facts{funcs: make(map[types.Object]*FuncFacts)}
	guardDecls := make(map[string]string)
	for _, p := range pkgs {
		if p == nil || p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			scanGuardDecls(p.Info, f, guardDecls)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFacts{}
				scanBodyFacts(p.Info, fd.Body, ff)
				scanLockFacts(p.Info, fd, ff)
				ff.taint = scanTaintSummary(p.Info, fd)
				if !funcReturnsError(fn) {
					// Only error-returning functions can carry the
					// must-check obligation to their callers.
					ff.ReturnsIOError = false
					ff.IOErrorKind = ""
					ff.IOErrorVia = ""
				}
				facts.funcs[fn] = ff
				facts.order = append(facts.order, fn)
			}
		}
	}
	// Fixed point: every fact is a monotone boolean (plus a one-way
	// net→file kind upgrade), so iterating until quiescent terminates.
	// Iteration follows declaration order so the Via evidence chains are
	// stable run to run.
	for changed := true; changed; {
		changed = false
		for _, obj := range facts.order {
			ff := facts.funcs[obj]
			for _, callee := range ff.callees {
				cf := facts.funcs[callee]
				if cf == nil {
					continue
				}
				if cf.MayBlock && !ff.MayBlock {
					ff.MayBlock = true
					ff.BlockVia = shortFuncName(callee) + " → " + cf.BlockVia
					changed = true
				}
				if cf.ShutdownSignal && !ff.ShutdownSignal {
					ff.ShutdownSignal = true
					changed = true
				}
				if cf.WGDone && !ff.WGDone {
					ff.WGDone = true
					changed = true
				}
				if cf.ReturnsIOError && funcReturnsError(obj) {
					if !ff.ReturnsIOError {
						ff.ReturnsIOError = true
						ff.IOErrorKind = cf.IOErrorKind
						ff.IOErrorVia = shortFuncName(callee) + " → " + cf.IOErrorVia
						changed = true
					} else if ff.IOErrorKind == "net" && cf.IOErrorKind == "file" {
						ff.IOErrorKind = "file"
						changed = true
					}
				}
			}
		}
	}
	// The two whole-load dataflow domains run after the boolean facts:
	// lock acquisitions close over the call graph and the ordering graph
	// is mined for cycles, then length taint propagates through locals,
	// returns and arguments until quiescent.
	propagateLockAcquires(facts)
	facts.LockCycles = computeLockCycles(facts)
	facts.TaintFindings = computeTaintFindings(facts)
	facts.GuardFindings, facts.MixFindings = computeFieldFindings(facts, guardDecls)
	return facts
}

// scanBodyFacts extracts local (intraprocedural) fact evidence and call
// edges from one function body. Nested function literals are skipped:
// their bodies run later, on their own stack, under their own locks.
// goleak reuses it directly on spawned literal bodies.
func scanBodyFacts(info *types.Info, body *ast.BlockStmt, ff *FuncFacts) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The spawned call runs asynchronously: it contributes neither
			// blocking behavior nor shutdown evidence to this function.
			// Its arguments are still evaluated here.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.SendStmt:
			if !ff.MayBlock {
				ff.MayBlock = true
				ff.BlockVia = "channel send"
			}
		case *ast.SelectStmt:
			scanSelectFacts(info, n, ff, walk)
			return false
		case *ast.UnaryExpr:
			if isShutdownRecv(info, n) {
				ff.ShutdownSignal = true
			}
		case *ast.RangeStmt:
			if info != nil {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						// Ranging a channel ends when the channel is
						// closed — a designed exit.
						ff.ShutdownSignal = true
					}
				}
			}
		case *ast.CallExpr:
			scanCallFacts(info, n, ff)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// scanSelectFacts handles the one non-uniform construct: sends that sit
// in a select with a default case are non-blocking, and any receive comm
// case counts as shutdown evidence when its channel looks like a
// done/ctx signal.
func scanSelectFacts(info *types.Info, sel *ast.SelectStmt, ff *FuncFacts, walk func(ast.Node) bool) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			if !hasDefault && !ff.MayBlock {
				ff.MayBlock = true
				ff.BlockVia = "channel send"
			}
		case *ast.ExprStmt:
			if ue, ok := comm.X.(*ast.UnaryExpr); ok && isShutdownRecv(info, ue) {
				ff.ShutdownSignal = true
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if ue, ok := rhs.(*ast.UnaryExpr); ok && isShutdownRecv(info, ue) {
					ff.ShutdownSignal = true
				}
			}
		}
		for _, st := range cc.Body {
			ast.Inspect(st, walk)
		}
	}
}

// scanCallFacts classifies one call: intrinsic blocking I/O, intrinsic
// must-check I/O error, WaitGroup accounting, or a call-graph edge to a
// module function whose facts the fixed point will consult.
func scanCallFacts(info *types.Info, call *ast.CallExpr, ff *FuncFacts) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if desc, ok := intrinsicMayBlock(fn); ok && !ff.MayBlock {
		ff.MayBlock = true
		ff.BlockVia = desc
	}
	if kind, desc, ok := intrinsicIOError(fn); ok {
		if !ff.ReturnsIOError || (ff.IOErrorKind == "net" && kind == "file") {
			ff.ReturnsIOError = true
			ff.IOErrorKind = kind
			if ff.IOErrorVia == "" {
				ff.IOErrorVia = desc
			}
		}
	}
	if isWaitGroupMethod(fn, "Done") {
		ff.WGDone = true
	}
	ff.callees = append(ff.callees, fn)
}

// calleeFunc resolves a call expression to the named function or method
// it statically invokes, or nil (interface calls stay resolvable — the
// *types.Func is the interface method — but calls through function
// values and conversions do not).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isShutdownRecv reports whether ue is `<-x` with x a plausible shutdown
// signal: a call to a context's Done method, or a channel expression
// whose name suggests lifecycle ("done", "stop", "quit", "closing", …).
func isShutdownRecv(info *types.Info, ue *ast.UnaryExpr) bool {
	if ue.Op.String() != "<-" {
		return false
	}
	x := ast.Unparen(ue.X)
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	return doneishName(exprString(x))
}

// doneishChanNames are the lifecycle-channel spellings isShutdownRecv
// accepts, matched case-insensitively against the last path element.
var doneishChanNames = []string{"done", "stop", "quit", "close", "shut", "exit", "cancel"}

func doneishName(s string) bool {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	if s == "" {
		return false
	}
	s = strings.ToLower(s)
	for _, frag := range doneishChanNames {
		if strings.Contains(s, frag) {
			return true
		}
	}
	return false
}

// isWaitGroupMethod reports whether fn is (*sync.WaitGroup).<name>.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedType(sig.Recv().Type(), "sync", "WaitGroup")
}

// intrinsicMayBlock seeds the blocking facts at the API boundary lockio
// already enforces directly: net dials/listens, net.Conn-family I/O
// methods, and wire.Conn protocol calls. File I/O is deliberately
// excluded — the WAL holds its lock across fsync by design, and lockio's
// charter is network I/O and channel sends.
func intrinsicMayBlock(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	switch {
	case pkg.Path() == "net" && !hasRecv:
		switch fn.Name() {
		case "Dial", "DialTimeout", "Listen":
			return "net." + fn.Name(), true
		}
	case pkg.Path() == "net" && hasRecv:
		if netIOMethods[fn.Name()] {
			if _, tn, ok := namedIn(sig.Recv().Type()); ok {
				return "(net." + tn + ")." + fn.Name(), true
			}
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return "(net interface)." + fn.Name(), true
			}
		}
	case pkg.Path() == wirePkgPath && hasRecv:
		if wireIOMethods[fn.Name()] {
			if _, tn, ok := namedIn(sig.Recv().Type()); ok && tn == "Conn" {
				return "(wire.Conn)." + fn.Name(), true
			}
		}
	}
	return "", false
}

// intrinsicIOError classifies stdlib-boundary methods whose error result
// must not be dropped, returning the path kind ("file" for durability,
// "net" for connection teardown/replies) and a short description.
func intrinsicIOError(fn *types.Func) (kind, desc string, ok bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil || !signatureReturnsError(sig) {
		return "", "", false
	}
	recvPkg, recvName, named := namedIn(sig.Recv().Type())
	if !named {
		// Interface receivers (io.Closer and friends) still carry the
		// obligation; the kind defaults to the lenient net bucket.
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface && closeFlushSync(fn.Name()) {
			return "net", "(" + pkg.Name() + " interface)." + fn.Name(), true
		}
		return "", "", false
	}
	display := "(" + pkg.Name() + "." + recvName + ")." + fn.Name()
	switch {
	case recvPkg == "os" && recvName == "File":
		switch fn.Name() {
		case "Close", "Sync", "Truncate", "Write", "WriteString", "WriteAt":
			return "file", display, true
		}
	case recvPkg == "bufio" && recvName == "Writer" && fn.Name() == "Flush":
		return "file", display, true
	case closeFlushSync(fn.Name()) && isStdlibPath(recvPkg):
		// Generic stdlib Close/Flush/Sync returning error: net-ish
		// teardown. Module types are left to their own facts, which
		// refine the kind from the evidence inside their bodies.
		return "net", display, true
	}
	return "", "", false
}

func closeFlushSync(name string) bool {
	return name == "Close" || name == "Flush" || name == "Sync"
}

// isStdlibPath is the crude but sufficient test: module import paths
// start with the module name; stdlib paths are bare.
func isStdlibPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".") && first != "repro"
}

// signatureReturnsError reports whether sig's last result is error.
func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// funcReturnsError reports whether obj is a function whose final result
// is error.
func funcReturnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return signatureReturnsError(sig)
}

// shortFuncName renders fn for diagnostics: "remote.Dial" for package
// functions, "(Store).Close" for methods.
func shortFuncName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, tn, ok := namedIn(sig.Recv().Type()); ok {
			return "(" + tn + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
