// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest:
//
//	_ = time.Now() // want `call to time\.Now`
//
// A want comment holds one or more backquoted or double-quoted regular
// expressions; each must match exactly one diagnostic reported on that
// line, and every diagnostic must be matched by a want. Fixtures may
// import both standard-library packages and real repro/... packages (the
// loader resolves them against the enclosing module), so rules about
// types like wire.Conn or telemetry.Counter are tested against the real
// types, not mocks.
//
// Suppression comments (//lint:ignore <analyzer> <reason>) are honored
// exactly as the wiscape-lint driver honors them, so the convention
// itself is testable in fixtures.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRE extracts the quoted patterns from a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package (an import path relative to
// testdata/src) and reports any mismatch between the analyzer's
// diagnostics and the fixtures' want comments as test failures.
func Run(t *testing.T, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	modDir, modPath, err := findModule()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld := load.New()
	ld.ModulePath = modPath
	ld.ModuleDir = modDir
	ld.Overrides = overrides(src)

	// Pass 1: load every fixture (and, transitively, every module package
	// the fixtures import), then compute interprocedural facts over the
	// whole load — the same two-pass shape as the wiscape-lint driver.
	loaded := make(map[string]*load.Package, len(fixturePkgs))
	for _, pkgPath := range fixturePkgs {
		p, err := ld.Load(pkgPath)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
			continue
		}
		for _, perr := range p.ParseErrors {
			t.Errorf("%s: fixture %s: parse error: %v", a.Name, pkgPath, perr)
		}
		for _, terr := range p.TypeErrors {
			// Fixtures must type-check: a broken fixture silently weakens
			// the suite (analyzers degrade on missing type info).
			t.Errorf("%s: fixture %s: type error: %v", a.Name, pkgPath, terr)
		}
		loaded[pkgPath] = p
	}
	facts := analysis.ComputeFacts(packageInfos(ld))

	// Pass 2: run the analyzer per fixture with the shared facts.
	for _, pkgPath := range fixturePkgs {
		p := loaded[pkgPath]
		if p == nil {
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				if !analysis.Suppressed(ld.Fset, p.Files, a.Name, d.Pos) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, pkgPath, err)
			continue
		}
		check(t, a.Name, ld.Fset, p, diags)
	}
}

// packageInfos adapts every fully-checked package the loader has seen
// into the facts engine's input shape.
func packageInfos(ld *load.Loader) []*analysis.PackageInfo {
	pkgs := ld.Packages()
	infos := make([]*analysis.PackageInfo, 0, len(pkgs))
	for _, p := range pkgs {
		infos = append(infos, &analysis.PackageInfo{Files: p.Files, Pkg: p.Pkg, Info: p.Info})
	}
	return infos
}

// want is one expected-diagnostic pattern at a file line.
type want struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, name string, fset *token.FileSet, p *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" -> patterns
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: %s: bad want pattern %q: %v", name, key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s: unexpected diagnostic: %s", name, key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: %s: expected diagnostic matching %q, got none", name, k, w.re)
			}
		}
	}
}

// overrides maps every fixture directory under src onto its import path
// relative to src ("nodeterm", "nodeterm/clock", ...).
func overrides(src string) map[string]string {
	m := make(map[string]string)
	_ = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return nil
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(src, path)
				if err == nil && rel != "." {
					m[filepath.ToSlash(rel)] = path
				}
				break
			}
		}
		return nil
	})
	return m
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (dir, modPath string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
