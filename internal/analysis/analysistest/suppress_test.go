package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSuppressionEdgeCases pins the exact contract of //lint:ignore,
// shared by every analyzer and both drivers: the comment must name the
// right analyzer, must carry a reason, and must sit on the flagged line
// or the line immediately above — nothing looser counts.
func TestSuppressionEdgeCases(t *testing.T) {
	const marker = "sink()"
	cases := []struct {
		name       string
		body       string // function body lines; diagnostic anchors at marker
		suppressed bool
	}{
		{
			name:       "end-of-line comment suppresses",
			body:       "sink() //lint:ignore testcheck audited: fixture exercises the sink\n",
			suppressed: true,
		},
		{
			name:       "line-above comment suppresses",
			body:       "//lint:ignore testcheck audited: fixture exercises the sink\nsink()\n",
			suppressed: true,
		},
		{
			name:       "wrong analyzer name does not suppress",
			body:       "//lint:ignore othercheck audited: fixture exercises the sink\nsink()\n",
			suppressed: false,
		},
		{
			name:       "missing reason does not suppress",
			body:       "//lint:ignore testcheck\nsink()\n",
			suppressed: false,
		},
		{
			name:       "missing reason at end of line does not suppress",
			body:       "sink() //lint:ignore testcheck\n",
			suppressed: false,
		},
		{
			name:       "two lines above is too far",
			body:       "//lint:ignore testcheck audited: fixture exercises the sink\n_ = 0\nsink()\n",
			suppressed: false,
		},
		{
			name:       "line below does not suppress",
			body:       "sink()\n//lint:ignore testcheck audited: fixture exercises the sink\n",
			suppressed: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\nfunc sink() {}\n\nfunc f() {\n" + tc.body + "}\n"
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
			if err != nil {
				t.Fatalf("fixture does not parse: %v", err)
			}
			pos := markerPos(t, fset, f, src, marker)
			got := analysis.Suppressed(fset, []*ast.File{f}, "testcheck", pos)
			if got != tc.suppressed {
				t.Errorf("Suppressed = %v, want %v\nsource:\n%s", got, tc.suppressed, src)
			}
		})
	}
}

// markerPos returns the position of the last occurrence of marker in
// src — the call site a diagnostic would anchor at, not the declaration.
func markerPos(t *testing.T, fset *token.FileSet, f *ast.File, src, marker string) token.Pos {
	t.Helper()
	off := strings.LastIndex(src, marker)
	if off < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	return fset.File(f.Pos()).Pos(off)
}
