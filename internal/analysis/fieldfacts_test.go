package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The domain-level tests exercise Guards()/Mixes() below the analyzer
// layer: unlike the analysistest fixtures, nothing here is filtered by
// //lint:ignore, so the suppressed sites must still be present as raw
// findings.

func TestFieldFactsGuardDomain(t *testing.T) {
	_, facts, _ := loadFixtureFacts(t, "lockguard", "lockguard/box")
	guards := facts.Guards()
	wantFuncs := []string{
		"(counter).racyBump",    // seeded race: bare write against three mu-guarded sites
		"(table).peek",          // caller-inherited guard on bump, peek is the minority
		"(annotated).racyTouch", // declared //wiscape:guardedby, no supermajority needed
		"(annotated).audited",   // suppressed at the analyzer layer, visible here
		"lockguard.racyLen",     // cross-package: guard association lives in box
	}
	if len(guards) != len(wantFuncs) {
		for _, g := range guards {
			t.Logf("finding: %s", g.Message)
		}
		t.Fatalf("Guards() = %d findings, want %d", len(guards), len(wantFuncs))
	}
	for _, fn := range wantFuncs {
		found := false
		for _, g := range guards {
			if strings.Contains(g.Message, fn) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no guard finding mentions %s", fn)
		}
	}
	if n := len(facts.Mixes()); n != 0 {
		t.Errorf("Mixes() over the lockguard fixture = %d findings, want 0", n)
	}
}

func TestFieldFactsMixDomain(t *testing.T) {
	_, facts, _ := loadFixtureFacts(t, "atomicmix", "atomicmix/ctr")
	mixes := facts.Mixes()
	wantFuncs := []string{
		"(stats).report",        // plain read against hit's atomic increments
		"atomicmix.racyReset",   // cross-package plain write
		"atomicmix.auditedPeek", // suppressed at the analyzer layer, visible here
	}
	if len(mixes) != len(wantFuncs) {
		for _, m := range mixes {
			t.Logf("finding: %s", m.Message)
		}
		t.Fatalf("Mixes() = %d findings, want %d", len(mixes), len(wantFuncs))
	}
	for _, fn := range wantFuncs {
		found := false
		for _, m := range mixes {
			if strings.Contains(m.Message, fn) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no mix finding mentions %s", fn)
		}
	}
	// The typed-atomic pointer handoff (&g.v to a helper), the all-atomic
	// counter, the constructor store and the post-Wait read must all stay
	// out of the verdicts.
	for _, m := range mixes {
		for _, silent := range []string{").v", ").misses", ").done", "newStats"} {
			if strings.Contains(m.Message, silent) {
				t.Errorf("escaped shape leaked into findings: %s", m.Message)
			}
		}
	}
	if n := len(facts.Guards()); n != 0 {
		t.Errorf("Guards() over the atomicmix fixture = %d findings, want 0", n)
	}
}

func TestFieldFactsNilSafe(t *testing.T) {
	var facts *analysis.Facts
	if facts.Guards() != nil || facts.Mixes() != nil {
		t.Fatal("nil Facts must know nothing")
	}
}
