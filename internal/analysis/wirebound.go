package analysis

import (
	"go/ast"
)

// Wirebound enforces the bounded-input invariant: every byte stream the
// process does not control (peer connections, on-disk journals that may be
// corrupt or hostile) must be read through a size-capped path. wire.Conn
// owns the protocol's cap — Send refuses frames over MaxMessageBytes and
// Recv reads through readLineLimited — so the rest of the codebase must
// not re-implement the codec around it.
//
// Two rules, both exempting package wire itself (the one place the raw
// codec legitimately lives):
//
//  1. wire.Envelope must not be JSON-encoded or -decoded directly
//     (json.Marshal/Unmarshal, Encoder.Encode/Decoder.Decode). A bare
//     decode has no size cap, so one oversized frame can balloon memory;
//     a bare encode skips the MaxMessageBytes refusal, producing frames
//     the receiving Conn will reject after the bytes already crossed the
//     network. Route envelopes through wire.Conn.
//
//  2. No (*bufio.Reader).ReadBytes / ReadString on any input: both
//     accumulate until the delimiter with no bound, so a corrupt WAL line
//     or a hostile peer that never sends '\n' grows the buffer without
//     limit. Use bufio.Scanner (bounded token size) or a capped
//     ReadSlice loop like wire's readLineLimited.
var Wirebound = &Analyzer{
	Name: "wirebound",
	Doc: "wire.Envelope moves only through wire.Conn's size-capped codec, and " +
		"delimiter reads of untrusted input must be bounded",
	Run: runWirebound,
}

func runWirebound(pass *Pass) error {
	if pass.Pkg.Path() == wirePkgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pass.wireboundCheck(call)
			return true
		})
	}
	return nil
}

func (p *Pass) wireboundCheck(call *ast.CallExpr) {
	// Rule 1a: json.Marshal / json.Unmarshal with an Envelope argument.
	if pkgPath, name, ok := p.pkgFunc(call); ok {
		if pkgPath == "encoding/json" && (name == "Marshal" || name == "Unmarshal" || name == "MarshalIndent") {
			for _, arg := range call.Args {
				if namedType(p.typeOf(arg), wirePkgPath, "Envelope") {
					p.Reportf(call.Pos(),
						"wire.Envelope passed to json.%s: MaxMessageBytes is not enforced outside wire.Conn; use Conn.Send/Recv",
						name)
					return
				}
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath, typeName, ok := namedIn(p.typeOf(sel.X))
	if !ok {
		return
	}
	// Rule 1b: json.Encoder.Encode / json.Decoder.Decode on an Envelope.
	if pkgPath == "encoding/json" &&
		((typeName == "Encoder" && sel.Sel.Name == "Encode") ||
			(typeName == "Decoder" && sel.Sel.Name == "Decode")) {
		for _, arg := range call.Args {
			if namedType(p.typeOf(arg), wirePkgPath, "Envelope") {
				p.Reportf(call.Pos(),
					"wire.Envelope passed to (*json.%s).%s: MaxMessageBytes is not enforced outside wire.Conn; use Conn.Send/Recv",
					typeName, sel.Sel.Name)
				return
			}
		}
	}
	// Rule 2: unbounded delimiter reads.
	if pkgPath == "bufio" && typeName == "Reader" &&
		(sel.Sel.Name == "ReadBytes" || sel.Sel.Name == "ReadString") {
		p.Reportf(call.Pos(),
			"unbounded (*bufio.Reader).%s: the line grows without limit on corrupt or hostile input; use a capped ReadSlice loop or bufio.Scanner",
			sel.Sel.Name)
	}
}
