package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the lock-order fact domain: per-function evidence about
// which locks a function acquires and in what order, assembled by
// ComputeFacts into a whole-load lock-ordering graph whose cycles the
// lockorder analyzer reports as potential deadlocks.
//
// Locks are keyed by identity, not spelling: a sync.Mutex/RWMutex struct
// field is "(pkg.Type).field" no matter which receiver variable it is
// reached through, and a package-level mutex is "pkg.var". That choice
// deliberately conflates different instances of the same type — locking
// shardA.mu then shardB.mu contributes no edge (self-edges are dropped),
// so iterating a slice of shards can never manufacture a cycle, at the
// cost of missing genuine multi-instance deadlocks. Local mutex
// variables, invisible to any other function, carry no identity and are
// ignored entirely.
//
// RLock is treated exactly like Lock: a writer blocked on an RWMutex
// stalls later readers, so reader/writer distinctions do not break an
// ordering cycle.

// LockAcquire records that a function may take the identified lock,
// directly or through its static call chain.
type LockAcquire struct {
	// Pos is the position of the underlying Lock/RLock call.
	Pos token.Pos
	// Via names the call chain from the function to the acquisition;
	// empty when the function locks in its own body.
	Via string
}

// LockCycle is one lock-ordering cycle found over the whole load.
type LockCycle struct {
	// Pos anchors the diagnostic: the acquisition site of the cycle's
	// first edge.
	Pos token.Pos
	// Message names every edge of the cycle with the function (and call
	// chain) that establishes it. It contains no positions, so the
	// lintout baseline — which matches on message text — survives
	// unrelated line drift.
	Message string
}

// lockEdge is one ordered pair observed directly in a body: from was
// held when to was acquired at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// heldCall is a call made while locks were held; joined with the
// callee's transitive Acquires it yields cross-function ordering edges.
// The same records double as the call-context edges of the field-access
// domain (fieldfacts.go), which is why calls with an empty held set are
// recorded too: a single unlocked call site is what breaks a "callers
// always hold mu" guarantee.
type heldCall struct {
	held   []string // identity keys held at the call site, deduplicated
	callee types.Object
	pos    token.Pos
	// orderExempt excludes this edge from the lock-ordering graph:
	// deferred and go'd calls run outside the statement's lock context
	// (PR 9 deliberately contributes no ordering edges for them), but the
	// field-access domain still needs the call edge for its must-hold
	// caller intersection.
	orderExempt bool
}

// scanLockFacts extracts lock-order and field-access evidence from one
// declared function body into ff: the locks it acquires, the direct
// ordering edges, the calls it makes (with the held set at each site),
// and every struct-field read/write with its flow-sensitive held set.
func scanLockFacts(info *types.Info, fd *ast.FuncDecl, ff *FuncFacts) {
	if info == nil || fd.Body == nil {
		return
	}
	w := &lockFactsWalker{
		info:     info,
		ff:       ff,
		fresh:    freshLocals(info, fd.Body),
		teardown: teardownFuncName(fd.Name.Name),
	}
	w.walkBlock(fd.Body, nil)
}

// heldLock is one entry of the walker's ordered held-lock list.
type heldLock struct {
	id   string // identity key, e.g. "(cluster.Shard).mu"
	text string // source spelling, e.g. "sh.mu" — what the Unlock matches
}

type lockFactsWalker struct {
	info *types.Info
	ff   *FuncFacts
	// fresh holds the local variables born from a composite literal or
	// new() in this body: accesses through them are constructor-time and
	// escape the lockguard/atomicmix rules (fieldfacts.go).
	fresh map[*types.Var]bool
	// teardown marks the whole body as teardown (Close/Stop/Shutdown
	// methods); afterWait flips once a (*sync.WaitGroup).Wait call has
	// been seen, marking everything after it as post-Wait teardown.
	teardown  bool
	afterWait bool
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// walkBlock threads the ordered held-lock list through sequential
// statements, forking copies into branches — the same over-approximated
// reachability as lockio's lock sets, but order-preserving.
func (w *lockFactsWalker) walkBlock(b *ast.BlockStmt, held []heldLock) []heldLock {
	for _, s := range b.List {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *lockFactsWalker) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkBlock(s, held)
	case *ast.ExprStmt:
		if id, text, op, ok := w.lockMethodCall(s.X); ok {
			switch op {
			case "Lock", "RLock":
				return w.acquire(held, id, text, s.Pos())
			default: // Unlock, RUnlock
				return release(held, text)
			}
		}
		if w.isWaitCall(s.X) {
			// Everything from here on runs after the WaitGroup drained:
			// plain reads of worker-written state are the documented
			// teardown idiom, not a race.
			w.afterWait = true
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the body
		// (no state change); other deferred calls run at function exit,
		// outside this statement's lock context — they contribute no
		// ordering edge, but the field domain records the call (with the
		// held set at the defer statement approximating the exit-time
		// set) and the argument/receiver reads evaluated here and now.
		if _, _, _, ok := w.lockMethodCall(s.Call); !ok {
			w.scanDetachedCall(s.Call, held, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine acquires its locks later, on its own
		// stack; they do not order against locks held here — and it runs
		// without them, so its call edge carries an empty held set (which
		// is exactly what stops the field domain from believing a
		// goroutine body inherits its spawner's locks). Arguments are
		// still evaluated here, under the current set.
		w.scanDetachedCall(s.Call, nil, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkBlock(s.Body, cloneHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		body := w.walkBlock(s.Body, cloneHeld(held))
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkBlock(s.Body, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Tag, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			branch := cloneHeld(held)
			for _, e := range cc.List {
				w.scanExpr(e, branch)
			}
			for _, st := range cc.Body {
				branch = w.walkStmt(st, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			branch := cloneHeld(held)
			for _, st := range c.(*ast.CaseClause).Body {
				branch = w.walkStmt(st, branch)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := cloneHeld(held)
			if cc.Comm != nil {
				branch = w.walkStmt(cc.Comm, branch)
			}
			for _, st := range cc.Body {
				branch = w.walkStmt(st, branch)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.writeTarget(e, held)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.writeTarget(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	}
	return held
}

// acquire records the new lock: an Acquires entry, one ordering edge per
// currently-held lock, and an appended held entry.
func (w *lockFactsWalker) acquire(held []heldLock, id, text string, pos token.Pos) []heldLock {
	if w.ff.Acquires == nil {
		w.ff.Acquires = make(map[string]LockAcquire)
	}
	if _, ok := w.ff.Acquires[id]; !ok {
		w.ff.Acquires[id] = LockAcquire{Pos: pos}
	}
	for _, h := range held {
		if h.id != id {
			w.ff.lockEdges = append(w.ff.lockEdges, lockEdge{from: h.id, to: id, pos: pos})
		}
	}
	return append(cloneHeld(held), heldLock{id: id, text: text})
}

// release drops the most recently acquired lock matching the Unlock's
// textual spelling.
func release(held []heldLock, text string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].text == text {
			out := cloneHeld(held)
			return append(out[:i], out[i+1:]...)
		}
	}
	return held
}

// scanExpr records every resolvable call inside e (with the held set at
// the site — empty sets included, for the field domain's caller
// intersection) and every struct-field read, distinguishing sync/atomic
// accesses from plain ones. Function literals are their own scope and
// not descended into.
func (w *lockFactsWalker) scanExpr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			return w.scanCall(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &x.f of a sync/atomic-typed field is the by-pointer
				// handoff the atomic API works through, not a plain read.
				if key, atomicTyped, ok := w.fieldSel(n.X); ok && atomicTyped {
					w.recordAccess(n.X, key, held, accessAtomic)
					w.scanExpr(selBase(n.X), held)
					return false
				}
			}
		case *ast.SelectorExpr:
			if key, _, ok := w.fieldSel(n); ok {
				// Record the read and keep descending: x in x.f may be a
				// field itself.
				w.recordAccess(n, key, held, 0)
			}
		}
		return true
	})
}

// scanCall handles one call discovered during scanExpr's walk. It
// returns false when it has walked the interesting children itself.
func (w *lockFactsWalker) scanCall(call *ast.CallExpr, held []heldLock) bool {
	fn := calleeFunc(w.info, call)
	if fn == nil || fn.Pkg() == nil {
		return true
	}
	switch fn.Pkg().Path() {
	case "sync/atomic":
		w.scanAtomicCall(call, fn, held)
		return false
	case "sync":
		// Lock/Unlock are consumed by walkStmt; other sync methods
		// (cond.Wait, once.Do arguments…) contribute no call edge.
		return true
	}
	w.recordCallEdge(call, held, false)
	return true
}

// scanAtomicCall records the field accesses of one sync/atomic call. Two
// shapes: atomic.AddInt64(&s.n, 1) marks the &field argument atomic;
// s.n.Load() (typed atomics) marks the receiver field.
func (w *lockFactsWalker) scanAtomicCall(call *ast.CallExpr, fn *types.Func, held []heldLock) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil {
			if key, _, okF := w.fieldSel(sel.X); okF {
				w.recordAccess(sel.X, key, held, accessAtomic)
			}
			w.scanExpr(selBase(sel.X), held)
		}
	}
	for _, a := range call.Args {
		if ue, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if key, _, okF := w.fieldSel(ue.X); okF {
				w.recordAccess(ue.X, key, held, accessAtomic)
				w.scanExpr(selBase(ue.X), held)
				continue
			}
		}
		w.scanExpr(a, held)
	}
}

// scanDetachedCall handles a call whose execution is detached from the
// statement that names it (defer/go): the call edge carries edgeHeld —
// the held set approximating the callee's eventual run context — while
// receiver and argument expressions are evaluated here and now, under
// readHeld. Both edges are order-exempt (PR 9's lockorder graph ignores
// them), and a deferred/spawned sync/atomic call still records its
// atomic field access rather than a plain receiver read.
func (w *lockFactsWalker) scanDetachedCall(call *ast.CallExpr, edgeHeld, readHeld []heldLock) {
	if fn := calleeFunc(w.info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		w.scanAtomicCall(call, fn, readHeld)
		return
	}
	w.recordCallEdge(call, edgeHeld, true)
	w.scanExpr(call.Fun, readHeld)
	for _, a := range call.Args {
		w.scanExpr(a, readHeld)
	}
}

// recordCallEdge appends the resolvable callee of call to heldCalls with
// the (deduplicated) held set.
func (w *lockFactsWalker) recordCallEdge(call *ast.CallExpr, held []heldLock, orderExempt bool) {
	fn := calleeFunc(w.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "sync" || fn.Pkg().Path() == "sync/atomic" {
		return
	}
	w.ff.heldCalls = append(w.ff.heldCalls, heldCall{held: dedupHeldIDs(held), callee: fn, pos: call.Pos(), orderExempt: orderExempt})
}

// dedupHeldIDs flattens the ordered held list to its distinct identity
// keys, preserving acquisition order.
func dedupHeldIDs(held []heldLock) []string {
	if len(held) == 0 {
		return nil
	}
	ids := make([]string, 0, len(held))
	seen := make(map[string]bool, len(held))
	for _, h := range held {
		if !seen[h.id] {
			seen[h.id] = true
			ids = append(ids, h.id)
		}
	}
	return ids
}

// writeTarget records the assignment target e as a field write when it
// resolves to one — including writes through a field-held container
// (s.m[k] = v mutates what s.m guards) — and scans the rest for reads.
func (w *lockFactsWalker) writeTarget(e ast.Expr, held []heldLock) {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if key, _, ok := w.fieldSel(t); ok {
			w.recordAccess(t, key, held, accessWrite)
			w.scanExpr(selBase(t), held)
			return
		}
	case *ast.IndexExpr:
		w.scanExpr(t.Index, held)
		if key, _, ok := w.fieldSel(t.X); ok {
			w.recordAccess(t.X, key, held, accessWrite)
			w.scanExpr(selBase(t.X), held)
			return
		}
		w.scanExpr(t.X, held)
		return
	case *ast.StarExpr:
		// *s.p = v writes through the pointer: the field itself is read.
		w.scanExpr(t.X, held)
		return
	}
	w.scanExpr(e, held)
}

// isWaitCall reports whether e is a (*sync.WaitGroup).Wait call.
func (w *lockFactsWalker) isWaitCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(w.info, call)
	return fn != nil && isWaitGroupMethod(fn, "Wait")
}

// lockMethodCall recognizes e as a call to a sync package lock method
// (Lock/RLock/Unlock/RUnlock) and resolves the lock operand to its
// identity key and source spelling.
func (w *lockFactsWalker) lockMethodCall(e ast.Expr) (id, text, op string, ok bool) {
	call, okCall := ast.Unparen(e).(*ast.CallExpr)
	if !okCall {
		return "", "", "", false
	}
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	fn, okFn := w.info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	id = w.lockIdentity(sel)
	text = exprString(sel.X)
	if id == "" || text == "" {
		return "", "", "", false
	}
	return id, text, op, true
}

// lockIdentity keys a lock by what it is rather than how it is spelled:
// struct fields as "(pkg.Type).field", package-level mutexes as
// "pkg.var". Everything else — above all local mutex variables — has no
// cross-function identity and returns "".
func (w *lockFactsWalker) lockIdentity(sel *ast.SelectorExpr) string {
	// An embedded mutex (s.Lock() with the sync.Mutex promoted) selects
	// the method through one or more field hops; the last hop's owner is
	// the identity.
	if ms, ok := w.info.Selections[sel]; ok && len(ms.Index()) > 1 {
		return fieldPathKey(ms.Recv(), ms.Index()[:len(ms.Index())-1])
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if fs, ok := w.info.Selections[x]; ok {
			if v, okVar := fs.Obj().(*types.Var); okVar && v.IsField() {
				return fieldPathKey(fs.Recv(), fs.Index())
			}
			return ""
		}
		if v, okVar := w.info.Uses[x.Sel].(*types.Var); okVar && pkgLevelVar(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, okVar := w.info.Uses[x].(*types.Var); okVar && pkgLevelVar(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// fieldPathKey walks a selection index path (which steps through
// promoted fields) to its final field and keys it by the named type that
// holds it: "(pkg.Type).field".
func fieldPathKey(recv types.Type, index []int) string {
	t := recv
	for i, fi := range index {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok || fi >= st.NumFields() {
			return ""
		}
		f := st.Field(fi)
		if i == len(index)-1 {
			n, okNamed := deref(t).(*types.Named)
			if !okNamed {
				return ""
			}
			obj := n.Obj()
			if obj == nil || obj.Pkg() == nil {
				return ""
			}
			return "(" + obj.Pkg().Name() + "." + obj.Name() + ")." + f.Name()
		}
		t = f.Type()
	}
	return ""
}

func pkgLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// propagateLockAcquires closes Acquires over the static call graph:
// whatever a callee may acquire, its caller may acquire too, with the
// call chain recorded for diagnostics. Monotone (keys are only added),
// so iterating to quiescence terminates.
func propagateLockAcquires(facts *Facts) {
	for changed := true; changed; {
		changed = false
		for _, obj := range facts.order {
			ff := facts.funcs[obj]
			for _, callee := range ff.callees {
				cf := facts.funcs[callee]
				if cf == nil || callee == obj || len(cf.Acquires) == 0 {
					continue
				}
				for _, k := range sortedLockKeys(cf.Acquires) {
					if _, ok := ff.Acquires[k]; ok {
						continue
					}
					acq := cf.Acquires[k]
					via := shortFuncName(callee)
					if acq.Via != "" {
						via += " → " + acq.Via
					}
					if ff.Acquires == nil {
						ff.Acquires = make(map[string]LockAcquire)
					}
					ff.Acquires[k] = LockAcquire{Pos: acq.Pos, Via: via}
					changed = true
				}
			}
		}
	}
}

func sortedLockKeys(m map[string]LockAcquire) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockGraphEdge is one edge of the assembled whole-load ordering graph.
type lockGraphEdge struct {
	from, to string
	pos      token.Pos
	desc     string // "in (gateway).addRoute" or "... via call to (Table).Bump"
}

// computeLockCycles assembles the global lock-ordering graph — direct
// in-body edges plus (held locks × callee's transitive acquisitions) at
// every call made under a lock — and reports its cycles. Each cycle is
// reported once, at the acquisition site of the first edge of the
// shortest cycle through its lexicographically smallest lock.
func computeLockCycles(facts *Facts) []LockCycle {
	var edges []lockGraphEdge
	seen := make(map[[2]string]bool)
	add := func(from, to string, pos token.Pos, desc string) {
		if from == to {
			return
		}
		k := [2]string{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, lockGraphEdge{from: from, to: to, pos: pos, desc: desc})
	}
	for _, obj := range facts.order {
		ff := facts.funcs[obj]
		for _, e := range ff.lockEdges {
			add(e.from, e.to, e.pos, "in "+shortFuncName(obj))
		}
		for _, hc := range ff.heldCalls {
			// Empty-held and defer/go edges exist for the field-access
			// domain's caller intersection only; they contribute no
			// ordering edge (nothing is ordered, or the callee runs
			// outside this statement's lock context).
			if len(hc.held) == 0 || hc.orderExempt {
				continue
			}
			cf := facts.funcs[hc.callee]
			if cf == nil || len(cf.Acquires) == 0 {
				continue
			}
			for _, k := range sortedLockKeys(cf.Acquires) {
				acq := cf.Acquires[k]
				desc := "in " + shortFuncName(obj) + " via call to " + shortFuncName(hc.callee)
				if acq.Via != "" {
					desc += " → " + acq.Via
				}
				for _, h := range hc.held {
					add(h, k, hc.pos, desc)
				}
			}
		}
	}

	adj := make(map[string][]int)
	nodeSet := make(map[string]bool)
	for i, e := range edges {
		adj[e.from] = append(adj[e.from], i)
		nodeSet[e.from] = true
		nodeSet[e.to] = true
	}
	for _, idxs := range adj {
		sort.Slice(idxs, func(a, b int) bool { return edges[idxs[a]].to < edges[idxs[b]].to })
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles []LockCycle
	for _, s := range nodes {
		path := shortestLockCycle(s, adj, edges)
		if path == nil {
			continue
		}
		// Report each cycle only at its smallest lock, so a two-lock
		// inversion yields one finding, not two.
		minNode := s
		for _, ei := range path {
			if edges[ei].from < minNode {
				minNode = edges[ei].from
			}
		}
		if minNode != s {
			continue
		}
		msg := "lock ordering cycle (potential deadlock): "
		for i, ei := range path {
			if i > 0 {
				msg += "; "
			}
			e := edges[ei]
			msg += e.from + " acquired before " + e.to + " " + e.desc
		}
		msg += " — pick one global acquisition order or release before crossing"
		cycles = append(cycles, LockCycle{Pos: edges[path[0]].pos, Message: msg})
	}
	return cycles
}

// shortestLockCycle BFSes from s and returns the edge indices of the
// shortest cycle through s, or nil. Neighbor order is sorted, so the
// answer is deterministic.
func shortestLockCycle(s string, adj map[string][]int, edges []lockGraphEdge) []int {
	prev := map[string]int{s: -1} // node -> incoming edge index
	queue := []string{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range adj[u] {
			e := edges[ei]
			if e.to == s {
				path := []int{ei}
				for at := u; at != s; {
					pe := prev[at]
					path = append([]int{pe}, path...)
					at = edges[pe].from
				}
				return path
			}
			if _, ok := prev[e.to]; ok {
				continue
			}
			prev[e.to] = ei
			queue = append(queue, e.to)
		}
	}
	return nil
}
