package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysis.Errdrop, "errdrop")
}
