package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the tainted-length fact domain: integers read off the
// wire (binary.ByteOrder Uint32/Uint64, binary.ReadUvarint/ReadVarint —
// the decode primitives the frame protocols and the upcoming binary wire
// codec are built from) are tracked through assignments, returns and
// call arguments to a fixed point over the whole load, and every tainted
// value that reaches an allocation-sized sink — make, io.ReadFull/
// ReadAtLeast/CopyN, bufio.NewReaderSize/NewWriterSize, Buffer/Builder
// Grow, slices.Grow — without a dominating bound check becomes a
// taintalloc finding.
//
// The approximations all bias toward false negatives, the right failure
// mode for a gate that must not cry wolf:
//
//   - a variable or parameter is "bounded" if it appears in any
//     comparison anywhere in the function body (flow-insensitive — the
//     repo convention is to check first, and a check anywhere is taken
//     as the author having thought about the bound);
//   - %, & and len() launder taint (they bound the result by
//     construction or derive it from local data);
//   - Uint16/Uint8 reads are not sources: a 16-bit length can allocate
//     at most 64 KiB;
//   - taint does not flow through struct fields, slices/maps, globals,
//     channels, or function values — only through locals, integer
//     returns and call arguments.

// TaintFinding is one tainted length reaching a sizing sink.
type TaintFinding struct {
	Pos token.Pos
	// What names the sink, e.g. "make([]byte, …)" or "io.CopyN".
	What string
	// Via is the derivation chain back to the network read, e.g.
	// "codec.FrameLen → binary.Uint64".
	Via string
}

// taintOriginKind classifies where a value's taint would come from.
type taintOriginKind uint8

const (
	originSource taintOriginKind = iota // intrinsic network-length read
	originVar                           // named local variable
	originParam                         // parameter of the enclosing function
	originRet                           // integer result of a called function
)

type taintOrigin struct {
	kind taintOriginKind
	name string       // originVar: variable name; originSource: description
	fn   types.Object // originRet: the callee
	idx  int          // originParam: parameter index
}

// taintAssign is one "name may take these origins" edge, in body order.
type taintAssign struct {
	name    string
	origins []taintOrigin
}

// taintSink is a sizing sink with the origins feeding its length.
type taintSink struct {
	pos     token.Pos
	what    string
	origins []taintOrigin
}

// taintArgFlow propagates taint into a callee's parameter.
type taintArgFlow struct {
	callee  types.Object
	idx     int
	origins []taintOrigin
}

// taintSummary is the per-function summary the global fixed point runs
// over; scan-time only, resolved lazily against other functions' state.
type taintSummary struct {
	params  []string // parameter names by index ("" when unnamed)
	assigns []taintAssign
	rets    [][]taintOrigin // origins of integer-typed return expressions
	flows   []taintArgFlow
	sinks   []taintSink
	bounded map[string]bool // names compared somewhere in the body
}

// scanTaintSummary builds the taint summary for one declared function.
func scanTaintSummary(info *types.Info, fd *ast.FuncDecl) *taintSummary {
	if info == nil || fd.Body == nil {
		return nil
	}
	ts := &taintSummary{bounded: make(map[string]bool)}
	sc := &taintScanner{info: info, ts: ts, paramIdx: make(map[types.Object]int)}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			if len(fld.Names) == 0 {
				ts.params = append(ts.params, "")
				continue
			}
			for _, nm := range fld.Names {
				if obj := info.Defs[nm]; obj != nil {
					sc.paramIdx[obj] = len(ts.params)
				}
				ts.params = append(ts.params, nm.Name)
			}
		}
	}
	ast.Inspect(fd.Body, sc.visit)
	return ts
}

type taintScanner struct {
	info     *types.Info
	ts       *taintSummary
	paramIdx map[types.Object]int
}

func (sc *taintScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.AssignStmt:
		sc.assign(n)
	case *ast.ValueSpec:
		for i, nm := range n.Names {
			if i < len(n.Values) {
				sc.assignOne(nm, sc.originsOf(n.Values[i]))
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			if !intType(sc.exprType(e)) {
				continue
			}
			if org := sc.originsOf(e); len(org) > 0 {
				sc.ts.rets = append(sc.ts.rets, org)
			}
		}
	case *ast.BinaryExpr:
		switch n.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			sc.markBounded(n.X)
			sc.markBounded(n.Y)
		}
	case *ast.CallExpr:
		sc.call(n)
	}
	return true
}

// markBounded records that the named value was compared against
// something, unwrapping conversions so `if uint32(len(p)) < n` bounds n.
func (sc *taintScanner) markBounded(e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if tv, ok := sc.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
		case *ast.Ident:
			sc.ts.bounded[x.Name] = true
		}
		return
	}
}

func (sc *taintScanner) assign(as *ast.AssignStmt) {
	switch {
	case len(as.Lhs) == len(as.Rhs):
		for i, lhs := range as.Lhs {
			sc.assignOne(lhs, sc.originsOf(as.Rhs[i]))
		}
	case len(as.Rhs) == 1:
		// Multi-value call: every integer-typed result position inherits
		// the call's origins.
		org := sc.originsOf(as.Rhs[0])
		for _, lhs := range as.Lhs {
			sc.assignOne(lhs, org)
		}
	}
}

func (sc *taintScanner) assignOne(lhs ast.Expr, origins []taintOrigin) {
	if len(origins) == 0 {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" || !intType(sc.exprType(id)) {
		return
	}
	sc.ts.assigns = append(sc.ts.assigns, taintAssign{name: id.Name, origins: origins})
}

// call classifies one call: a sizing sink, or argument flow into a
// function the fixed point knows.
func (sc *taintScanner) call(call *ast.CallExpr) {
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, handled transparently by originsOf
	}
	if what, args, ok := sc.sinkArgs(call); ok {
		var org []taintOrigin
		for _, a := range args {
			org = append(org, sc.originsOf(a)...)
		}
		if len(org) > 0 {
			sc.ts.sinks = append(sc.ts.sinks, taintSink{pos: call.Pos(), what: what, origins: org})
		}
		return
	}
	fn := calleeFunc(sc.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	for i, a := range call.Args {
		if !intType(sc.exprType(a)) {
			continue
		}
		if org := sc.originsOf(a); len(org) > 0 {
			sc.ts.flows = append(sc.ts.flows, taintArgFlow{callee: fn, idx: i, origins: org})
		}
	}
}

// sinkArgs recognizes the sizing sinks and returns the expressions that
// carry the (possibly tainted) length.
func (sc *taintScanner) sinkArgs(call *ast.CallExpr) (what string, args []ast.Expr, ok bool) {
	if id, okID := ast.Unparen(call.Fun).(*ast.Ident); okID && id.Name == "make" {
		if _, isBuiltin := sc.info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
			return "make(" + types.ExprString(call.Args[0]) + ", …)", call.Args[1:], true
		}
	}
	fn := calleeFunc(sc.info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil, false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	switch {
	case pkg == "io" && !hasRecv && name == "ReadFull" && len(call.Args) >= 2:
		// The length rides in the buffer argument, commonly buf[:n];
		// originsOf extracts slice indices, so a whole (already-reported)
		// tainted buffer does not double-report here.
		return "io.ReadFull", call.Args[1:2], true
	case pkg == "io" && !hasRecv && name == "ReadAtLeast" && len(call.Args) >= 3:
		return "io.ReadAtLeast", call.Args[1:3], true
	case pkg == "io" && !hasRecv && name == "CopyN" && len(call.Args) >= 3:
		return "io.CopyN", call.Args[2:3], true
	case pkg == "bufio" && !hasRecv && (name == "NewReaderSize" || name == "NewWriterSize") && len(call.Args) >= 2:
		return "bufio." + name, call.Args[1:2], true
	case pkg == "slices" && !hasRecv && name == "Grow" && len(call.Args) >= 2:
		return "slices.Grow", call.Args[1:2], true
	case hasRecv && name == "Grow" && len(call.Args) >= 1 &&
		(namedType(sig.Recv().Type(), "bytes", "Buffer") || namedType(sig.Recv().Type(), "strings", "Builder")):
		_, tn, _ := namedIn(sig.Recv().Type())
		return "(" + fn.Pkg().Name() + "." + tn + ").Grow", call.Args[:1], true
	}
	return "", nil, false
}

// originsOf evaluates where e's value could derive from, symbolically:
// intrinsic sources, named locals, parameters, and integer returns of
// resolvable calls. Arithmetic unions its operands; % and & sanitize.
func (sc *taintScanner) originsOf(e ast.Expr) []taintOrigin {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := sc.objOf(e).(*types.Var)
		if !ok {
			return nil
		}
		if i, isParam := sc.paramIdx[v]; isParam {
			if intType(v.Type()) {
				return []taintOrigin{{kind: originParam, idx: i, name: v.Name()}}
			}
			return nil
		}
		if v.Pkg() != nil && v.Parent() != nil && v.Parent() != v.Pkg().Scope() && !v.IsField() {
			return []taintOrigin{{kind: originVar, name: v.Name()}}
		}
		return nil
	case *ast.CallExpr:
		if tv, ok := sc.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sc.originsOf(e.Args[0]) // conversions are transparent
		}
		fn := calleeFunc(sc.info, e)
		if fn == nil {
			return nil
		}
		if desc, ok := taintSource(fn); ok {
			return []taintOrigin{{kind: originSource, name: desc}}
		}
		if fn.Pkg() != nil {
			return []taintOrigin{{kind: originRet, fn: fn}}
		}
		return nil
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM, token.AND:
			return nil // n % k and n & mask are bounded by construction
		}
		return append(sc.originsOf(e.X), sc.originsOf(e.Y)...)
	case *ast.UnaryExpr:
		return sc.originsOf(e.X)
	case *ast.SliceExpr:
		var out []taintOrigin
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				out = append(out, sc.originsOf(ix)...)
			}
		}
		return out
	}
	// Selector (struct fields), index, composite and everything else:
	// untracked, see the false-negative ledger above.
	return nil
}

func (sc *taintScanner) objOf(id *ast.Ident) types.Object {
	if o := sc.info.Defs[id]; o != nil {
		return o
	}
	return sc.info.Uses[id]
}

func (sc *taintScanner) exprType(e ast.Expr) types.Type {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := sc.objOf(id); obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := sc.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func intType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// taintSource recognizes the intrinsic length sources. 8/16-bit reads
// are excluded: they bound their own result.
func taintSource(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "encoding/binary" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Name() {
	case "Uint32", "Uint64":
		if sig != nil && sig.Recv() != nil { // ByteOrder method
			return "binary." + fn.Name(), true
		}
	case "ReadUvarint", "ReadVarint":
		if sig != nil && sig.Recv() == nil {
			return "binary." + fn.Name(), true
		}
	}
	return "", false
}

// taintState is the per-function dynamic half of the fixed point.
type taintState struct {
	vars       map[string]string // local name -> via chain
	params     map[int]string    // parameter index -> via chain
	retTainted bool
	retVia     string
}

// computeTaintFindings runs the global fixed point over every scanned
// summary and evaluates the sinks. Iteration follows facts.order, so via
// chains and finding order are deterministic run to run.
func computeTaintFindings(facts *Facts) []TaintFinding {
	states := make(map[types.Object]*taintState)
	for _, fn := range facts.order {
		if facts.funcs[fn].taint != nil {
			states[fn] = &taintState{vars: make(map[string]string), params: make(map[int]string)}
		}
	}
	resolve := func(fn types.Object, origins []taintOrigin) (string, bool) {
		st, sum := states[fn], facts.funcs[fn].taint
		for _, o := range origins {
			switch o.kind {
			case originSource:
				return o.name, true
			case originVar:
				if sum.bounded[o.name] {
					continue
				}
				if via, ok := st.vars[o.name]; ok {
					return via, true
				}
			case originParam:
				if o.name != "" && sum.bounded[o.name] {
					continue
				}
				if via, ok := st.params[o.idx]; ok {
					return via, true
				}
			case originRet:
				if cs := states[o.fn]; cs != nil && cs.retTainted {
					return shortFuncName(o.fn) + " → " + cs.retVia, true
				}
			}
		}
		return "", false
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range facts.order {
			sum := facts.funcs[fn].taint
			if sum == nil {
				continue
			}
			st := states[fn]
			for _, as := range sum.assigns {
				if sum.bounded[as.name] {
					continue
				}
				if _, ok := st.vars[as.name]; ok {
					continue
				}
				if via, ok := resolve(fn, as.origins); ok {
					st.vars[as.name] = via
					changed = true
				}
			}
			if !st.retTainted {
				for _, org := range sum.rets {
					if via, ok := resolve(fn, org); ok {
						st.retTainted = true
						st.retVia = via
						changed = true
						break
					}
				}
			}
			for _, fl := range sum.flows {
				cs := states[fl.callee]
				if cs == nil {
					continue
				}
				csum := facts.funcs[fl.callee].taint
				if fl.idx >= len(csum.params) {
					continue // variadic overflow: untracked
				}
				pname := csum.params[fl.idx]
				if pname == "" || pname == "_" || csum.bounded[pname] {
					continue
				}
				if _, ok := cs.params[fl.idx]; ok {
					continue
				}
				if via, ok := resolve(fn, fl.origins); ok {
					cs.params[fl.idx] = via + " (argument from " + shortFuncName(fn) + ")"
					changed = true
				}
			}
		}
	}

	var findings []TaintFinding
	for _, fn := range facts.order {
		sum := facts.funcs[fn].taint
		if sum == nil {
			continue
		}
		for _, sk := range sum.sinks {
			if via, ok := resolve(fn, sk.origins); ok {
				findings = append(findings, TaintFinding{Pos: sk.pos, What: sk.what, Via: via})
			}
		}
	}
	return findings
}
