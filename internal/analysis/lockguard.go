package analysis

// Lockguard reports struct-field accesses that skip the field's guard.
// The guard is not declared anywhere — it is inferred by dominant
// association over the whole-load field-access domain (fieldfacts.go):
// when a supermajority of a field's reads and writes (at least three
// guarded sites for every unguarded one) happen while a lock of the same
// receiver type is held, that lock is taken to guard the field, and the
// minority accesses that do not hold it are flagged. Held sets are
// flow-sensitive and composed interprocedurally, so a helper method whose
// every caller holds the lock counts as guarded even though it never
// locks itself.
//
// An explicit declaration is stronger than inference: annotating the
// field
//
//	//wiscape:guardedby mu
//
// on its declaration pins the guard and flags every unguarded access
// regardless of the statistics. Escapes, in both modes: accesses through
// a constructor-fresh local (the value cannot have escaped yet),
// sync/atomic accesses (atomicmix's subject), Close/Stop/Shutdown bodies
// and code after a (*sync.WaitGroup).Wait call (teardown), and
// //lint:ignore lockguard <reason>.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "infer which lock guards each struct field by dominant association and flag " +
		"the minority accesses that do not hold it",
	Run: runLockguard,
}

func runLockguard(pass *Pass) error {
	for _, g := range pass.Facts.Guards() {
		// Guard inference is a whole-load property; each pass reports only
		// the findings anchored in its own files, so a multi-package run
		// emits each exactly once.
		if pass.ownsPos(g.Pos) {
			pass.Reportf(g.Pos, "%s", g.Message)
		}
	}
	return nil
}
