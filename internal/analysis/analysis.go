// Package analysis is wiscape-lint: a suite of static analyzers that
// machine-enforce the invariants this repository's correctness rests on
// but the Go compiler cannot check —
//
//   - nodeterm: deterministic packages must not read wall-clock time or
//     global randomness (the paper's zone/epoch estimates are reproducible
//     only if every sample path is seeded through internal/rng);
//   - lockio: the coordinator/gateway hot paths must never hold a mutex
//     across network I/O or a channel send;
//   - nilsafemetric: telemetry instrumentation is nil-safe opt-in, so
//     optional metrics bundles must be accessed through guards or nil-safe
//     accessors, and instruments must come from a Registry;
//   - wirebound: every wire envelope crosses the network through
//     wire.Conn's MaxMessageBytes cap, and line-oriented reads of external
//     input must be bounded;
//   - goleak: server-side goroutines must carry evidence of a bounded
//     lifetime (shutdown-signal receive or WaitGroup accounting);
//   - errdrop: errors from I/O-shaped calls must not be dropped on
//     durability paths, with file/net kinds derived transitively;
//   - lockorder: lock acquisition order must be globally consistent —
//     any cycle in the whole-load ordering graph is a potential deadlock;
//   - taintalloc: allocation sizes must not flow unchecked from network
//     reads to make/ReadFull/CopyN/bufio sizing;
//   - lockguard: a struct field guarded by a lock on a supermajority of
//     its accesses (inferred, or declared by //wiscape:guardedby) must
//     hold that lock on every access outside constructors and teardown;
//   - atomicmix: a field accessed via sync/atomic anywhere must not also
//     be accessed by plain load/store — mixed access is a data race.
//
// The Analyzer/Pass contract deliberately mirrors golang.org/x/tools'
// go/analysis (Name, Doc, Run(*Pass), Pass.Reportf) so each analyzer can
// port to the upstream driver unchanged if the repository ever takes that
// dependency; the repo itself stays dependency-free, with package load
// standing in for go/packages and package analysistest for the upstream
// fixture harness.
//
// A finding is suppressed by the line comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. The reason is mandatory:
// suppressions are an audited escape hatch, not an off switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is the one-paragraph description shown by wiscape-lint -help.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the interprocedural facts computed over every loaded
	// package before analyzers run (see facts.go). Nil is legal and
	// degrades the facts-aware analyzers to intraprocedural behavior.
	Facts  *Facts
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ownsPos reports whether pos falls inside one of this pass's files.
// Analyzers that surface whole-load facts (lockorder, taintalloc) use it
// to report each finding from exactly one package.
func (p *Pass) ownsPos(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Nodeterm, Lockio, Nilsafemetric, Wirebound, Goleak, Errdrop, Lockorder, Taintalloc, Lockguard, Atomicmix}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ---- shared type-resolution helpers ----
//
// Every helper tolerates missing type information (a nil TypesInfo entry)
// by returning the zero answer: with partial types an analyzer misses
// findings rather than inventing them.

// pkgFunc resolves call to a package-level function: it returns the
// imported package path and function name when call.Fun is pkg.Name with
// pkg a package identifier, and ok=false otherwise.
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// typeOf returns the static type of e, or nil without type information.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.Types[e].Type
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if pt, ok := t.Underlying().(*types.Pointer); ok {
		return pt.Elem()
	}
	return t
}

// namedType reports whether t (possibly behind one pointer) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedIn returns (pkgPath, typeName) when t (possibly behind one pointer)
// is a named type, and ok=false otherwise.
func namedIn(t types.Type) (pkgPath, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	n, okNamed := deref(t).(*types.Named)
	if !okNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// exprString renders a stable textual key for an expression ("s.met",
// "a.Telemetry"), used to match guard conditions against accesses.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}

// hasDirective reports whether any comment in f is the given lone
// directive (e.g. "//wiscape:deterministic"), ignoring surrounding space.
func hasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				return true
			}
		}
	}
	return false
}

// funcScopes yields every function body in f paired with its declaration
// (nil for function literals), so analyzers can treat each body as one
// analysis scope.
func funcScopes(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(nil, n.Body)
		}
		return true
	})
}

// Suppressed reports whether a diagnostic at pos for analyzer name is
// covered by a "//lint:ignore <name> <reason>" comment on the same line or
// the line immediately above.
func Suppressed(fset *token.FileSet, files []*ast.File, name string, pos token.Pos) bool {
	position := fset.Position(pos)
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 || fields[0] != name {
					continue // a bare name with no reason does not suppress
				}
				cline := fset.Position(c.Pos()).Line
				if cline == position.Line || cline == position.Line-1 {
					return true
				}
			}
		}
	}
	return false
}
