package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestTaintalloc(t *testing.T) {
	analysistest.Run(t, analysis.Taintalloc, "taintalloc")
}
