package analysis

// Atomicmix reports fields accessed through sync/atomic in one place and
// by plain load or store in another. Mixing the two is a data race even
// when every racing access "works": the plain access carries no ordering,
// so the race detector only catches it if a test schedules the exact
// interleaving, and torn or stale reads ship silently otherwise. The
// atomic side is recognized in both API shapes — atomic.AddInt64(&s.n, 1)
// function calls taking &field, and atomic.Int64-style typed values via
// their methods or a by-pointer handoff (&s.n passed to a helper).
//
// The access records come from the whole-load field-access domain
// (fieldfacts.go) and share its escapes: plain accesses through a
// constructor-fresh local and in teardown (Close/Stop/Shutdown bodies,
// code after a (*sync.WaitGroup).Wait) are not flagged — initializing or
// draining a counter single-threaded is the idiom, not the bug — and
// //lint:ignore atomicmix <reason> suppresses the rest.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed via sync/atomic in one place and by plain " +
		"load/store in another",
	Run: runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	for _, m := range pass.Facts.Mixes() {
		// Whole-load findings, reported once from the owning package.
		if pass.ownsPos(m.Pos) {
			pass.Reportf(m.Pos, "%s", m.Message)
		}
	}
	return nil
}
