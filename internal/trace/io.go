package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
)

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{"time", "lat", "lon", "network", "metric", "value", "client", "device", "speed_kmh", "failed"}

// WriteCSV writes the dataset in the CSV trace format (RFC 3339 timestamps).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, s := range d.Samples {
		rec := []string{
			s.Time.UTC().Format(time.RFC3339Nano),
			strconv.FormatFloat(s.Loc.Lat, 'f', 6, 64),
			strconv.FormatFloat(s.Loc.Lon, 'f', 6, 64),
			string(s.Network),
			string(s.Metric),
			strconv.FormatFloat(s.Value, 'g', -1, 64),
			s.ClientID,
			s.Device,
			strconv.FormatFloat(s.SpeedKmh, 'f', 2, 64),
			strconv.FormatBool(s.Failed),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from the CSV trace format.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != "time" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	d := &Dataset{Name: name}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		s, err := sampleFromRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		d.Samples = append(d.Samples, s)
	}
	return d, nil
}

func sampleFromRecord(rec []string) (Sample, error) {
	var s Sample
	t, err := time.Parse(time.RFC3339Nano, rec[0])
	if err != nil {
		return s, fmt.Errorf("bad time: %w", err)
	}
	lat, err := strconv.ParseFloat(rec[1], 64)
	if err != nil {
		return s, fmt.Errorf("bad lat: %w", err)
	}
	lon, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return s, fmt.Errorf("bad lon: %w", err)
	}
	val, err := strconv.ParseFloat(rec[5], 64)
	if err != nil {
		return s, fmt.Errorf("bad value: %w", err)
	}
	speed, err := strconv.ParseFloat(rec[8], 64)
	if err != nil {
		return s, fmt.Errorf("bad speed: %w", err)
	}
	failed, err := strconv.ParseBool(rec[9])
	if err != nil {
		return s, fmt.Errorf("bad failed flag: %w", err)
	}
	return Sample{
		Time:     t,
		Loc:      geo.Point{Lat: lat, Lon: lon},
		Network:  radio.NetworkID(rec[3]),
		Metric:   Metric(rec[4]),
		Value:    val,
		ClientID: rec[6],
		Device:   rec[7],
		SpeedKmh: speed,
		Failed:   failed,
	}, nil
}

// WriteJSONL writes the dataset as one JSON object per line.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Samples {
		if err := enc.Encode(&d.Samples[i]); err != nil {
			return fmt.Errorf("trace: encoding sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a dataset from the JSONL trace format.
func ReadJSONL(name string, r io.Reader) (*Dataset, error) {
	d := &Dataset{Name: name}
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var s Sample
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding sample %d: %w", i, err)
		}
		d.Samples = append(d.Samples, s)
	}
	return d, nil
}
