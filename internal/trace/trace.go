// Package trace defines the measurement records WiScape collects and the
// dataset containers the paper's campaigns produce (Table 2: Spot, Region
// and Wide-area dataset groups), with CSV and JSONL import/export in the
// spirit of the CRAWDAD release the paper promises.
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
)

// Metric names a measured quantity.
type Metric string

// The metrics the paper collects (§2 "Measurements collected").
const (
	MetricTCPKbps  Metric = "tcp_kbps"
	MetricUDPKbps  Metric = "udp_kbps"
	MetricJitterMs Metric = "jitter_ms"
	MetricLossRate Metric = "loss_rate"
	MetricRTTMs    Metric = "rtt_ms"
	// MetricUplinkKbps is collected but not analysed by the paper (§2:
	// "we focus on the downlink direction").
	MetricUplinkKbps Metric = "uplink_kbps"
)

// AllMetrics lists the metrics in canonical order.
var AllMetrics = []Metric{MetricTCPKbps, MetricUDPKbps, MetricJitterMs, MetricLossRate, MetricRTTMs, MetricUplinkKbps}

// Sample is one client-sourced measurement observation: the value of one
// metric for one network at a time and place, tagged with the reporting
// client. Failed is set for probes that produced no value (failed pings),
// which Fig. 9 exploits as a cheap trouble signal.
type Sample struct {
	Time     time.Time       `json:"t"`
	Loc      geo.Point       `json:"loc"`
	Network  radio.NetworkID `json:"net"`
	Metric   Metric          `json:"metric"`
	Value    float64         `json:"value"`
	ClientID string          `json:"client"`
	Device   string          `json:"device,omitempty"` // hardware class (§3.3); empty = reference
	SpeedKmh float64         `json:"speed_kmh"`
	Failed   bool            `json:"failed,omitempty"`
}

// Dataset is a named collection of samples.
type Dataset struct {
	Name    string
	Samples []Sample
}

// Add appends samples.
func (d *Dataset) Add(s ...Sample) {
	d.Samples = append(d.Samples, s...)
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Filter returns the samples matching keep, as a new dataset sharing no
// backing storage obligations with d.
func (d *Dataset) Filter(keep func(Sample) bool) *Dataset {
	out := &Dataset{Name: d.Name}
	for _, s := range d.Samples {
		if keep(s) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// ByMetric returns the samples of one metric and network, excluding failed
// probes.
func (d *Dataset) ByMetric(net radio.NetworkID, m Metric) []Sample {
	var out []Sample
	for _, s := range d.Samples {
		if s.Network == net && s.Metric == m && !s.Failed {
			out = append(out, s)
		}
	}
	return out
}

// Values extracts the metric values of samples.
func Values(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Value
	}
	return out
}

// Timed converts samples into stats.TimedValue observations.
func Timed(samples []Sample) []stats.TimedValue {
	out := make([]stats.TimedValue, len(samples))
	for i, s := range samples {
		out[i] = stats.TimedValue{T: s.Time, V: s.Value}
	}
	return out
}

// ByZone groups samples into grid zones.
func ByZone(samples []Sample, grid *geo.Grid) map[geo.ZoneID][]Sample {
	out := make(map[geo.ZoneID][]Sample)
	for _, s := range samples {
		z := grid.Zone(s.Loc)
		out[z] = append(out[z], s)
	}
	return out
}

// ZonesWithAtLeast returns the zone ids having at least n samples, in
// deterministic order. The paper only trusts zones with >= 200 samples.
func ZonesWithAtLeast(byZone map[geo.ZoneID][]Sample, n int) []geo.ZoneID {
	var out []geo.ZoneID
	for z, ss := range byZone {
		if len(ss) >= n {
			out = append(out, z)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// SortByTime orders the dataset's samples chronologically.
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Samples, func(i, j int) bool {
		return d.Samples[i].Time.Before(d.Samples[j].Time)
	})
}

// Summary describes a dataset for logging.
func (d *Dataset) Summary() string {
	nets := map[radio.NetworkID]int{}
	metrics := map[Metric]int{}
	for _, s := range d.Samples {
		nets[s.Network]++
		metrics[s.Metric]++
	}
	return fmt.Sprintf("dataset %q: %d samples, %d networks, %d metrics",
		d.Name, len(d.Samples), len(nets), len(metrics))
}
