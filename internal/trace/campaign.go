package trace

import (
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Client is one measurement platform in a campaign: a mobility track plus
// the set of networks its modems can reach.
type Client struct {
	ID       string
	Track    mobility.Track
	Networks []radio.NetworkID
}

// Campaign drives a set of clients over an environment for a period,
// collecting the configured metrics on a fixed cadence — the simulation
// counterpart of the paper's data collection processes (§2).
type Campaign struct {
	Name     string
	Env      *radio.Environment
	Clients  []Client
	Start    time.Time
	Duration time.Duration
	Interval time.Duration // per-client measurement cadence
	Metrics  []Metric
	Seed     uint64

	// Measurement parameters (Table 1); zero values take the defaults
	// below.
	UDPPackets   int // default 100
	UDPSizeBytes int // default 1200
	TCPBytes     int // default 256 KiB
}

const (
	defaultUDPPackets = 100
	defaultUDPSize    = 1200
	defaultTCPBytes   = 256 << 10
)

// Run executes the campaign and returns the collected dataset. The run is
// deterministic in (campaign definition, Seed).
func (c *Campaign) Run() *Dataset {
	udpPackets := c.UDPPackets
	if udpPackets <= 0 {
		udpPackets = defaultUDPPackets
	}
	udpSize := c.UDPSizeBytes
	if udpSize <= 0 {
		udpSize = defaultUDPSize
	}
	tcpBytes := c.TCPBytes
	if tcpBytes <= 0 {
		tcpBytes = defaultTCPBytes
	}

	wants := make(map[Metric]bool, len(c.Metrics))
	for _, m := range c.Metrics {
		wants[m] = true
	}

	d := &Dataset{Name: c.Name}
	for _, cl := range c.Clients {
		// Stagger clients so they don't sample in lockstep.
		phase := time.Duration(rng.Hash64(c.Seed, rng.HashString(cl.ID)) % uint64(c.Interval))
		probers := make(map[radio.NetworkID]*simnet.Prober, len(cl.Networks))
		for _, n := range cl.Networks {
			f := c.Env.Field(n)
			if f == nil {
				continue
			}
			probers[n] = simnet.NewProber(f, rng.Hash64(c.Seed, rng.HashString(cl.ID), rng.HashString(string(n))))
		}
		for at := c.Start.Add(phase); at.Before(c.Start.Add(c.Duration)); at = at.Add(c.Interval) {
			pose := cl.Track.Pose(at)
			if !pose.Active {
				continue
			}
			for _, n := range cl.Networks {
				p := probers[n]
				if p == nil {
					continue
				}
				c.measure(d, p, cl.ID, n, pose, at, wants, udpPackets, udpSize, tcpBytes)
			}
		}
	}
	return d
}

// measure runs one measurement round for one client on one network.
func (c *Campaign) measure(d *Dataset, p *simnet.Prober, clientID string, n radio.NetworkID,
	pose mobility.Pose, at time.Time, wants map[Metric]bool, udpPackets, udpSize, tcpBytes int) {

	base := Sample{Time: at, Loc: pose.Loc, Network: n, ClientID: clientID, SpeedKmh: pose.SpeedKmh}

	if wants[MetricTCPKbps] {
		s := base
		s.Metric = MetricTCPKbps
		s.Value = p.TCPDownload(pose.Loc, at, tcpBytes).ThroughputKbps()
		d.Add(s)
	}
	if wants[MetricUDPKbps] || wants[MetricJitterMs] || wants[MetricLossRate] {
		fr := p.UDPDownload(pose.Loc, at, udpPackets, udpSize)
		if wants[MetricUDPKbps] {
			s := base
			s.Metric = MetricUDPKbps
			s.Value = fr.ThroughputKbps()
			d.Add(s)
		}
		if wants[MetricJitterMs] {
			s := base
			s.Metric = MetricJitterMs
			s.Value = fr.JitterMs()
			d.Add(s)
		}
		if wants[MetricLossRate] {
			s := base
			s.Metric = MetricLossRate
			s.Value = fr.LossRate()
			d.Add(s)
		}
	}
	if wants[MetricUplinkKbps] {
		s := base
		s.Metric = MetricUplinkKbps
		s.Value = p.UDPUpload(pose.Loc, at, udpPackets, udpSize).ThroughputKbps()
		d.Add(s)
	}
	if wants[MetricRTTMs] {
		pr := p.Ping(pose.Loc, at)
		s := base
		s.Metric = MetricRTTMs
		s.Value = pr.RTTMs
		s.Failed = pr.Failed
		d.Add(s)
	}
}

// The campaign presets below mirror the paper's Table 2 dataset catalogue.
// Durations are parameters: the paper collected for months; benches use
// days-to-weeks, which the zone/epoch statistics already stabilize over.

// StandaloneCampaign is the Wide-area Standalone process: five transit buses
// with a single NetB interface collecting TCP throughput and ICMP-style
// pings across Madison.
func StandaloneCampaign(seed uint64, start time.Time, duration time.Duration) *Campaign {
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	routes := geo.MadisonBusRoutes()
	var clients []Client
	for i := 0; i < 5; i++ {
		clients = append(clients, Client{
			ID:       clientID("standalone-bus", i),
			Track:    mobility.NewTransitBus(routes, seed, i),
			Networks: []radio.NetworkID{radio.NetB},
		})
	}
	return &Campaign{
		Name:     "Standalone",
		Env:      env,
		Clients:  clients,
		Start:    start,
		Duration: duration,
		Interval: 2 * time.Minute,
		Metrics:  []Metric{MetricTCPKbps, MetricRTTMs},
		Seed:     seed,
	}
}

// WiRoverCampaign is the Wide-area WiRover process: the transit buses plus
// two intercity buses, dual NetB+NetC interfaces, latency-only measurements
// (~12 UDP pings a minute; throughput tests would have disturbed the buses'
// passenger WiFi).
func WiRoverCampaign(seed uint64, start time.Time, duration time.Duration) *Campaign {
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB, radio.NetC}, radio.RegionWI, seed, geo.Madison().Center())
	routes := geo.MadisonBusRoutes()
	nets := []radio.NetworkID{radio.NetB, radio.NetC}
	var clients []Client
	for i := 0; i < 5; i++ {
		clients = append(clients, Client{
			ID:       clientID("wirover-bus", i),
			Track:    mobility.NewTransitBus(routes, seed, i),
			Networks: nets,
		})
	}
	for i := 0; i < 2; i++ {
		clients = append(clients, Client{
			ID:       clientID("wirover-intercity", i),
			Track:    mobility.NewIntercityBus(geo.MadisonChicago(), seed, i),
			Networks: nets,
		})
	}
	return &Campaign{
		Name:     "WiRover",
		Env:      env,
		Clients:  clients,
		Start:    start,
		Duration: duration,
		Interval: 5 * time.Second, // ~12 pings a minute
		Metrics:  []Metric{MetricRTTMs},
		Seed:     seed,
	}
}

// SpotCampaign is the Static-WI / Static-NJ process: fixed indoor nodes
// collecting the full metric set at a fine cadence.
func SpotCampaign(kind radio.RegionKind, seed uint64, start time.Time, duration time.Duration, interval time.Duration) *Campaign {
	var (
		name  string
		sites []geo.Point
		nets  []radio.NetworkID
		orig  geo.Point
	)
	if kind == radio.RegionNJ {
		name = "Static-NJ"
		sites = geo.NJStaticSites()
		nets = []radio.NetworkID{radio.NetB, radio.NetC}
		orig = geo.NJStaticSites()[0]
	} else {
		name = "Static-WI"
		sites = geo.MadisonStaticSites()
		nets = radio.AllNetworks
		orig = geo.Madison().Center()
	}
	env := radio.NewEnvironment(nets, kind, seed, orig)
	var clients []Client
	for i, s := range sites {
		clients = append(clients, Client{
			ID:       clientID(name, i),
			Track:    mobility.Static{P: s},
			Networks: nets,
		})
	}
	return &Campaign{
		Name:     name,
		Env:      env,
		Clients:  clients,
		Start:    start,
		Duration: duration,
		Interval: interval,
		Metrics:  []Metric{MetricTCPKbps, MetricUDPKbps, MetricJitterMs, MetricLossRate},
		Seed:     seed,
	}
}

// ProximateCampaign is the Region Proximate process: cars orbiting within
// 250 m of the static sites, sampling what a real WiScape deployment would
// opportunistically gather around those zones.
func ProximateCampaign(kind radio.RegionKind, seed uint64, start time.Time, duration time.Duration, interval time.Duration) *Campaign {
	c := SpotCampaign(kind, seed, start, duration, interval)
	if kind == radio.RegionNJ {
		c.Name = "Proximate-NJ"
	} else {
		c.Name = "Proximate-WI"
	}
	sites := geo.MadisonStaticSites()
	if kind == radio.RegionNJ {
		sites = geo.NJStaticSites()
	}
	for i := range c.Clients {
		c.Clients[i].ID = clientID(c.Name, i)
		c.Clients[i].Track = mobility.NewOrbitCar(sites[i], 250, seed, i)
	}
	return c
}

// ShortSegmentCampaign is the Region Short segment process: a car driving a
// ~20 km Madison road stretch with all three networks (Figs. 12-13).
func ShortSegmentCampaign(seed uint64, start time.Time, duration time.Duration) *Campaign {
	env := radio.NewEnvironment(radio.AllNetworks, radio.RegionWI, seed, geo.Madison().Center())
	return &Campaign{
		Name: "ShortSegment",
		Env:  env,
		Clients: []Client{{
			ID:       "segment-car-0",
			Track:    mobility.NewCarLoop(geo.ShortSegment(), seed, 0),
			Networks: radio.AllNetworks,
		}},
		Start:    start,
		Duration: duration,
		Interval: time.Minute,
		Metrics:  []Metric{MetricTCPKbps, MetricUDPKbps, MetricRTTMs},
		Seed:     seed,
	}
}

func clientID(prefix string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return prefix + "-" + digits[i:i+1]
	}
	return prefix + "-" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}
