package trace

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/stats"
)

const seed = 3033

// campaignStart is a Monday 00:00 so bus service windows behave predictably.
var campaignStart = time.Date(2010, 9, 6, 0, 0, 0, 0, time.UTC)

func TestStandaloneCampaign(t *testing.T) {
	c := StandaloneCampaign(seed, campaignStart, 24*time.Hour)
	d := c.Run()
	if d.Len() == 0 {
		t.Fatal("no samples collected")
	}
	// 5 buses, 18 h service, 2-min cadence, 2 metrics: ~5400 samples.
	if d.Len() < 3000 || d.Len() > 8000 {
		t.Fatalf("unexpected sample volume %d", d.Len())
	}
	// Only NetB; only TCP + RTT.
	for _, s := range d.Samples {
		if s.Network != radio.NetB {
			t.Fatalf("unexpected network %v", s.Network)
		}
		if s.Metric != MetricTCPKbps && s.Metric != MetricRTTMs {
			t.Fatalf("unexpected metric %v", s.Metric)
		}
		if s.ClientID == "" {
			t.Fatal("missing client id")
		}
	}
	// No samples outside the service window (to the minute).
	for _, s := range d.Samples {
		if h := s.Time.Hour(); h < 6 {
			t.Fatalf("sample at %v outside bus service hours", s.Time)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := StandaloneCampaign(seed, campaignStart, 6*time.Hour).Run()
	b := StandaloneCampaign(seed, campaignStart, 6*time.Hour).Run()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c := StandaloneCampaign(seed+1, campaignStart, 6*time.Hour).Run()
	if c.Len() == a.Len() && len(a.Samples) > 0 && c.Samples[0] == a.Samples[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestSpotCampaignWI(t *testing.T) {
	c := SpotCampaign(radio.RegionWI, seed, campaignStart, 2*time.Hour, 30*time.Second)
	d := c.Run()
	// 5 sites x 3 networks x 4 metrics x 240 ticks = 14400.
	if d.Len() < 10000 {
		t.Fatalf("sample volume %d too low", d.Len())
	}
	nets := map[radio.NetworkID]bool{}
	for _, s := range d.Samples {
		nets[s.Network] = true
		if s.SpeedKmh != 0 {
			t.Fatal("static clients must report zero speed")
		}
	}
	if len(nets) != 3 {
		t.Fatalf("expected 3 networks, got %v", nets)
	}
	// Throughput ordering at WI sites should mostly follow Table 3:
	// NetA > NetC > NetB on average.
	means := map[radio.NetworkID]float64{}
	for n := range nets {
		means[n] = stats.Mean(Values(d.ByMetric(n, MetricUDPKbps)))
	}
	if !(means[radio.NetA] > means[radio.NetB]) {
		t.Fatalf("NetA (%v) should outrun NetB (%v) in WI", means[radio.NetA], means[radio.NetB])
	}
}

func TestSpotCampaignNJ(t *testing.T) {
	c := SpotCampaign(radio.RegionNJ, seed, campaignStart, time.Hour, time.Minute)
	d := c.Run()
	if d.Len() == 0 {
		t.Fatal("no NJ samples")
	}
	for _, s := range d.Samples {
		if s.Network == radio.NetA {
			t.Fatal("NetA was not measured in NJ (Table 2)")
		}
	}
}

func TestProximateTracksOrbit(t *testing.T) {
	c := ProximateCampaign(radio.RegionWI, seed, campaignStart, time.Hour, time.Minute)
	d := c.Run()
	sites := geo.MadisonStaticSites()
	for _, s := range d.Samples {
		near := false
		for _, site := range sites {
			if s.Loc.DistanceTo(site) <= 251 {
				near = true
				break
			}
		}
		if !near {
			t.Fatalf("proximate sample %v not within 250 m of any site", s.Loc)
		}
		if s.SpeedKmh <= 0 {
			t.Fatal("orbit car samples must have positive speed")
		}
	}
}

func TestWiRoverCampaignPingsOnly(t *testing.T) {
	c := WiRoverCampaign(seed, campaignStart.Add(10*time.Hour), time.Hour)
	d := c.Run()
	if d.Len() == 0 {
		t.Fatal("no samples")
	}
	for _, s := range d.Samples {
		if s.Metric != MetricRTTMs {
			t.Fatalf("WiRover collects latency only, got %v", s.Metric)
		}
	}
	// ~12 pings/minute cadence: 5 buses in service at 10am (intercity may be
	// en route too) -> at least 5*60*12 samples per network... sanity lower
	// bound only.
	if d.Len() < 1000 {
		t.Fatalf("ping volume %d too low for 12/min cadence", d.Len())
	}
}

func TestShortSegmentCampaign(t *testing.T) {
	c := ShortSegmentCampaign(seed, campaignStart, 3*time.Hour)
	d := c.Run()
	if d.Len() == 0 {
		t.Fatal("no samples")
	}
	nets := map[radio.NetworkID]bool{}
	for _, s := range d.Samples {
		nets[s.Network] = true
	}
	if len(nets) != 3 {
		t.Fatalf("short segment measures all 3 networks, got %v", nets)
	}
	// Samples should lie along the segment.
	seg := geo.ShortSegment()
	pts := seg.Sample(200)
	for _, s := range d.Samples[:50] {
		minD := 1e18
		for _, p := range pts {
			if d := s.Loc.DistanceTo(p); d < minD {
				minD = d
			}
		}
		if minD > 500 {
			t.Fatalf("sample %v too far from the segment (%v m)", s.Loc, minD)
		}
	}
}

func TestCampaignMetricSubset(t *testing.T) {
	c := StandaloneCampaign(seed, campaignStart, 2*time.Hour)
	c.Metrics = []Metric{MetricRTTMs}
	d := c.Run()
	for _, s := range d.Samples {
		if s.Metric != MetricRTTMs {
			t.Fatalf("unexpected metric %v", s.Metric)
		}
	}
}

func BenchmarkStandaloneDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = StandaloneCampaign(seed, campaignStart, 24*time.Hour).Run()
	}
}
