package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
)

var t0 = radio.Epoch.Add(5 * 24 * time.Hour)

func sampleFixture() []Sample {
	return []Sample{
		{Time: t0, Loc: geo.Point{Lat: 43.07, Lon: -89.4}, Network: radio.NetB, Metric: MetricTCPKbps, Value: 845.5, ClientID: "c1", SpeedKmh: 12.5},
		{Time: t0.Add(time.Minute), Loc: geo.Point{Lat: 43.08, Lon: -89.41}, Network: radio.NetC, Metric: MetricRTTMs, Value: 120, ClientID: "c2", Failed: false},
		{Time: t0.Add(2 * time.Minute), Loc: geo.Point{Lat: 43.09, Lon: -89.42}, Network: radio.NetB, Metric: MetricRTTMs, Value: 0, ClientID: "c1", Failed: true},
	}
}

func TestFilterAndByMetric(t *testing.T) {
	d := &Dataset{Name: "x"}
	d.Add(sampleFixture()...)
	if d.Len() != 3 {
		t.Fatalf("len %d", d.Len())
	}
	f := d.Filter(func(s Sample) bool { return s.ClientID == "c1" })
	if f.Len() != 2 {
		t.Fatalf("filtered len %d", f.Len())
	}
	rtts := d.ByMetric(radio.NetB, MetricRTTMs)
	if len(rtts) != 0 {
		t.Fatalf("failed sample should be excluded from ByMetric, got %d", len(rtts))
	}
	tcps := d.ByMetric(radio.NetB, MetricTCPKbps)
	if len(tcps) != 1 || tcps[0].Value != 845.5 {
		t.Fatalf("tcps = %v", tcps)
	}
}

func TestValuesAndTimed(t *testing.T) {
	ss := sampleFixture()
	vs := Values(ss)
	if len(vs) != 3 || vs[0] != 845.5 {
		t.Fatalf("values = %v", vs)
	}
	tv := Timed(ss)
	if len(tv) != 3 || !tv[1].T.Equal(t0.Add(time.Minute)) || tv[1].V != 120 {
		t.Fatalf("timed = %v", tv)
	}
}

func TestByZoneAndThreshold(t *testing.T) {
	grid := geo.GridForZoneRadius(geo.Madison().Center(), 250)
	d := &Dataset{}
	// Anchor at a zone center so small offsets stay inside one zone.
	center := grid.Center(grid.Zone(geo.Madison().Center()))
	// 10 samples in one zone, 2 in another.
	for i := 0; i < 10; i++ {
		d.Add(Sample{Time: t0, Loc: center.Offset(float64(i*30), 30), Metric: MetricTCPKbps, Value: 1})
	}
	far := center.Offset(90, 3000)
	d.Add(Sample{Time: t0, Loc: far, Metric: MetricTCPKbps, Value: 1})
	d.Add(Sample{Time: t0, Loc: far, Metric: MetricTCPKbps, Value: 1})

	byZone := ByZone(d.Samples, grid)
	if len(byZone) < 2 {
		t.Fatalf("expected at least 2 zones, got %d", len(byZone))
	}
	big := ZonesWithAtLeast(byZone, 10)
	if len(big) != 1 {
		t.Fatalf("zones with >= 10 samples: %d", len(big))
	}
	all := ZonesWithAtLeast(byZone, 1)
	if len(all) != len(byZone) {
		t.Fatal("threshold 1 should keep all zones")
	}
	// Deterministic order.
	again := ZonesWithAtLeast(byZone, 1)
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("zone order not deterministic")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{Name: "rt"}
	d.Add(sampleFixture()...)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost samples: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.Samples {
		a, b := d.Samples[i], got.Samples[i]
		if !a.Time.Equal(b.Time) || a.Network != b.Network || a.Metric != b.Metric ||
			a.Value != b.Value || a.ClientID != b.ClientID || a.Failed != b.Failed {
			t.Fatalf("sample %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.Loc.DistanceTo(b.Loc) > 0.2 {
			t.Fatalf("sample %d location drifted %v m", i, a.Loc.DistanceTo(b.Loc))
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV("bad", strings.NewReader("not,a,trace\n")); err == nil {
		t.Fatal("expected header error")
	}
	bad := "time,lat,lon,network,metric,value,client,speed_kmh,failed\nnot-a-time,1,2,NetB,tcp_kbps,3,c,0,false\n"
	if _, err := ReadCSV("bad", strings.NewReader(bad)); err == nil {
		t.Fatal("expected time parse error")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := &Dataset{Name: "rt"}
	d.Add(sampleFixture()...)
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost samples")
	}
	if got.Samples[2].Failed != true {
		t.Fatal("failed flag lost")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL("bad", strings.NewReader("{truncated")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSortByTime(t *testing.T) {
	d := &Dataset{}
	d.Add(Sample{Time: t0.Add(time.Hour)}, Sample{Time: t0}, Sample{Time: t0.Add(time.Minute)})
	d.SortByTime()
	if !d.Samples[0].Time.Equal(t0) || !d.Samples[2].Time.Equal(t0.Add(time.Hour)) {
		t.Fatal("sort order wrong")
	}
}

func TestSummary(t *testing.T) {
	d := &Dataset{Name: "s"}
	d.Add(sampleFixture()...)
	sum := d.Summary()
	if !strings.Contains(sum, "3 samples") || !strings.Contains(sum, "2 networks") {
		t.Fatalf("summary = %q", sum)
	}
}
