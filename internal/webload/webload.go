// Package webload generates the web workloads of the paper's application
// experiments (§4.2.2): a SURGE-style pool of 1000 pages with sizes between
// 2.8 KB and 3.2 MB (Barford & Crovella's heavy-tailed object model), and
// depth-1 models of the popular sites the paper fetches (cnn, microsoft,
// youtube, amazon).
package webload

import (
	"repro/internal/rng"
)

// Page is one downloadable web object.
type Page struct {
	ID        int
	SizeBytes int
}

// Pool is a fixed pool of pages requested in experiments.
type Pool struct {
	pages []Page
}

// SURGE pool bounds (paper: "a pool of 1000 web pages with sizes between
// 2.8 KBytes and 3.2 MBytes, generated using SURGE").
const (
	SURGEPoolSize  = 1000
	SURGEMinBytes  = 2800
	SURGEMaxBytes  = 3200000
	surgeTailAlpha = 1.1 // SURGE's heavy-tail exponent for object sizes
)

// NewSURGEPool generates a deterministic SURGE-like pool of n pages with
// bounded-Pareto sizes. The same seed always yields the same pool.
func NewSURGEPool(n int, seed uint64) *Pool {
	if n <= 0 {
		n = SURGEPoolSize
	}
	r := rng.NewNamed(seed, "surge-pool")
	pages := make([]Page, n)
	for i := range pages {
		pages[i] = Page{ID: i, SizeBytes: int(r.Pareto(surgeTailAlpha, SURGEMinBytes, SURGEMaxBytes))}
	}
	return &Pool{pages: pages}
}

// Len returns the number of pages.
func (p *Pool) Len() int { return len(p.pages) }

// Page returns page i (panics if out of range, like a slice).
func (p *Pool) Page(i int) Page { return p.pages[i] }

// Pages returns all pages in ID order. Callers must not modify the result.
func (p *Pool) Pages() []Page { return p.pages }

// TotalBytes returns the pool's total size.
func (p *Pool) TotalBytes() int {
	t := 0
	for _, pg := range p.pages {
		t += pg.SizeBytes
	}
	return t
}

// RequestOrder returns a deterministic pseudo-random permutation of page
// ids, the back-to-back request sequence of the Table 6 experiment.
func (p *Pool) RequestOrder(seed uint64) []int {
	r := rng.NewNamed(seed, "request-order")
	return r.Perm(len(p.pages))
}

// Site models a popular web page fetched to depth 1: a base HTML document
// plus embedded objects (Fig. 14).
type Site struct {
	Name    string
	Objects []Page // object 0 is the base document
}

// TotalBytes returns the site's full transfer size.
func (s Site) TotalBytes() int {
	t := 0
	for _, o := range s.Objects {
		t += o.SizeBytes
	}
	return t
}

// PopularSites returns deterministic depth-1 models of the four sites in
// Fig. 14, sized to early-2011 web pages: many small objects for portal
// pages (cnn, amazon), fewer medium objects for microsoft, heavier media
// objects for youtube.
func PopularSites(seed uint64) []Site {
	build := func(name string, base int, counts []int, lo, hi float64) Site {
		r := rng.NewNamed(seed, "site-"+name)
		objects := []Page{{ID: 0, SizeBytes: base}}
		id := 1
		for _, n := range counts {
			for i := 0; i < n; i++ {
				objects = append(objects, Page{ID: id, SizeBytes: int(r.Pareto(1.3, lo, hi))})
				id++
			}
		}
		return Site{Name: name, Objects: objects}
	}
	return []Site{
		// ~90 objects, mostly small images/scripts; ~1.6 MB total.
		build("cnn", 120000, []int{90}, 3000, 120000),
		// Corporate landing page: ~25 objects, ~700 KB.
		build("microsoft", 60000, []int{25}, 4000, 150000),
		// Video thumbnails and player assets: ~35 objects, ~2.2 MB.
		build("youtube", 90000, []int{35}, 8000, 400000),
		// Dense retail portal: ~110 objects, ~2.3 MB.
		build("amazon", 150000, []int{110}, 3000, 100000),
	}
}
