package webload

import (
	"testing"
	"testing/quick"
)

func TestSURGEPoolProperties(t *testing.T) {
	p := NewSURGEPool(SURGEPoolSize, 1)
	if p.Len() != 1000 {
		t.Fatalf("pool size %d", p.Len())
	}
	small, large := 0, 0
	for i := 0; i < p.Len(); i++ {
		pg := p.Page(i)
		if pg.ID != i {
			t.Fatalf("page id %d at index %d", pg.ID, i)
		}
		if pg.SizeBytes < SURGEMinBytes || pg.SizeBytes > SURGEMaxBytes {
			t.Fatalf("page size %d outside [2.8KB, 3.2MB]", pg.SizeBytes)
		}
		if pg.SizeBytes < 50000 {
			small++
		}
		if pg.SizeBytes > 500000 {
			large++
		}
	}
	// Heavy tail: mostly small pages, a few big ones.
	if small < 600 {
		t.Fatalf("only %d/1000 pages below 50 KB; SURGE is mostly small objects", small)
	}
	if large == 0 {
		t.Fatal("no pages above 500 KB; tail missing")
	}
}

func TestSURGEPoolDeterministic(t *testing.T) {
	a := NewSURGEPool(100, 7)
	b := NewSURGEPool(100, 7)
	for i := 0; i < 100; i++ {
		if a.Page(i) != b.Page(i) {
			t.Fatal("pool not deterministic")
		}
	}
	c := NewSURGEPool(100, 8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Page(i) == c.Page(i) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds should give different pools")
	}
}

func TestSURGEPoolDefaultSize(t *testing.T) {
	p := NewSURGEPool(0, 1)
	if p.Len() != SURGEPoolSize {
		t.Fatalf("default pool size %d", p.Len())
	}
}

func TestRequestOrderIsPermutation(t *testing.T) {
	p := NewSURGEPool(200, 1)
	f := func(seed uint64) bool {
		order := p.RequestOrder(seed)
		if len(order) != 200 {
			return false
		}
		seen := make([]bool, 200)
		for _, id := range order {
			if id < 0 || id >= 200 || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytes(t *testing.T) {
	p := NewSURGEPool(1000, 1)
	total := p.TotalBytes()
	// Bounded Pareto alpha=1.1 on [2.8K, 3.2M]: mean is ~25-60 KB, so 1000
	// pages land in the tens of MB.
	if total < 10<<20 || total > 200<<20 {
		t.Fatalf("pool total %d bytes implausible", total)
	}
}

func TestPopularSites(t *testing.T) {
	sites := PopularSites(1)
	if len(sites) != 4 {
		t.Fatalf("want 4 sites, got %d", len(sites))
	}
	names := map[string]Site{}
	for _, s := range sites {
		names[s.Name] = s
		if len(s.Objects) < 10 {
			t.Fatalf("%s has only %d objects", s.Name, len(s.Objects))
		}
		if s.TotalBytes() < 100<<10 || s.TotalBytes() > 20<<20 {
			t.Fatalf("%s total %d bytes implausible", s.Name, s.TotalBytes())
		}
	}
	for _, want := range []string{"cnn", "microsoft", "youtube", "amazon"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing site %s", want)
		}
	}
	// Microsoft should be the lightest (Fig. 14 shows it completing
	// fastest).
	if names["microsoft"].TotalBytes() >= names["amazon"].TotalBytes() {
		t.Fatal("microsoft should be lighter than amazon")
	}
	// Determinism.
	again := PopularSites(1)
	for i := range sites {
		if sites[i].TotalBytes() != again[i].TotalBytes() {
			t.Fatal("sites not deterministic")
		}
	}
}
