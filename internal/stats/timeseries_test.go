package stats

import (
	"testing"
	"time"

	"repro/internal/rng"
)

var t0 = time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)

func TestBinByDuration(t *testing.T) {
	vs := []TimedValue{
		{T: t0, V: 1},
		{T: t0.Add(10 * time.Second), V: 3},
		{T: t0.Add(70 * time.Second), V: 10},
		{T: t0.Add(80 * time.Second), V: 20},
		{T: t0.Add(310 * time.Second), V: 100},
	}
	bins := BinByDuration(vs, time.Minute)
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3", len(bins))
	}
	if m := bins[0].Accum.Mean(); m != 2 {
		t.Fatalf("bin0 mean %v, want 2", m)
	}
	if m := bins[1].Accum.Mean(); m != 15 {
		t.Fatalf("bin1 mean %v, want 15", m)
	}
	if m := bins[2].Accum.Mean(); m != 100 {
		t.Fatalf("bin2 mean %v, want 100", m)
	}
	for i := 1; i < len(bins); i++ {
		if !bins[i].Start.After(bins[i-1].Start) {
			t.Fatal("bins out of order")
		}
	}
}

func TestBinByDurationUnsortedInput(t *testing.T) {
	vs := []TimedValue{
		{T: t0.Add(90 * time.Second), V: 4},
		{T: t0, V: 1},
		{T: t0.Add(30 * time.Second), V: 3},
	}
	bins := BinByDuration(vs, time.Minute)
	if len(bins) != 2 {
		t.Fatalf("got %d bins", len(bins))
	}
	if bins[0].Accum.Count() != 2 {
		t.Fatal("first bin should hold the two early samples")
	}
}

func TestBinByDurationEdge(t *testing.T) {
	if BinByDuration(nil, time.Minute) != nil {
		t.Fatal("nil input should give nil")
	}
	if BinByDuration([]TimedValue{{T: t0, V: 1}}, 0) != nil {
		t.Fatal("non-positive width should give nil")
	}
}

func TestBinMeans(t *testing.T) {
	vs := []TimedValue{
		{T: t0, V: 2},
		{T: t0.Add(time.Second), V: 4},
		{T: t0.Add(2 * time.Minute), V: 9},
	}
	means := BinMeans(vs, time.Minute)
	if len(means) != 2 || means[0] != 3 || means[1] != 9 {
		t.Fatalf("means = %v", means)
	}
}

func TestValues(t *testing.T) {
	vs := []TimedValue{{T: t0, V: 1}, {T: t0, V: 2}}
	got := Values(vs)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Values = %v", got)
	}
}

func TestSortTimed(t *testing.T) {
	vs := []TimedValue{
		{T: t0.Add(time.Hour), V: 2},
		{T: t0, V: 1},
		{T: t0.Add(time.Minute), V: 3},
	}
	SortTimed(vs)
	if vs[0].V != 1 || vs[1].V != 3 || vs[2].V != 2 {
		t.Fatalf("sort order wrong: %v", vs)
	}
}

func TestRegularSeriesFillsGaps(t *testing.T) {
	vs := []TimedValue{
		{T: t0, V: 10},
		{T: t0.Add(4 * time.Minute), V: 20},
	}
	s := RegularSeries(vs, time.Minute)
	if len(s) != 5 {
		t.Fatalf("series length %d, want 5", len(s))
	}
	want := []float64{10, 10, 10, 10, 20}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("slot %d = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestRegularSeriesAveragesWithinSlot(t *testing.T) {
	vs := []TimedValue{
		{T: t0, V: 10},
		{T: t0.Add(10 * time.Second), V: 30},
		{T: t0.Add(2 * time.Minute), V: 5},
	}
	s := RegularSeries(vs, time.Minute)
	if s[0] != 20 {
		t.Fatalf("slot 0 = %v, want 20", s[0])
	}
}

func TestRegularSeriesEdge(t *testing.T) {
	if RegularSeries(nil, time.Minute) != nil {
		t.Fatal("nil input")
	}
	if RegularSeries([]TimedValue{{T: t0, V: 1}}, 0) != nil {
		t.Fatal("bad period")
	}
	s := RegularSeries([]TimedValue{{T: t0, V: 7}}, time.Minute)
	if len(s) != 1 || s[0] != 7 {
		t.Fatalf("single sample series = %v", s)
	}
}

func TestRegularSeriesFeedsAllan(t *testing.T) {
	// End-to-end of the epoch pipeline: irregular samples -> regular series
	// -> Allan sweep. Just confirm it runs and produces a U-able curve
	// without NaNs.
	r := rng.New(11)
	var vs []TimedValue
	tm := t0
	walk := 0.0
	for i := 0; i < 5000; i++ {
		tm = tm.Add(time.Duration(5+r.Intn(20)) * time.Second)
		walk += r.NormFloat64() * 2
		vs = append(vs, TimedValue{T: tm, V: 850 + r.NormFloat64()*50 + walk})
	}
	series := RegularSeries(vs, 30*time.Second)
	pts := AllanSweep(series, LogSpacedWindows(1, len(series)/3, 15))
	if len(pts) < 5 {
		t.Fatalf("sweep too short: %d points", len(pts))
	}
	for _, p := range pts {
		if p.Deviation < 0 || p.Deviation != p.Deviation {
			t.Fatalf("bad deviation %v at window %d", p.Deviation, p.WindowSamples)
		}
	}
}

func BenchmarkBinByDuration(b *testing.B) {
	r := rng.New(12)
	vs := make([]TimedValue, 10000)
	tm := t0
	for i := range vs {
		tm = tm.Add(time.Duration(r.Intn(10)+1) * time.Second)
		vs[i] = TimedValue{T: tm, V: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BinByDuration(vs, 30*time.Minute)
	}
}

func BenchmarkAllanSweep(b *testing.B) {
	r := rng.New(13)
	series := make([]float64, 10000)
	for i := range series {
		series[i] = r.NormFloat64()
	}
	windows := LogSpacedWindows(1, 3000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AllanSweep(series, windows)
	}
}

func BenchmarkNKLDFromSamples(b *testing.B) {
	r := rng.New(14)
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Normal(870, 60)
		ys[i] = r.Normal(870, 60)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NKLDFromSamples(xs, ys, DefaultNKLDBins)
	}
}
