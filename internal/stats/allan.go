package stats

import "math"

// AllanDeviation computes the (non-overlapping) Allan deviation of a
// regularly sampled series at an averaging window of m samples:
//
//	σ_A(τ) = sqrt( Σ (T_{i+1} − T_i)² / (2 (N−1)) )
//
// where T_i are the averages of consecutive windows of m raw samples and N
// is the number of windows (paper §3.2.2). It returns 0 when fewer than two
// windows fit.
//
// WiScape picks, per zone, the averaging time τ that minimizes the Allan
// deviation of the monitored metric; that τ is the zone's epoch.
func AllanDeviation(series []float64, m int) float64 {
	if m < 1 {
		return 0
	}
	nWindows := len(series) / m
	if nWindows < 2 {
		return 0
	}
	// Window averages T_i.
	avg := make([]float64, nWindows)
	for w := 0; w < nWindows; w++ {
		sum := 0.0
		for i := w * m; i < (w+1)*m; i++ {
			sum += series[i]
		}
		avg[w] = sum / float64(m)
	}
	ss := 0.0
	for i := 1; i < nWindows; i++ {
		d := avg[i] - avg[i-1]
		ss += d * d
	}
	return math.Sqrt(ss / (2 * float64(nWindows-1)))
}

// NormalizedAllanDeviation returns AllanDeviation divided by the series
// mean, giving the dimensionless 0–1 values plotted in paper Fig. 6. It
// returns 0 when the mean is 0.
func NormalizedAllanDeviation(series []float64, m int) float64 {
	mean := Mean(series)
	if mean == 0 {
		return 0
	}
	return math.Abs(AllanDeviation(series, m) / mean)
}

// AllanPoint is one (τ, σ_A) point of an Allan deviation sweep.
type AllanPoint struct {
	WindowSamples int     // averaging window in raw samples
	Deviation     float64 // normalized Allan deviation at that window
}

// AllanSweep evaluates the normalized Allan deviation across the given
// window sizes (in raw samples), skipping windows for which fewer than two
// windows of data exist.
func AllanSweep(series []float64, windows []int) []AllanPoint {
	var out []AllanPoint
	for _, m := range windows {
		if m < 1 || len(series)/m < 2 {
			continue
		}
		out = append(out, AllanPoint{WindowSamples: m, Deviation: NormalizedAllanDeviation(series, m)})
	}
	return out
}

// MinAllanWindow returns the window size (in raw samples) minimizing the
// normalized Allan deviation over the sweep, and that minimum value. This is
// WiScape's epoch chooser. It returns (0, 0) when the sweep is empty.
func MinAllanWindow(series []float64, windows []int) (bestWindow int, bestDev float64) {
	pts := AllanSweep(series, windows)
	if len(pts) == 0 {
		return 0, 0
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Deviation < best.Deviation {
			best = p
		}
	}
	return best.WindowSamples, best.Deviation
}

// LogSpacedWindows returns window sizes spaced roughly logarithmically
// between lo and hi (inclusive), useful for Allan sweeps spanning 1–1000
// minutes as in Fig. 6. Duplicate sizes are removed.
func LogSpacedWindows(lo, hi, count int) []int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo || count < 1 {
		return nil
	}
	if count == 1 {
		return []int{lo}
	}
	out := make([]int, 0, count)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(count-1))
	prev := 0
	v := float64(lo)
	for i := 0; i < count; i++ {
		w := int(math.Round(v))
		if w > prev {
			out = append(out, w)
			prev = w
		}
		v *= ratio
	}
	return out
}
