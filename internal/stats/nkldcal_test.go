package stats

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// nkldWithEps mirrors NKLDFromSamples with an explicit smoothing value, for
// calibration probing.
func nkldWithEps(a, b []float64, bins int, eps float64) float64 {
	lo := Min(a)
	if m := Min(b); m < lo {
		lo = m
	}
	hi := Max(a)
	if m := Max(b); m > hi {
		hi = m
	}
	if hi <= lo {
		return 0
	}
	ha := NewHistogram(lo, hi, bins)
	ha.AddAll(a)
	hb := NewHistogram(lo, hi, bins)
	hb.AddAll(b)
	return NKLD(ha.Prob(eps), hb.Prob(eps))
}

// TestNKLDCalProbe prints NKLD convergence for candidate (bins, eps)
// choices against a realistic sample distribution (relative sigma ~9%).
// Run with: go test ./internal/stats -run NKLDCalProbe -v
func TestNKLDCalProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	r := rng.New(5)
	hist := make([]float64, 5000)
	for i := range hist {
		hist[i] = 900 * (1 + 0.09*r.NormFloat64())
	}
	for _, bins := range []int{5, 6, 8} {
		for _, eps := range []float64{0.02, 0.1, 0.25, 0.5} {
			line := ""
			for _, n := range []int{10, 30, 50, 80, 120, 200} {
				sum := 0.0
				for it := 0; it < 60; it++ {
					sub := make([]float64, n)
					for i := range sub {
						sub[i] = hist[r.Intn(len(hist))]
					}
					sum += nkldWithEps(sub, hist, bins, eps)
				}
				line += fmt.Sprintf(" n%d=%.3f", n, sum/60)
			}
			t.Logf("bins=%2d eps=%.2f:%s", bins, eps, line)
		}
	}
}
