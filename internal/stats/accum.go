package stats

import "math"

// Accum is an online (Welford) accumulator of count, mean and variance. The
// coordinator keeps one per zone per epoch so that sample ingestion is O(1)
// in memory regardless of campaign length. The zero value is ready to use.
type Accum struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accum) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.mean = x
		a.m2 = 0
		a.min = x
		a.max = x
		return
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// AddAll folds every value of xs into the accumulator.
func (a *Accum) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Count returns the number of samples seen.
func (a *Accum) Count() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accum) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accum) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accum) StdDev() float64 { return math.Sqrt(a.Variance()) }

// RelStdDev returns StdDev/Mean (0 when the mean is 0).
func (a *Accum) RelStdDev() float64 {
	if a.mean == 0 {
		return 0
	}
	return math.Abs(a.StdDev() / a.mean)
}

// Min returns the smallest sample seen (0 when empty).
func (a *Accum) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample seen (0 when empty).
func (a *Accum) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Merge folds another accumulator into a (parallel merge of Welford states).
func (a *Accum) Merge(b *Accum) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Reset returns the accumulator to its empty state.
func (a *Accum) Reset() { *a = Accum{} }

// Scale decays the accumulator's weight by f in (0, 1]: the count and the
// sum of squared deviations shrink proportionally while the mean, min and
// max are preserved. This is the accumulator half of the sketch-window
// decay that replaces dropping the oldest half of a raw sample buffer.
func (a *Accum) Scale(f float64) {
	if f <= 0 || f > 1 || math.IsNaN(f) || a.n == 0 {
		return
	}
	n := int64(float64(a.n) * f)
	if n < 1 {
		n = 1
	}
	a.m2 *= float64(n) / float64(a.n)
	a.n = n
}

// AccumState is the exported snapshot of an accumulator, the unit that
// sketch serialization and checkpoints persist.
type AccumState struct {
	N    int64
	Mean float64
	M2   float64
	Min  float64
	Max  float64
}

// State snapshots the accumulator.
func (a *Accum) State() AccumState {
	return AccumState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// AccumFromState rebuilds an accumulator from a snapshot. Non-finite or
// negative-count states yield an empty accumulator rather than a poisoned
// one.
func AccumFromState(s AccumState) Accum {
	if s.N <= 0 || s.M2 < 0 ||
		math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) ||
		math.IsNaN(s.M2) || math.IsInf(s.M2, 0) ||
		math.IsNaN(s.Min) || math.IsInf(s.Min, 0) ||
		math.IsNaN(s.Max) || math.IsInf(s.Max, 0) {
		return Accum{}
	}
	return Accum{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}
