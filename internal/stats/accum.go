package stats

import "math"

// Accum is an online (Welford) accumulator of count, mean and variance. The
// coordinator keeps one per zone per epoch so that sample ingestion is O(1)
// in memory regardless of campaign length. The zero value is ready to use.
type Accum struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accum) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.mean = x
		a.m2 = 0
		a.min = x
		a.max = x
		return
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// AddAll folds every value of xs into the accumulator.
func (a *Accum) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Count returns the number of samples seen.
func (a *Accum) Count() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accum) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accum) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accum) StdDev() float64 { return math.Sqrt(a.Variance()) }

// RelStdDev returns StdDev/Mean (0 when the mean is 0).
func (a *Accum) RelStdDev() float64 {
	if a.mean == 0 {
		return 0
	}
	return math.Abs(a.StdDev() / a.mean)
}

// Min returns the smallest sample seen (0 when empty).
func (a *Accum) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample seen (0 when empty).
func (a *Accum) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Merge folds another accumulator into a (parallel merge of Welford states).
func (a *Accum) Merge(b *Accum) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Reset returns the accumulator to its empty state.
func (a *Accum) Reset() { *a = Accum{} }
