package stats

import "sort"

// CDF is an empirical cumulative distribution function over a set of
// samples. Most figures in the paper are CDF plots; experiment harnesses use
// this type to emit the same series.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of underlying samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability p in [0, 1].
func (c *CDF) Quantile(p float64) float64 {
	return percentileSorted(c.sorted, p*100)
}

// CDFPoint is one (x, P(X<=x)) pair of a rendered CDF series.
type CDFPoint struct {
	X float64
	P float64
}

// Points renders the CDF as n evenly spaced points across the sample range,
// suitable for printing figure series.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo := c.sorted[0]
	hi := c.sorted[len(c.sorted)-1]
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		out[i] = CDFPoint{X: x, P: c.At(x)}
	}
	return out
}

// FractionBelow is shorthand for At: the fraction of samples <= x. Paper
// claims of the form "80% of zones have relative deviation below 4%" are
// checked with it.
func (c *CDF) FractionBelow(x float64) float64 { return c.At(x) }
