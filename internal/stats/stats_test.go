package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v, want 5", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev %v", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 || RelStdDev(nil) != 0 {
		t.Fatal("empty slice stats should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("singleton variance should be 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestRelStdDev(t *testing.T) {
	xs := []float64{100, 100, 100}
	if RelStdDev(xs) != 0 {
		t.Fatal("constant series must have zero relative deviation")
	}
	ys := []float64{90, 100, 110}
	want := StdDev(ys) / 100
	if !almostEq(RelStdDev(ys), want, 1e-12) {
		t.Fatalf("relstd %v want %v", RelStdDev(ys), want)
	}
	if RelStdDev([]float64{-1, 0, 1}) != 0 {
		t.Fatal("zero-mean series should report 0 (guard against div by zero)")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); !almostEq(p, 5.5, 1e-12) {
		t.Fatalf("p50 = %v", p)
	}
	if m := Median(xs); !almostEq(m, 5.5, 1e-12) {
		t.Fatalf("median = %v", m)
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Normal(0, 10)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); !almostEq(c, 1, 1e-12) {
		t.Fatalf("perfect positive correlation, got %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEq(c, -1, 1e-12) {
		t.Fatalf("perfect negative correlation, got %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant series correlation should be 0, got %v", c)
	}
	if c := Correlation(xs, []float64{1, 2}); c != 0 {
		t.Fatal("length mismatch should yield 0")
	}
}

func TestCorrelationIndependent(t *testing.T) {
	r := rng.New(2)
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	if c := Correlation(xs, ys); math.Abs(c) > 0.03 {
		t.Fatalf("independent streams correlation %v", c)
	}
}

func TestAccumMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		var a Accum
		a.AddAll(xs)
		if a.Count() != int64(len(xs)) {
			return false
		}
		scale := 1 + math.Abs(Mean(xs))
		if !almostEq(a.Mean(), Mean(xs), 1e-6*scale) {
			return false
		}
		vscale := 1 + Variance(xs)
		return almostEq(a.Variance(), Variance(xs), 1e-6*vscale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumMerge(t *testing.T) {
	r := rng.New(3)
	all := make([]float64, 500)
	for i := range all {
		all[i] = r.Normal(100, 15)
	}
	var whole, left, right Accum
	whole.AddAll(all)
	left.AddAll(all[:200])
	right.AddAll(all[200:])
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatal("merge lost samples")
	}
	if !almostEq(left.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if !almostEq(left.Variance(), whole.Variance(), 1e-6) {
		t.Fatalf("merged variance %v vs %v", left.Variance(), whole.Variance())
	}
	if !almostEq(left.Min(), whole.Min(), 0) || !almostEq(left.Max(), whole.Max(), 0) {
		t.Fatal("merged min/max wrong")
	}
}

func TestAccumMergeEmpty(t *testing.T) {
	var a, b Accum
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

func TestAccumMinMaxReset(t *testing.T) {
	var a Accum
	a.AddAll([]float64{3, -1, 7, 2})
	if a.Min() != -1 || a.Max() != 7 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 || a.Min() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.Len() != 5 {
		t.Fatal("len")
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(3); got != 0.6 {
		t.Fatalf("At(3) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 5 {
		t.Fatalf("Quantile(1) = %v", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Normal(0, 5)
	}
	c := NewCDF(xs)
	pts := c.Points(50)
	if len(pts) != 50 {
		t.Fatalf("Points returned %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P || pts[i].X < pts[i-1].X {
			t.Fatal("CDF points not monotone")
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatal("CDF should reach 1 at the max sample")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Points(10) != nil {
		t.Fatal("empty CDF should be all zeros")
	}
}

func TestAllanConstantSeries(t *testing.T) {
	series := make([]float64, 1000)
	for i := range series {
		series[i] = 42
	}
	for _, m := range []int{1, 5, 50} {
		if d := AllanDeviation(series, m); d != 0 {
			t.Fatalf("constant series Allan dev at m=%d is %v", m, d)
		}
	}
}

func TestAllanWhiteNoiseDecreases(t *testing.T) {
	// For white noise the Allan deviation falls like 1/sqrt(m).
	r := rng.New(5)
	series := make([]float64, 200000)
	for i := range series {
		series[i] = r.NormFloat64()
	}
	d1 := AllanDeviation(series, 1)
	d16 := AllanDeviation(series, 16)
	d256 := AllanDeviation(series, 256)
	if !(d1 > d16 && d16 > d256) {
		t.Fatalf("white noise Allan dev should decrease: %v, %v, %v", d1, d16, d256)
	}
	ratio := d1 / d16
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("expected ~4x drop from m=1 to m=16, got %v", ratio)
	}
}

func TestAllanRandomWalkIncreases(t *testing.T) {
	// For a random walk the Allan deviation grows with averaging time.
	r := rng.New(6)
	series := make([]float64, 100000)
	x := 0.0
	for i := range series {
		x += r.NormFloat64()
		series[i] = x
	}
	d4 := AllanDeviation(series, 4)
	d64 := AllanDeviation(series, 64)
	if d64 <= d4 {
		t.Fatalf("random walk Allan dev should increase: m=4 %v, m=64 %v", d4, d64)
	}
}

func TestAllanMinAtNoiseDriftCrossover(t *testing.T) {
	// White noise + slow random walk has a U-shaped Allan curve; the chosen
	// window should be neither the smallest nor the largest. This is exactly
	// the structure WiScape exploits to pick epochs.
	r := rng.New(7)
	n := 60000
	series := make([]float64, n)
	walk := 0.0
	for i := range series {
		walk += r.NormFloat64() * 0.01
		series[i] = 100 + r.NormFloat64()*5 + walk
	}
	windows := LogSpacedWindows(1, 8000, 25)
	best, dev := MinAllanWindow(series, windows)
	if best <= windows[0] {
		t.Fatalf("best window %d should exceed the minimum (noise should average out)", best)
	}
	if best >= windows[len(windows)-1] {
		t.Fatalf("best window %d should be below the maximum (drift should dominate)", best)
	}
	if dev <= 0 {
		t.Fatalf("minimum deviation should be positive, got %v", dev)
	}
}

func TestAllanSweepSkipsShortWindows(t *testing.T) {
	series := []float64{1, 2, 3, 4}
	pts := AllanSweep(series, []int{1, 2, 3, 100})
	for _, p := range pts {
		if p.WindowSamples == 3 || p.WindowSamples == 100 {
			t.Fatalf("window %d should have been skipped (fewer than 2 windows)", p.WindowSamples)
		}
	}
}

func TestNormalizedAllanZeroMean(t *testing.T) {
	if d := NormalizedAllanDeviation([]float64{-1, 1, -1, 1}, 1); d != 0 {
		t.Fatalf("zero-mean normalization should return 0, got %v", d)
	}
}

func TestLogSpacedWindows(t *testing.T) {
	ws := LogSpacedWindows(1, 1000, 20)
	if ws[0] != 1 {
		t.Fatalf("first window %d", ws[0])
	}
	if ws[len(ws)-1] != 1000 {
		t.Fatalf("last window %d", ws[len(ws)-1])
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatal("windows must be strictly increasing")
		}
	}
	if LogSpacedWindows(10, 5, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
	if got := LogSpacedWindows(5, 100, 1); len(got) != 1 || got[0] != 5 {
		t.Fatal("count=1 should return just lo")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0.5, 1, 3, 5, 7, 9, 9.9})
	if h.Total() != 7 {
		t.Fatalf("total %v", h.Total())
	}
	// Out-of-range values clamp.
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] < 3 { // 0.5, 1, -5
		t.Fatalf("clamped low count %v", h.Counts[0])
	}
	if h.Counts[4] < 3 { // 9, 9.9, 100
		t.Fatalf("clamped high count %v", h.Counts[4])
	}
	p := h.Prob(0)
	if !almostEq(Sum(p), 1, 1e-12) {
		t.Fatalf("probabilities sum to %v", Sum(p))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if h := Entropy(uniform); !almostEq(h, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy %v, want ln4", h)
	}
	point := []float64{1, 0, 0, 0}
	if h := Entropy(point); h != 0 {
		t.Fatalf("point mass entropy %v, want 0", h)
	}
}

func TestKLDIdentity(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	if d := KLD(p, p); d != 0 {
		t.Fatalf("KLD(p,p) = %v", d)
	}
	if d := NKLD(p, p); d != 0 {
		t.Fatalf("NKLD(p,p) = %v", d)
	}
}

func TestKLDInfOnMissingSupport(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{1, 0, 0}
	if d := KLD(p, q); !math.IsInf(d, 1) {
		t.Fatalf("expected +Inf, got %v", d)
	}
}

func TestNKLDSymmetric(t *testing.T) {
	p := []float64{0.1, 0.4, 0.5}
	q := []float64{0.3, 0.3, 0.4}
	if !almostEq(NKLD(p, q), NKLD(q, p), 1e-12) {
		t.Fatal("NKLD must be symmetric")
	}
	if NKLD(p, q) <= 0 {
		t.Fatal("NKLD of distinct distributions must be positive")
	}
}

func TestNKLDDegenerateEntropy(t *testing.T) {
	point := []float64{1, 0}
	other := []float64{0.5, 0.5}
	if d := NKLD(point, point); d != 0 {
		t.Fatalf("identical point masses: %v", d)
	}
	if d := NKLD(point, other); !math.IsInf(d, 1) {
		t.Fatalf("point vs spread should be +Inf, got %v", d)
	}
}

func TestNKLDFromSamplesConvergence(t *testing.T) {
	// Two sample sets from the same distribution: NKLD must fall below the
	// paper's 0.1 threshold as the sample count grows. This is the property
	// that makes WiScape's sample-count selection (Fig. 7) work.
	r := rng.New(8)
	reference := make([]float64, 20000)
	for i := range reference {
		reference[i] = r.Normal(870, 60) // NetB-like UDP throughput in Kbps
	}
	draw := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r.Normal(870, 60)
		}
		return out
	}
	small := NKLDFromSamples(draw(5), reference, DefaultNKLDBins)
	big := NKLDFromSamples(draw(2000), reference, DefaultNKLDBins)
	if big >= small {
		t.Fatalf("NKLD should shrink with more samples: n=5 %v, n=2000 %v", small, big)
	}
	if big > NKLDSimilarityThreshold {
		t.Fatalf("2000 same-distribution samples should pass the 0.1 threshold, got %v", big)
	}
}

func TestNKLDFromSamplesDistinguishes(t *testing.T) {
	r := rng.New(9)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = r.Normal(870, 60)
		b[i] = r.Normal(1240, 60) // a genuinely different network
	}
	if d := NKLDFromSamples(a, b, DefaultNKLDBins); d < 0.5 {
		t.Fatalf("clearly different distributions should have large NKLD, got %v", d)
	}
}

func TestNKLDFromSamplesEdge(t *testing.T) {
	if d := NKLDFromSamples(nil, []float64{1}, 10); !math.IsInf(d, 1) {
		t.Fatalf("empty input should be +Inf, got %v", d)
	}
	if d := NKLDFromSamples([]float64{5, 5}, []float64{5, 5, 5}, 10); d != 0 {
		t.Fatalf("identical constants should be 0, got %v", d)
	}
}
