package stats

import "math"

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// clamp into the first/last bin so that no probability mass is lost when two
// sample sets with slightly different supports are compared.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
// It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Add folds x into the histogram.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// AddAll folds every value of xs into the histogram.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples added.
func (h *Histogram) Total() float64 {
	return Sum(h.Counts)
}

// Prob returns the histogram normalized to a probability distribution with
// additive (Laplace) smoothing eps per bin, so that KLD terms never divide
// by zero. eps <= 0 disables smoothing.
func (h *Histogram) Prob(eps float64) []float64 {
	if eps < 0 {
		eps = 0
	}
	total := h.Total() + eps*float64(len(h.Counts))
	p := make([]float64, len(h.Counts))
	if total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = (c + eps) / total
	}
	return p
}

// Entropy returns H(p) = Σ p · log(1/p) in nats, skipping zero-probability
// bins.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}

// KLD returns the paper's absolute-value Kullback–Leibler divergence
// D(p‖q) = Σ p·|log(p/q)| (§3.3). Bins where p is zero contribute nothing;
// bins where q is zero but p is not make the divergence +Inf (callers should
// smooth first via Histogram.Prob).
func KLD(p, q []float64) float64 {
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if i >= len(q) || q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Abs(math.Log(p[i]/q[i]))
	}
	return d
}

// NKLD returns the symmetric normalized Kullback–Leibler divergence of
// paper §3.3:
//
//	NKLD(p, q) = ½ ( D(p‖q)/H(p) + D(q‖p)/H(q) )
//
// A value at or below 0.1 is the paper's threshold for "the two
// distributions are similar". Degenerate inputs (zero entropy: all mass in
// one bin) yield 0 when the distributions are identical and +Inf otherwise.
func NKLD(p, q []float64) float64 {
	hp := Entropy(p)
	hq := Entropy(q)
	dpq := KLD(p, q)
	dqp := KLD(q, p)
	if hp == 0 || hq == 0 {
		if dpq == 0 && dqp == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (dpq/hp + dqp/hq) / 2
}

// NKLDSimilarityThreshold is the paper's NKLD cut-off below which two sample
// distributions are considered statistically similar.
const NKLDSimilarityThreshold = 0.1

// DefaultNKLDBins is the histogram resolution used when comparing sample
// distributions.
const DefaultNKLDBins = 20

// NKLDFromSamples bins two sample sets over their common range and returns
// their NKLD. A small Laplace smoothing keeps the divergence finite for
// disjoint supports. Empty inputs return +Inf (nothing is similar to no
// data).
func NKLDFromSamples(a, b []float64, bins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	if bins < 1 {
		bins = DefaultNKLDBins
	}
	lo := math.Min(Min(a), Min(b))
	hi := math.Max(Max(a), Max(b))
	if hi <= lo {
		// All values identical: identical point distributions.
		return 0
	}
	ha := NewHistogram(lo, hi, bins)
	ha.AddAll(a)
	hb := NewHistogram(lo, hi, bins)
	hb.AddAll(b)
	const eps = 0.5 // Jeffreys-style smoothing
	return NKLD(ha.Prob(eps), hb.Prob(eps))
}
