package stats

import (
	"sort"
	"time"
)

// TimedValue is a metric observation at an instant, the unit of WiScape's
// temporal analysis.
type TimedValue struct {
	T time.Time
	V float64
}

// SortTimed orders vs by timestamp in place.
func SortTimed(vs []TimedValue) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].T.Before(vs[j].T) })
}

// Bin is the aggregate of the observations falling into one time bin.
type Bin struct {
	Start time.Time
	Accum Accum
}

// BinByDuration groups vs (any order) into consecutive bins of the given
// width starting at the first observation's bin boundary, and returns the
// non-empty bins in time order. The paper aggregates Spot data into 30-min
// ("coarse") and 10-s ("fine") bins this way (§3.2.1, Table 4).
func BinByDuration(vs []TimedValue, width time.Duration) []Bin {
	if len(vs) == 0 || width <= 0 {
		return nil
	}
	byIdx := make(map[int64]*Bin)
	for _, v := range vs {
		idx := v.T.UnixNano() / int64(width)
		b, ok := byIdx[idx]
		if !ok {
			b = &Bin{Start: time.Unix(0, idx*int64(width)).UTC()}
			byIdx[idx] = b
		}
		b.Accum.Add(v.V)
	}
	out := make([]Bin, 0, len(byIdx))
	for _, b := range byIdx {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// BinMeans returns the per-bin means of BinByDuration, the series most
// figure harnesses consume.
func BinMeans(vs []TimedValue, width time.Duration) []float64 {
	bins := BinByDuration(vs, width)
	out := make([]float64, len(bins))
	for i := range bins {
		out[i] = bins[i].Accum.Mean()
	}
	return out
}

// Values extracts the raw metric values from vs.
func Values(vs []TimedValue) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.V
	}
	return out
}

// RegularSeries resamples vs onto a regular grid of the given period: each
// grid slot takes the mean of the observations in it; empty slots carry the
// previous value forward (and the first non-empty value backward). Allan
// deviation requires a regularly sampled series; opportunistic client data
// is not regular, so this adapter bridges the two.
func RegularSeries(vs []TimedValue, period time.Duration) []float64 {
	if len(vs) == 0 || period <= 0 {
		return nil
	}
	sorted := append([]TimedValue(nil), vs...)
	SortTimed(sorted)
	start := sorted[0].T
	end := sorted[len(sorted)-1].T
	n := int(end.Sub(start)/period) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, v := range sorted {
		i := int(v.T.Sub(start) / period)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		sums[i] += v.V
		counts[i]++
	}
	out := make([]float64, n)
	last := 0.0
	seeded := false
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			last = sums[i] / float64(counts[i])
			seeded = true
		}
		out[i] = last
	}
	if !seeded {
		return nil
	}
	// Backfill any leading slots before the first observation (cannot occur
	// given start = first timestamp, but kept for safety with clock skew).
	return out
}
