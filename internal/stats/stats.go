// Package stats implements the statistical machinery of the WiScape paper:
// descriptive statistics and relative standard deviation (zone sizing,
// §3.1), Allan deviation (epoch selection, §3.2.2), entropy and the
// symmetric normalized Kullback–Leibler divergence (sample-count selection,
// §3.3), correlation coefficients (mobility validation, §2), CDFs and
// time-binned series (most figures).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RelStdDev returns the relative standard deviation (standard deviation
// divided by mean), the zone-homogeneity measure of paper §3.1. It returns 0
// when the mean is 0.
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Abs(StdDev(xs) / m)
}

// Min returns the smallest value (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ.
// The paper uses this to show latency is uncorrelated with vehicle speed
// (Fig. 2: |cc| < 0.16 in 95% of zones).
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
