// Package telemetry is the dependency-free observability substrate of the
// WiScape serving stack: a metrics registry of atomic counters, gauges and
// fixed-bucket histograms organized into labeled families, plus Prometheus
// text-format and JSON exposition and an ops HTTP server (ops.go).
//
// Two properties drive the design:
//
//   - Hot-path cost. Instrumented code resolves a (family, label values)
//     pair to a concrete *Counter/*Gauge/*Histogram once, up front, and the
//     per-event cost is then a single atomic add — no map lookups, no
//     allocation, no lock on the ingest path.
//
//   - Optionality. Every method is safe on a nil receiver: a nil *Registry
//     hands out nil families, which hand out nil instruments, whose Add /
//     Set / Observe are no-ops. Library code can therefore instrument
//     unconditionally and let callers who never pass a registry pay nothing
//     but a predicted-not-taken branch.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

// Family kinds, mirroring the Prometheus metric types we expose.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is a fully functional no-op.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
	// names preserves registration order for stable iteration before the
	// exposition sort (families are sorted by name at scrape time anyway,
	// but deterministic internal order keeps duplicate detection simple).
	names []string
}

// family is one named metric family with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only; ascending upper bounds

	fn func() float64 // callback gauge; exclusive with series

	mu     sync.RWMutex
	series map[string]*series
	order  []*series
}

// series is one labeled time series within a family.
type series struct {
	labelVals []string

	// val holds the counter value (integer semantics, stored as float64
	// bits so counters and gauges share exposition) or the gauge value.
	val atomicFloat

	// Histogram state: per-bucket (non-cumulative) counts, +Inf overflow
	// bucket at index len(buckets), total count, and sum of observations.
	hcounts []atomic.Uint64
	hcount  atomic.Uint64
	hsum    atomicFloat
}

// atomicFloat is a float64 with atomic Add/Set/Load built on CAS over the
// IEEE-754 bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family registers (or fetches, if already registered with an identical
// schema) a family. Mismatched re-registration panics: that is a coding
// error, not a runtime condition.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	if name == "" {
		panic("telemetry: metric family needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: family %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	sort.Float64s(f.buckets)
	r.fams[name] = f
	r.names = append(r.names, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ f *family }

// GaugeVec is a family of gauges (settable, can go down).
type GaugeVec struct{ f *family }

// HistogramVec is a family of fixed-bucket histograms.
type HistogramVec struct{ f *family }

// Counter registers (or fetches) a counter family. Follow the Prometheus
// convention of a _total suffix for event counts.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, KindCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := r.family(name, help, KindGauge, labels, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// Histogram registers (or fetches) a histogram family with the given
// ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	f := r.family(name, help, KindHistogram, labels, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time
// — for derived values like "seconds since the last checkpoint" that would
// otherwise need a background updater. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, KindGauge, nil, nil)
	f.fn = fn
}

// DefBuckets is a general-purpose latency bucket ladder in seconds,
// spanning 100µs..10s.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// seriesFor resolves one labeled series, creating it on first use.
func (f *family) seriesFor(labelVals []string) *series {
	if f == nil {
		return nil
	}
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x1f")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.kind == KindHistogram {
		s.hcounts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter is one resolved counter series. Nil-safe.
type Counter struct{ s *series }

// With resolves the series for the given label values (creating it on
// first use). Resolve once and keep the result: With takes a lock, the
// returned instrument does not.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.seriesFor(labelVals)}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d; negative deltas are ignored (counters
// are monotone by contract).
func (c *Counter) Add(d float64) {
	if c == nil || c.s == nil || d < 0 {
		return
	}
	c.s.val.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.val.Load()
}

// Gauge is one resolved gauge series. Nil-safe.
type Gauge struct{ s *series }

// With resolves the series for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.seriesFor(labelVals)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Store(v)
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return g.s.val.Load()
}

// Histogram is one resolved histogram series. Nil-safe.
type Histogram struct {
	s       *series
	buckets []float64
}

// With resolves the series for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{s: v.f.seriesFor(labelVals), buckets: v.f.buckets}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	// Binary search for the first bucket whose upper bound admits v; the
	// ladder is short, but log2(16)=4 comparisons beats 16 on the hot path.
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.hcounts[i].Add(1)
	h.s.hcount.Add(1)
	h.s.hsum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.hcount.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.hsum.Load()
}
