package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// OpsOptions configures an ops-plane HTTP server.
type OpsOptions struct {
	// Registry backs /metrics (text format) and /metrics.json. Nil serves
	// empty (but valid) expositions.
	Registry *Registry

	// Ready backs /readyz: nil means "ready as soon as the server is up".
	// /healthz is pure liveness and always returns 200 while serving.
	Ready func() bool

	// Status, when set, supersedes Ready with a richer /readyz: ok selects
	// the status code (200/503) and detail becomes the body, so a probe can
	// distinguish "ok" from "degraded: region served by replica" without a
	// separate endpoint. Degraded-but-serving states return 200 — readiness
	// gates routing, and a degraded tier still serves.
	Status func() (ok bool, detail string)

	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// OpsServer is the operations HTTP plane: /metrics, /metrics.json,
// /healthz, /readyz, and net/http/pprof under /debug/pprof/. It is
// deliberately separate from the client-facing protocol listener so that
// scraping, health probes and profiling never contend with (or get
// confused for) protocol traffic, and so it can bind a private interface.
type OpsServer struct {
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
	logf   func(string, ...any)
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewOpsServer binds addr (e.g. "127.0.0.1:0"), installs the standard
// endpoints, and starts serving in the background. Additional endpoints
// (like the coordinator's zone query API) can be added with Handle before
// the first request arrives.
func NewOpsServer(addr string, opts OpsOptions) (*OpsServer, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &OpsServer{
		ln:   ln,
		mux:  mux,
		logf: opts.Logf,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := opts.Registry.WritePrometheus(w); err != nil {
			s.logf("telemetry: /metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Registry.WriteJSON(w); err != nil {
			s.logf("telemetry: /metrics.json: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Status != nil {
			ok, detail := opts.Status()
			if detail == "" {
				detail = "ok"
			}
			if !ok {
				http.Error(w, detail, http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, detail)
			return
		}
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// net/http/pprof self-registers only on http.DefaultServeMux; wire its
	// handlers onto our private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("telemetry: ops server: %v", err)
		}
	}()
	return s, nil
}

// Handle installs an additional endpoint. Patterns use net/http.ServeMux
// syntax (method prefixes and {wildcards} included).
func (s *OpsServer) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// HandleFunc is Handle for plain functions.
func (s *OpsServer) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	if s == nil {
		return
	}
	s.mux.HandleFunc(pattern, h)
}

// Addr returns the bound listen address (useful with ":0").
func (s *OpsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://<addr>" for the bound listener.
func (s *OpsServer) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close gracefully drains in-flight requests (bounded at 2s, long enough
// for a scrape, short enough not to stall coordinator shutdown), then
// closes the listener. Idempotent and nil-safe.
func (s *OpsServer) Close() error {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Shutdown timed out with requests still in flight; hard-close.
		err = s.srv.Close()
	}
	s.wg.Wait()
	return err
}
