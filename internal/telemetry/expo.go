package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP and TYPE line
// each, histograms expanded into cumulative _bucket/_sum/_count series.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// sortedFamilies returns the families in name order; nil-safe.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]*family, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.fams[name])
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) writePrometheus(w io.Writer) error {
	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

	if f.fn != nil {
		fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.fn()))
		_, err := io.WriteString(w, b.String())
		return err
	}

	f.mu.RLock()
	series := append([]*series(nil), f.order...)
	f.mu.RUnlock()

	for _, s := range series {
		switch f.kind {
		case KindHistogram:
			// Bucket counts are stored per-bucket; the text format wants
			// them cumulative, ending at the implicit +Inf bucket.
			var cum uint64
			for i, ub := range f.buckets {
				cum += s.hcounts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, labelString(f.labels, s.labelVals, "le", formatValue(ub)), cum)
			}
			cum += s.hcounts[len(f.buckets)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n",
				f.name, labelString(f.labels, s.labelVals, "", ""), formatValue(s.hsum.Load()))
			fmt.Fprintf(&b, "%s_count%s %d\n",
				f.name, labelString(f.labels, s.labelVals, "", ""), s.hcount.Load())
		default:
			fmt.Fprintf(&b, "%s%s %s\n",
				f.name, labelString(f.labels, s.labelVals, "", ""), formatValue(s.val.Load()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}, appending one extra pair when extraK is
// non-empty (the histogram "le" bound). Empty label sets render as "".
func labelString(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonFamily is the JSON exposition shape of one family.
type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   string       `json:"kind"`
	Series []jsonSeries `json:"series"`
}

// jsonSeries is one series: a scalar value for counters/gauges, or
// buckets/sum/count for histograms.
type jsonSeries struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // upper bound -> cumulative count
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// WriteJSON renders the registry as a JSON document — the same data as
// WritePrometheus for consumers that would rather not parse text format.
// A nil registry writes an empty family list.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := []jsonFamily{}
	for _, f := range r.sortedFamilies() {
		jf := jsonFamily{Name: f.name, Help: f.help, Kind: f.kind.String(), Series: []jsonSeries{}}
		if f.fn != nil {
			v := f.fn()
			jf.Series = append(jf.Series, jsonSeries{Value: &v})
			fams = append(fams, jf)
			continue
		}
		f.mu.RLock()
		series := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		for _, s := range series {
			js := jsonSeries{}
			if len(f.labels) > 0 {
				js.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					js.Labels[n] = s.labelVals[i]
				}
			}
			if f.kind == KindHistogram {
				buckets := make(map[string]uint64, len(f.buckets)+1)
				var cum uint64
				for i, ub := range f.buckets {
					cum += s.hcounts[i].Load()
					buckets[formatValue(ub)] = cum
				}
				cum += s.hcounts[len(f.buckets)].Load()
				buckets["+Inf"] = cum
				sum, count := s.hsum.Load(), s.hcount.Load()
				js.Buckets, js.Sum, js.Count = buckets, &sum, &count
			} else {
				v := s.val.Load()
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		fams = append(fams, jf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Families []jsonFamily `json:"families"`
	}{fams})
}
