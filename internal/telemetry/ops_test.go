package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "demo").With().Add(9)
	var ready atomic.Bool

	s, err := NewOpsServer("127.0.0.1:0", OpsOptions{
		Registry: r,
		Ready:    ready.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, s.URL()+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	ready.Store(true)
	if code, _ := get(t, s.URL()+"/readyz"); code != 200 {
		t.Errorf("/readyz after ready = %d, want 200", code)
	}
	if code, body := get(t, s.URL()+"/metrics"); code != 200 || !strings.Contains(body, "demo_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, s.URL()+"/metrics.json"); code != 200 || !strings.Contains(body, `"demo_total"`) {
		t.Errorf("/metrics.json = %d %q", code, body)
	}
	if code, body := get(t, s.URL()+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}

	// Extra endpoints (the coordinator's zone API uses this hook).
	s.HandleFunc("GET /api/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	})
	if code, body := get(t, s.URL()+"/api/v1/ping"); code != 200 || body != "pong" {
		t.Errorf("extra handler = %d %q", code, body)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Nil ops server: every method is a safe no-op.
	var nilSrv *OpsServer
	nilSrv.Handle("/x", nil)
	if nilSrv.Addr() != "" || nilSrv.URL() != "" || nilSrv.Close() != nil {
		t.Fatal("nil OpsServer not inert")
	}
}
