package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ingested_total", "samples ingested").With()
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}

	g := r.Gauge("active_clients", "clients").With()
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("requests_total", "requests by type", "type")
	v.With("hello").Add(2)
	v.With("zone_report").Inc()
	v.With("hello").Inc() // same series as the first With
	if got := v.With("hello").Value(); got != 3 {
		t.Fatalf(`requests{type="hello"} = %v, want 3`, got)
	}
	if got := v.With("zone_report").Value(); got != 1 {
		t.Fatalf(`requests{type="zone_report"} = %v, want 1`, got)
	}
}

func TestRegisterIdempotentAndSchemaChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.With().Inc()
	if got := b.With().Value(); got != 1 {
		t.Fatalf("re-registered family not shared: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("schema-changing re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}).With()
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 0.005 and 0.01 both land in le="0.01" (le is inclusive).
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", "kind").With(`odd"label\value`).Add(2)
	r.Gauge("a_gauge", "multi\nline help").With().Set(1.5)
	r.GaugeFunc("c_age_seconds", "derived", func() float64 { return 42 })

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge",
		"# HELP a_gauge multi\\nline help",
		"a_gauge 1.5",
		"# TYPE b_total counter",
		`b_total{kind="odd\"label\\value"} 2`,
		"# TYPE c_age_seconds gauge",
		"c_age_seconds 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if ai, bi := strings.Index(out, "a_gauge"), strings.Index(out, "b_total"); ai > bi {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "n").With().Add(3)
	r.Histogram("h_seconds", "h", []float64{1}).With().Observe(0.5)

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []struct {
			Name   string `json:"name"`
			Kind   string `json:"kind"`
			Series []struct {
				Value   *float64          `json:"value"`
				Buckets map[string]uint64 `json:"buckets"`
				Count   *uint64           `json:"count"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Families))
	}
	if doc.Families[1].Name != "n_total" || *doc.Families[1].Series[0].Value != 3 {
		t.Fatalf("bad counter family: %+v", doc.Families[1])
	}
	hist := doc.Families[0]
	if hist.Kind != "histogram" || hist.Series[0].Buckets["1"] != 1 || *hist.Series[0].Count != 1 {
		t.Fatalf("bad histogram family: %+v", hist)
	}
}

// TestNilRegistryIsNoOp is the contract that lets every layer instrument
// unconditionally: a nil registry and everything it hands out must be
// usable and free of side effects.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "a").With()
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("b", "b", "label").With("x")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("c_seconds", "c", nil).With()
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	r.GaugeFunc("d", "d", func() float64 { return 1 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WritePrometheus: err=%v out=%q", err, buf.String())
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestConcurrentUse hammers one registry from many goroutines — the race
// detector is the assertion; the totals are the sanity check.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "hits", "shard").With("s1")
			h := r.Histogram("obs_seconds", "obs", []float64{0.5}).With()
			g := r.Gauge("level", "level").With()
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(0.25)
				g.Add(1)
				var buf strings.Builder
				if j%100 == 0 {
					_ = r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "hits", "shard").With("s1").Value(); got != goroutines*perG {
		t.Fatalf("hits = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("obs_seconds", "obs", []float64{0.5}).With().Count(); got != goroutines*perG {
		t.Fatalf("observations = %d, want %d", got, goroutines*perG)
	}
}
