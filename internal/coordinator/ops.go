package coordinator

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ZoneEstimate is the ops-plane JSON view of one zone statistic: what an
// operator (or a dashboard) sees when asking a live coordinator what it
// currently believes about a zone.
type ZoneEstimate struct {
	Zone    string          `json:"zone"` // "x:y", the ZoneID rendering
	Network radio.NetworkID `json:"network"`
	Metric  trace.Metric    `json:"metric"`

	Mean    float64 `json:"mean"`
	StdDev  float64 `json:"stddev"`
	Samples int64   `json:"samples"`

	// P50/P90/P99 come from the epoch's quantile sketch (internal/sketch):
	// the distribution's shape, not just its first two moments.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`

	// EpochSeconds is the zone's current estimation epoch length;
	// TotalSamples counts every sample ever ingested for the key.
	EpochSeconds float64 `json:"epoch_seconds"`
	TotalSamples int64   `json:"total_samples"`

	// UpdatedAt is when the estimate was last published (the zero time
	// while the first epoch is still accumulating); StalenessSeconds is
	// its age at query time, -1 when never published.
	UpdatedAt        time.Time `json:"updated_at"`
	StalenessSeconds float64   `json:"staleness_seconds"`
}

// zonesReply is the /api/v1/zones response envelope.
type zonesReply struct {
	GeneratedAt time.Time      `json:"generated_at"`
	Estimates   []ZoneEstimate `json:"estimates"`
}

// installOpsEndpoints wires the coordinator's read-only query API onto the
// ops server:
//
//	GET /api/v1/zones                 all live estimates
//	GET /api/v1/zones?network=N&metric=M   filtered
//	GET /api/v1/zones/{id}            one zone ("x:y"), 404 if unknown
func (s *Server) installOpsEndpoints(ops *telemetry.OpsServer) {
	ops.HandleFunc("GET /api/v1/zones", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ests := s.zoneEstimates(nil, radio.NetworkID(q.Get("network")), trace.Metric(q.Get("metric")))
		writeJSON(w, http.StatusOK, zonesReply{GeneratedAt: time.Now(), Estimates: ests})
	})
	ops.HandleFunc("GET /api/v1/zones/{id}", func(w http.ResponseWriter, r *http.Request) {
		zone, err := parseZoneID(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		ests := s.zoneEstimates(&zone, "", "")
		if len(ests) == 0 {
			writeJSON(w, http.StatusNotFound, map[string]string{
				"error": fmt.Sprintf("zone %s has no tracked statistics", zone),
			})
			return
		}
		writeJSON(w, http.StatusOK, zonesReply{GeneratedAt: time.Now(), Estimates: ests})
	})
}

// zoneEstimates builds the live view: the controller's View (a snapshot
// without serialized sketches — no per-scrape serialization cost) supplies
// the key universe, epoch lengths and published records, and keys whose
// first epoch has not closed yet fall back to Estimate's running sketch so
// a freshly started coordinator is not invisible to its operator.
func (s *Server) zoneEstimates(zone *geo.ZoneID, net radio.NetworkID, metric trace.Metric) []ZoneEstimate {
	now := time.Now()
	snap := s.Controller().View(now)
	out := []ZoneEstimate{}
	for _, e := range snap.Entries {
		if zone != nil && e.Key.Zone != *zone {
			continue
		}
		if net != "" && e.Key.Net != net {
			continue
		}
		if metric != "" && e.Key.Metric != metric {
			continue
		}
		ze := ZoneEstimate{
			Zone:             e.Key.Zone.String(),
			Network:          e.Key.Net,
			Metric:           e.Key.Metric,
			EpochSeconds:     e.EpochSeconds,
			TotalSamples:     e.TotalCount,
			StalenessSeconds: -1,
		}
		rec := e.Record
		if rec == nil {
			// Not published yet; serve the running accumulator if any.
			if live, ok := s.Controller().Estimate(e.Key); ok {
				rec = &live
			}
		}
		if rec != nil {
			ze.Mean = rec.MeanValue
			ze.StdDev = rec.StdDev
			ze.Samples = rec.Samples
			ze.P50 = rec.P50
			ze.P90 = rec.P90
			ze.P99 = rec.P99
			ze.UpdatedAt = rec.UpdatedAt
			if !rec.UpdatedAt.IsZero() {
				ze.StalenessSeconds = now.Sub(rec.UpdatedAt).Seconds()
			}
		}
		out = append(out, ze)
	}
	return out
}

// parseZoneID parses the "x:y" path form of a ZoneID.
func parseZoneID(s string) (geo.ZoneID, error) {
	xs, ys, ok := strings.Cut(s, ":")
	if !ok {
		return geo.ZoneID{}, fmt.Errorf("bad zone id %q: want \"x:y\"", s)
	}
	x, errX := strconv.ParseInt(xs, 10, 32)
	y, errY := strconv.ParseInt(ys, 10, 32)
	if errX != nil || errY != nil {
		return geo.ZoneID{}, fmt.Errorf("bad zone id %q: want \"x:y\"", s)
	}
	return geo.ZoneID{X: int32(x), Y: int32(y)}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
