package coordinator

import (
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// coordMetrics holds the coordinator's resolved telemetry instruments.
// Every field is nil-safe, so the request path updates them
// unconditionally; a coordinator without a registry pays nothing.
type coordMetrics struct {
	samplesIngested *telemetry.Counter
	zoneReports     *telemetry.Counter
	tasksAssigned   *telemetry.Counter
	dispatchSec     *telemetry.Histogram
	protoErrors     *telemetry.Counter
	connsAccepted   *telemetry.Counter
	idleDisconnects *telemetry.Counter
	forwarded       *telemetry.Counter

	// requests is pre-resolved per known message type (label lookups take
	// a lock; the dispatch path must not), with a catch-all for unknowns.
	requests      map[wire.MsgType]*telemetry.Counter
	requestsOther *telemetry.Counter

	wire *wire.Metrics
}

// newCoordMetrics registers the coordinator families on reg. The
// active-clients gauge is computed at scrape time from the live registry
// via clientCount, so there is no update site to forget.
func newCoordMetrics(reg *telemetry.Registry, clientCount func() int, droppedAlerts func() int64) *coordMetrics {
	reg.GaugeFunc("wiscape_coordinator_active_clients",
		"Clients currently registered with the coordinator.",
		func() float64 { return float64(clientCount()) })
	reg.GaugeFunc("wiscape_coordinator_alerts_dropped_total",
		"Alerts overwritten unread because the controller's alert ring was full.",
		func() float64 { return float64(droppedAlerts()) })
	reqs := reg.Counter("wiscape_coordinator_requests_total",
		"Protocol requests dispatched, by message type.", "type")
	byType := make(map[wire.MsgType]*telemetry.Counter)
	for _, t := range []wire.MsgType{
		wire.TypeHello, wire.TypeZoneReport, wire.TypeSampleReport,
		wire.TypeEstimateRequest, wire.TypeZoneListRequest,
	} {
		byType[t] = reqs.With(string(t))
	}
	return &coordMetrics{
		samplesIngested: reg.Counter("wiscape_coordinator_samples_ingested_total",
			"Measurement samples accepted into the controller.").With(),
		zoneReports: reg.Counter("wiscape_coordinator_zone_reports_total",
			"Zone reports received from clients.").With(),
		tasksAssigned: reg.Counter("wiscape_coordinator_tasks_assigned_total",
			"Measurement tasks handed out by the probabilistic scheduler.").With(),
		dispatchSec: reg.Histogram("wiscape_coordinator_dispatch_seconds",
			"Request dispatch latency (decode excluded, encode excluded).", nil).With(),
		protoErrors: reg.Counter("wiscape_coordinator_protocol_errors_total",
			"Requests answered with a protocol error.").With(),
		connsAccepted: reg.Counter("wiscape_coordinator_connections_total",
			"Client connections accepted.").With(),
		idleDisconnects: reg.Counter("wiscape_coordinator_idle_disconnects_total",
			"Connections dropped for exceeding the idle timeout.").With(),
		forwarded: reg.Counter("wiscape_coordinator_forwarded_requests_total",
			"Requests relayed by a cluster gateway (wire Via metadata set).").With(),
		requests:      byType,
		requestsOther: reqs.With("other"),
		wire:          wire.NewMetrics(reg),
	}
}

// request returns the per-type request counter (nil-safe on a nil
// receiver, for uninstrumented servers).
func (m *coordMetrics) request(t wire.MsgType) *telemetry.Counter {
	if m == nil {
		return nil
	}
	if c, ok := m.requests[t]; ok {
		return c
	}
	return m.requestsOther
}
