package coordinator

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
)

// httpGet fetches one ops-plane URL and returns status + body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// driveProtocol runs hello + one zone report + one bulk sample report
// through a live server, returning the zone the samples landed in.
func driveProtocol(t *testing.T, s *Server, clientID string, n int) geo.ZoneID {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	defer c.Close()
	if _, err := c.Request(wire.Envelope{Type: wire.TypeHello,
		Hello: &wire.Hello{ClientID: clientID, DeviceClass: "laptop"}}); err != nil {
		t.Fatal(err)
	}
	loc := geo.Madison().Center()
	if _, err := c.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
		ClientID: clientID, Zone: s.Controller().ZoneOf(loc), Loc: loc, At: start,
	}}); err != nil {
		t.Fatal(err)
	}
	samples := make([]trace.Sample, n)
	for i := range samples {
		samples[i] = trace.Sample{
			Time: start.Add(time.Duration(i) * time.Minute), Loc: loc,
			Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900,
		}
	}
	ack, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: clientID, Samples: samples}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != wire.TypeSampleAck || ack.SampleAck.Accepted != n {
		t.Fatalf("ack %+v", ack)
	}
	return s.Controller().ZoneOf(loc)
}

// TestOpsPlaneEndToEnd is the acceptance smoke test: boot a durable
// coordinator with an ops address, drive agent traffic through the wire
// protocol, then scrape /metrics and the zone API and check both reflect
// the traffic.
func TestOpsPlaneEndToEnd(t *testing.T) {
	s := newServer(t, Options{
		Seed:    seed,
		DataDir: t.TempDir(),
		Fsync:   store.FsyncPolicy{EveryRecords: 1},
		OpsAddr: "127.0.0.1:0",
	})
	base := "http://" + s.OpsAddr()

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := httpGet(t, base+"/readyz"); code != 200 {
		t.Errorf("/readyz = %d, want 200", code)
	}

	zone := driveProtocol(t, s, "smoke-1", 50)
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	code, metrics := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	// Families the acceptance criteria name, with the values traffic must
	// have moved.
	for _, want := range []string{
		"# TYPE wiscape_coordinator_samples_ingested_total counter",
		"wiscape_coordinator_samples_ingested_total 50",
		"# TYPE wiscape_coordinator_tasks_assigned_total counter",
		"# TYPE wiscape_coordinator_active_clients gauge",
		"wiscape_coordinator_active_clients 1",
		"wiscape_coordinator_zone_reports_total 1",
		"# TYPE wiscape_store_wal_appends_total counter",
		"wiscape_store_wal_appends_total 50",
		"# TYPE wiscape_store_wal_fsync_seconds histogram",
		"# TYPE wiscape_store_checkpoint_age_seconds gauge",
		"wiscape_store_checkpoints_total 1",
		"# TYPE wiscape_coordinator_dispatch_seconds histogram",
		`wiscape_coordinator_requests_total{type="sample_report"} 1`,
		`wiscape_wire_messages_total{dir="decode"} 3`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "wiscape_store_wal_fsync_seconds_count 5") {
		// 50 appends with fsync=always plus the rotation/close syncs; exact
		// count depends on segment layout, so just require a moving counter.
		if !strings.Contains(metrics, "wiscape_store_wal_fsync_seconds_count") {
			t.Errorf("/metrics missing fsync latency count:\n%s", metrics)
		}
	}

	// The dispatch histogram must have observed the three requests.
	if !strings.Contains(metrics, "wiscape_coordinator_dispatch_seconds_count 3") {
		t.Errorf("dispatch histogram did not observe 3 requests")
	}

	// JSON exposition decodes.
	if code, body := httpGet(t, base+"/metrics.json"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/metrics.json = %d, valid=%v", code, json.Valid([]byte(body)))
	}

	// pprof is mounted.
	if code, _ := httpGet(t, base+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	// Zone API: list view contains our zone...
	var list struct {
		Estimates []ZoneEstimate `json:"estimates"`
	}
	code, body := httpGet(t, base+"/api/v1/zones")
	if code != 200 {
		t.Fatalf("/api/v1/zones = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("/api/v1/zones JSON: %v", err)
	}
	if len(list.Estimates) == 0 {
		t.Fatalf("/api/v1/zones returned no estimates: %s", body)
	}

	// ...and the per-zone view agrees with the controller.
	code, body = httpGet(t, fmt.Sprintf("%s/api/v1/zones/%s", base, zone))
	if code != 200 {
		t.Fatalf("/api/v1/zones/%s = %d (%s)", zone, code, body)
	}
	var one struct {
		Estimates []ZoneEstimate `json:"estimates"`
	}
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	want, ok := s.Controller().Estimate(core.Key{Zone: zone, Net: radio.NetB, Metric: trace.MetricUDPKbps})
	if !ok {
		t.Fatal("controller has no estimate for the driven zone")
	}
	found := false
	for _, e := range one.Estimates {
		if e.Network == radio.NetB && e.Metric == trace.MetricUDPKbps {
			found = true
			if e.Zone != zone.String() || e.Mean != want.MeanValue || e.Samples != want.Samples {
				t.Errorf("zone API %+v disagrees with controller %+v", e, want)
			}
			if e.TotalSamples != 50 {
				t.Errorf("total_samples = %d, want 50", e.TotalSamples)
			}
			// The sketch-backed quantile fields are populated and ordered.
			if e.P50 != want.P50 || e.P90 != want.P90 || e.P99 != want.P99 {
				t.Errorf("quantiles %v/%v/%v disagree with controller %v/%v/%v",
					e.P50, e.P90, e.P99, want.P50, want.P90, want.P99)
			}
			if e.P50 <= 0 || e.P50 > e.P90 || e.P90 > e.P99 {
				t.Errorf("quantiles %v/%v/%v not positive and non-decreasing", e.P50, e.P90, e.P99)
			}
		}
	}
	if !found {
		t.Fatalf("zone %s missing NetB/udp estimate: %s", zone, body)
	}

	// Unknown zone -> 404; malformed id -> 400.
	if code, _ := httpGet(t, base+"/api/v1/zones/9999:9999"); code != http.StatusNotFound {
		t.Errorf("unknown zone = %d, want 404", code)
	}
	if code, _ := httpGet(t, base+"/api/v1/zones/not-a-zone"); code != http.StatusBadRequest {
		t.Errorf("bad zone id = %d, want 400", code)
	}
}

// TestOpsServerClosesWithServer: Close integrates ops-plane shutdown — the
// port must be released and further scrapes refused.
func TestOpsServerClosesWithServer(t *testing.T) {
	s := newServer(t, Options{Seed: seed, OpsAddr: "127.0.0.1:0"})
	addr := s.OpsAddr()
	if code, _ := httpGet(t, "http://"+addr+"/healthz"); code != 200 {
		t.Fatalf("healthz before close = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("ops plane still serving after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestScrapeDuringIngest exercises the registry's concurrency contract in
// situ: several clients hammer sample reports while scrapers pull /metrics
// and the zone API. The race detector is the primary assertion.
func TestScrapeDuringIngest(t *testing.T) {
	s := newServer(t, Options{Seed: seed, DataDir: t.TempDir(), OpsAddr: "127.0.0.1:0"})
	base := "http://" + s.OpsAddr()
	loc := geo.Madison().Center()

	const clients, reports, perReport = 4, 20, 10
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			c := wire.NewConn(nc)
			defer c.Close()
			id := fmt.Sprintf("ingester-%d", ci)
			if _, err := c.Request(wire.Envelope{Type: wire.TypeHello,
				Hello: &wire.Hello{ClientID: id, DeviceClass: "laptop"}}); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < reports; r++ {
				samples := make([]trace.Sample, perReport)
				for i := range samples {
					samples[i] = trace.Sample{
						Time: start.Add(time.Duration(r*perReport+i) * time.Second), Loc: loc,
						Network: radio.NetB, Metric: trace.MetricRTTMs, Value: 120,
					}
				}
				if _, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
					SampleReport: &wire.SampleReport{ClientID: id, Samples: samples}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ci)
	}
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(base + "/api/v1/zones")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				_ = s.CheckpointNow()
			}
		}()
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	_, metrics := httpGet(t, base+"/metrics")
	want := fmt.Sprintf("wiscape_coordinator_samples_ingested_total %d", clients*reports*perReport)
	if !strings.Contains(metrics, want) {
		t.Fatalf("after concurrent ingest, /metrics missing %q", want)
	}
}
