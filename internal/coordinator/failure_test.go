package coordinator

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Failure-injection tests: the coordinator is an open network service and
// must shrug off hostile, buggy and half-dead clients without corrupting
// its estimates or going down.

func dial(t *testing.T, s *Server) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNaNSamplesDoNotPoisonEstimates(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	c := dial(t, s)
	loc := geo.Madison().Center()

	poisoned := []trace.Sample{
		{Time: start, Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: math.NaN()},
		{Time: start, Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: math.Inf(1)},
		{Time: start, Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900},
	}
	reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: "evil", Samples: poisoned}})
	// NaN/Inf are not representable in JSON: the whole report must be
	// rejected at the wire layer, not half-applied.
	if err == nil && reply.Type == wire.TypeSampleAck {
		// If the codec let them through, the controller must have dropped
		// the garbage.
		rec, ok := s.Controller().EstimateAt(loc, radio.NetB, trace.MetricUDPKbps)
		if ok && (math.IsNaN(rec.MeanValue) || math.IsInf(rec.MeanValue, 0)) {
			t.Fatalf("estimate poisoned: %v", rec.MeanValue)
		}
	}
	// Either way the server stays healthy for the next client.
	c2 := dial(t, s)
	r2, err := c2.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "ok", DeviceClass: "l"}})
	if err != nil || r2.Type != wire.TypeHelloAck {
		t.Fatalf("server unhealthy after NaN report: %v %v", r2.Type, err)
	}
}

func TestSlowlorisClientDoesNotBlockOthers(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	// A client that connects and sends one byte, then stalls.
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_, _ = nc.Write([]byte("{"))

	// Other clients are served concurrently.
	done := make(chan error, 1)
	go func() {
		c := dial(t, s)
		_, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "fast", DeviceClass: "l"}})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healthy client blocked: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy client starved behind a stalled one")
	}
}

func TestHalfCloseMidReport(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Send a truncated JSON line and slam the connection.
	_, _ = nc.Write([]byte(`{"type":"sample_report","sample_report":{"client_id":"x","samples":[{"t":"2010-`))
	_ = nc.Close()

	// Server keeps serving.
	c := dial(t, s)
	r, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "after", DeviceClass: "l"}})
	if err != nil || r.Type != wire.TypeHelloAck {
		t.Fatalf("server unhealthy after half-close: %v %v", r.Type, err)
	}
}

func TestZoneReportFloodFromManyFakeClients(t *testing.T) {
	s := newServer(t, Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: time.Minute,
		Seed:         seed,
	})
	c := dial(t, s)
	loc := geo.Madison().Center()
	zone := s.Controller().ZoneOf(loc)
	// One connection claims to be 200 different clients in one zone; the
	// scheduler should dilute per-client task probability rather than
	// amplify work.
	tasked := 0
	for i := 0; i < 200; i++ {
		reply, err := c.Request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
			ClientID: "sybil-" + strings.Repeat("x", i%5) + string(rune('a'+i%26)),
			Zone:     zone, Loc: loc, At: start.Add(time.Duration(i) * time.Second),
			Networks: []radio.NetworkID{radio.NetB},
		}})
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if reply.Type != wire.TypeTaskList {
			t.Fatalf("unexpected reply %v", reply.Type)
		}
		tasked += len(reply.TaskList.Tasks)
	}
	if tasked == 200 {
		t.Fatal("scheduler tasked every sybil; probability did not dilute with claimed population")
	}
}

func TestClockSkewedSamplesAccepted(t *testing.T) {
	// Samples from the distant past or future must not crash epoch
	// arithmetic (clients have bad clocks).
	s := newServer(t, Options{Seed: seed})
	c := dial(t, s)
	loc := geo.Madison().Center()
	skewed := []trace.Sample{
		{Time: time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC), Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900},
		{Time: time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC), Loc: loc, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 905},
	}
	reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: "skew", Samples: skewed}})
	if err != nil || reply.Type != wire.TypeSampleAck {
		t.Fatalf("skewed report rejected: %v %v", reply.Type, err)
	}
}

func TestAbsurdCoordinatesContained(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	c := dial(t, s)
	bad := []trace.Sample{
		{Time: start, Loc: geo.Point{Lat: 89.999, Lon: 179.999}, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900},
		{Time: start, Loc: geo.Point{Lat: -89.999, Lon: -179.999}, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900},
	}
	reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: "gps-glitch", Samples: bad}})
	if err != nil || reply.Type != wire.TypeSampleAck {
		t.Fatalf("report failed: %v %v", reply.Type, err)
	}
	// The samples land in far-away zones but Madison zones stay clean.
	if _, ok := s.Controller().EstimateAt(geo.Madison().Center(), radio.NetB, trace.MetricUDPKbps); ok {
		t.Fatal("GPS-glitch samples must not contaminate local zones")
	}
}
