package coordinator

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

const seed = 6066

var start = time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)

func newServer(t *testing.T, opts Options) *Server {
	t.Helper()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	s, err := Serve(ctrl, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestHelloRegistersClient(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	defer c.Close()
	reply, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "x", DeviceClass: "laptop"}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeHelloAck || reply.HelloAck.TaskIntervalSec <= 0 {
		t.Fatalf("reply %+v", reply)
	}
	if s.ClientCount() != 1 {
		t.Fatalf("client count %d", s.ClientCount())
	}
}

func TestBadHelloRejected(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, _ := net.Dial("tcp", s.Addr())
	c := wire.NewConn(nc)
	defer c.Close()
	reply, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeError {
		t.Fatalf("want error reply, got %v", reply.Type)
	}
	// Connection should now be closed by the server.
	if _, err := c.Recv(); err == nil {
		t.Fatal("connection should be closed after protocol error")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, _ := net.Dial("tcp", s.Addr())
	c := wire.NewConn(nc)
	defer c.Close()
	reply, err := c.Request(wire.Envelope{Type: wire.TypeEstimateReply})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeError {
		t.Fatalf("want error, got %v", reply.Type)
	}
}

func TestSampleIngestion(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, _ := net.Dial("tcp", s.Addr())
	c := wire.NewConn(nc)
	defer c.Close()

	loc := geo.Madison().Center()
	samples := make([]trace.Sample, 50)
	for i := range samples {
		samples[i] = trace.Sample{
			Time: start.Add(time.Duration(i) * time.Minute), Loc: loc,
			Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900,
		}
	}
	reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: "bulk", Samples: samples}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeSampleAck || reply.SampleAck.Accepted != 50 {
		t.Fatalf("ack %+v", reply)
	}
	// The estimate should now be queryable.
	zone := s.Controller().ZoneOf(loc)
	er, err := c.Request(wire.Envelope{Type: wire.TypeEstimateRequest,
		EstimateRequest: &wire.EstimateRequest{Zone: zone, Network: radio.NetB, Metric: trace.MetricUDPKbps}})
	if err != nil {
		t.Fatal(err)
	}
	if !er.EstimateReply.Found || er.EstimateReply.Record.MeanValue != 900 {
		t.Fatalf("estimate %+v", er.EstimateReply)
	}
}

func TestEndToEndCampaign(t *testing.T) {
	// Three static agents + the coordinator over real TCP; after a simulated
	// day, estimates should approximate the radio ground truth.
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	s := newServer(t, Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: 30 * time.Second,
		Seed:         seed,
	})
	grid := s.Controller().Grid()

	// All three agents share one zone: with abundant clients the scheduler
	// must task each only a fraction of the time (expected p =
	// 100 samples / (3 clients x 60 rounds/epoch) ~ 0.55).
	site := geo.MadisonStaticSites()[0]
	sites := []geo.Point{site, site, site}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	statsOut := make([]agent.Stats, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &agent.Agent{
				ID:          "static-" + string(rune('a'+i)),
				DeviceClass: "laptop-usb-modem",
				Track:       mobility.Static{P: sites[i]},
				Env:         env,
				Networks:    []radio.NetworkID{radio.NetB},
				Seed:        seed,
				Grid:        grid,
			}
			statsOut[i], errs[i] = a.Run(s.Addr(), start, 6*time.Hour, 30*time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	totalSamples := 0
	for i, st := range statsOut {
		if st.Rounds == 0 {
			t.Fatalf("agent %d never reported a zone", i)
		}
		totalSamples += st.SamplesSent
	}
	if totalSamples == 0 {
		t.Fatal("no samples collected end to end")
	}
	// The scheduler should NOT have tasked every round: minimalism is the
	// whole point (288 rounds per agent, budget 100 per epoch zone-wide).
	for i, st := range statsOut {
		if st.TasksExecuted >= st.Rounds {
			t.Fatalf("agent %d was tasked every single round (%d/%d); scheduler not probabilistic",
				i, st.TasksExecuted, st.Rounds)
		}
	}

	// Estimates approximate ground truth where we have data.
	checked := 0
	for _, site := range sites {
		reply, err := agent.QueryEstimate(s.Addr(), grid.Zone(site), radio.NetB, trace.MetricUDPKbps)
		if err != nil {
			t.Fatal(err)
		}
		if !reply.Found {
			continue
		}
		truth := env.Field(radio.NetB).At(site, start.Add(12*time.Hour)).CapacityKbps
		rel := (reply.Record.MeanValue - truth) / truth
		if rel < -0.35 || rel > 0.35 {
			t.Fatalf("estimate %v vs truth %v (%.0f%% off)", reply.Record.MeanValue, truth, rel*100)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no zone produced a queryable estimate")
	}
}

func TestAgentInactivePlatform(t *testing.T) {
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	s := newServer(t, Options{Networks: []radio.NetworkID{radio.NetB}, Seed: seed})
	bus := mobility.NewTransitBus(geo.MadisonBusRoutes(), seed, 0)
	a := &agent.Agent{
		ID: "bus", Track: bus, Env: env,
		Networks: []radio.NetworkID{radio.NetB},
		Seed:     seed, Grid: s.Controller().Grid(),
	}
	// Run entirely inside the garage window (midnight to 5am).
	st, err := a.Run(s.Addr(), start.Add(-9*time.Hour), 5*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.Skipped == 0 {
		t.Fatalf("garaged bus should skip all rounds: %+v", st)
	}
}

func TestServerSurvivesClientCrash(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	// Open a connection, send garbage, drop it.
	nc, _ := net.Dial("tcp", s.Addr())
	_, _ = nc.Write([]byte("garbage that is not json\n"))
	_ = nc.Close()

	// The server must still serve new clients.
	nc2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc2)
	defer c.Close()
	reply, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "ok", DeviceClass: "l"}})
	if err != nil || reply.Type != wire.TypeHelloAck {
		t.Fatalf("server unhealthy after client crash: %v %v", reply.Type, err)
	}
}

func TestCloseUnblocksAccept(t *testing.T) {
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	s, err := Serve(ctrl, "127.0.0.1:0", Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}

func TestZoneListQuery(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, _ := net.Dial("tcp", s.Addr())
	c := wire.NewConn(nc)
	defer c.Close()

	// Populate two zones.
	loc1 := geo.Madison().Center()
	loc2 := loc1.Offset(90, 2000)
	var samples []trace.Sample
	for i := 0; i < 40; i++ {
		at := start.Add(time.Duration(i) * time.Minute)
		samples = append(samples,
			trace.Sample{Time: at, Loc: loc1, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 900},
			trace.Sample{Time: at, Loc: loc2, Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 1200})
	}
	if _, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: "z", Samples: samples}}); err != nil {
		t.Fatal(err)
	}

	reply, err := c.Request(wire.Envelope{Type: wire.TypeZoneListRequest,
		ZoneListRequest: &wire.ZoneListRequest{Network: radio.NetB, Metric: trace.MetricUDPKbps}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeZoneListReply {
		t.Fatalf("reply %v", reply.Type)
	}
	recs := reply.ZoneListReply.Records
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// Deterministic zone order, values preserved.
	vals := map[float64]bool{}
	for _, r := range recs {
		vals[r.MeanValue] = true
	}
	if !vals[900] || !vals[1200] {
		t.Fatalf("records wrong: %+v", recs)
	}
	// Wrong metric: empty but well-formed.
	reply, err = c.Request(wire.Envelope{Type: wire.TypeZoneListRequest,
		ZoneListRequest: &wire.ZoneListRequest{Network: radio.NetB, Metric: trace.MetricRTTMs}})
	if err != nil || reply.Type != wire.TypeZoneListReply || len(reply.ZoneListReply.Records) != 0 {
		t.Fatalf("empty query broken: %v %v", reply.Type, err)
	}
}

func TestAgentResilientSurvivesCoordinatorRestart(t *testing.T) {
	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	opts := Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: time.Minute,
		Seed:         seed,
	}
	s1, err := Serve(ctrl, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()

	a := &agent.Agent{
		ID:          "resilient",
		DeviceClass: "laptop",
		Track:       mobility.Static{P: geo.MadisonStaticSites()[0]},
		Env:         env,
		Networks:    []radio.NetworkID{radio.NetB},
		Seed:        seed,
		Grid:        ctrl.Grid(),
		// Fast backoff so redials during the restart window finish well
		// inside the test budget.
		RetryBackoff: rng.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	}

	type result struct {
		st  agent.Stats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := a.RunResilient(addr, start, 4*time.Hour, time.Minute, 50)
		done <- result{st, err}
	}()

	// Let it run a bit, kill the coordinator, then restart on the same
	// address with a fresh (snapshot-restored, in real life) controller.
	time.Sleep(300 * time.Millisecond)
	snap := ctrl.Snapshot(start)
	_ = s1.Close()
	time.Sleep(100 * time.Millisecond)
	ctrl2 := core.Restore(snap)
	var s2 *Server
	for i := 0; i < 50; i++ { // the port may linger briefly
		s2, err = Serve(ctrl2, addr, opts)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("resilient agent gave up: %v", res.err)
	}
	if res.st.Rounds < 200 {
		t.Fatalf("agent only completed %d/240 rounds across the restart", res.st.Rounds)
	}
	if res.st.SamplesSent == 0 {
		t.Fatal("no samples survived the restart")
	}
}

// TestIdleTimeoutDropsSilentClients proves dead clients cannot pin handler
// goroutines: a connection that goes quiet is closed after IdleTimeout,
// while one that keeps talking inside the window stays up.
func TestIdleTimeoutDropsSilentClients(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newServer(t, Options{Seed: seed, IdleTimeout: 150 * time.Millisecond, Telemetry: reg})

	dial := func() *wire.Conn {
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := wire.NewConn(nc)
		t.Cleanup(func() { _ = c.Close() })
		if _, err := c.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "idle", DeviceClass: "laptop"}}); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// An active client outlives several timeout windows.
	active := dial()
	for i := 0; i < 4; i++ {
		time.Sleep(80 * time.Millisecond)
		if _, err := active.Request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{ClientID: "idle", DeviceClass: "laptop"}}); err != nil {
			t.Fatalf("active client dropped on round %d: %v", i, err)
		}
	}

	// A silent client is disconnected: its next Recv fails once the server
	// closes the connection.
	silent := dial()
	_ = silent.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := silent.Recv(); err == nil {
		t.Fatal("silent connection survived the idle timeout")
	}
	if v := reg.Counter("wiscape_coordinator_idle_disconnects_total", "").With().Value(); v < 1 {
		t.Fatalf("idle disconnect counter %v, want >= 1", v)
	}
}
