// Package coordinator implements the WiScape measurement coordinator as a
// network server: it registers clients, receives their coarse zone reports,
// hands out probabilistic measurement task lists sized to each zone's needs
// (§3.4), ingests the resulting samples into a core.Controller, and answers
// estimate queries from applications.
package coordinator

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/replication"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Options configures a coordinator server.
type Options struct {
	// Networks and Metrics to monitor; defaults: all three networks, UDP
	// throughput and RTT.
	Networks []radio.NetworkID
	Metrics  []trace.Metric

	// TaskInterval is the zone-report/task cadence expected from clients.
	TaskInterval time.Duration

	// IdleTimeout drops client connections that send nothing for this
	// long, so dead clients cannot pin handler goroutines forever. Zero
	// disables (the historical behavior); cmd/wiscape-coordinator defaults
	// it to 2 minutes.
	IdleTimeout time.Duration

	// Seed drives the probabilistic task assignment.
	Seed uint64

	// DataDir enables the durable sample store (internal/store): ingested
	// samples are journaled to a write-ahead log before the controller sees
	// them, and the controller's published state is checkpointed on a
	// timer. On Serve, any existing state in the directory is recovered
	// (newest valid checkpoint + WAL tail replay) and the recovered
	// controller replaces the one passed to Serve — read it back via
	// Server.Controller(). Empty disables persistence.
	DataDir string

	// CheckpointInterval is the cadence of background checkpoints when
	// DataDir is set. Zero means the 1-minute default; negative disables
	// the timer (checkpoints then only happen via CheckpointNow).
	CheckpointInterval time.Duration

	// CheckpointKeep, Fsync and SegmentMaxBytes tune the store; zero
	// values take the store's defaults.
	CheckpointKeep  int
	Fsync           store.FsyncPolicy
	SegmentMaxBytes int64

	// Telemetry receives coordinator, store and wire metrics. Nil (the
	// default) disables instrumentation entirely — existing library users
	// pay nothing and configure nothing.
	Telemetry *telemetry.Registry

	// OpsAddr, when non-empty, starts the operations HTTP plane on that
	// address (e.g. "127.0.0.1:9090"): /metrics, /metrics.json, /healthz,
	// /readyz, net/http/pprof, and the read-only /api/v1/zones query API.
	// If Telemetry is nil a private registry is created for it, so
	// OpsAddr alone is enough to get a fully instrumented server.
	OpsAddr string

	// ServerID names this coordinator in status replies and replication
	// handshakes. Default "wiscape-coordinator".
	ServerID string

	// ReplicationAddr, when non-empty, opens a WAL replication listener on
	// that address (requires DataDir): replicas attach here to bootstrap
	// from a snapshot and tail the log. Every node of a replicated shard
	// sets it — a replica's listener serves its mirrored log the moment it
	// is promoted.
	ReplicationAddr string

	// ReplicateFrom, when non-empty, starts this coordinator as a replica
	// of the given primary replication address: it serves reads, rejects
	// sample reports, and tails the primary's log until promoted.
	ReplicateFrom string

	// ForceResync makes a starting replica discard local state and
	// bootstrap from a fresh primary snapshot even when its own WAL could
	// resume — the demote/rejoin path, where local history may have
	// diverged.
	ForceResync bool

	// SyncReplication withholds sample acks until a replica has
	// acknowledged the report's last LSN (semi-synchronous replication):
	// an acked sample then survives the primary's death. Only enforced
	// while at least one replica is attached, so a lone primary keeps
	// accepting writes.
	SyncReplication bool

	// SyncTimeout bounds the semi-synchronous wait. Default 2s.
	SyncTimeout time.Duration

	// EnableAdmin installs the mutating ops endpoints (POST
	// /api/v1/admin/suspend and /resume) the chaos harness uses to
	// simulate shard death without killing the process.
	EnableAdmin bool

	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if len(o.Networks) == 0 {
		o.Networks = radio.AllNetworks
	}
	if o.Telemetry == nil && o.OpsAddr != "" {
		o.Telemetry = telemetry.NewRegistry()
	}
	if len(o.Metrics) == 0 {
		o.Metrics = []trace.Metric{trace.MetricUDPKbps, trace.MetricRTTMs}
	}
	if o.TaskInterval <= 0 {
		o.TaskInterval = 5 * time.Minute
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = time.Minute
	}
	if o.ServerID == "" {
		o.ServerID = "wiscape-coordinator"
	}
	if o.SyncTimeout <= 0 {
		o.SyncTimeout = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// clientState is the registry entry for one connected client.
type clientState struct {
	id       string
	device   string
	lastZone geo.ZoneID
	lastSeen time.Time
	hasZone  bool
}

// Server is a running coordinator.
type Server struct {
	ctrl  atomic.Pointer[core.Controller] // swapped wholesale on replica bootstrap
	opts  Options
	ln    net.Listener
	store *store.Store         // nil without Options.DataDir
	ops   *telemetry.OpsServer // nil without Options.OpsAddr
	met   *coordMetrics
	addr  string // first bound protocol address; stable across Suspend/Resume

	// ingestMu serializes the journal+ingest pair against snapshot capture:
	// a snapshot taken under it is exactly the state at the LSN read under
	// it, which both checkpointing and replica bootstrap depend on.
	ingestMu sync.Mutex

	mu        sync.Mutex
	clients   map[string]*clientState
	conns     map[net.Conn]struct{}
	r         *rng.Rand
	closed    bool
	suspended bool

	// Replication role state, guarded by mu. Exactly one of src/rep is
	// active at a time; both nil means replication is off.
	role  string
	epoch uint64
	src   *replication.Source
	rep   *replication.Replica

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Serve starts a coordinator on addr (e.g. "127.0.0.1:0") and returns once
// it is listening. With Options.DataDir set, durable state is recovered
// first: the newest valid checkpoint replaces ctrl and the WAL tail is
// replayed into it, so published records and in-progress epochs survive a
// restart.
func Serve(ctrl *core.Controller, addr string, opts Options) (*Server, error) {
	opts.fill()
	var st *store.Store
	if opts.DataDir != "" {
		var err error
		st, err = store.Open(opts.DataDir, store.Options{
			SegmentMaxBytes: opts.SegmentMaxBytes,
			Fsync:           opts.Fsync,
			CheckpointKeep:  opts.CheckpointKeep,
			Telemetry:       opts.Telemetry,
			Logf:            opts.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("coordinator: open store: %w", err)
		}
		rec := st.Recovery()
		if rec.Snapshot != nil {
			ctrl = core.Restore(*rec.Snapshot)
		}
		for _, smp := range rec.Tail {
			ctrl.Ingest(smp)
		}
		if rec.Snapshot != nil || len(rec.Tail) > 0 {
			opts.Logf("coordinator: recovered from %s: checkpoint lsn %d (%d entries) + %d WAL tail samples",
				opts.DataDir, rec.CheckpointLSN, recoveredEntries(rec.Snapshot), len(rec.Tail))
		}
		if rec.CorruptCheckpoints > 0 || rec.CorruptRecords > 0 || rec.TruncatedBytes > 0 {
			opts.Logf("coordinator: recovery tolerated damage: %d corrupt checkpoints, %d corrupt WAL records, %d torn bytes truncated",
				rec.CorruptCheckpoints, rec.CorruptRecords, rec.TruncatedBytes)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if st != nil {
			if cerr := st.Close(); cerr != nil {
				opts.Logf("coordinator: closing store after listen failure: %v", cerr)
			}
		}
		return nil, fmt.Errorf("coordinator: listen %s: %w", addr, err)
	}
	s := &Server{
		opts:    opts,
		ln:      ln,
		addr:    ln.Addr().String(),
		store:   st,
		clients: make(map[string]*clientState),
		conns:   make(map[net.Conn]struct{}),
		r:       rng.NewNamed(opts.Seed, "coordinator-tasks"),
		stop:    make(chan struct{}),
	}
	s.ctrl.Store(ctrl)
	if err := s.startReplication(); err != nil {
		_ = ln.Close()
		if st != nil {
			if cerr := st.Close(); cerr != nil {
				opts.Logf("coordinator: closing store after replication failure: %v", cerr)
			}
		}
		return nil, err
	}
	s.met = newCoordMetrics(opts.Telemetry, s.ClientCount,
		func() int64 { return s.Controller().DroppedAlerts() })
	if opts.OpsAddr != "" {
		ops, err := telemetry.NewOpsServer(opts.OpsAddr, telemetry.OpsOptions{
			Registry: opts.Telemetry,
			Ready:    s.ready,
			Logf:     opts.Logf,
		})
		if err != nil {
			_ = ln.Close()
			if st != nil {
				if cerr := st.Close(); cerr != nil {
					opts.Logf("coordinator: closing store after ops failure: %v", cerr)
				}
			}
			return nil, fmt.Errorf("coordinator: %w", err)
		}
		s.ops = ops
		s.installOpsEndpoints(ops)
		if opts.EnableAdmin {
			s.installAdminEndpoints(ops)
		}
		opts.Logf("coordinator: ops plane listening on %s", ops.Addr())
	}
	s.wg.Add(1)
	go s.acceptLoop(ln)
	if st != nil && opts.CheckpointInterval > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// ready backs /readyz: the coordinator is ready from the moment Serve
// returns (recovery done, listener up) until Close begins, except while
// chaos-suspended (the listener is down, so routing to it would fail).
func (s *Server) ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && !s.suspended
}

func recoveredEntries(snap *core.Snapshot) int {
	if snap == nil {
		return 0
	}
	return len(snap.Entries)
}

// Addr returns the listening address (stable across Suspend/Resume).
func (s *Server) Addr() string { return s.addr }

// OpsAddr returns the ops HTTP plane's bound address, "" when disabled.
func (s *Server) OpsAddr() string { return s.ops.Addr() }

// Telemetry returns the metrics registry backing this server (nil when the
// server is uninstrumented).
func (s *Server) Telemetry() *telemetry.Registry { return s.opts.Telemetry }

// Controller exposes the underlying estimator state. On a replica the
// controller is replaced wholesale by a snapshot bootstrap, so callers must
// not cache the returned pointer across requests.
func (s *Server) Controller() *core.Controller { return s.ctrl.Load() }

// Close stops accepting, closes every active connection (a stalled client
// must not hold shutdown hostage), waits for handlers to finish, drains
// the ops HTTP plane, then flushes and closes the durable store. Safe to
// call more than once, and safe against in-flight sample ingests: handlers
// racing Close either journal their samples before the final flush or
// observe store.ErrClosed.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	// Snapshot under the lock, sever after releasing it: Close on a
	// net.Conn can block, and lockio forbids holding s.mu across it.
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	for _, nc := range conns {
		_ = nc.Close()
	}
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
		if errors.Is(err, net.ErrClosed) {
			err = nil // a second Close is a no-op, not an error
		}
	}
	// Replication winds down before the store: a replica's apply loop and a
	// primary's source both write/read the store and must finish first.
	s.mu.Lock()
	rep, src := s.rep, s.src
	s.rep, s.src = nil, nil
	s.mu.Unlock()
	if rep != nil {
		err = errors.Join(err, rep.Close())
	}
	if src != nil {
		err = errors.Join(err, src.Close())
	}
	s.wg.Wait()
	// Ops plane drains after the protocol handlers: an in-flight scrape
	// still observes the final counter values. Close is graceful (bounded)
	// and idempotent. Every shutdown error is reported, not just the first.
	err = errors.Join(err, s.ops.Close())
	if s.store != nil {
		err = errors.Join(err, s.store.Close())
	}
	return err
}

// checkpointLoop periodically persists the controller's published state.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.CheckpointNow(); err != nil && !errors.Is(err, store.ErrClosed) {
				s.opts.Logf("coordinator: checkpoint: %v", err)
			}
		case <-s.stop:
			return
		}
	}
}

// CheckpointNow forces an immediate durable checkpoint of the controller's
// published state and compacts WAL segments the retained checkpoints
// cover. It is a no-op without a data dir.
//
// The snapshot and the LSN it covers are captured together under ingestMu,
// so a sample journaled concurrently is either inside the snapshot or past
// the checkpoint LSN — never marked covered while missing from the state.
func (s *Server) CheckpointNow() error {
	if s.store == nil {
		return nil
	}
	snap, lsn := s.captureSnapshot()
	return s.store.CheckpointAt(lsn, snap)
}

// captureSnapshot returns a controller snapshot consistent with the WAL
// position it reports: nothing can append between the LSN read and the
// state capture. This is also the replication source's bootstrap hook.
func (s *Server) captureSnapshot() (core.Snapshot, uint64) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	var lsn uint64
	if s.store != nil {
		lsn = s.store.LastLSN()
	}
	return s.Controller().Snapshot(time.Now()), lsn
}

// ClientCount returns the number of registered clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				// Closed by Suspend or Close; either way this loop is done
				// (Resume starts a fresh one).
				return
			}
			s.opts.Logf("coordinator: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// handle runs one connection's request/response loop. Every request gets
// exactly one reply; protocol errors get an error reply and terminate the
// connection.
func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = nc.Close()
		return
	}
	s.conns[nc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	s.met.connsAccepted.Inc()
	c := wire.NewConn(nc).Instrument(s.met.wire)
	defer c.Close()
	for {
		if s.opts.IdleTimeout > 0 {
			_ = nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		req, err := c.Recv()
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrMessageTooLarge):
				s.met.protoErrors.Inc()
				//lint:ignore errdrop best-effort reply on a connection already failing
				_ = c.Send(errEnvelope("message too large"))
			case errors.Is(err, os.ErrDeadlineExceeded):
				s.met.idleDisconnects.Inc()
			}
			return
		}
		s.met.request(req.Type).Inc()
		if req.Via != nil {
			s.met.forwarded.Inc()
		}
		t0 := time.Now()
		reply, fatal := s.dispatch(req)
		s.met.dispatchSec.Observe(time.Since(t0).Seconds())
		if reply.Type == wire.TypeError {
			s.met.protoErrors.Inc()
		}
		if err := c.Send(reply); err != nil {
			return
		}
		if fatal {
			return
		}
	}
}

func errEnvelope(msg string) wire.Envelope {
	return wire.Envelope{Type: wire.TypeError, Error: &wire.ErrorMsg{Message: msg}}
}

// dispatch maps one request to its reply; fatal=true closes the connection
// after replying.
func (s *Server) dispatch(req wire.Envelope) (reply wire.Envelope, fatal bool) {
	switch req.Type {
	case wire.TypeHello:
		if req.Hello == nil || req.Hello.ClientID == "" {
			return errEnvelope("hello requires a client id"), true
		}
		s.mu.Lock()
		s.clients[req.Hello.ClientID] = &clientState{id: req.Hello.ClientID, device: req.Hello.DeviceClass}
		s.mu.Unlock()
		s.opts.Logf("coordinator: client %s (%s) registered", req.Hello.ClientID, req.Hello.DeviceClass)
		return wire.Envelope{Type: wire.TypeHelloAck, HelloAck: &wire.HelloAck{
			ServerID:        s.opts.ServerID,
			TaskIntervalSec: s.opts.TaskInterval.Seconds(),
		}}, false

	case wire.TypeZoneReport:
		zr := req.ZoneReport
		if zr == nil || zr.ClientID == "" {
			return errEnvelope("zone report requires a client id"), true
		}
		s.met.zoneReports.Inc()
		tasks := s.assignTasks(zr)
		s.met.tasksAssigned.Add(float64(len(tasks)))
		return wire.Envelope{Type: wire.TypeTaskList, TaskList: &wire.TaskList{Tasks: tasks}}, false

	case wire.TypeSampleReport:
		sr := req.SampleReport
		if sr == nil {
			return errEnvelope("empty sample report"), true
		}
		if s.Role() == wire.RoleReplica {
			// Replicas serve reads; writes belong to the primary. The
			// gateway's route table normally prevents this — answer
			// non-fatally so a transiently misrouted agent can retry after
			// the routing epoch catches up.
			return errEnvelope("replica is read-only"), false
		}
		accepted := 0
		var lastLSN uint64
		s.ingestMu.Lock()
		for _, smp := range sr.Samples {
			if smp.ClientID == "" {
				smp.ClientID = sr.ClientID
			}
			// Journal before the controller sees the sample: anything the
			// estimator state reflects is recoverable from disk.
			if s.store != nil {
				lsn, err := s.store.Append(smp)
				if err != nil {
					s.ingestMu.Unlock()
					if errors.Is(err, store.ErrClosed) {
						return errEnvelope("coordinator shutting down"), true
					}
					return errEnvelope(fmt.Sprintf("journal write failed: %v", err)), true
				}
				lastLSN = lsn
			}
			s.Controller().Ingest(smp)
			accepted++
		}
		s.ingestMu.Unlock()
		s.met.samplesIngested.Add(float64(accepted))
		s.notifyReplicas()
		if !s.waitReplicated(lastLSN) {
			// The samples are journaled and ingested locally, but the
			// configured durability bar (a replica ack) was not met in time;
			// withholding the ack tells the agent its upload is not yet safe
			// against this primary's death.
			return errEnvelope("replication ack timeout: samples journaled but not yet replicated"), false
		}
		return wire.Envelope{Type: wire.TypeSampleAck, SampleAck: &wire.SampleAck{Accepted: accepted}}, false

	case wire.TypeZoneListRequest:
		zl := req.ZoneListRequest
		if zl == nil {
			return errEnvelope("empty zone list request"), true
		}
		return wire.Envelope{Type: wire.TypeZoneListReply, ZoneListReply: &wire.ZoneListReply{
			Records: s.Controller().Records(zl.Network, zl.Metric),
		}}, false

	case wire.TypeEstimateRequest:
		er := req.EstimateRequest
		if er == nil {
			return errEnvelope("empty estimate request"), true
		}
		key := core.Key{Zone: er.Zone, Net: er.Network, Metric: er.Metric}
		rec, ok := s.Controller().Estimate(key)
		reply := &wire.EstimateReply{Found: ok, Record: rec}
		if ok {
			// Attach the window sketch so gateways can merge per-shard
			// distributions instead of averaging point estimates.
			reply.Sketch, _ = s.Controller().SketchFor(key)
		}
		return wire.Envelope{Type: wire.TypeEstimateReply, EstimateReply: reply}, false

	case wire.TypeStatusRequest:
		return wire.Envelope{Type: wire.TypeStatusReply, StatusReply: s.statusReply()}, false

	case wire.TypePromote:
		if req.Promote == nil {
			return errEnvelope("empty promote request"), true
		}
		ack, err := s.promote(req.Promote.Epoch)
		if err != nil {
			return errEnvelope(fmt.Sprintf("promote failed: %v", err)), true
		}
		return wire.Envelope{Type: wire.TypePromoteAck, PromoteAck: ack}, false

	case wire.TypeDemote:
		if req.Demote == nil || req.Demote.PrimaryReplAddr == "" {
			return errEnvelope("demote requires the new primary's replication address"), true
		}
		ack, err := s.demote(req.Demote.Epoch, req.Demote.PrimaryReplAddr)
		if err != nil {
			return errEnvelope(fmt.Sprintf("demote failed: %v", err)), true
		}
		return wire.Envelope{Type: wire.TypeDemoteAck, DemoteAck: ack}, false

	default:
		return errEnvelope(fmt.Sprintf("unexpected message type %q", req.Type)), true
	}
}

// assignTasks implements the probabilistic scheduler of §3.4: once per
// epoch per zone, each active client is tasked with a probability chosen so
// the expected sample count meets the zone's NKLD-derived requirement.
func (s *Server) assignTasks(zr *wire.ZoneReport) []wire.Task {
	s.mu.Lock()
	st, ok := s.clients[zr.ClientID]
	if !ok {
		// Tolerate zone reports from clients whose hello we lost
		// (reconnects); register them implicitly.
		st = &clientState{id: zr.ClientID}
		s.clients[zr.ClientID] = st
	}
	st.lastZone = zr.Zone
	st.lastSeen = zr.At
	st.hasZone = true
	// Count active clients in this zone (seen within 3 task intervals).
	active := 0
	for _, other := range s.clients {
		if other.hasZone && other.lastZone == zr.Zone &&
			zr.At.Sub(other.lastSeen) < 3*s.opts.TaskInterval {
			active++
		}
	}
	s.mu.Unlock()
	if active < 1 {
		active = 1
	}

	var tasks []wire.Task
	clientNets := zr.Networks
	if len(clientNets) == 0 {
		clientNets = s.opts.Networks
	}
	for _, net := range s.opts.Networks {
		if !slices.Contains(clientNets, net) {
			continue
		}
		for _, metric := range s.opts.Metrics {
			key := core.Key{Zone: zr.Zone, Net: net, Metric: metric}
			epoch := s.Controller().EpochOf(key)
			rounds := core.RoundsPerEpoch(epoch, s.opts.TaskInterval)
			// The per-zone requirement starts at the configured default and
			// converges to the NKLD-derived count as history accumulates
			// (§3.3/§3.4).
			required := s.Controller().RequiredSamplesFor(key)
			p := core.TaskProbability(required, active, rounds)
			s.mu.Lock()
			hit := s.r.Bool(p)
			s.mu.Unlock()
			if !hit {
				continue
			}
			t := wire.Task{Network: net, Metric: metric}
			switch metric {
			case trace.MetricUDPKbps, trace.MetricJitterMs, trace.MetricLossRate, trace.MetricUplinkKbps:
				t.UDPPackets = 100
				t.UDPSizeBytes = 1200
			case trace.MetricTCPKbps:
				t.TCPBytes = 256 << 10
			}
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// LogTo returns an Options.Logf writing to the standard logger, for the
// cmd binaries.
func LogTo(l *log.Logger) func(string, ...any) {
	return func(format string, args ...any) { l.Printf(format, args...) }
}
