package coordinator

import (
	"errors"
	"fmt"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/trace"
	"repro/internal/wire"
)

// errNeedsStore gates replication on durability: a primary streams its WAL
// and a replica journals at the primary's offsets, so both need a store.
var errNeedsStore = errors.New("coordinator: replication requires Options.DataDir")

// startReplication brings up the node's replication role from Options:
// a source listener when ReplicationAddr is set, and the replica tail when
// ReplicateFrom is set. Called once from Serve, before traffic.
func (s *Server) startReplication() error {
	if s.opts.ReplicationAddr == "" && s.opts.ReplicateFrom == "" {
		return nil
	}
	if s.store == nil {
		return errNeedsStore
	}
	src, err := replication.NewSource(s.store, s.opts.ReplicationAddr, replication.SourceOptions{
		Snapshot:  s.captureSnapshot,
		Telemetry: s.opts.Telemetry,
		Logf:      s.opts.Logf,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.src = src
	if s.opts.ReplicateFrom != "" {
		s.role = wire.RoleReplica
		s.rep = s.startReplicaLocked(s.opts.ReplicateFrom, s.opts.ForceResync)
	} else {
		s.role = wire.RolePrimary
	}
	role := s.role
	s.mu.Unlock()
	s.opts.Logf("coordinator: %s: replication listener on %s, role %s",
		s.opts.ServerID, src.Addr(), role)
	return nil
}

// startReplicaLocked builds the tail client for one primary. Caller holds
// s.mu and stores the result in s.rep.
func (s *Server) startReplicaLocked(primaryAddr string, forceResync bool) *replication.Replica {
	var from uint64
	if !forceResync {
		from = s.store.LastLSN() + 1
	}
	return replication.StartReplica(primaryAddr, &replicaApplier{s: s}, replication.ReplicaOptions{
		ID:            s.opts.ServerID,
		From:          from,
		ForceSnapshot: forceResync,
		Seed:          s.opts.Seed,
		Telemetry:     s.opts.Telemetry,
		Logf:          s.opts.Logf,
	})
}

// Role returns the node's replication role: wire.RolePrimary,
// wire.RoleReplica, or "" when replication is off (an unreplicated
// coordinator accepts writes like a primary).
func (s *Server) Role() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// Epoch returns the routing epoch of the node's last role change.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// ReplicationAddr returns the replication listener's bound address, ""
// when replication is off.
func (s *Server) ReplicationAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src == nil {
		return ""
	}
	return s.src.Addr()
}

// notifyReplicas wakes attached replica streams after an append.
func (s *Server) notifyReplicas() {
	s.mu.Lock()
	src := s.src
	s.mu.Unlock()
	if src != nil {
		src.Notify()
	}
}

// waitReplicated implements the semi-synchronous ack bar: with
// SyncReplication on and at least one replica attached, the sample ack
// waits until some replica acknowledges lsn. Reports true when the bar is
// met (or not configured).
func (s *Server) waitReplicated(lsn uint64) bool {
	if !s.opts.SyncReplication || lsn == 0 {
		return true
	}
	s.mu.Lock()
	src := s.src
	s.mu.Unlock()
	if src == nil || src.ConnectedReplicas() == 0 {
		return true
	}
	return src.WaitCommitted(lsn, s.opts.SyncTimeout)
}

// replicaApplier feeds the primary's stream into this server: every record
// is journaled to the local WAL at the primary's LSN and ingested into the
// live controller, so the replica is promotable at any instant with full
// durability and query state.
type replicaApplier struct{ s *Server }

func (a *replicaApplier) Bootstrap(lsn uint64, snap core.Snapshot) error {
	s := a.s
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if err := s.store.ResetTo(lsn, snap); err != nil {
		return err
	}
	s.ctrl.Store(core.Restore(snap))
	return nil
}

func (a *replicaApplier) Apply(lsn uint64, smp trace.Sample) error {
	s := a.s
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if err := s.store.AppendAt(lsn, smp); err != nil {
		return err
	}
	s.Controller().Ingest(smp)
	// Chained consumers (a replica's own replicas, live after promotion)
	// ride the same wake path as primary ingest.
	if src := a.srcLocked(); src != nil {
		src.Notify()
	}
	return nil
}

func (a *replicaApplier) srcLocked() *replication.Source {
	a.s.mu.Lock()
	defer a.s.mu.Unlock()
	return a.s.src
}

// statusReply reports this node's replication position for the gateway's
// promotion decisions.
func (s *Server) statusReply() *wire.StatusReply {
	s.mu.Lock()
	role, epoch, src, rep := s.role, s.epoch, s.src, s.rep
	s.mu.Unlock()
	reply := &wire.StatusReply{ServerID: s.opts.ServerID, Role: role, Epoch: epoch}
	if s.store != nil {
		reply.LastLSN = s.store.LastLSN()
	}
	if src != nil {
		reply.ReplAddr = src.Addr()
		for _, ri := range src.Replicas() {
			reply.Replicas = append(reply.Replicas, wire.ReplicaState{
				ID: ri.ID, AckedLSN: ri.AckedLSN, Connected: ri.Connected,
			})
		}
	}
	if rep != nil {
		st := rep.Status()
		reply.AppliedLSN = st.AppliedLSN
		reply.PrimaryLSN = st.PrimaryLSN
		reply.LagRecords = st.Lag
	}
	return reply
}

// promote turns a replica into the shard's primary at the given routing
// epoch: stop tailing the old primary and start accepting writes. The
// replication listener was up all along, so peers can resync immediately.
// Idempotent: promoting a primary only advances its epoch.
func (s *Server) promote(epoch uint64) (*wire.PromoteAck, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("coordinator: closed")
	}
	if s.src == nil {
		s.mu.Unlock()
		return nil, errors.New("coordinator: replication not enabled")
	}
	if epoch < s.epoch {
		cur := s.epoch
		s.mu.Unlock()
		return nil, fmt.Errorf("coordinator: stale promote epoch %d (current %d)", epoch, cur)
	}
	rep := s.rep
	s.rep = nil
	wasReplica := s.role == wire.RoleReplica
	s.role = wire.RolePrimary
	s.epoch = epoch
	src := s.src
	s.mu.Unlock()
	// Stop tailing outside the lock (Close blocks on the stream goroutine).
	if rep != nil {
		if err := rep.Close(); err != nil {
			s.opts.Logf("coordinator: %s: closing replica tail on promote: %v", s.opts.ServerID, err)
		}
	}
	if wasReplica {
		s.opts.Logf("coordinator: %s: promoted to primary at epoch %d (LSN %d)",
			s.opts.ServerID, epoch, s.store.LastLSN())
	}
	return &wire.PromoteAck{
		ServerID: s.opts.ServerID,
		Epoch:    epoch,
		LastLSN:  s.store.LastLSN(),
		ReplAddr: src.Addr(),
	}, nil
}

// demote turns this node into a replica of primaryReplAddr, discarding
// divergent local state via a forced snapshot bootstrap — the rejoin path
// for a deposed primary coming back from the dead.
func (s *Server) demote(epoch uint64, primaryReplAddr string) (*wire.DemoteAck, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("coordinator: closed")
	}
	if s.store == nil {
		s.mu.Unlock()
		return nil, errNeedsStore
	}
	if epoch < s.epoch {
		cur := s.epoch
		s.mu.Unlock()
		return nil, fmt.Errorf("coordinator: stale demote epoch %d (current %d)", epoch, cur)
	}
	oldRep := s.rep
	s.rep = nil
	s.role = wire.RoleReplica
	s.epoch = epoch
	s.mu.Unlock()
	if oldRep != nil {
		if err := oldRep.Close(); err != nil {
			s.opts.Logf("coordinator: %s: closing stale replica tail on demote: %v", s.opts.ServerID, err)
		}
	}
	s.mu.Lock()
	if !s.closed {
		// Forced resync: this node's unreplicated suffix (writes acked
		// after the new primary's view) is deliberately discarded; with
		// SyncReplication those writes were never acked to agents.
		s.rep = s.startReplicaLocked(primaryReplAddr, true)
	}
	s.mu.Unlock()
	s.opts.Logf("coordinator: %s: demoted to replica of %s at epoch %d",
		s.opts.ServerID, primaryReplAddr, epoch)
	return &wire.DemoteAck{ServerID: s.opts.ServerID, Epoch: epoch}, nil
}

// Suspend simulates shard death for the chaos harness without losing the
// process: the protocol listener closes, every client connection severs,
// and the replication source stops serving. The ops plane stays up so the
// harness can Resume. Idempotent.
func (s *Server) Suspend() {
	s.mu.Lock()
	if s.suspended || s.closed {
		s.mu.Unlock()
		return
	}
	s.suspended = true
	ln := s.ln
	s.ln = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	src := s.src
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
	if src != nil {
		src.Suspend()
	}
	s.opts.Logf("coordinator: %s: suspended (chaos)", s.opts.ServerID)
}

// Resume undoes Suspend: the protocol listener and replication source come
// back on their original addresses.
func (s *Server) Resume() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("coordinator: closed")
	}
	if !s.suspended {
		s.mu.Unlock()
		return nil
	}
	addr := s.addr
	s.mu.Unlock()
	// Listen outside the lock (lockio: binds can block), then re-check the
	// state we released it in — a concurrent Close or double Resume loses.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("coordinator: re-listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed || !s.suspended {
		closed := s.closed
		s.mu.Unlock()
		_ = ln.Close()
		if closed {
			return errors.New("coordinator: closed")
		}
		return nil
	}
	s.suspended = false
	s.ln = ln
	src := s.src
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	if src != nil {
		if err := src.Resume(); err != nil {
			return err
		}
	}
	s.opts.Logf("coordinator: %s: resumed", s.opts.ServerID)
	return nil
}

// installAdminEndpoints wires the chaos-harness control surface onto the
// ops server (only with Options.EnableAdmin):
//
//	POST /api/v1/admin/suspend   sever all traffic, keep the process
//	POST /api/v1/admin/resume    come back on the same addresses
func (s *Server) installAdminEndpoints(ops opsHandler) {
	ops.HandleFunc("POST /api/v1/admin/suspend", func(w http.ResponseWriter, r *http.Request) {
		s.Suspend()
		writeJSON(w, http.StatusOK, map[string]string{"state": "suspended"})
	})
	ops.HandleFunc("POST /api/v1/admin/resume", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Resume(); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": "running"})
	})
}

// opsHandler is the slice of telemetry.OpsServer the admin surface needs.
type opsHandler interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}
