package coordinator

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/wire"
)

// persistOpts disables the checkpoint timer so tests control checkpoint
// placement exactly via CheckpointNow.
func persistOpts(dir string) Options {
	return Options{
		Seed:               seed,
		Networks:           []radio.NetworkID{radio.NetB},
		Metrics:            []trace.Metric{trace.MetricUDPKbps},
		DataDir:            dir,
		CheckpointInterval: -1,
	}
}

func reportSamples(t *testing.T, c *wire.Conn, clientID string, samples []trace.Sample) {
	t.Helper()
	reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
		SampleReport: &wire.SampleReport{ClientID: clientID, Samples: samples}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeSampleAck || reply.SampleAck.Accepted != len(samples) {
		t.Fatalf("ack %+v", reply)
	}
}

func minuteSamples(loc geo.Point, from time.Time, n int, value float64) []trace.Sample {
	out := make([]trace.Sample, n)
	for i := range out {
		out[i] = trace.Sample{
			Time: from.Add(time.Duration(i) * time.Minute), Loc: loc,
			Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: value,
		}
	}
	return out
}

func recordEqual(a, b core.Record) bool {
	return a.Key == b.Key && a.MeanValue == b.MeanValue && a.StdDev == b.StdDev &&
		a.Samples == b.Samples && a.UpdatedAt.Equal(b.UpdatedAt)
}

// TestCrashRecoveryRoundTrip is the durability acceptance test: ingest
// past a checkpoint, stop the coordinator mid-epoch, start a fresh one on
// the same data dir, and require identical published records (via the
// checkpoint) and identical mid-epoch estimates (via WAL tail replay).
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	s1, err := Serve(ctrl, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, s1)

	// Zone A: six hours of samples — several 30-minute epochs close and a
	// record is published.
	locA := geo.Madison().Center()
	reportSamples(t, c, "a", minuteSamples(locA, start, 360, 900))
	zoneA := s1.Controller().ZoneOf(locA)
	keyA := core.Key{Zone: zoneA, Net: radio.NetB, Metric: trace.MetricUDPKbps}
	if _, ok := s1.Controller().Estimate(keyA); !ok {
		t.Fatal("zone A never published")
	}
	if err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// Zone B: ingested after the checkpoint and still mid-epoch — its
	// estimate exists only as an in-progress accumulator, recoverable
	// solely by replaying the WAL tail.
	locB := locA.Offset(90, 2000)
	postCkpt := start.Add(7 * time.Hour)
	samplesB := make([]trace.Sample, 20)
	for i := range samplesB {
		samplesB[i] = trace.Sample{
			Time: postCkpt.Add(time.Duration(i) * 10 * time.Second), Loc: locB,
			Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 1200 + float64(i%3),
		}
	}
	reportSamples(t, c, "b", samplesB)
	zoneB := s1.Controller().ZoneOf(locB)
	keyB := core.Key{Zone: zoneB, Net: radio.NetB, Metric: trace.MetricUDPKbps}

	preRecords := s1.Controller().Records(radio.NetB, trace.MetricUDPKbps)
	preA, okA := s1.Controller().Estimate(keyA)
	preB, okB := s1.Controller().Estimate(keyB)
	if !okA || !okB {
		t.Fatalf("pre-restart estimates missing: A=%v B=%v", okA, okB)
	}
	if preB.UpdatedAt != (time.Time{}) {
		t.Fatal("zone B should still be mid-epoch (accumulator estimate)")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A brand-new coordinator on the same directory must see the same
	// world.
	s2, err := Serve(core.NewController(core.DefaultConfig(), geo.Madison().Center()), "127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("restart on data dir: %v", err)
	}
	defer s2.Close()

	postRecords := s2.Controller().Records(radio.NetB, trace.MetricUDPKbps)
	if len(postRecords) != len(preRecords) {
		t.Fatalf("records: pre %d, post %d", len(preRecords), len(postRecords))
	}
	for i := range preRecords {
		if !recordEqual(preRecords[i], postRecords[i]) {
			t.Fatalf("record %d differs:\npre  %+v\npost %+v", i, preRecords[i], postRecords[i])
		}
	}
	postA, okA := s2.Controller().Estimate(keyA)
	postB, okB := s2.Controller().Estimate(keyB)
	if !okA || !okB {
		t.Fatalf("post-restart estimates missing: A=%v B=%v", okA, okB)
	}
	if !recordEqual(preA, postA) {
		t.Fatalf("zone A estimate differs:\npre  %+v\npost %+v", preA, postA)
	}
	if !recordEqual(preB, postB) {
		t.Fatalf("zone B mid-epoch estimate differs (WAL tail replay broken):\npre  %+v\npost %+v", preB, postB)
	}

	// And the wire answers match what applications saw before the restart.
	c2 := dial(t, s2)
	reply, err := c2.Request(wire.Envelope{Type: wire.TypeEstimateRequest,
		EstimateRequest: &wire.EstimateRequest{Zone: zoneB, Network: radio.NetB, Metric: trace.MetricUDPKbps}})
	if err != nil {
		t.Fatal(err)
	}
	if !reply.EstimateReply.Found || !recordEqual(reply.EstimateReply.Record, preB) {
		t.Fatalf("wire estimate after restart: %+v", reply.EstimateReply)
	}
}

// TestRecoverySurvivesCorruptDataDir seeds a data dir through a live
// coordinator, then damages it (truncated checkpoint + torn WAL tail) and
// requires the next coordinator to start anyway.
func TestRecoverySurvivesCorruptDataDir(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	s1, err := Serve(core.NewController(core.DefaultConfig(), geo.Madison().Center()), "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, s1)
	locA := geo.Madison().Center()
	reportSamples(t, c, "a", minuteSamples(locA, start, 120, 900))
	if err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	reportSamples(t, c, "a", minuteSamples(locA, start.Add(3*time.Hour), 10, 950))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	corruptNewestCheckpointAndTearWAL(t, dir)

	s2, err := Serve(core.NewController(core.DefaultConfig(), geo.Madison().Center()), "127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("coordinator refused to start on damaged data dir: %v", err)
	}
	defer s2.Close()
	key := core.Key{Zone: s2.Controller().ZoneOf(locA), Net: radio.NetB, Metric: trace.MetricUDPKbps}
	if _, ok := s2.Controller().Estimate(key); !ok {
		t.Fatal("nothing recovered from damaged data dir")
	}
}

func TestOversizedMessageGetsErrorReply(t *testing.T) {
	s := newServer(t, Options{Seed: seed})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// One line just past the cap, newline-terminated so the server consumes
	// it fully before replying (no unread bytes -> clean close, no RST).
	big := make([]byte, wire.MaxMessageBytes+10)
	for i := range big {
		big[i] = 'x'
	}
	big[len(big)-1] = '\n'
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		_, _ = nc.Write(big) // the server may close mid-write; that's fine
	}()

	_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(nc)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("no reply before close: %v", err)
	}
	var env wire.Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		t.Fatalf("reply not an envelope: %v (%q)", err, line)
	}
	if env.Type != wire.TypeError || env.Error == nil || env.Error.Message != "message too large" {
		t.Fatalf("want the message-too-large error envelope, got %+v", env)
	}
	// After the error the server closes the connection.
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection should be closed after the oversized message")
	}
	<-writeDone
}

// TestCloseRacesWithIngest hammers ReportSamples from many connections
// while Close runs (twice, concurrently): the store must be flushed and
// closed exactly once, with no panic, double-close or lost shutdown —
// meaningful chiefly under -race.
func TestCloseRacesWithIngest(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.CheckpointInterval = 5 * time.Millisecond // churn checkpoints during the race too
	s, err := Serve(core.NewController(core.DefaultConfig(), geo.Madison().Center()), "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}

	loc := geo.Madison().Center()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", s.Addr())
			if err != nil {
				return // server already down
			}
			c := wire.NewConn(nc)
			defer c.Close()
			for j := 0; ; j++ {
				at := start.Add(time.Duration(i*1000+j) * time.Second)
				reply, err := c.Request(wire.Envelope{Type: wire.TypeSampleReport,
					SampleReport: &wire.SampleReport{ClientID: "hammer",
						Samples: minuteSamples(loc, at, 5, 900)}})
				if err != nil || reply.Type != wire.TypeSampleAck {
					return // connection torn down by Close, or shutdown error reply
				}
			}
		}(i)
	}

	time.Sleep(50 * time.Millisecond)
	closeErrs := make(chan error, 2)
	go func() { closeErrs <- s.Close() }()
	go func() { closeErrs <- s.Close() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-closeErrs:
			if err != nil {
				t.Fatalf("close %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Close deadlocked against in-flight ingest")
		}
	}
	wg.Wait()

	// Whatever was acked before the store closed must be recoverable.
	s2, err := Serve(core.NewController(core.DefaultConfig(), geo.Madison().Center()), "127.0.0.1:0", persistOpts(dir))
	if err != nil {
		t.Fatalf("reopen after racy shutdown: %v", err)
	}
	defer s2.Close()
}

// corruptNewestCheckpointAndTearWAL truncates the newest checkpoint file
// mid-body and appends a torn partial record to the newest WAL segment.
func corruptNewestCheckpointAndTearWAL(t *testing.T, dir string) {
	t.Helper()
	damageNewest(t, dir, "checkpoint-", ".ckpt", func(data []byte) []byte { return data[:len(data)*2/3] })
	damageNewest(t, dir, "wal-", ".seg", func(data []byte) []byte {
		return append(data, []byte(`0badc0de {"lsn":999999,"sample":{"t":"2010`)...)
	})
}

// damageNewest rewrites the lexically newest file matching prefix/suffix.
func damageNewest(t *testing.T, dir, prefix, suffix string, damage func([]byte) []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), suffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("no %s*%s files to damage in %s", prefix, suffix, dir)
	}
	sort.Strings(names) // zero-padded numeric names: lexical == numeric order
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, damage(data), 0o644); err != nil {
		t.Fatal(err)
	}
}
