package mobility

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

var day0 = time.Date(2010, 9, 6, 0, 0, 0, 0, time.UTC) // a Monday

func TestStatic(t *testing.T) {
	s := Static{P: geo.Point{Lat: 43.07, Lon: -89.4}}
	p := s.Pose(day0.Add(5 * time.Hour))
	if !p.Active || p.SpeedKmh != 0 || p.Loc != s.P {
		t.Fatalf("static pose wrong: %+v", p)
	}
}

func TestTransitBusServiceWindow(t *testing.T) {
	b := NewTransitBus(geo.MadisonBusRoutes(), 1, 0)
	if b.Pose(day0.Add(3 * time.Hour)).Active {
		t.Fatal("bus should be garaged at 3am")
	}
	if !b.Pose(day0.Add(10 * time.Hour)).Active {
		t.Fatal("bus should be in service at 10am")
	}
	if b.Pose(day0.Add(10*time.Hour)).SpeedKmh < 0 {
		t.Fatal("negative speed")
	}
}

func TestTransitBusStaysOnRoutes(t *testing.T) {
	routes := geo.MadisonBusRoutes()
	b := NewTransitBus(routes, 1, 0)
	box := geo.Madison()
	for h := 0; h < 24*7; h++ {
		p := b.Pose(day0.Add(time.Duration(h) * time.Hour))
		// Routes live inside (or very near) the Madison box.
		grow := geo.BoundingBox{
			MinLat: box.MinLat - 0.02, MaxLat: box.MaxLat + 0.02,
			MinLon: box.MinLon - 0.02, MaxLon: box.MaxLon + 0.02,
		}
		if !grow.Contains(p.Loc) {
			t.Fatalf("bus escaped Madison at hour %d: %v", h, p.Loc)
		}
	}
}

func TestTransitBusRandomDailyRoutes(t *testing.T) {
	b := NewTransitBus(geo.MadisonBusRoutes(), 1, 0)
	// Garage location = day route start; it should change across days.
	locs := make(map[string]bool)
	for d := 0; d < 14; d++ {
		p := b.Pose(day0.Add(time.Duration(d)*24*time.Hour + 2*time.Hour))
		locs[p.Loc.String()] = true
	}
	if len(locs) < 2 {
		t.Fatal("bus never changed routes over two weeks")
	}
}

func TestTransitBusesIndependent(t *testing.T) {
	a := NewTransitBus(geo.MadisonBusRoutes(), 1, 0)
	b := NewTransitBus(geo.MadisonBusRoutes(), 1, 1)
	at := day0.Add(10 * time.Hour)
	if a.Pose(at).Loc == b.Pose(at).Loc {
		t.Fatal("two buses at the exact same point is wildly unlikely")
	}
}

func TestBusMovesContinuously(t *testing.T) {
	b := NewTransitBus(geo.MadisonBusRoutes(), 1, 0)
	prev := b.Pose(day0.Add(10 * time.Hour))
	for i := 1; i <= 600; i++ {
		cur := b.Pose(day0.Add(10*time.Hour + time.Duration(i)*time.Second))
		d := prev.Loc.DistanceTo(cur.Loc)
		// At <= ~41 km/h peak (22*1.85), one second moves <= ~12 m.
		if d > 15 {
			t.Fatalf("bus teleported %v m in 1 s", d)
		}
		prev = cur
	}
}

func TestIntercityBusRoundTrip(t *testing.T) {
	b := NewIntercityBus(geo.MadisonChicago(), 1, 0)
	if b.Pose(day0.Add(6 * time.Hour)).Active {
		t.Fatal("intercity bus departs at 8am; inactive before")
	}
	mid := b.Pose(day0.Add(9*time.Hour + 30*time.Minute))
	if !mid.Active {
		t.Fatal("bus should be en route at 9:30")
	}
	start := b.Route.At(0)
	if mid.Loc.DistanceTo(start) < 10000 {
		t.Fatal("after 1.5 h at ~90 km/h the bus should be far from Madison")
	}
	// A 480 km round trip at 90 km/h takes ~5.3 h; after 7 h it's done.
	late := b.Pose(day0.Add(16 * time.Hour))
	if late.Active {
		t.Fatal("round trip should be over by 16:00")
	}
	if late.Loc.DistanceTo(start) > 1 {
		t.Fatal("bus should be parked back at the origin")
	}
}

func TestIntercityBusSpeed(t *testing.T) {
	b := NewIntercityBus(geo.MadisonChicago(), 1, 0)
	var max float64
	for m := 0; m < 300; m++ {
		p := b.Pose(day0.Add(8*time.Hour + time.Duration(m)*time.Minute))
		if !p.Active {
			continue
		}
		if p.SpeedKmh > max {
			max = p.SpeedKmh
		}
		if p.SpeedKmh < 0 || p.SpeedKmh > 125 {
			t.Fatalf("implausible highway speed %v", p.SpeedKmh)
		}
	}
	if max < 90 {
		t.Fatalf("peak speed %v; expected highway speeds", max)
	}
}

func TestCarLoopCoversRoute(t *testing.T) {
	route := geo.ShortSegment()
	c := NewCarLoop(route, 1, 0)
	length := route.Length()
	// Over a full day the car covers the whole segment repeatedly; check we
	// see positions near both ends.
	start := route.At(0)
	end := route.At(length)
	var sawStart, sawEnd bool
	for m := 0; m < 24*60; m += 3 {
		p := c.Pose(day0.Add(time.Duration(m) * time.Minute))
		if p.Loc.DistanceTo(start) < 2000 {
			sawStart = true
		}
		if p.Loc.DistanceTo(end) < 2000 {
			sawEnd = true
		}
	}
	if !sawStart || !sawEnd {
		t.Fatalf("car did not cover the segment: start=%v end=%v", sawStart, sawEnd)
	}
}

func TestCarSpeedProfile(t *testing.T) {
	c := NewCarLoop(geo.ShortSegment(), 1, 0)
	var sum float64
	n := 0
	for s := 0; s < 3600; s += 10 {
		p := c.Pose(day0.Add(time.Duration(s) * time.Second))
		if p.SpeedKmh < 0 || p.SpeedKmh > 120 {
			t.Fatalf("implausible car speed %v", p.SpeedKmh)
		}
		sum += p.SpeedKmh
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-55) > 8 {
		t.Fatalf("mean speed %v, want ~55 (paper)", mean)
	}
}

func TestOrbitCarStaysInZone(t *testing.T) {
	center := geo.Point{Lat: 43.0766, Lon: -89.4125}
	c := NewOrbitCar(center, 250, 1, 0)
	var maxDist, minDist float64 = 0, math.Inf(1)
	for s := 0; s < 7200; s += 5 {
		p := c.Pose(day0.Add(time.Duration(s) * time.Second))
		d := center.DistanceTo(p.Loc)
		if d > maxDist {
			maxDist = d
		}
		if d < minDist {
			minDist = d
		}
	}
	if maxDist > 251 {
		t.Fatalf("orbit car escaped the 250 m zone: %v m", maxDist)
	}
	if maxDist-minDist < 100 {
		t.Fatalf("orbit car should sweep radii (saw %v..%v m)", minDist, maxDist)
	}
}

func TestPoseConsistency(t *testing.T) {
	// distance(t, t+dt) ~ speed * dt for a moving car: the closed-form
	// profile keeps position and speed consistent.
	c := NewCarLoop(geo.ShortSegment(), 2, 1)
	at := day0.Add(2 * time.Hour)
	const dt = 1.0 // second
	for i := 0; i < 300; i++ {
		t0 := at.Add(time.Duration(i) * 5 * time.Second)
		p0 := c.Pose(t0)
		p1 := c.Pose(t0.Add(time.Second))
		moved := p0.Loc.DistanceTo(p1.Loc)
		speedM := p0.SpeedKmh / 3.6 * dt
		// Allow slack for the turnaround at route ends.
		if moved > speedM*1.5+2 {
			t.Fatalf("pose/speed inconsistent: moved %v m at reported %v m/s", moved, speedM)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewTransitBus(geo.MadisonBusRoutes(), 9, 3)
	b := NewTransitBus(geo.MadisonBusRoutes(), 9, 3)
	at := day0.Add(13 * time.Hour)
	if a.Pose(at) != b.Pose(at) {
		t.Fatal("same-seed buses must coincide")
	}
}
