// Package mobility models the platforms the paper collected data from
// (Table 2): static indoor nodes, public transit buses randomly assigned to
// routes each day, intercity buses on the Madison-Chicago corridor, and cars
// driven repeatedly over fixed routes.
//
// A Track answers "where is this client, how fast is it moving, and is it in
// service?" for any instant, deterministically, with no per-step state — so
// campaigns can be replayed and sampled at any granularity.
package mobility

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Pose is a client's kinematic state at an instant.
type Pose struct {
	Loc      geo.Point
	SpeedKmh float64
	Active   bool // false when the platform is out of service (bus garaged)
}

// Track yields a client's pose over time.
type Track interface {
	// Pose returns the client's state at t.
	Pose(t time.Time) Pose
}

// Static is a node at a fixed location, always active (the Spot datasets).
type Static struct {
	P geo.Point
}

// Pose implements Track.
func (s Static) Pose(time.Time) Pose {
	return Pose{Loc: s.P, SpeedKmh: 0, Active: true}
}

// shuttle computes ping-pong motion along a route: total distance travelled
// folds back and forth over the route length.
func shuttle(route geo.Polyline, travelled float64) geo.Point {
	length := route.Length()
	if length <= 0 {
		return route.At(0)
	}
	phase := math.Mod(travelled, 2*length)
	if phase < 0 {
		phase += 2 * length
	}
	if phase <= length {
		return route.At(phase)
	}
	return route.At(2*length - phase)
}

// speedProfile is a smooth analytic speed process v(t) whose integral (the
// distance travelled) has a closed form, keeping pose and reported speed
// exactly consistent:
//
//	v(t) = v0 (1 + a sin(w t + phi)),  d(t) = v0 (t - a/w cos(w t + phi)) + C
type speedProfile struct {
	v0    float64 // mean speed, m/s
	amp   float64 // modulation amplitude in (0, 1)
	omega float64 // rad/s
	phase float64
}

func newSpeedProfile(meanKmh, amp float64, periodSec float64, seed uint64) speedProfile {
	r := rng.New(seed)
	return speedProfile{
		v0:    meanKmh / 3.6,
		amp:   amp,
		omega: 2 * math.Pi / periodSec,
		phase: r.Float64() * 2 * math.Pi,
	}
}

// speedKmh returns the instantaneous speed at elapsed seconds e.
func (sp speedProfile) speedKmh(e float64) float64 {
	return sp.v0 * (1 + sp.amp*math.Sin(sp.omega*e+sp.phase)) * 3.6
}

// distanceM returns meters travelled in [0, e].
func (sp speedProfile) distanceM(e float64) float64 {
	return sp.v0 * (e - sp.amp/sp.omega*(math.Cos(sp.omega*e+sp.phase)-math.Cos(sp.phase)))
}

// TransitBus is a Madison public transit bus: in service from ServiceStart
// to ServiceEnd hours (paper: 6:00 to midnight), assigned to a random route
// from Routes each day, shuttling back and forth at city bus speeds.
type TransitBus struct {
	Routes       []geo.Polyline
	MeanSpeedKmh float64 // average in-service speed (default 22 km/h)
	ServiceStart int     // local hour, default 6
	ServiceEnd   int     // local hour, default 24
	Seed         uint64

	profile speedProfile
}

// NewTransitBus returns a bus with paper-like defaults. Each (seed, busID)
// is an independent vehicle.
func NewTransitBus(routes []geo.Polyline, seed uint64, busID int) *TransitBus {
	s := rng.Hash64(seed, rng.HashString("transit-bus"), uint64(busID))
	b := &TransitBus{
		Routes:       routes,
		MeanSpeedKmh: 22,
		ServiceStart: 6,
		ServiceEnd:   24,
		Seed:         s,
	}
	b.profile = newSpeedProfile(b.MeanSpeedKmh, 0.85, 300, s)
	return b
}

// routeOfDay picks the day's route assignment deterministically.
func (b *TransitBus) routeOfDay(t time.Time) geo.Polyline {
	day := t.Truncate(24*time.Hour).Unix() / 86400
	idx := int(rng.Hash64(b.Seed, uint64(day)) % uint64(len(b.Routes)))
	return b.Routes[idx]
}

// Pose implements Track.
func (b *TransitBus) Pose(t time.Time) Pose {
	hour := t.Hour()
	if hour < b.ServiceStart || hour >= b.ServiceEnd {
		// Garaged at the day route's start.
		return Pose{Loc: b.routeOfDay(t).At(0), SpeedKmh: 0, Active: false}
	}
	route := b.routeOfDay(t)
	dayStart := time.Date(t.Year(), t.Month(), t.Day(), b.ServiceStart, 0, 0, 0, t.Location())
	elapsed := t.Sub(dayStart).Seconds()
	return Pose{
		Loc:      shuttle(route, b.profile.distanceM(elapsed)),
		SpeedKmh: b.profile.speedKmh(elapsed),
		Active:   true,
	}
}

// IntercityBus runs the Madison-Chicago corridor at highway speeds, one
// round trip per day, departing DepartHour.
type IntercityBus struct {
	Route        geo.Polyline
	MeanSpeedKmh float64 // default 90
	DepartHour   int     // default 8
	Seed         uint64

	profile speedProfile
}

// NewIntercityBus returns an intercity bus with paper-like defaults.
func NewIntercityBus(route geo.Polyline, seed uint64, busID int) *IntercityBus {
	s := rng.Hash64(seed, rng.HashString("intercity-bus"), uint64(busID))
	b := &IntercityBus{
		Route:        route,
		MeanSpeedKmh: 90,
		DepartHour:   8,
		Seed:         s,
	}
	b.profile = newSpeedProfile(b.MeanSpeedKmh, 0.3, 600, s)
	return b
}

// Pose implements Track.
func (b *IntercityBus) Pose(t time.Time) Pose {
	depart := time.Date(t.Year(), t.Month(), t.Day(), b.DepartHour, 0, 0, 0, t.Location())
	if t.Before(depart) {
		return Pose{Loc: b.Route.At(0), SpeedKmh: 0, Active: false}
	}
	elapsed := t.Sub(depart).Seconds()
	travelled := b.profile.distanceM(elapsed)
	if travelled >= 2*b.Route.Length() {
		// Round trip done; parked at origin for the rest of the day.
		return Pose{Loc: b.Route.At(0), SpeedKmh: 0, Active: false}
	}
	return Pose{
		Loc:      shuttle(b.Route, travelled),
		SpeedKmh: b.profile.speedKmh(elapsed),
		Active:   true,
	}
}

// CarLoop is a personal car driven continuously back and forth over a fixed
// route (the Proximate and Short segment collection method).
type CarLoop struct {
	Route        geo.Polyline
	MeanSpeedKmh float64 // default 55 (paper: Short segment at ~55 km/h)
	Seed         uint64

	profile speedProfile
}

// NewCarLoop returns a car with paper-like defaults.
func NewCarLoop(route geo.Polyline, seed uint64, carID int) *CarLoop {
	s := rng.Hash64(seed, rng.HashString("car"), uint64(carID))
	c := &CarLoop{Route: route, MeanSpeedKmh: 55, Seed: s}
	c.profile = newSpeedProfile(c.MeanSpeedKmh, 0.4, 240, s)
	return c
}

// Pose implements Track.
func (c *CarLoop) Pose(t time.Time) Pose {
	elapsed := t.Sub(dayOrigin(t)).Seconds()
	return Pose{
		Loc:      shuttle(c.Route, c.profile.distanceM(elapsed)),
		SpeedKmh: c.profile.speedKmh(elapsed),
		Active:   true,
	}
}

// OrbitCar circles within radiusM of a center point — the Proximate
// collection pattern ("driving around in a car within a 250 meter radius
// of the Static location").
type OrbitCar struct {
	Center  geo.Point
	RadiusM float64
	Seed    uint64

	profile speedProfile
}

// NewOrbitCar returns an orbiting car with paper-like defaults.
func NewOrbitCar(center geo.Point, radiusM float64, seed uint64, carID int) *OrbitCar {
	s := rng.Hash64(seed, rng.HashString("orbit-car"), uint64(carID))
	c := &OrbitCar{Center: center, RadiusM: radiusM, Seed: s}
	c.profile = newSpeedProfile(25, 0.5, 180, s)
	return c
}

// Pose implements Track.
func (c *OrbitCar) Pose(t time.Time) Pose {
	elapsed := t.Sub(dayOrigin(t)).Seconds()
	travelled := c.profile.distanceM(elapsed)
	// Spiral between 20% and 100% of the radius so samples cover the zone
	// rather than one ring.
	circumference := 2 * math.Pi * c.RadiusM
	angle := travelled / circumference * 2 * math.Pi
	radiusPhase := math.Mod(travelled/(3*circumference), 1)
	radius := c.RadiusM * (0.2 + 0.8*radiusPhase)
	return Pose{
		Loc:      c.Center.Offset(angle*180/math.Pi, radius),
		SpeedKmh: c.profile.speedKmh(elapsed),
		Active:   true,
	}
}

// dayOrigin returns local midnight of t's day, the elapsed-time origin for
// always-active tracks.
func dayOrigin(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
}
