// Package wire defines the client<->coordinator protocol of the WiScape
// framework (§3.4): clients say hello, periodically report their
// coarse-grained zone, receive measurement task lists, and upload measured
// samples; applications query zone estimates.
//
// Messages are newline-delimited JSON envelopes over any net.Conn. The
// format favours debuggability (every message is a greppable line) and has
// an explicit per-message size cap so a misbehaving peer cannot exhaust
// server memory.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// MsgType discriminates envelope payloads.
type MsgType string

// Protocol message types.
const (
	TypeHello           MsgType = "hello"
	TypeHelloAck        MsgType = "hello_ack"
	TypeZoneReport      MsgType = "zone_report"
	TypeTaskList        MsgType = "task_list"
	TypeSampleReport    MsgType = "sample_report"
	TypeSampleAck       MsgType = "sample_ack"
	TypeEstimateRequest MsgType = "estimate_request"
	TypeEstimateReply   MsgType = "estimate_reply"
	TypeZoneListRequest MsgType = "zone_list_request"
	TypeZoneListReply   MsgType = "zone_list_reply"
	TypeError           MsgType = "error"

	// Cluster-control messages: the gateway (never an agent) interrogates
	// and re-roles shard coordinators during failover.
	TypeStatusRequest MsgType = "status_request"
	TypeStatusReply   MsgType = "status_reply"
	TypePromote       MsgType = "promote"
	TypePromoteAck    MsgType = "promote_ack"
	TypeDemote        MsgType = "demote"
	TypeDemoteAck     MsgType = "demote_ack"
)

// Hello introduces a client. DeviceClass groups hardware with comparable
// radios (§3.3: measurements compose within a class; phones and laptop
// modems must not be mixed without normalization).
type Hello struct {
	ClientID    string `json:"client_id"`
	DeviceClass string `json:"device_class"`
}

// HelloAck acknowledges registration.
type HelloAck struct {
	ServerID        string  `json:"server_id"`
	TaskIntervalSec float64 `json:"task_interval_sec"`
}

// ZoneReport is the client's periodic coarse position report (real cellular
// systems already know the serving cell; WiScape piggybacks on that).
type ZoneReport struct {
	ClientID string            `json:"client_id"`
	Zone     geo.ZoneID        `json:"zone"`
	Loc      geo.Point         `json:"loc"`
	SpeedKmh float64           `json:"speed_kmh"`
	At       time.Time         `json:"at"`
	Networks []radio.NetworkID `json:"networks"`
}

// Task instructs a client to run one measurement.
type Task struct {
	Network      radio.NetworkID `json:"network"`
	Metric       trace.Metric    `json:"metric"`
	UDPPackets   int             `json:"udp_packets,omitempty"`
	UDPSizeBytes int             `json:"udp_size_bytes,omitempty"`
	TCPBytes     int             `json:"tcp_bytes,omitempty"`
}

// TaskList carries the coordinator's measurement assignments for this
// round. Empty means "stay quiet" — the mechanism that keeps client
// overhead low.
type TaskList struct {
	Tasks []Task `json:"tasks"`
}

// SampleReport uploads measured samples with their precise GPS fixes.
type SampleReport struct {
	ClientID string         `json:"client_id"`
	Samples  []trace.Sample `json:"samples"`
}

// SampleAck confirms ingestion.
type SampleAck struct {
	Accepted int `json:"accepted"`
}

// EstimateRequest asks for a zone's published record.
type EstimateRequest struct {
	Zone    geo.ZoneID      `json:"zone"`
	Network radio.NetworkID `json:"network"`
	Metric  trace.Metric    `json:"metric"`
}

// EstimateReply returns the record, if any. Sketch optionally carries the
// zone's serialized trailing-window sketch (internal/sketch binary form,
// base64 in JSON): the cluster gateway merges these digests across shards
// instead of averaging point estimates, so fan-out queries preserve the
// full distribution.
type EstimateReply struct {
	Found  bool        `json:"found"`
	Record core.Record `json:"record"`
	Sketch []byte      `json:"sketch,omitempty"`
}

// ZoneListRequest asks for every published record of one network/metric —
// the bulk query behind operator dashboards.
type ZoneListRequest struct {
	Network radio.NetworkID `json:"network"`
	Metric  trace.Metric    `json:"metric"`
}

// ZoneListReply returns the matching records in deterministic zone order.
type ZoneListReply struct {
	Records []core.Record `json:"records"`
}

// ErrorMsg reports a protocol-level problem.
type ErrorMsg struct {
	Message string `json:"message"`
}

// Replication roles a coordinator can hold.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// StatusRequest asks a coordinator for its replication role and progress.
// The gateway polls this to pick the freshest replica at promotion time and
// to detect stale primaries that must be demoted.
type StatusRequest struct{}

// ReplicaState is one attached replica as its primary sees it.
type ReplicaState struct {
	ID        string `json:"id"`
	AckedLSN  uint64 `json:"acked_lsn"`
	Connected bool   `json:"connected"`
}

// StatusReply reports a coordinator's replication position. A primary
// fills LastLSN, ReplAddr and Replicas; a replica fills AppliedLSN,
// PrimaryLSN and LagRecords.
type StatusReply struct {
	ServerID   string         `json:"server_id"`
	Role       string         `json:"role"`
	Epoch      uint64         `json:"epoch"`
	LastLSN    uint64         `json:"last_lsn"`
	AppliedLSN uint64         `json:"applied_lsn,omitempty"`
	PrimaryLSN uint64         `json:"primary_lsn,omitempty"`
	LagRecords uint64         `json:"lag_records"`
	ReplAddr   string         `json:"repl_addr,omitempty"`
	Replicas   []ReplicaState `json:"replicas,omitempty"`
}

// Promote orders a replica to become primary at the given routing epoch.
// The coordinator stops tailing, opens its replication listener, and starts
// accepting writes.
type Promote struct {
	Epoch uint64 `json:"epoch"`
}

// PromoteAck confirms the role switch, reporting the new primary's
// replication listener address (for demoted peers to resync from) and its
// last LSN at promotion.
type PromoteAck struct {
	ServerID string `json:"server_id"`
	Epoch    uint64 `json:"epoch"`
	LastLSN  uint64 `json:"last_lsn"`
	ReplAddr string `json:"repl_addr,omitempty"`
}

// Demote orders a (possibly stale) primary to stand down and resync as a
// replica of PrimaryReplAddr, discarding divergent local state via a fresh
// snapshot bootstrap.
type Demote struct {
	Epoch           uint64 `json:"epoch"`
	PrimaryReplAddr string `json:"primary_repl_addr"`
}

// DemoteAck confirms the stand-down.
type DemoteAck struct {
	ServerID string `json:"server_id"`
	Epoch    uint64 `json:"epoch"`
}

// Via marks an envelope as forwarded by an intermediary tier (the cluster
// gateway), so shard coordinators can tell relayed traffic from direct
// agent connections in logs and telemetry. Agents never set it.
type Via struct {
	// Gateway identifies the forwarding gateway instance.
	Gateway string `json:"gateway"`
	// Shard is the route the gateway chose (the shard's configured name).
	Shard string `json:"shard,omitempty"`
}

// Envelope is the wire frame: exactly one payload field is set, selected by
// Type.
type Envelope struct {
	Type MsgType `json:"type"`

	// Via is set on envelopes relayed by a gateway; nil on direct traffic.
	Via *Via `json:"via,omitempty"`

	Hello           *Hello           `json:"hello,omitempty"`
	HelloAck        *HelloAck        `json:"hello_ack,omitempty"`
	ZoneReport      *ZoneReport      `json:"zone_report,omitempty"`
	TaskList        *TaskList        `json:"task_list,omitempty"`
	SampleReport    *SampleReport    `json:"sample_report,omitempty"`
	SampleAck       *SampleAck       `json:"sample_ack,omitempty"`
	EstimateRequest *EstimateRequest `json:"estimate_request,omitempty"`
	EstimateReply   *EstimateReply   `json:"estimate_reply,omitempty"`
	ZoneListRequest *ZoneListRequest `json:"zone_list_request,omitempty"`
	ZoneListReply   *ZoneListReply   `json:"zone_list_reply,omitempty"`
	Error           *ErrorMsg        `json:"error,omitempty"`

	StatusRequest *StatusRequest `json:"status_request,omitempty"`
	StatusReply   *StatusReply   `json:"status_reply,omitempty"`
	Promote       *Promote       `json:"promote,omitempty"`
	PromoteAck    *PromoteAck    `json:"promote_ack,omitempty"`
	Demote        *Demote        `json:"demote,omitempty"`
	DemoteAck     *DemoteAck     `json:"demote_ack,omitempty"`
}

// MaxMessageBytes caps a single wire message. Sample reports dominate; at
// ~300 bytes per encoded sample this allows reports of ~30k samples.
const MaxMessageBytes = 8 << 20

// ErrMessageTooLarge is returned when a peer sends an oversized message.
var ErrMessageTooLarge = errors.New("wire: message exceeds size limit")

// Conn frames envelopes over a net.Conn. Concurrent Sends and concurrent
// Recvs are each safe only from one goroutine (the usual net.Conn rule).
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	m  *Metrics
}

// NewConn wraps a transport connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Instrument attaches codec metrics (shared across any number of Conns)
// and returns c. A nil m leaves the connection uninstrumented.
func (c *Conn) Instrument(m *Metrics) *Conn {
	c.m = m
	return c
}

// Send writes one envelope.
func (c *Conn) Send(e Envelope) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("wire: encoding %s: %w", e.Type, err)
	}
	if len(data) > MaxMessageBytes {
		c.m.oversized()
		return ErrMessageTooLarge
	}
	if _, err := c.bw.Write(data); err != nil {
		return fmt.Errorf("wire: writing %s: %w", e.Type, err)
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: writing frame end: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	c.m.encoded(len(data) + 1)
	return nil
}

// Recv reads the next envelope, enforcing the size cap.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	line, err := readLineLimited(c.br, MaxMessageBytes)
	if err != nil {
		if errors.Is(err, ErrMessageTooLarge) {
			c.m.oversized()
		}
		return e, err
	}
	if err := json.Unmarshal(line, &e); err != nil {
		return e, fmt.Errorf("wire: decoding message: %w", err)
	}
	if e.Type == "" {
		return e, errors.New("wire: message missing type")
	}
	c.m.decoded(len(line) + 1)
	return e, nil
}

// readLineLimited reads one \n-terminated line of at most limit bytes.
func readLineLimited(br *bufio.Reader, limit int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > limit {
			return nil, ErrMessageTooLarge
		}
		if err == nil {
			return buf[:len(buf)-1], nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return nil, err
	}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.nc.Close() }

// SetDeadline bounds both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// Request sends one envelope and waits for the reply (simple synchronous
// RPC pattern; the protocol is strictly request/response per message).
func (c *Conn) Request(e Envelope) (Envelope, error) {
	if err := c.Send(e); err != nil {
		return Envelope{}, err
	}
	return c.Recv()
}
