package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// fuzzConn builds a receive-only Conn over raw bytes, exercising the exact
// framing + decoding path Recv uses in production (readLineLimited, the
// size cap, JSON decoding, the missing-type check) without a socket.
func fuzzConn(data []byte) *Conn {
	return &Conn{br: bufio.NewReaderSize(bytes.NewReader(data), 64<<10)}
}

// FuzzDecode throws arbitrary byte streams at the JSON-line decoder. The
// invariants: Recv never panics, a nil-error result always carries a
// non-empty message type, truncated/garbage/oversized input surfaces as an
// error, and the reader always terminates (the stream is finite).
func FuzzDecode(f *testing.F) {
	// Seed corpus: every message type round-tripped through the real
	// encoder, plus hand-picked malformed frames.
	valid := []Envelope{
		{Type: TypeHello, Hello: &Hello{ClientID: "c1", DeviceClass: "laptop"}},
		{Type: TypeHelloAck, HelloAck: &HelloAck{ServerID: "s", TaskIntervalSec: 300}},
		{Type: TypeZoneReport, ZoneReport: &ZoneReport{ClientID: "c1", At: time.Unix(0, 0).UTC()}},
		{Type: TypeTaskList, TaskList: &TaskList{}},
		{Type: TypeSampleReport, SampleReport: &SampleReport{ClientID: "c1"}},
		{Type: TypeSampleAck, SampleAck: &SampleAck{Accepted: 3}},
		{Type: TypeEstimateRequest, EstimateRequest: &EstimateRequest{}},
		{Type: TypeEstimateReply, EstimateReply: &EstimateReply{Found: true}},
		{Type: TypeZoneListRequest, ZoneListRequest: &ZoneListRequest{}},
		{Type: TypeZoneListReply, ZoneListReply: &ZoneListReply{}},
		{Type: TypeError, Error: &ErrorMsg{Message: "boom"}},
		{Type: TypeZoneReport, Via: &Via{Gateway: "gw", Shard: "madison"}},
	}
	for _, e := range valid {
		line, err := json.Marshal(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append(line, '\n'))
	}
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"type":""}` + "\n"))
	f.Add([]byte(`{"type":"hello"`))                                   // truncated: no newline, no close brace
	f.Add([]byte(`{"type":"hello","hello":{"client_id":123}}` + "\n")) // wrong field type
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("\xff\xfe{\"type\":\"hello\"}\n"))
	f.Add([]byte(`{"type":"hello"}` + "\n" + `{"type":"error","error":{"message":"x"}}` + "\n"))
	f.Add([]byte(`{"type":"` + strings.Repeat("a", 1<<16) + `"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := fuzzConn(data)
		for i := 0; ; i++ {
			e, err := c.Recv()
			if err != nil {
				// Any error is acceptable; a panic is not. The size cap
				// must be reported as the sentinel so peers can answer
				// with a protocol error.
				if errors.Is(err, ErrMessageTooLarge) && len(data) <= MaxMessageBytes {
					t.Fatalf("size-cap error on %d-byte input under the %d cap", len(data), MaxMessageBytes)
				}
				return
			}
			if e.Type == "" {
				t.Fatal("Recv returned nil error with an empty message type")
			}
			if i > len(data) {
				t.Fatal("decoder yielded more messages than input bytes")
			}
		}
	})
}

// TestRecvOversizedLine pins the size-cap sentinel on a single line larger
// than MaxMessageBytes (kept out of the fuzz corpus for speed).
func TestRecvOversizedLine(t *testing.T) {
	huge := make([]byte, MaxMessageBytes+2)
	for i := range huge {
		huge[i] = 'a'
	}
	huge[len(huge)-1] = '\n'
	if _, err := fuzzConn(huge).Recv(); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
}
