package wire

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTripAllTypes(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	msgs := []Envelope{
		{Type: TypeHello, Hello: &Hello{ClientID: "c1", DeviceClass: "laptop-usb-modem"}},
		{Type: TypeHelloAck, HelloAck: &HelloAck{ServerID: "coord", TaskIntervalSec: 300}},
		{Type: TypeZoneReport, ZoneReport: &ZoneReport{
			ClientID: "c1", Zone: geo.ZoneID{X: 3, Y: -2},
			Loc: geo.Point{Lat: 43.07, Lon: -89.4}, SpeedKmh: 23,
			At:       time.Date(2010, 9, 10, 12, 0, 0, 0, time.UTC),
			Networks: []radio.NetworkID{radio.NetB},
		}},
		{Type: TypeTaskList, TaskList: &TaskList{Tasks: []Task{
			{Network: radio.NetB, Metric: trace.MetricUDPKbps, UDPPackets: 100, UDPSizeBytes: 1200},
		}}},
		{Type: TypeSampleReport, SampleReport: &SampleReport{ClientID: "c1", Samples: []trace.Sample{
			{Time: time.Date(2010, 9, 10, 12, 0, 1, 0, time.UTC), Loc: geo.Point{Lat: 43, Lon: -89},
				Network: radio.NetB, Metric: trace.MetricUDPKbps, Value: 901.5, ClientID: "c1"},
		}}},
		{Type: TypeSampleAck, SampleAck: &SampleAck{Accepted: 1}},
		{Type: TypeEstimateRequest, EstimateRequest: &EstimateRequest{
			Zone: geo.ZoneID{X: 3, Y: -2}, Network: radio.NetB, Metric: trace.MetricUDPKbps}},
		{Type: TypeError, Error: &ErrorMsg{Message: "nope"}},
	}

	go func() {
		for _, m := range msgs {
			if err := client.Send(m); err != nil {
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("type %s, want %s", got.Type, want.Type)
		}
	}
}

func TestSendRecv(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	want := Envelope{Type: TypeHello, Hello: &Hello{ClientID: "c9", DeviceClass: "laptop"}}
	go func() { _ = client.Send(want) }()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeHello || got.Hello == nil || got.Hello.ClientID != "c9" {
		t.Fatalf("got %+v", got)
	}
}

func TestRequestResponse(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	go func() {
		req, err := server.Recv()
		if err != nil || req.Type != TypeEstimateRequest {
			_ = server.Send(Envelope{Type: TypeError, Error: &ErrorMsg{Message: "bad"}})
			return
		}
		_ = server.Send(Envelope{Type: TypeEstimateReply, EstimateReply: &EstimateReply{Found: false}})
	}()

	reply, err := client.Request(Envelope{Type: TypeEstimateRequest,
		EstimateRequest: &EstimateRequest{Network: radio.NetB, Metric: trace.MetricRTTMs}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeEstimateReply || reply.EstimateReply == nil || reply.EstimateReply.Found {
		t.Fatalf("reply %+v", reply)
	}
}

func TestLargeSampleReport(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	samples := make([]trace.Sample, 5000)
	for i := range samples {
		samples[i] = trace.Sample{
			Time: time.Date(2010, 9, 10, 12, 0, i%60, 0, time.UTC),
			Loc:  geo.Point{Lat: 43.07, Lon: -89.4}, Network: radio.NetB,
			Metric: trace.MetricRTTMs, Value: float64(i), ClientID: "bulk",
		}
	}
	go func() {
		_ = client.Send(Envelope{Type: TypeSampleReport,
			SampleReport: &SampleReport{ClientID: "bulk", Samples: samples}})
	}()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SampleReport.Samples) != 5000 {
		t.Fatalf("received %d samples", len(got.SampleReport.Samples))
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	// Hand-craft a > MaxMessageBytes line.
	go func() {
		raw := `{"type":"error","error":{"message":"` + strings.Repeat("x", MaxMessageBytes) + `"}}` + "\n"
		nc := client.nc
		_, _ = nc.Write([]byte(raw))
	}()
	_, err := server.Recv()
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("want ErrMessageTooLarge, got %v", err)
	}
}

func TestSendOversizedRejected(t *testing.T) {
	client, _ := pipePair()
	defer client.Close()
	err := client.Send(Envelope{Type: TypeError, Error: &ErrorMsg{Message: strings.Repeat("y", MaxMessageBytes)}})
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("want ErrMessageTooLarge, got %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() { _, _ = client.nc.Write([]byte("this is not json\n")) }()
	if _, err := server.Recv(); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestMissingTypeRejected(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() { _, _ = client.nc.Write([]byte("{}\n")) }()
	if _, err := server.Recv(); err == nil {
		t.Fatal("missing type should be rejected")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(nc)
		defer c.Close()
		for {
			e, err := c.Recv()
			if err != nil {
				return
			}
			_ = c.Send(e) // echo
		}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(nc)
	defer c.Close()
	for i := 0; i < 10; i++ {
		reply, err := c.Request(Envelope{Type: TypeSampleAck, SampleAck: &SampleAck{Accepted: i}})
		if err != nil {
			t.Fatal(err)
		}
		if reply.SampleAck.Accepted != i {
			t.Fatalf("echo mismatch: %d", reply.SampleAck.Accepted)
		}
	}
}

func TestDeadline(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	_ = server.SetDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := server.Recv(); err == nil {
		t.Fatal("expected deadline error")
	}
}
