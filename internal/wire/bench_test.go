package wire

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// byteConn adapts plain readers/writers to net.Conn so the codec can be
// benchmarked without sockets: the cost measured is encode/decode +
// framing, not the kernel.
type byteConn struct {
	r io.Reader
	w io.Writer
}

func (c byteConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c byteConn) Write(p []byte) (int, error)      { return c.w.Write(p) }
func (c byteConn) Close() error                     { return nil }
func (c byteConn) LocalAddr() net.Addr              { return nil }
func (c byteConn) RemoteAddr() net.Addr             { return nil }
func (c byteConn) SetDeadline(time.Time) error      { return nil }
func (c byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c byteConn) SetWriteDeadline(time.Time) error { return nil }

// repeatReader replays one frame forever, so Recv can be benchmarked
// steady-state without rebuilding input.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// benchReport builds a sample-report envelope with n samples — the
// envelope that dominates coordinator ingest traffic.
func benchReport(n int) Envelope {
	samples := make([]trace.Sample, n)
	at := time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)
	for i := range samples {
		samples[i] = trace.Sample{
			Time:     at.Add(time.Duration(i) * time.Second),
			Loc:      geo.Point{Lat: 43.07 + float64(i)*1e-4, Lon: -89.4},
			ClientID: "bench-client",
			Device:   "laptop-usb-modem",
			Network:  radio.NetB,
			Metric:   trace.MetricUDPKbps,
			Value:    900.5,
		}
	}
	return Envelope{Type: TypeSampleReport, SampleReport: &SampleReport{
		ClientID: "bench-client",
		Samples:  samples,
	}}
}

// frameSize returns the framed length of one envelope.
func frameSize(b *testing.B, e Envelope) int64 {
	var buf bytes.Buffer
	if err := NewConn(byteConn{w: &buf}).Send(e); err != nil {
		b.Fatal(err)
	}
	return int64(buf.Len())
}

func benchmarkEncode(b *testing.B, nSamples int, m *Metrics) {
	e := benchReport(nSamples)
	b.SetBytes(frameSize(b, e))
	c := NewConn(byteConn{w: io.Discard}).Instrument(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode measures envelope marshal + framing throughput — the
// per-message codec cost next to which BenchmarkIngest* sits.
func BenchmarkEncode(b *testing.B) {
	for _, n := range []int{1, 32, 1024} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			benchmarkEncode(b, n, nil)
		})
	}
	// The instrumented variant prices the telemetry hook on the codec
	// path: two nil-safe atomic adds per message.
	b.Run("samples=32/instrumented", func(b *testing.B) {
		benchmarkEncode(b, 32, NewMetrics(telemetry.NewRegistry()))
	})
}

func benchmarkDecode(b *testing.B, nSamples int, m *Metrics) {
	var buf bytes.Buffer
	if err := NewConn(byteConn{w: &buf}).Send(benchReport(nSamples)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	c := NewConn(byteConn{r: &repeatReader{data: buf.Bytes()}}).Instrument(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures frame read + envelope unmarshal throughput.
func BenchmarkDecode(b *testing.B) {
	for _, n := range []int{1, 32, 1024} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			benchmarkDecode(b, n, nil)
		})
	}
	b.Run("samples=32/instrumented", func(b *testing.B) {
		benchmarkDecode(b, 32, NewMetrics(telemetry.NewRegistry()))
	})
}
