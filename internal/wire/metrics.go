package wire

import "repro/internal/telemetry"

// Metrics counts codec activity for one side of the protocol. All fields
// are nil-safe telemetry instruments, so the zero value (and a nil
// *Metrics) cost nothing — uninstrumented connections stay free.
type Metrics struct {
	MessagesEncoded  *telemetry.Counter
	BytesEncoded     *telemetry.Counter
	MessagesDecoded  *telemetry.Counter
	BytesDecoded     *telemetry.Counter
	OversizedRejects *telemetry.Counter
}

// NewMetrics registers the wire codec families on reg (nil reg returns a
// valid no-op Metrics) and resolves their series once, so the per-message
// cost is a single atomic add.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	msgs := reg.Counter("wiscape_wire_messages_total",
		"Protocol envelopes moved through the codec, by direction.", "dir")
	bytes := reg.Counter("wiscape_wire_bytes_total",
		"Framed protocol bytes moved through the codec, by direction.", "dir")
	return &Metrics{
		MessagesEncoded: msgs.With("encode"),
		BytesEncoded:    bytes.With("encode"),
		MessagesDecoded: msgs.With("decode"),
		BytesDecoded:    bytes.With("decode"),
		OversizedRejects: reg.Counter("wiscape_wire_oversized_rejects_total",
			"Messages dropped for exceeding MaxMessageBytes (either direction).").With(),
	}
}

func (m *Metrics) encoded(frameBytes int) {
	if m == nil {
		return
	}
	m.MessagesEncoded.Inc()
	m.BytesEncoded.Add(float64(frameBytes))
}

func (m *Metrics) decoded(frameBytes int) {
	if m == nil {
		return
	}
	m.MessagesDecoded.Inc()
	m.BytesDecoded.Add(float64(frameBytes))
}

func (m *Metrics) oversized() {
	if m == nil {
		return
	}
	m.OversizedRejects.Inc()
}
