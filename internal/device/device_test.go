package device

import (
	"math"
	"strings"
	"testing"

	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
)

func baseConditions() radio.Conditions {
	return radio.Conditions{
		Network:      radio.NetB,
		CapacityKbps: 900,
		TCPKbps:      855,
		RTTMs:        113,
		JitterMs:     3,
		LossProb:     0.002,
	}
}

func TestReferenceIsIdentity(t *testing.T) {
	c := baseConditions()
	got := Reference().Apply(c)
	if got != c {
		t.Fatalf("reference profile changed conditions: %+v vs %+v", got, c)
	}
}

func TestPhoneProfileDegrades(t *testing.T) {
	c := baseConditions()
	got := Phone().Apply(c)
	if got.CapacityKbps >= c.CapacityKbps || got.TCPKbps >= c.TCPKbps {
		t.Fatal("phone must see less throughput")
	}
	if got.RTTMs <= c.RTTMs {
		t.Fatal("phone must see more latency")
	}
	if got.JitterMs <= c.JitterMs {
		t.Fatal("phone must see more jitter")
	}
	if got.LossProb <= c.LossProb {
		t.Fatal("phone must see more loss")
	}
	// Proportions: ~72% capacity.
	if r := got.CapacityKbps / c.CapacityKbps; math.Abs(r-0.72) > 1e-9 {
		t.Fatalf("capacity ratio %v", r)
	}
}

func TestSBCProfileSlightlyBetter(t *testing.T) {
	c := baseConditions()
	got := SBC().Apply(c)
	if got.CapacityKbps <= c.CapacityKbps {
		t.Fatal("external antenna should help")
	}
	if got.RTTMs >= c.RTTMs {
		t.Fatal("SBC latency should be marginally lower")
	}
}

func TestRTTFloor(t *testing.T) {
	c := baseConditions()
	c.RTTMs = 2
	got := SBC().Apply(c) // -3 ms offset would go negative
	if got.RTTMs < 1 {
		t.Fatalf("RTT must be floored at 1 ms, got %v", got.RTTMs)
	}
}

func TestByClass(t *testing.T) {
	if ByClass(ClassPhone).Class != ClassPhone {
		t.Fatal("phone lookup")
	}
	if ByClass(ClassSBC).Class != ClassSBC {
		t.Fatal("sbc lookup")
	}
	unk := ByClass("tablet")
	if unk.Class != "tablet" || unk.CapacityFactor != 1 {
		t.Fatalf("unknown class should get identity scaling: %+v", unk)
	}
}

func TestNormalizerZeroValueIsIdentity(t *testing.T) {
	var n *Normalizer
	if n.Factor(ClassPhone, "udp_kbps") != 1 {
		t.Fatal("nil normalizer must be identity")
	}
}

func TestNormalizerSetAndNormalize(t *testing.T) {
	n := NewNormalizer()
	n.SetFactor(ClassPhone, "udp_kbps", 1.39)
	if got := n.Normalize(720, ClassPhone, "udp_kbps"); math.Abs(got-720*1.39) > 1e-9 {
		t.Fatalf("normalize = %v", got)
	}
	// Unlearned metric/class untouched.
	if got := n.Normalize(100, ClassPhone, "rtt_ms"); got != 100 {
		t.Fatalf("unlearned metric scaled: %v", got)
	}
	if got := n.Normalize(100, ClassSBC, "udp_kbps"); got != 100 {
		t.Fatalf("unlearned class scaled: %v", got)
	}
}

func TestLearnRecoversProfileFactor(t *testing.T) {
	// Reference and phone observe the same channel; Learn should recover
	// ~1/0.72 for throughput.
	r := rng.New(3)
	ref := map[string][]float64{"udp_kbps": nil}
	obs := map[string][]float64{"udp_kbps": nil}
	for i := 0; i < 500; i++ {
		truth := 900 * (1 + 0.06*r.NormFloat64())
		ref["udp_kbps"] = append(ref["udp_kbps"], truth)
		obs["udp_kbps"] = append(obs["udp_kbps"], truth*0.72*(1+0.06*r.NormFloat64()))
	}
	n := NewNormalizer()
	learned := n.Learn(ClassPhone, ref, obs)
	if len(learned) != 1 || learned[0] != "udp_kbps" {
		t.Fatalf("learned = %v", learned)
	}
	f := n.Factor(ClassPhone, "udp_kbps")
	if math.Abs(f-1/0.72) > 0.06 {
		t.Fatalf("factor %v, want ~%v", f, 1/0.72)
	}
	// Normalized phone observations should now match the reference mean.
	var normalized []float64
	for _, v := range obs["udp_kbps"] {
		normalized = append(normalized, n.Normalize(v, ClassPhone, "udp_kbps"))
	}
	gap := math.Abs(stats.Mean(normalized)-stats.Mean(ref["udp_kbps"])) / stats.Mean(ref["udp_kbps"])
	if gap > 0.02 {
		t.Fatalf("normalized mean still %.1f%% off", gap*100)
	}
}

func TestLearnSkipsThinData(t *testing.T) {
	n := NewNormalizer()
	learned := n.Learn(ClassPhone,
		map[string][]float64{"udp_kbps": {1, 2, 3}},
		map[string][]float64{"udp_kbps": {1, 2, 3}})
	if len(learned) != 0 {
		t.Fatal("3 samples must not be enough to learn")
	}
	// Zero-mean observation guarded.
	zeros := make([]float64, 20)
	refs := make([]float64, 20)
	for i := range refs {
		refs[i] = 5
	}
	learned = n.Learn(ClassPhone,
		map[string][]float64{"loss_rate": refs},
		map[string][]float64{"loss_rate": zeros})
	if len(learned) != 0 {
		t.Fatal("zero-mean observations must not produce a factor")
	}
}

func TestNormalizerString(t *testing.T) {
	n := NewNormalizer()
	n.SetFactor(ClassPhone, "udp_kbps", 1.39)
	n.SetFactor(ClassSBC, "rtt_ms", 0.97)
	s := n.String()
	if !strings.Contains(s, "mobile-phone/udp_kbps=1.390") {
		t.Fatalf("string = %q", s)
	}
}

func TestNormalizerConcurrent(t *testing.T) {
	n := NewNormalizer()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				n.SetFactor(ClassPhone, "udp_kbps", 1.0+float64(g)/10)
				_ = n.Factor(ClassPhone, "udp_kbps")
				_ = n.Normalize(100, ClassPhone, "udp_kbps")
			}
			done <- true
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
