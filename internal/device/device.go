// Package device models client hardware classes and cross-class
// normalization — the future-work item of paper §3.3: "a mobile phone,
// among its other characteristics, has a more constrained radio front-end
// and antenna system than a USB modem. Potentially data collected from such
// devices with different capabilities need to go through a normalization or
// scaling process."
//
// A Profile scales what a device class observes relative to the reference
// class (laptops / single-board computers with USB or PCMCIA modems — the
// hardware behind all of the paper's datasets). A Normalizer learns
// per-class, per-metric scale factors from co-located measurements and maps
// samples back into reference-class units, making cross-class composition
// statistically sound again.
package device

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/radio"
	"repro/internal/stats"
)

// Class names a hardware category whose measurements compose directly
// (§3.3: WiScape monitors each category separately unless normalized).
type Class string

// The device categories the paper calls out.
const (
	// ClassLaptop is the reference class: laptops and single-board
	// computers with USB/PCMCIA cellular modems.
	ClassLaptop Class = "laptop-usb-modem"
	// ClassPhone is a smartphone with an internal antenna.
	ClassPhone Class = "mobile-phone"
	// ClassSBC is a vehicle-mounted single-board computer with an external
	// antenna (slightly better than a laptop modem).
	ClassSBC Class = "sbc-external-antenna"
)

// Profile scales the channel a device class experiences relative to the
// reference class.
type Profile struct {
	Class Class

	// CapacityFactor multiplies achievable throughput (phones' constrained
	// front-ends reach less of the channel).
	CapacityFactor float64
	// RTTOffsetMs adds fixed processing latency (slower basebands).
	RTTOffsetMs float64
	// JitterFactor multiplies delay jitter.
	JitterFactor float64
	// ExtraLossProb adds packet loss.
	ExtraLossProb float64
}

// Reference returns the identity profile for the reference class.
func Reference() Profile {
	return Profile{Class: ClassLaptop, CapacityFactor: 1, JitterFactor: 1}
}

// Phone returns a smartphone profile: ~72% of the reference throughput,
// slightly higher latency and jitter.
func Phone() Profile {
	return Profile{
		Class:          ClassPhone,
		CapacityFactor: 0.72,
		RTTOffsetMs:    18,
		JitterFactor:   1.5,
		ExtraLossProb:  0.001,
	}
}

// SBC returns a vehicle single-board-computer profile with an external
// antenna: marginally better than the reference laptop modem.
func SBC() Profile {
	return Profile{
		Class:          ClassSBC,
		CapacityFactor: 1.05,
		RTTOffsetMs:    -3,
		JitterFactor:   0.95,
	}
}

// ByClass returns the built-in profile for a class (Reference for unknown
// classes, which is the safe default).
func ByClass(c Class) Profile {
	switch c {
	case ClassPhone:
		return Phone()
	case ClassSBC:
		return SBC()
	default:
		p := Reference()
		p.Class = c
		return p
	}
}

// Apply transforms ground-truth conditions into what this device class
// experiences.
func (p Profile) Apply(c radio.Conditions) radio.Conditions {
	if p.CapacityFactor > 0 {
		c.CapacityKbps *= p.CapacityFactor
		c.TCPKbps *= p.CapacityFactor
		c.UplinkKbps *= p.CapacityFactor
	}
	c.RTTMs += p.RTTOffsetMs
	if c.RTTMs < 1 {
		c.RTTMs = 1
	}
	if p.JitterFactor > 0 {
		c.JitterMs *= p.JitterFactor
	}
	c.LossProb += p.ExtraLossProb
	return c
}

// Normalizer maps observations from any device class into reference-class
// units using learned per-(class, metric) scale factors. Metrics are keyed
// by their string names so this package stays independent of the trace
// layer. The zero value passes values through unchanged; a constructed
// Normalizer is safe for concurrent use.
type Normalizer struct {
	mu      sync.RWMutex
	factors map[Class]map[string]float64
}

// NewNormalizer returns an empty normalizer.
func NewNormalizer() *Normalizer {
	return &Normalizer{factors: make(map[Class]map[string]float64)}
}

// SetFactor records that class observations of metric must be multiplied by
// factor to land in reference units.
func (n *Normalizer) SetFactor(c Class, metric string, factor float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.factors[c] == nil {
		n.factors[c] = make(map[string]float64)
	}
	n.factors[c][metric] = factor
}

// Factor returns the scale for (class, metric), defaulting to 1.
func (n *Normalizer) Factor(c Class, metric string) float64 {
	if n == nil {
		return 1
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if f, ok := n.factors[c][metric]; ok && f > 0 {
		return f
	}
	return 1
}

// Normalize maps one observation into reference-class units.
func (n *Normalizer) Normalize(value float64, c Class, metric string) float64 {
	return value * n.Factor(c, metric)
}

// Learn derives scale factors from co-located measurements: for each metric
// present in both maps with enough observations, factor = mean(reference) /
// mean(class). Both sets should come from the same zone and period, as a
// calibration deployment would arrange. It returns the metrics learned, in
// deterministic order.
func (n *Normalizer) Learn(c Class, reference, observed map[string][]float64) []string {
	var learned []string
	for m, obs := range observed {
		ref, ok := reference[m]
		if !ok || len(ref) < 10 || len(obs) < 10 {
			continue
		}
		om := stats.Mean(obs)
		if om == 0 {
			continue
		}
		n.SetFactor(c, m, stats.Mean(ref)/om)
		learned = append(learned, m)
	}
	sort.Strings(learned)
	return learned
}

// String summarizes the learned factors.
func (n *Normalizer) String() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := "normalizer{"
	classes := make([]Class, 0, len(n.factors))
	for c := range n.factors {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		metrics := make([]string, 0, len(n.factors[c]))
		for m := range n.factors[c] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			out += fmt.Sprintf(" %s/%s=%.3f", c, m, n.factors[c][m])
		}
	}
	return out + " }"
}
