package sketch

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// benchValues returns a deterministic lognormal-ish stream so every
// benchmark run exercises the same centroid dynamics.
func benchValues(n int) []float64 {
	r := rng.New(7)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.LogNormal(6.8, 0.4) // ~900 kbps center, heavy right tail
	}
	return out
}

func BenchmarkDigestAdd(b *testing.B) {
	vals := benchValues(4096)
	d := NewDigest(DefaultCompression)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(vals[i%len(vals)])
	}
	b.ReportMetric(float64(d.FootprintBytes()), "bytes/digest")
}

func BenchmarkDigestQuantile(b *testing.B) {
	d := NewDigest(DefaultCompression)
	for _, v := range benchValues(50000) {
		d.Add(v)
	}
	qs := []float64{0.5, 0.9, 0.99}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Quantile(qs[i%len(qs)])
	}
}

func BenchmarkDigestMerge(b *testing.B) {
	// Merge a fresh pair each iteration: Merge mutates the receiver, so
	// reusing one would measure an ever-denser digest instead.
	vals := benchValues(2048)
	parts := make([]*Digest, 2)
	for p := range parts {
		parts[p] = NewDigest(DefaultCompression)
		for i, v := range vals {
			if i%2 == p {
				parts[p].Add(v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDigest(DefaultCompression)
		d.Merge(parts[0])
		d.Merge(parts[1])
	}
}

func BenchmarkDigestMarshal(b *testing.B) {
	d := NewDigest(DefaultCompression)
	for _, v := range benchValues(50000) {
		d.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(d.MarshalBinary())
	}
	b.ReportMetric(float64(n), "bytes/payload")
}

func BenchmarkEpochSketchObserve(b *testing.B) {
	vals := benchValues(4096)
	es := NewEpochSketch(DefaultCompression)
	es.EnableTrend(DefaultTrendSlots, time.Minute)
	at := time.Unix(1283763600, 0) // 2010-09-06 09:00 UTC, the repo's seed epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.Observe(at, vals[i%len(vals)])
		at = at.Add(30 * time.Second)
	}
	b.ReportMetric(float64(es.FootprintBytes()), "bytes/sketch")
}
