package sketch

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/rng"
)

// workloads are the seed distributions the acceptance criteria measure
// rank error against: the shapes wide-area wireless metrics actually take
// (symmetric noise, heavy tails, uniform spread, mode mixtures).
func workloads(n int) map[string][]float64 {
	out := make(map[string][]float64)
	r := rng.New(42)
	normal := make([]float64, n)
	lognormal := make([]float64, n)
	uniform := make([]float64, n)
	bimodal := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = r.Normal(900, 60)
		lognormal[i] = r.LogNormal(4.7, 0.5)
		uniform[i] = r.Range(100, 2000)
		if r.Bool(0.5) {
			bimodal[i] = r.Normal(300, 25)
		} else {
			bimodal[i] = r.Normal(1200, 80)
		}
	}
	out["normal"] = normal
	out["lognormal"] = lognormal
	out["uniform"] = uniform
	out["bimodal"] = bimodal
	return out
}

// exactRank returns the empirical CDF of v over sorted data.
func exactRank(sorted []float64, v float64) float64 {
	return float64(sort.SearchFloat64s(sorted, v)) / float64(len(sorted))
}

func TestDigestQuantileRankError(t *testing.T) {
	const n = 50000
	qs := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}
	for name, data := range workloads(n) {
		d := NewDigest(DefaultCompression)
		for _, v := range data {
			d.Add(v)
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		for _, q := range qs {
			est := d.Quantile(q)
			if err := math.Abs(exactRank(sorted, est) - q); err > 0.01 {
				t.Errorf("%s: q=%.2f estimate %.2f has rank error %.4f > 1%%", name, q, est, err)
			}
		}
	}
}

func TestDigestRankQuantileInverse(t *testing.T) {
	d := NewDigest(DefaultCompression)
	r := rng.New(7)
	for i := 0; i < 20000; i++ {
		d.Add(r.Normal(100, 15))
	}
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got := d.Rank(d.Quantile(q))
		if math.Abs(got-q) > 0.01 {
			t.Errorf("Rank(Quantile(%.2f)) = %.4f", q, got)
		}
	}
}

func TestDigestEdgeCases(t *testing.T) {
	d := NewDigest(DefaultCompression)
	if d.Quantile(0.5) != 0 || d.Rank(1) != 0 || d.Count() != 0 {
		t.Fatal("empty digest should read as zero")
	}
	d.Add(math.NaN())
	d.Add(math.Inf(1))
	if d.Count() != 0 {
		t.Fatal("non-finite samples must be rejected")
	}
	d.Add(42)
	if d.Quantile(0) != 42 || d.Quantile(1) != 42 || d.Quantile(0.5) != 42 {
		t.Fatal("single-sample digest must return that sample at every quantile")
	}
	if d.Min() != 42 || d.Max() != 42 {
		t.Fatal("min/max wrong for single sample")
	}
}

func TestDigestMemoryBoundHolds(t *testing.T) {
	d := NewDigest(DefaultCompression)
	before := d.FootprintBytes()
	r := rng.New(3)
	for i := 0; i < 200000; i++ {
		d.Add(r.Normal(500, 200))
		if len(d.store) > cap(d.store) {
			t.Fatal("store outgrew its backing array")
		}
	}
	d.compress()
	if d.nc > d.maxStored {
		t.Fatalf("compressed to %d centroids, cap %d", d.nc, d.maxStored)
	}
	if after := d.FootprintBytes(); after != before {
		t.Fatalf("footprint moved %d -> %d bytes", before, after)
	}
}

func TestDigestMergeOrderIndependence(t *testing.T) {
	data := workloads(30000)["bimodal"]
	parts := make([]*Digest, 3)
	for i := range parts {
		parts[i] = NewDigest(DefaultCompression)
	}
	for i, v := range data {
		parts[i%3].Add(v)
	}
	merge := func(order []int) *Digest {
		m := NewDigest(DefaultCompression)
		for _, i := range order {
			m.Merge(parts[i])
		}
		return m
	}
	a := merge([]int{0, 1, 2})
	b := merge([]int{2, 0, 1})
	single := NewDigest(DefaultCompression)
	for _, v := range data {
		single.Add(v)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		ra := exactRank(sorted, a.Quantile(q))
		rb := exactRank(sorted, b.Quantile(q))
		rs := exactRank(sorted, single.Quantile(q))
		if math.Abs(ra-q) > 0.02 || math.Abs(rb-q) > 0.02 {
			t.Errorf("merged digest rank error at q=%.2f: %.4f / %.4f", q, ra, rb)
		}
		if math.Abs(ra-rb) > 0.02 {
			t.Errorf("merge order changed q=%.2f rank: %.4f vs %.4f", q, ra, rb)
		}
		if math.Abs(ra-rs) > 0.02 {
			t.Errorf("merged vs single-digest divergence at q=%.2f: %.4f vs %.4f", q, ra, rs)
		}
	}
	if math.Abs(a.Count()-float64(len(data))) > 1e-6 {
		t.Fatalf("merged count %v, want %d", a.Count(), len(data))
	}
}

func TestDigestScalePreservesShape(t *testing.T) {
	d := NewDigest(DefaultCompression)
	r := rng.New(9)
	for i := 0; i < 10000; i++ {
		d.Add(r.Normal(250, 40))
	}
	before := d.Quantile(0.5)
	d.Scale(0.5)
	if math.Abs(d.Count()-5000) > 1e-6 {
		t.Fatalf("scaled count %v, want 5000", d.Count())
	}
	if after := d.Quantile(0.5); math.Abs(after-before) > 1 {
		t.Fatalf("median moved %v -> %v under pure decay", before, after)
	}
}

func TestTrendTelescopesAndSeries(t *testing.T) {
	tr := NewTrend(8, time.Minute)
	t0 := time.Unix(1_600_000_000, 0)
	// 30 one-minute samples force the ring to coalesce 1m -> 4m slots.
	for i := 0; i < 30; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	if tr.Period() != 4*time.Minute {
		t.Fatalf("period %v, want 4m after telescoping", tr.Period())
	}
	s := tr.Series()
	if len(s) != 8 {
		t.Fatalf("series length %d, want 8", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("monotone input produced non-monotone series: %v", s)
		}
	}
}

func TestTrendGapCarryForward(t *testing.T) {
	tr := NewTrend(16, time.Minute)
	t0 := time.Unix(1_600_000_000, 0)
	tr.Observe(t0, 5)
	tr.Observe(t0.Add(10*time.Minute), 9)
	s := tr.Series()
	if len(s) != 11 {
		t.Fatalf("series length %d, want 11", len(s))
	}
	for i := 1; i < 10; i++ {
		if s[i] != 5 {
			t.Fatalf("gap slot %d = %v, want carried 5", i, s[i])
		}
	}
	if s[10] != 9 {
		t.Fatalf("last slot %v, want 9", s[10])
	}
}

func TestEpochSketchMomentsExact(t *testing.T) {
	es := NewEpochSketch(EpochCompression)
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sum, n := 0.0, float64(len(vals))
	for _, v := range vals {
		es.Add(v)
		sum += v
	}
	mean := sum / n
	if math.Abs(es.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %v, want %v", es.Mean(), mean)
	}
	if es.Count() != int64(len(vals)) {
		t.Fatalf("count %d", es.Count())
	}
	if es.Min() != 1 || es.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestEpochSketchMergeMatchesCombined(t *testing.T) {
	r := rng.New(11)
	a := NewEpochSketch(DefaultCompression)
	b := NewEpochSketch(DefaultCompression)
	all := NewEpochSketch(DefaultCompression)
	for i := 0; i < 8000; i++ {
		v := r.Normal(700, 90)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v (Welford merge must be exact)", a.Mean(), all.Mean())
	}
	if math.Abs(a.StdDev()-all.StdDev()) > 1e-9 {
		t.Fatalf("merged stddev %v vs %v", a.StdDev(), all.StdDev())
	}
	if d := math.Abs(a.Quantile(0.9) - all.Quantile(0.9)); d > 0.02*all.Quantile(0.9) {
		t.Fatalf("merged p90 %v vs %v", a.Quantile(0.9), all.Quantile(0.9))
	}
}

func TestEpochSketchFootprintWithinBudget(t *testing.T) {
	window := NewEpochSketch(DefaultCompression)
	window.EnableTrend(DefaultTrendSlots, time.Minute)
	cur := NewEpochSketch(EpochCompression)
	total := window.FootprintBytes() + cur.FootprintBytes()
	if total > 4096-120 {
		t.Fatalf("default window+cur footprint %dB leaves no room in the 4 KiB zone budget", total)
	}
}
