package sketch

import (
	"time"

	"repro/internal/stats"
)

// EpochSketch is the per-(zone, network, metric) estimator state: a
// quantile digest for the distribution, a Welford accumulator for exact
// first and second moments, and an optional telescoping trend ring for
// temporal structure. It replaces the unbounded raw-sample history the
// controller used to keep — everything downstream (NKLD sample sizing,
// Allan epoch derivation, 2σ change detection, gateway fan-out merges,
// checkpoints) reads from this instead.
type EpochSketch struct {
	dig   *Digest
	acc   stats.Accum
	trend *Trend
}

// NewEpochSketch returns an empty sketch with the given digest
// compression and no trend ring.
func NewEpochSketch(compression float64) *EpochSketch {
	return &EpochSketch{dig: NewDigest(compression)}
}

// EnableTrend attaches a trend ring of nslots bins starting at width base.
// Call once, before observing.
func (e *EpochSketch) EnableTrend(nslots int, base time.Duration) {
	e.trend = NewTrend(nslots, base)
}

// HasTrend reports whether a trend ring is attached.
func (e *EpochSketch) HasTrend() bool { return e.trend != nil }

// Observe folds one timestamped sample into the digest, the moments and
// (when attached) the trend ring.
func (e *EpochSketch) Observe(at time.Time, v float64) {
	e.dig.Add(v)
	e.acc.Add(v)
	if e.trend != nil {
		e.trend.Observe(at, v)
	}
}

// Add folds an untimed sample (digest and moments only).
func (e *EpochSketch) Add(v float64) {
	e.dig.Add(v)
	e.acc.Add(v)
}

// Merge folds another sketch into e: digests merge by centroid, moments by
// parallel Welford merge, trends by slot re-observation. o is unmodified.
func (e *EpochSketch) Merge(o *EpochSketch) {
	if o == nil {
		return
	}
	e.dig.Merge(o.dig)
	acc := o.acc
	e.acc.Merge(&acc)
	if e.trend != nil && o.trend != nil {
		e.trend.Merge(o.trend)
	}
}

// Decay scales the digest's and accumulator's retained weight by f in
// (0, 1]. The trend ring is time-anchored and unaffected.
func (e *EpochSketch) Decay(f float64) {
	e.dig.Scale(f)
	e.acc.Scale(f)
}

// Reset empties the sketch in place, keeping allocations. A trend ring is
// restored to width base (ignored when no ring is attached or base <= 0).
func (e *EpochSketch) Reset(base time.Duration) {
	e.dig.Reset()
	e.acc.Reset()
	if e.trend != nil {
		e.trend.Reset(base)
	}
}

// Count returns the exact number of samples folded in (not subject to
// decay rounding beyond Accum.Scale's integer truncation).
func (e *EpochSketch) Count() int64 { return e.acc.Count() }

// Weight returns the digest's retained (possibly decayed) weight.
func (e *EpochSketch) Weight() float64 { return e.dig.Count() }

// Mean returns the exact running mean.
func (e *EpochSketch) Mean() float64 { return e.acc.Mean() }

// StdDev returns the exact sample standard deviation.
func (e *EpochSketch) StdDev() float64 { return e.acc.StdDev() }

// Min returns the smallest sample seen.
func (e *EpochSketch) Min() float64 { return e.acc.Min() }

// Max returns the largest sample seen.
func (e *EpochSketch) Max() float64 { return e.acc.Max() }

// Accum returns a copy of the moment accumulator.
func (e *EpochSketch) Accum() stats.Accum { return e.acc }

// Quantile returns the approximate value at quantile q.
func (e *EpochSketch) Quantile(q float64) float64 { return e.dig.Quantile(q) }

// Rank returns the approximate CDF at x.
func (e *EpochSketch) Rank(x float64) float64 { return e.dig.Rank(x) }

// Samples reconstructs m quantile-spaced representative values.
func (e *EpochSketch) Samples(m int) []float64 { return e.dig.Samples(m) }

// Digest exposes the underlying digest (read-only use expected).
func (e *EpochSketch) Digest() *Digest { return e.dig }

// TrendSeries returns the regularized temporal mean series and its period,
// or (nil, 0) when no trend ring is attached or it is empty.
func (e *EpochSketch) TrendSeries() ([]float64, time.Duration) {
	if e.trend == nil {
		return nil, 0
	}
	s := e.trend.Series()
	if s == nil {
		return nil, 0
	}
	return s, e.trend.Period()
}

// FootprintBytes returns the sketch's fixed memory footprint: digest plus
// accumulator plus trend ring. Constant regardless of sample count.
func (e *EpochSketch) FootprintBytes() int {
	const accumBytes = 40                         // five float64/int64 fields
	n := e.dig.FootprintBytes() + accumBytes + 16 // struct + pointers
	if e.trend != nil {
		n += e.trend.FootprintBytes()
	}
	return n
}
