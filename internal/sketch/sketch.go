// Package sketch implements the constant-memory streaming estimator
// substrate of the WiScape coordinator: a mergeable t-digest quantile
// sketch (after "Monitoring Networked Applications With Incremental
// Quantile Estimation" and Dunning's merging digest), a telescoping
// time-binned trend ring feeding the Allan-deviation epoch chooser, and
// the EpochSketch wrapper pairing both with the exact Welford moments of
// stats.Accum. Everything here is a pure function of the values fed in —
// no wall clock, no global randomness — so a campaign replayed from the
// same samples reproduces the same sketches byte for byte.
//
//wiscape:deterministic
package sketch

import (
	"math"
	"sort"
)

// DefaultCompression is the digest compression δ used for trailing-window
// sketches: ~δ centroids retained, mid-quantile rank error well under 1%.
const DefaultCompression = 100

// EpochCompression is the lighter compression used for current-epoch
// digests, which see at most one epoch's worth of samples.
const EpochCompression = 50

// minCompression floors δ so a digest always has enough resolution to
// interpolate.
const minCompression = 20

// Centroid is one cluster of nearby samples: its weighted mean and total
// weight. Weights are float64 so decayed (scaled) sketches stay exact.
type Centroid struct {
	Mean   float64
	Weight float64
}

// Digest is a deterministic merging t-digest. The zero value is not ready;
// use NewDigest. Not safe for concurrent use — callers (the controller)
// serialize access under their own lock.
//
// Memory is fixed at construction: one backing array holds both the
// compressed centroid list and the unmerged tail buffer, so a digest never
// allocates after NewDigest no matter how many samples it absorbs.
type Digest struct {
	compression float64
	maxStored   int        // compressed-centroid capacity (δ + slack)
	store       []Centroid // [0:nc] compressed + sorted, [nc:] unmerged tail
	nc          int        // compressed prefix length
	count       float64    // total weight, buffered tail included
	min, max    float64
}

// tailCapFor sizes the unmerged-buffer capacity appended to a digest's
// backing array; a full tail triggers one in-place compression pass. It
// scales with δ (bigger digests amortize sorting over more adds) but stays
// within [8, 16] to hold the per-zone memory budget.
func tailCapFor(compression float64) int {
	t := int(compression) / 8
	if t < 8 {
		t = 8
	}
	if t > 16 {
		t = 16
	}
	return t
}

// maxStoredFor bounds the compressed centroid count for a compression δ.
// The greedy merge pass keeps every adjacent centroid pair wider than one
// k-unit, and the k1 scale spans δ/2 units, so at most δ+2 centroids
// survive; compress retries with a relaxed limit in the (theoretical)
// overflow case, making the bound hard.
func maxStoredFor(compression float64) int {
	return int(compression) + 3
}

// NewDigest returns an empty digest with compression δ (floored at 20).
func NewDigest(compression float64) *Digest {
	if compression < minCompression {
		compression = minCompression
	}
	m := maxStoredFor(compression)
	return &Digest{
		compression: compression,
		maxStored:   m,
		store:       make([]Centroid, 0, m+tailCapFor(compression)),
	}
}

// Compression returns the digest's compression parameter δ.
func (d *Digest) Compression() float64 { return d.compression }

// Count returns the total absorbed weight (samples, scaled by any Scale
// calls).
func (d *Digest) Count() float64 { return d.count }

// Min returns the smallest value seen (0 when empty).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest value seen (0 when empty).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// Add folds one sample into the digest. NaN and ±Inf are ignored — one
// poisoned sample must not corrupt a zone's distribution forever.
func (d *Digest) Add(x float64) { d.AddWeighted(x, 1) }

// AddWeighted folds a pre-aggregated cluster into the digest.
func (d *Digest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) || w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return
	}
	if d.count == 0 || x < d.min {
		d.min = x
	}
	if d.count == 0 || x > d.max {
		d.max = x
	}
	if len(d.store) == cap(d.store) {
		d.compress()
	}
	d.store = append(d.store, Centroid{Mean: x, Weight: w})
	d.count += w
}

// Merge folds another digest into d. The other digest is not modified.
// Merging is order-independent to within the digest's rank-error
// tolerance (exercised by the gateway fan-out tests).
func (d *Digest) Merge(o *Digest) {
	if o == nil {
		return
	}
	for _, c := range o.store {
		d.AddWeighted(c.Mean, c.Weight)
	}
}

// Scale multiplies every retained weight by f in (0, 1] — the decay
// primitive behind trailing windows (halving the window's mass stands in
// for dropping the oldest half of a sample buffer).
func (d *Digest) Scale(f float64) {
	if f <= 0 || f > 1 || math.IsNaN(f) {
		return
	}
	for i := range d.store {
		d.store[i].Weight *= f
	}
	d.count *= f
}

// Reset empties the digest without releasing its backing array.
func (d *Digest) Reset() {
	d.store = d.store[:0]
	d.nc = 0
	d.count = 0
	d.min, d.max = 0, 0
}

// kScale is the t-digest k1 scale function: k(q) = δ/(2π)·asin(2q−1).
// Its slope is steepest at the tails, so extreme quantiles get the
// smallest (most accurate) centroids.
func (d *Digest) kScale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return d.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// compress merges the unmerged tail into the sorted centroid prefix,
// in place. If the greedy pass ever exceeds the fixed capacity it retries
// with a relaxed k-width limit, so the memory bound is unconditional.
func (d *Digest) compress() {
	if len(d.store) == d.nc {
		return
	}
	sort.Slice(d.store, func(i, j int) bool { return d.store[i].Mean < d.store[j].Mean })
	for limit := 1.0; ; limit *= 1.5 {
		if n := d.mergePass(limit); n <= d.maxStored {
			d.store = d.store[:n]
			d.nc = n
			return
		}
	}
}

// mergePass runs one greedy left-to-right merge with the given k-width
// limit over the sorted store, writing the result to the store prefix and
// returning its length. Writes never pass reads, so it is safe in place.
func (d *Digest) mergePass(limit float64) int {
	total := 0.0
	for _, c := range d.store {
		total += c.Weight
	}
	if total == 0 {
		return 0
	}
	out := 0
	cur := d.store[0]
	wSoFar := 0.0
	for _, c := range d.store[1:] {
		q0 := wSoFar / total
		q2 := (wSoFar + cur.Weight + c.Weight) / total
		if d.kScale(q2)-d.kScale(q0) <= limit {
			cur.Weight += c.Weight
			cur.Mean += (c.Mean - cur.Mean) * c.Weight / cur.Weight
		} else {
			d.store[out] = cur
			out++
			wSoFar += cur.Weight
			cur = c
		}
	}
	d.store[out] = cur
	return out + 1
}

// Centroids compresses and returns the centroid list (a view into the
// digest's storage — do not retain across further Adds).
func (d *Digest) Centroids() []Centroid {
	d.compress()
	return d.store[:d.nc]
}

// Quantile returns the approximate value at quantile q in [0, 1],
// interpolating linearly between centroid midpoints and clamping to the
// exact min/max at the edges.
func (d *Digest) Quantile(q float64) float64 {
	cs := d.Centroids()
	if len(cs) == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	target := q * d.count
	wSoFar := 0.0
	prevMid, prevMean := 0.0, d.min
	for _, c := range cs {
		mid := wSoFar + c.Weight/2
		if target < mid {
			if mid == prevMid {
				return c.Mean
			}
			frac := (target - prevMid) / (mid - prevMid)
			return prevMean + frac*(c.Mean-prevMean)
		}
		prevMid, prevMean = mid, c.Mean
		wSoFar += c.Weight
	}
	// Beyond the last midpoint: interpolate toward the exact max.
	if d.count == prevMid {
		return d.max
	}
	frac := (target - prevMid) / (d.count - prevMid)
	return prevMean + frac*(d.max-prevMean)
}

// Rank returns the approximate fraction of absorbed weight at or below x
// (the empirical CDF), the inverse of Quantile under the same piecewise
// interpolation.
func (d *Digest) Rank(x float64) float64 {
	cs := d.Centroids()
	if len(cs) == 0 {
		return 0
	}
	if x < d.min {
		return 0
	}
	if x >= d.max {
		return 1
	}
	wSoFar := 0.0
	prevMid, prevMean := 0.0, d.min
	for _, c := range cs {
		mid := wSoFar + c.Weight/2
		if x < c.Mean {
			if c.Mean == prevMean {
				return mid / d.count
			}
			frac := (x - prevMean) / (c.Mean - prevMean)
			return (prevMid + frac*(mid-prevMid)) / d.count
		}
		prevMid, prevMean = mid, c.Mean
		wSoFar += c.Weight
	}
	if d.max == prevMean {
		return 1
	}
	frac := (x - prevMean) / (d.max - prevMean)
	return (prevMid + frac*(d.count-prevMid)) / d.count
}

// Samples reconstructs m representative values at evenly spaced quantiles
// (i+½)/m — the regularized view of the CDF that the NKLD machinery
// consumes in place of a raw sample buffer.
func (d *Digest) Samples(m int) []float64 {
	if m <= 0 || d.count == 0 {
		return nil
	}
	out := make([]float64, m)
	for i := range out {
		out[i] = d.Quantile((float64(i) + 0.5) / float64(m))
	}
	return out
}

// FootprintBytes returns the digest's fixed memory footprint: the backing
// array allocation plus the struct itself. It never grows after NewDigest.
func (d *Digest) FootprintBytes() int {
	const centroidBytes = 16 // two float64s
	const structBytes = 88   // slice header + counters, conservatively
	return cap(d.store)*centroidBytes + structBytes
}
