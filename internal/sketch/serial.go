package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// Binary layout (all little-endian, versioned for forward evolution):
//
//	Digest      magic u32 | version u8 | compression f64 | min f64 |
//	            max f64 | count f64 | n u16 | n × (mean f64, weight f64)
//	Trend       version u8 | nslots u16 | base i64 (ns) | t0 i64
//	            (UnixNano) | last i32 | nslots × (mean f32, n u32)
//	EpochSketch magic u32 | version u8 | flags u8 (bit0: trend present) |
//	            accum (n i64, mean f64, m2 f64, min f64, max f64) |
//	            dlen u32 | digest | [tlen u32 | trend]
//
// Marshal compresses first, so the bytes are a canonical function of the
// absorbed sample sequence: same samples, same order → same bytes.

const (
	digestMagic  = 0x77736b64 // "wskd"
	sketchMagic  = 0x77736b65 // "wske"
	digestV1     = 1
	trendV1      = 1
	sketchV1     = 1
	flagHasTrend = 1 << 0

	digestHeaderLen = 4 + 1 + 8 + 8 + 8 + 8 + 2
	trendHeaderLen  = 1 + 2 + 8 + 8 + 4
	sketchHeaderLen = 4 + 1 + 1 + 40
)

// ErrBadSketch is wrapped by every deserialization failure.
var ErrBadSketch = errors.New("sketch: malformed serialized sketch")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSketch, fmt.Sprintf(format, args...))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// MarshalBinary serializes the digest in its canonical compressed form.
func (d *Digest) MarshalBinary() []byte {
	cs := d.Centroids()
	b := make([]byte, 0, digestHeaderLen+16*len(cs))
	b = binary.LittleEndian.AppendUint32(b, digestMagic)
	b = append(b, digestV1)
	b = appendF64(b, d.compression)
	b = appendF64(b, d.Min())
	b = appendF64(b, d.Max())
	b = appendF64(b, d.count)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cs)))
	for _, c := range cs {
		b = appendF64(b, c.Mean)
		b = appendF64(b, c.Weight)
	}
	return b
}

// UnmarshalDigest reconstructs a digest, validating structure so corrupt
// or adversarial bytes yield an error, never a poisoned digest.
func UnmarshalDigest(b []byte) (*Digest, error) {
	if len(b) < digestHeaderLen {
		return nil, badf("digest truncated: %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b) != digestMagic {
		return nil, badf("digest magic mismatch")
	}
	if b[4] != digestV1 {
		return nil, badf("unsupported digest version %d", b[4])
	}
	compression := getF64(b[5:])
	min := getF64(b[13:])
	max := getF64(b[21:])
	count := getF64(b[29:])
	n := int(binary.LittleEndian.Uint16(b[37:]))
	if math.IsNaN(compression) || compression < minCompression || compression > 1e6 {
		return nil, badf("compression %v out of range", compression)
	}
	if math.IsNaN(min) || math.IsInf(min, 0) || math.IsNaN(max) || math.IsInf(max, 0) || min > max {
		return nil, badf("min/max invalid")
	}
	if math.IsNaN(count) || math.IsInf(count, 0) || count < 0 {
		return nil, badf("count invalid")
	}
	d := NewDigest(compression)
	if n > d.maxStored {
		return nil, badf("%d centroids exceeds capacity %d", n, d.maxStored)
	}
	if len(b) != digestHeaderLen+16*n {
		return nil, badf("digest length %d != expected %d", len(b), digestHeaderLen+16*n)
	}
	if n == 0 {
		if count != 0 {
			return nil, badf("empty digest with nonzero count")
		}
		return d, nil
	}
	sum := 0.0
	prev := math.Inf(-1)
	for i := 0; i < n; i++ {
		off := digestHeaderLen + 16*i
		mean := getF64(b[off:])
		weight := getF64(b[off+8:])
		if math.IsNaN(mean) || math.IsInf(mean, 0) || mean < prev {
			return nil, badf("centroid %d mean invalid or unsorted", i)
		}
		if math.IsNaN(weight) || math.IsInf(weight, 0) || weight <= 0 {
			return nil, badf("centroid %d weight invalid", i)
		}
		if mean < min || mean > max {
			return nil, badf("centroid %d mean outside [min, max]", i)
		}
		d.store = append(d.store, Centroid{Mean: mean, Weight: weight})
		sum += weight
		prev = mean
	}
	if diff := math.Abs(sum - count); diff > 1e-6*(1+math.Abs(count)) {
		return nil, badf("count %v inconsistent with centroid weights %v", count, sum)
	}
	d.nc = n
	d.count = count
	d.min, d.max = min, max
	return d, nil
}

// marshalTrend serializes the ring.
func (t *Trend) marshalTrend() []byte {
	b := make([]byte, 0, trendHeaderLen+8*len(t.slots))
	b = append(b, trendV1)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(t.slots)))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.base))
	var t0 int64
	if t.last >= 0 {
		t0 = t.t0.UnixNano()
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(t0))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(t.last)))
	for _, s := range t.slots {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(s.mean))
		b = binary.LittleEndian.AppendUint32(b, s.n)
	}
	return b
}

// unmarshalTrend reconstructs a ring.
func unmarshalTrend(b []byte) (*Trend, error) {
	if len(b) < trendHeaderLen {
		return nil, badf("trend truncated: %d bytes", len(b))
	}
	if b[0] != trendV1 {
		return nil, badf("unsupported trend version %d", b[0])
	}
	nslots := int(binary.LittleEndian.Uint16(b[1:]))
	base := time.Duration(binary.LittleEndian.Uint64(b[3:]))
	t0ns := int64(binary.LittleEndian.Uint64(b[11:]))
	last := int(int32(binary.LittleEndian.Uint32(b[19:])))
	if nslots < 2 || nslots > 1<<14 {
		return nil, badf("trend slot count %d out of range", nslots)
	}
	if base <= 0 {
		return nil, badf("trend base %v invalid", base)
	}
	if last < -1 || last >= nslots {
		return nil, badf("trend last index %d out of range", last)
	}
	if len(b) != trendHeaderLen+8*nslots {
		return nil, badf("trend length %d != expected %d", len(b), trendHeaderLen+8*nslots)
	}
	t := NewTrend(nslots, base)
	t.last = last
	if last >= 0 {
		t.t0 = time.Unix(0, t0ns)
	}
	for i := 0; i < nslots; i++ {
		off := trendHeaderLen + 8*i
		mean := math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
		n := binary.LittleEndian.Uint32(b[off+4:])
		if n > 0 && (math.IsNaN(float64(mean)) || math.IsInf(float64(mean), 0)) {
			return nil, badf("trend slot %d mean invalid", i)
		}
		if n > 0 && i > last {
			return nil, badf("trend slot %d filled past last=%d", i, last)
		}
		t.slots[i] = trendSlot{mean: mean, n: n}
	}
	return t, nil
}

// MarshalBinary serializes the full estimator state — digest, moments and
// (when attached) trend — as the checkpoint and fan-out payload.
func (e *EpochSketch) MarshalBinary() []byte {
	dig := e.dig.MarshalBinary()
	var tr []byte
	flags := byte(0)
	if e.trend != nil {
		flags |= flagHasTrend
		tr = e.trend.marshalTrend()
	}
	st := e.acc.State()
	b := make([]byte, 0, sketchHeaderLen+4+len(dig)+4+len(tr))
	b = binary.LittleEndian.AppendUint32(b, sketchMagic)
	b = append(b, sketchV1, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.N))
	b = appendF64(b, st.Mean)
	b = appendF64(b, st.M2)
	b = appendF64(b, st.Min)
	b = appendF64(b, st.Max)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dig)))
	b = append(b, dig...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(tr)))
	b = append(b, tr...)
	return b
}

// UnmarshalEpochSketch reconstructs an estimator sketch, validating every
// layer.
func UnmarshalEpochSketch(b []byte) (*EpochSketch, error) {
	if len(b) < sketchHeaderLen+8 {
		return nil, badf("sketch truncated: %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b) != sketchMagic {
		return nil, badf("sketch magic mismatch")
	}
	if b[4] != sketchV1 {
		return nil, badf("unsupported sketch version %d", b[4])
	}
	flags := b[5]
	st := stats.AccumState{
		N:    int64(binary.LittleEndian.Uint64(b[6:])),
		Mean: getF64(b[14:]),
		M2:   getF64(b[22:]),
		Min:  getF64(b[30:]),
		Max:  getF64(b[38:]),
	}
	if st.N < 0 {
		return nil, badf("accum count negative")
	}
	off := sketchHeaderLen
	dlen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if dlen < 0 || off+dlen > len(b) {
		return nil, badf("digest segment overruns buffer")
	}
	dig, err := UnmarshalDigest(b[off : off+dlen])
	if err != nil {
		return nil, err
	}
	off += dlen
	if off+4 > len(b) {
		return nil, badf("trend segment header missing")
	}
	tlen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if tlen < 0 || off+tlen != len(b) {
		return nil, badf("trend segment length %d != remaining %d", tlen, len(b)-off)
	}
	e := &EpochSketch{dig: dig, acc: stats.AccumFromState(st)}
	if flags&flagHasTrend != 0 {
		tr, err := unmarshalTrend(b[off:])
		if err != nil {
			return nil, err
		}
		e.trend = tr
	} else if tlen != 0 {
		return nil, badf("trend bytes present without flag")
	}
	return e, nil
}
