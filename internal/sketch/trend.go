package sketch

import (
	"math"
	"time"
)

// DefaultTrendSlots is the slot budget for trailing-window trends: enough
// resolution for the Allan sweep's 60-point gate while keeping the ring
// under a kilobyte.
const DefaultTrendSlots = 88

// trendSlot is one time bin: the running mean of samples landing in it and
// their count. float32/uint32 halve the ring's footprint; the mean is an
// epoch-scale aggregate, not an estimator, so the lost precision is noise.
type trendSlot struct {
	mean float32
	n    uint32
}

// Trend is a telescoping time-binned series: a fixed number of slots whose
// width doubles whenever the observed span outgrows the ring (adjacent
// pairs coalesce). It preserves exactly what a quantile digest destroys —
// temporal ordering — at constant memory, and its Series/Period output is
// the regularized series the Allan-deviation epoch chooser consumes.
type Trend struct {
	slots []trendSlot
	base  time.Duration // current slot width
	t0    time.Time     // anchor: start of slot 0
	last  int           // highest filled slot index, -1 when empty
}

// NewTrend returns an empty trend of nslots bins starting at width base.
func NewTrend(nslots int, base time.Duration) *Trend {
	if nslots < 2 {
		nslots = 2
	}
	if base <= 0 {
		base = time.Minute
	}
	return &Trend{slots: make([]trendSlot, nslots), base: base, last: -1}
}

// Period returns the current slot width.
func (t *Trend) Period() time.Duration { return t.base }

// Slots returns the ring's slot budget.
func (t *Trend) Slots() int { return len(t.slots) }

// Observe folds one timestamped sample into the ring.
func (t *Trend) Observe(at time.Time, v float64) { t.observeWeighted(at, v, 1) }

func (t *Trend) observeWeighted(at time.Time, v float64, w uint32) {
	if math.IsNaN(v) || math.IsInf(v, 0) || w == 0 {
		return
	}
	if t.last < 0 {
		t.t0 = at.Truncate(t.base)
		t.addAt(0, v, w)
		return
	}
	if at.Before(t.t0) {
		// Out-of-order sample from before the anchor: fold into slot 0
		// rather than re-anchoring (cheap, and keeps t0 monotone).
		t.addAt(0, v, w)
		return
	}
	idx := int(at.Sub(t.t0) / t.base)
	for idx >= len(t.slots) {
		t.coalesce()
		idx = int(at.Sub(t.t0) / t.base)
	}
	t.addAt(idx, v, w)
}

// addAt folds (v, w) into slot i's running mean.
func (t *Trend) addAt(i int, v float64, w uint32) {
	s := &t.slots[i]
	nw := s.n + w
	s.mean += float32(v-float64(s.mean)) * float32(w) / float32(nw)
	s.n = nw
	if i > t.last {
		t.last = i
	}
}

// coalesce doubles the slot width, merging adjacent pairs in place.
func (t *Trend) coalesce() {
	for i := 0; i < len(t.slots)/2; i++ {
		a, b := t.slots[2*i], t.slots[2*i+1]
		n := a.n + b.n
		m := float32(0)
		if n > 0 {
			m = (a.mean*float32(a.n) + b.mean*float32(b.n)) / float32(n)
		}
		t.slots[i] = trendSlot{mean: m, n: n}
	}
	for i := len(t.slots) / 2; i < len(t.slots); i++ {
		t.slots[i] = trendSlot{}
	}
	t.base *= 2
	t.last /= 2
}

// Series returns the regularized mean series from slot 0 through the last
// filled slot, carrying the previous mean forward across empty bins (the
// same gap treatment stats.RegularSeries applied to raw histories). Empty
// trend → nil.
func (t *Trend) Series() []float64 {
	if t.last < 0 {
		return nil
	}
	out := make([]float64, t.last+1)
	prev := float64(t.slots[0].mean)
	for i := 0; i <= t.last; i++ {
		if t.slots[i].n > 0 {
			prev = float64(t.slots[i].mean)
		}
		out[i] = prev
	}
	return out
}

// Merge folds another trend's mass into t, re-observing each filled slot
// at its center time. Rings with different widths telescope as needed.
func (t *Trend) Merge(o *Trend) {
	if o == nil || o.last < 0 {
		return
	}
	for i := 0; i <= o.last; i++ {
		if o.slots[i].n == 0 {
			continue
		}
		at := o.t0.Add(time.Duration(i)*o.base + o.base/2)
		t.observeWeighted(at, float64(o.slots[i].mean), o.slots[i].n)
	}
}

// Reset empties the ring, keeping its slot budget but restoring the
// initial width.
func (t *Trend) Reset(base time.Duration) {
	for i := range t.slots {
		t.slots[i] = trendSlot{}
	}
	if base > 0 {
		t.base = base
	}
	t.last = -1
	t.t0 = time.Time{}
}

// FootprintBytes returns the ring's fixed memory footprint.
func (t *Trend) FootprintBytes() int {
	const slotBytes = 8 // float32 + uint32
	const structBytes = 64
	return cap(t.slots)*slotBytes + structBytes
}
