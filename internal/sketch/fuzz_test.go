package sketch

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// valuesFrom reinterprets fuzz input as a float64 sample stream (8 bytes
// per value, little-endian), capped so one input cannot stall the fuzzer.
func valuesFrom(data []byte) []float64 {
	const maxVals = 4096
	n := len(data) / 8
	if n > maxVals {
		n = maxVals
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:])))
	}
	return out
}

// FuzzSketchRoundTrip drives the digest with arbitrary sample streams and
// pins the serialization invariants: MarshalBinary → UnmarshalDigest never
// fails on self-produced bytes, every quantile survives the round-trip
// exactly, the reconstruction re-serializes byte-identically (canonical
// form), and feeding the raw fuzz input to the deserializers never panics.
func FuzzSketchRoundTrip(f *testing.F) {
	// Seed corpus: value streams covering the shapes that matter (uniform
	// ramp, constant, tiny, huge spread, non-finite poison) plus one
	// well-formed serialized digest so the mutator explores the decoder.
	ramp := make([]byte, 0, 400*8)
	for i := 0; i < 400; i++ {
		ramp = binary.LittleEndian.AppendUint64(ramp, math.Float64bits(float64(i)))
	}
	f.Add(ramp)
	constant := make([]byte, 0, 64*8)
	for i := 0; i < 64; i++ {
		constant = binary.LittleEndian.AppendUint64(constant, math.Float64bits(42.5))
	}
	f.Add(constant)
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())))
	f.Add(binary.LittleEndian.AppendUint64(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(-1e300)),
		math.Float64bits(1e300)))
	seedDigest := NewDigest(minCompression)
	for i := 0; i < 100; i++ {
		seedDigest.Add(float64(i * i))
	}
	f.Add(seedDigest.MarshalBinary())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes through the deserializers: errors fine, panics not.
		if d, err := UnmarshalDigest(data); err == nil {
			// Accepted bytes must round-trip to the same canonical form.
			if !bytes.Equal(d.MarshalBinary(), data) {
				t.Fatal("accepted digest bytes are not canonical")
			}
		}
		_, _ = UnmarshalEpochSketch(data)

		// Same bytes as a sample stream: build → serialize → deserialize →
		// quantiles equal.
		d := NewDigest(DefaultCompression)
		for _, v := range valuesFrom(data) {
			d.Add(v)
		}
		b1 := d.MarshalBinary()
		got, err := UnmarshalDigest(b1)
		if err != nil {
			t.Fatalf("self-produced digest bytes rejected: %v", err)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			if a, b := d.Quantile(q), got.Quantile(q); a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("quantile %v changed across round-trip: %v vs %v", q, a, b)
			}
		}
		if got.Count() != d.Count() {
			t.Fatalf("count changed across round-trip: %v vs %v", got.Count(), d.Count())
		}
		if b2 := got.MarshalBinary(); !bytes.Equal(b1, b2) {
			t.Fatal("round-tripped digest serializes to different bytes")
		}
	})
}
