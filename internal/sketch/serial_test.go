package sketch

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestDigestSerializeRoundTrip(t *testing.T) {
	d := NewDigest(DefaultCompression)
	r := rng.New(17)
	for i := 0; i < 25000; i++ {
		d.Add(r.LogNormal(4, 0.6))
	}
	b1 := d.MarshalBinary()
	got, err := UnmarshalDigest(b1)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if got.Quantile(q) != d.Quantile(q) {
			t.Fatalf("q=%.2f changed across round-trip: %v vs %v", q, got.Quantile(q), d.Quantile(q))
		}
	}
	if got.Count() != d.Count() {
		t.Fatalf("count changed: %v vs %v", got.Count(), d.Count())
	}
	// Canonical form: re-marshaling the reconstruction is byte-identical.
	if b2 := got.MarshalBinary(); !bytes.Equal(b1, b2) {
		t.Fatal("round-tripped digest serializes to different bytes")
	}
}

func TestDigestSerializeEmpty(t *testing.T) {
	d := NewDigest(DefaultCompression)
	got, err := UnmarshalDigest(d.MarshalBinary())
	if err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if got.Count() != 0 {
		t.Fatal("empty digest round-trip not empty")
	}
}

func TestDigestSerializeDeterministic(t *testing.T) {
	mk := func() []byte {
		d := NewDigest(DefaultCompression)
		r := rng.New(23)
		for i := 0; i < 5000; i++ {
			d.Add(r.Normal(100, 10))
		}
		return d.MarshalBinary()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("same sample sequence must serialize to identical bytes")
	}
}

func TestUnmarshalDigestRejectsCorrupt(t *testing.T) {
	d := NewDigest(DefaultCompression)
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	good := d.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-5],
		"magic":     append([]byte{0, 0, 0, 0}, good[4:]...),
		"version":   append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
	}
	// Negative centroid weight.
	neg := append([]byte(nil), good...)
	for i := 0; i < 8; i++ {
		neg[digestHeaderLen+8+i] = 0xff // weight -> NaN pattern
	}
	cases["nan-weight"] = neg

	for name, b := range cases {
		if _, err := UnmarshalDigest(b); err == nil {
			t.Errorf("%s: corrupt digest accepted", name)
		}
	}
}

func TestEpochSketchSerializeRoundTrip(t *testing.T) {
	es := NewEpochSketch(DefaultCompression)
	es.EnableTrend(DefaultTrendSlots, time.Minute)
	r := rng.New(29)
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10000; i++ {
		es.Observe(t0.Add(time.Duration(i)*time.Minute), r.Normal(880, 70))
	}
	b1 := es.MarshalBinary()
	got, err := UnmarshalEpochSketch(b1)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count() != es.Count() || got.Mean() != es.Mean() || got.StdDev() != es.StdDev() {
		t.Fatal("moments changed across round-trip")
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got.Quantile(q) != es.Quantile(q) {
			t.Fatalf("q=%.2f changed across round-trip", q)
		}
	}
	s1, p1 := es.TrendSeries()
	s2, p2 := got.TrendSeries()
	if p1 != p2 || len(s1) != len(s2) {
		t.Fatalf("trend changed: %d@%v vs %d@%v", len(s1), p1, len(s2), p2)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-6 {
			t.Fatalf("trend slot %d changed: %v vs %v", i, s1[i], s2[i])
		}
	}
	if b2 := got.MarshalBinary(); !bytes.Equal(b1, b2) {
		t.Fatal("round-tripped sketch serializes to different bytes")
	}
}

func TestEpochSketchSerializeNoTrend(t *testing.T) {
	es := NewEpochSketch(EpochCompression)
	es.Add(1)
	es.Add(2)
	got, err := UnmarshalEpochSketch(es.MarshalBinary())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.HasTrend() {
		t.Fatal("trendless sketch grew a trend")
	}
	if got.Count() != 2 || got.Mean() != 1.5 {
		t.Fatal("moments wrong after round-trip")
	}
}

func TestUnmarshalEpochSketchRejectsCorrupt(t *testing.T) {
	es := NewEpochSketch(EpochCompression)
	es.EnableTrend(8, time.Minute)
	es.Observe(time.Unix(1_700_000_000, 0), 5)
	good := es.MarshalBinary()
	for name, b := range map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"magic":     append([]byte{1, 2, 3, 4}, good[4:]...),
		"extra":     append(append([]byte(nil), good...), 0xAB),
	} {
		if _, err := UnmarshalEpochSketch(b); err == nil {
			t.Errorf("%s: corrupt sketch accepted", name)
		}
	}
}

func TestUnmarshalDigestNoPanicOnArbitrary(t *testing.T) {
	r := rng.New(31)
	for i := 0; i < 2000; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Uint64())
		}
		_, _ = UnmarshalDigest(b)      // must not panic
		_, _ = UnmarshalEpochSketch(b) // must not panic
	}
}
