package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// This file is the gateway's failover machinery: when a shard's circuit
// breaker opens, the gateway interrogates the shard's configured endpoints,
// promotes the freshest caught-up replica to primary at a bumped routing
// epoch, and rewrites the live route table so agent traffic redirects
// transparently. A deposed primary that later answers the status poll is
// ordered to demote and resync from the new primary's snapshot.

// queryStatus asks one coordinator endpoint for its replication status over
// a short-lived wire connection.
func (g *Gateway) queryStatus(ep string) (*wire.StatusReply, error) {
	nc, err := net.DialTimeout("tcp", ep, g.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := wire.NewConn(nc).Instrument(g.met.wireMetrics())
	defer func() {
		//lint:ignore errdrop read-only probe connection teardown
		_ = c.Close()
	}()
	_ = c.SetDeadline(time.Now().Add(g.opts.RequestTimeout))
	reply, err := c.Request(wire.Envelope{Type: wire.TypeStatusRequest, StatusRequest: &wire.StatusRequest{}})
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.TypeStatusReply || reply.StatusReply == nil {
		return nil, fmt.Errorf("unexpected reply %q", reply.Type)
	}
	return reply.StatusReply, nil
}

// roleOrder sends one promote/demote envelope to an endpoint.
func (g *Gateway) roleOrder(ep string, req wire.Envelope) (wire.Envelope, error) {
	nc, err := net.DialTimeout("tcp", ep, g.opts.DialTimeout)
	if err != nil {
		return wire.Envelope{}, err
	}
	c := wire.NewConn(nc).Instrument(g.met.wireMetrics())
	defer func() {
		//lint:ignore errdrop control-channel teardown after the ack
		_ = c.Close()
	}()
	_ = c.SetDeadline(time.Now().Add(g.opts.RequestTimeout))
	reply, err := c.Request(req)
	if err != nil {
		return wire.Envelope{}, err
	}
	if reply.Type == wire.TypeError && reply.Error != nil {
		return wire.Envelope{}, errors.New(reply.Error.Message)
	}
	return reply, nil
}

// kickFailover starts an asynchronous promotion attempt for sh. At most
// one attempt per shard runs at a time; shards without standbys never
// fail over.
func (g *Gateway) kickFailover(sh *Shard) {
	if !sh.beginFailover() {
		return
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		sh.endFailover()
		return
	}
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		defer sh.endFailover()
		g.failover(sh)
	}()
}

// failover runs one promotion attempt: poll every endpoint, pick the
// freshest responder that is not the (dead) active route, order it to
// become primary, and rewrite the route table.
func (g *Gateway) failover(sh *Shard) {
	active := sh.Addr()
	epoch := sh.Epoch()

	type candidate struct {
		ep string
		st *wire.StatusReply
	}
	var best *candidate
	standbyUp := false
	for _, ep := range sh.Endpoints() {
		if ep == active {
			// The breaker just declared it dead; re-probing it here only
			// delays recovery. The recheck loop owns its resurrection.
			continue
		}
		st, err := g.queryStatus(ep)
		if err != nil {
			continue
		}
		standbyUp = true
		// Freshness: a replica's durable position is its applied LSN; a
		// (possibly stale) primary's is its last LSN. Highest wins —
		// promoting anything staler would discard acked samples.
		pos := st.LastLSN
		if st.AppliedLSN > pos {
			pos = st.AppliedLSN
		}
		if best == nil || pos > bestPos(best.st) {
			best = &candidate{ep: ep, st: st}
		}
	}
	sh.setStandbyUp(standbyUp)
	if best == nil {
		g.opts.Logf("gateway: shard %s: breaker open and no standby reachable", sh.Name())
		return
	}

	newEpoch := epoch + 1
	ack, err := g.roleOrder(best.ep, wire.Envelope{Type: wire.TypePromote, Promote: &wire.Promote{Epoch: newEpoch}})
	if err != nil || ack.Type != wire.TypePromoteAck || ack.PromoteAck == nil {
		if err == nil {
			err = fmt.Errorf("unexpected reply %q", ack.Type)
		}
		g.opts.Logf("gateway: shard %s: promoting %s failed: %v", sh.Name(), best.ep, err)
		return
	}
	if !sh.setActive(best.ep, newEpoch) {
		// A concurrent route change (manual promote) won the epoch race;
		// the loser's coordinator will be demoted by the next reconcile.
		g.opts.Logf("gateway: shard %s: route change to %s at epoch %d lost a race", sh.Name(), best.ep, newEpoch)
		return
	}
	g.met.shard(sh.Name()).markPromotion(newEpoch)
	g.met.shard(sh.Name()).setHealth(true)
	g.opts.Logf("gateway: shard %s: promoted %s (%s) to primary at epoch %d, LSN %d",
		sh.Name(), ack.PromoteAck.ServerID, best.ep, newEpoch, ack.PromoteAck.LastLSN)

	// Any other standby that still believes it is primary diverges from the
	// new timeline; order an immediate resync.
	g.demoteStale(sh, ack.PromoteAck.ReplAddr)
}

func bestPos(st *wire.StatusReply) uint64 {
	if st.AppliedLSN > st.LastLSN {
		return st.AppliedLSN
	}
	return st.LastLSN
}

// demoteStale polls the shard's non-active endpoints and orders any that
// claim the primary role at a stale epoch to demote and resync from
// primaryReplAddr (the current primary's replication listener).
func (g *Gateway) demoteStale(sh *Shard, primaryReplAddr string) {
	if primaryReplAddr == "" {
		return
	}
	active := sh.Addr()
	epoch := sh.Epoch()
	for _, ep := range sh.Endpoints() {
		if ep == active {
			continue
		}
		st, err := g.queryStatus(ep)
		if err != nil || st.Role != wire.RolePrimary || st.Epoch >= epoch {
			continue
		}
		_, err = g.roleOrder(ep, wire.Envelope{Type: wire.TypeDemote, Demote: &wire.Demote{
			Epoch:           epoch,
			PrimaryReplAddr: primaryReplAddr,
		}})
		if err != nil {
			g.opts.Logf("gateway: shard %s: demoting stale primary %s failed: %v", sh.Name(), ep, err)
			continue
		}
		g.met.shard(sh.Name()).markDemotion()
		g.opts.Logf("gateway: shard %s: demoted stale primary %s (resync from %s at epoch %d)",
			sh.Name(), ep, primaryReplAddr, epoch)
	}
}

// reconcileShard is the recheck-cadence control pass for one replicated
// shard: keep the standby-reachability signal fresh, trigger promotion when
// the active route is down, and sweep rejoined stale primaries back into
// the replica role.
func (g *Gateway) reconcileShard(sh *Shard) {
	if len(sh.Endpoints()) < 2 {
		return
	}
	if !sh.Healthy() {
		g.kickFailover(sh)
		return
	}
	// Healthy path: learn the primary's replication address and sweep for
	// rejoined stale primaries (a restarted pre-failover primary answers
	// with its old role and epoch 0).
	st, err := g.queryStatus(sh.Addr())
	if err != nil {
		return // breaker-driven paths handle an unhealthy active endpoint
	}
	sh.setStandbyUp(true)
	g.demoteStale(sh, st.ReplAddr)
}

// PromoteShard manually rewrites a shard's route to the given endpoint
// (which must be configured for the shard), ordering the promotion at a
// bumped epoch. This is the POST /api/v1/shards handler's workhorse and an
// operator's planned-failover tool.
func (g *Gateway) PromoteShard(name, endpoint string) error {
	var sh *Shard
	for _, s := range g.reg.Shards() {
		if s.Name() == name {
			sh = s
			break
		}
	}
	if sh == nil {
		return fmt.Errorf("cluster: unknown shard %q", name)
	}
	found := false
	for _, ep := range sh.Endpoints() {
		if ep == endpoint {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("cluster: %s is not a configured endpoint of shard %q", endpoint, name)
	}
	newEpoch := sh.Epoch() + 1
	ack, err := g.roleOrder(endpoint, wire.Envelope{Type: wire.TypePromote, Promote: &wire.Promote{Epoch: newEpoch}})
	if err != nil {
		return fmt.Errorf("cluster: promoting %s: %w", endpoint, err)
	}
	if ack.Type != wire.TypePromoteAck || ack.PromoteAck == nil {
		return fmt.Errorf("cluster: promoting %s: unexpected reply %q", endpoint, ack.Type)
	}
	if !sh.setActive(endpoint, newEpoch) {
		return fmt.Errorf("cluster: route change for %q lost an epoch race, retry", name)
	}
	g.met.shard(sh.Name()).markPromotion(newEpoch)
	g.opts.Logf("gateway: shard %s: manually promoted %s to primary at epoch %d", name, endpoint, newEpoch)
	g.demoteStale(sh, ack.PromoteAck.ReplAddr)
	return nil
}
