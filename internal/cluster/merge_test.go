package cluster

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// TestGatewayEstimateMergesShardSketches is the fan-out merge acceptance
// test: the same seeded sample stream is split alternately across two
// shards that both publish the queried (shard-grid-relative) zone ID, and
// the gateway's merged answer must match a single-coordinator run on the
// full stream — exactly for the moments (parallel Welford merge), within
// rank-error tolerance for the quantiles.
func TestGatewayEstimateMergesShardSketches(t *testing.T) {
	tc := startCluster(t, GatewayOptions{})

	madLoc := geo.Madison().Center()
	njLoc := geo.NewBrunswickArea().Center()
	zone := tc.madCtrl.ZoneOf(madLoc)
	if njZone := tc.njCtrl.ZoneOf(njLoc); njZone != zone {
		t.Fatalf("grid centers map to different relative zone IDs (%s vs %s); the merge path needs both shards to publish the same ID", zone, njZone)
	}

	// The single-coordinator reference shares the madison shard's config
	// and grid but sees the whole stream.
	ref, _ := startShard(t, geo.Madison(), "127.0.0.1:0")
	refCtrl := ref.Controller()

	r := rng.New(77)
	at := start
	var vals []float64
	const n = 800
	for i := 0; i < n; i++ {
		v := 900 + 80*r.NormFloat64()
		vals = append(vals, v)
		loc := madLoc
		ctrl := tc.madCtrl
		if i%2 == 1 {
			loc = njLoc
			ctrl = tc.njCtrl
		}
		s := trace.Sample{
			Time: at, Loc: loc, Network: radio.NetB,
			Metric: trace.MetricUDPKbps, Value: v, ClientID: "merge-test",
		}
		ctrl.Ingest(s)
		s.Loc = madLoc
		refCtrl.Ingest(s)
		at = at.Add(30 * time.Second)
	}

	est, err := agent.QueryEstimate(tc.gw.Addr(), zone, radio.NetB, trace.MetricUDPKbps)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Found {
		t.Fatal("merged estimate not found")
	}
	if est.Record.Samples != n {
		t.Fatalf("merged sample count %d, want %d (both shards' windows)", est.Record.Samples, n)
	}

	// Moments merge exactly.
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if mean := sum / n; math.Abs(est.Record.MeanValue-mean) > 1e-9 {
		t.Fatalf("merged mean %v vs batch %v (Welford merge must be exact)", est.Record.MeanValue, mean)
	}

	// Quantiles stay within rank-error tolerance of the exact stream.
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := func(v float64) float64 {
		return float64(sort.SearchFloat64s(sorted, v)) / float64(len(sorted))
	}
	for q, got := range map[float64]float64{0.50: est.Record.P50, 0.90: est.Record.P90, 0.99: est.Record.P99} {
		if err := math.Abs(rank(got) - q); err > 0.02 {
			t.Errorf("merged q=%.2f -> %v has rank error %.4f", q, got, err)
		}
	}

	// The merged reply carries a decodable merged sketch whose quantiles
	// agree with the single-coordinator run on the same stream.
	if len(est.Sketch) == 0 {
		t.Fatal("merged reply is missing its sketch payload")
	}
	merged, err := sketch.UnmarshalEpochSketch(est.Sketch)
	if err != nil {
		t.Fatalf("merged sketch: %v", err)
	}
	refBytes, ok := refCtrl.SketchFor(refCtrl.Keys()[0])
	if !ok {
		t.Fatal("reference controller has no sketch")
	}
	refSketch, err := sketch.UnmarshalEpochSketch(refBytes)
	if err != nil {
		t.Fatalf("reference sketch: %v", err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		a, b := merged.Quantile(q), refSketch.Quantile(q)
		if math.Abs(rank(a)-rank(b)) > 0.02 {
			t.Errorf("q=%.2f: merged %v vs single-coordinator %v diverge beyond rank tolerance", q, a, b)
		}
	}

	if got := tc.counter("wiscape_gateway_estimate_merges_total"); got != 1 {
		t.Fatalf("estimate merge counter %v, want 1", got)
	}
}
