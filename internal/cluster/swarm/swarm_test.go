package swarm

import (
	"testing"
	"time"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// TestSwarmAgainstCoordinator runs a small swarm straight at one
// coordinator: every agent must finish, every sample must be accepted, and
// the latency tail must be populated.
func TestSwarmAgainstCoordinator(t *testing.T) {
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	srv, err := coordinator.Serve(ctrl, "127.0.0.1:0", coordinator.Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: time.Minute,
		Seed:         77,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := Run(srv.Addr(), Options{
		Agents:          25,
		Rounds:          3,
		SamplesPerRound: 4,
		Seed:            77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AgentsCompleted != 25 {
		t.Fatalf("completed %d/25 agents", res.AgentsCompleted)
	}
	if res.Failures != 0 {
		t.Fatalf("%d failed round trips", res.Failures)
	}
	// hello + (zone report + upload) per round, per agent.
	if want := int64(25 * (1 + 2*3)); res.Requests != want {
		t.Fatalf("requests %d, want %d", res.Requests, want)
	}
	if want := int64(25 * 3 * 4); res.SamplesAccepted != want {
		t.Fatalf("accepted %d samples, want %d", res.SamplesAccepted, want)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.MaxLatency < res.P99 {
		t.Fatalf("latency distribution inconsistent: %+v", res)
	}
	if res.SamplesPerSec() <= 0 || res.RequestsPerSec() <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	// The controller really holds the samples (no silent ack path).
	var total int64
	for _, key := range ctrl.Keys() {
		total += ctrl.SampleCount(key)
	}
	if total != res.SamplesAccepted {
		t.Fatalf("controller holds %d samples, swarm says %d accepted", total, res.SamplesAccepted)
	}
}

func TestSwarmRequiresAddress(t *testing.T) {
	if _, err := Run("", Options{}); err == nil {
		t.Fatal("empty address must error")
	}
}

// TestSwarmReportsDialFailures points the swarm at a dead port: nothing
// completes, everything is a failure, and Run still returns cleanly.
func TestSwarmReportsDialFailures(t *testing.T) {
	res, err := Run("127.0.0.1:1", Options{Agents: 3, Rounds: 1, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.AgentsCompleted != 0 || res.Failures != 3 {
		t.Fatalf("dead target: %+v", res)
	}
}
