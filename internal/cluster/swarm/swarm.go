// Package swarm is the WiScape scale prover: a load generator that drives
// N simulated agents (a goroutine each, real TCP connections, the real
// internal/wire protocol) against a coordinator or cluster gateway and
// reports ingest throughput and request-latency tails. It deliberately
// bypasses the full internal/agent measurement stack — samples are
// synthesized, not simulated — so the benchmark measures the serving tier,
// not the radio model.
package swarm

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Options configures one swarm run.
type Options struct {
	// Agents is the number of concurrent simulated agents. Default 100.
	Agents int

	// Rounds is the zone-report/upload rounds each agent performs.
	// Default 10.
	Rounds int

	// SamplesPerRound is the synthetic samples uploaded per round.
	// Default 5.
	SamplesPerRound int

	// Regions are the areas agents report from; agent i draws all its
	// locations uniformly from Regions[i%len(Regions)], so a multi-region
	// swarm exercises every shard. Default: the Madison box.
	Regions []geo.BoundingBox

	// ZoneRadiusM sizes the zone grid agents derive report zones from;
	// it should match the coordinator's. Default 250.
	ZoneRadiusM float64

	// Network and Metric tag the synthetic samples. Defaults: NetB,
	// udp_kbps.
	Network radio.NetworkID
	Metric  trace.Metric

	// Seed makes the synthetic workload reproducible.
	Seed uint64

	// DialTimeout and RequestTimeout bound each connection attempt and
	// round trip. Defaults: 5s and 10s.
	DialTimeout    time.Duration
	RequestTimeout time.Duration

	// Start is the virtual campaign time stamped on samples (wall time
	// never enters the workload). Interval is the virtual advance per
	// round. Defaults: 2010-09-06T09:00Z, 5 minutes.
	Start    time.Time
	Interval time.Duration

	// RoundDelay is a real-time pause each agent takes between rounds.
	// Zero (the default) runs rounds back to back — right for throughput
	// benchmarks; chaos runs set it so the run spans the kill window.
	RoundDelay time.Duration

	// KillTarget arms the chaos hook: the ops-plane base URL
	// ("http://host:port") of a coordinator started with -admin. KillAfter
	// into the run the swarm POSTs its suspend endpoint (severing the
	// shard mid-ingest); RestartAfter later it POSTs resume (zero leaves
	// it down). The Result then reports the observed ingest gap.
	KillTarget   string
	KillAfter    time.Duration
	RestartAfter time.Duration

	// Logf receives chaos-hook diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Agents <= 0 {
		o.Agents = 100
	}
	if o.Rounds <= 0 {
		o.Rounds = 10
	}
	if o.SamplesPerRound <= 0 {
		o.SamplesPerRound = 5
	}
	if len(o.Regions) == 0 {
		o.Regions = []geo.BoundingBox{geo.Madison()}
	}
	if o.ZoneRadiusM <= 0 {
		o.ZoneRadiusM = 250
	}
	if o.Network == "" {
		o.Network = radio.NetB
	}
	if o.Metric == "" {
		o.Metric = trace.MetricUDPKbps
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.Start.IsZero() {
		o.Start = time.Date(2010, 9, 6, 9, 0, 0, 0, time.UTC)
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Result summarizes one swarm run.
type Result struct {
	Agents          int
	Rounds          int
	SamplesPerRound int
	Elapsed         time.Duration

	Requests        int64 // protocol round trips attempted (hello included)
	Failures        int64 // round trips that errored or got an error reply
	AgentsCompleted int   // agents that finished every round
	SamplesAccepted int64 // samples acknowledged by the server

	// Request-latency distribution over successful round trips.
	P50, P95, P99, MaxLatency time.Duration

	// Chaos-run observations (zero unless KillTarget was set). KillAt and
	// ResumeAt are offsets from the run start; MaxIngestGap is the longest
	// stretch of the run with no sample ack anywhere in the swarm — the
	// operator-visible ingest outage across kill, failover and restart.
	KillAt       time.Duration
	ResumeAt     time.Duration
	MaxIngestGap time.Duration
}

// RequestsPerSec is the sustained protocol round-trip rate.
func (r Result) RequestsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// SamplesPerSec is the sustained ingest throughput — the headline number
// for gateway-vs-direct comparisons.
func (r Result) SamplesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.SamplesAccepted) / r.Elapsed.Seconds()
}

// String renders the operator-facing report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "swarm: %d agents x %d rounds x %d samples in %v\n",
		r.Agents, r.Rounds, r.SamplesPerRound, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  completed agents: %d/%d   requests: %d (%.0f/s, %d failed)\n",
		r.AgentsCompleted, r.Agents, r.Requests, r.RequestsPerSec(), r.Failures)
	fmt.Fprintf(&b, "  ingest: %d samples accepted (%.0f samples/s)\n",
		r.SamplesAccepted, r.SamplesPerSec())
	fmt.Fprintf(&b, "  latency: p50 %v  p95 %v  p99 %v  max %v",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond))
	if r.KillAt > 0 {
		fmt.Fprintf(&b, "\n  chaos: killed at +%v", r.KillAt.Round(time.Millisecond))
		if r.ResumeAt > 0 {
			fmt.Fprintf(&b, ", restarted at +%v", r.ResumeAt.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "; max ingest gap %v", r.MaxIngestGap.Round(time.Millisecond))
	}
	return b.String()
}

// agentTally is one goroutine's private scratch, merged after the run so
// the hot loop never shares state.
type agentTally struct {
	requests  int64
	failures  int64
	accepted  int64
	completed bool
	latencies []float64 // seconds per successful round trip
	ackTimes  []float64 // seconds since run start of each sample ack
}

// Run drives the swarm against addr (a coordinator or a gateway — the
// protocol is identical, which is the point) and blocks until every agent
// finishes or fails.
func Run(addr string, opts Options) (Result, error) {
	opts.fill()
	if addr == "" {
		return Result{}, fmt.Errorf("swarm: target address required")
	}
	grids := make([]*geo.Grid, len(opts.Regions))
	for i, box := range opts.Regions {
		grids[i] = geo.GridForZoneRadius(box.Center(), opts.ZoneRadiusM)
	}

	tallies := make([]agentTally, opts.Agents)
	var wg sync.WaitGroup
	t0 := time.Now()

	// Chaos hook: suspend (and optionally resume) the target coordinator on
	// schedule, in parallel with the load. The goroutine gives up early if
	// every agent finishes before its next timer fires.
	done := make(chan struct{})
	var killAt, resumeAt time.Duration
	var chaosWG sync.WaitGroup
	if opts.KillTarget != "" && opts.KillAfter > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			if !chaosSleep(opts.KillAfter, done) {
				return
			}
			if err := chaosPost(opts.KillTarget + "/api/v1/admin/suspend"); err != nil {
				opts.Logf("swarm: chaos suspend: %v", err)
				return
			}
			killAt = time.Since(t0)
			opts.Logf("swarm: chaos: suspended %s at +%v", opts.KillTarget, killAt.Round(time.Millisecond))
			if opts.RestartAfter <= 0 {
				return
			}
			if !chaosSleep(opts.RestartAfter, done) {
				return
			}
			if err := chaosPost(opts.KillTarget + "/api/v1/admin/resume"); err != nil {
				opts.Logf("swarm: chaos resume: %v", err)
				return
			}
			resumeAt = time.Since(t0)
			opts.Logf("swarm: chaos: resumed %s at +%v", opts.KillTarget, resumeAt.Round(time.Millisecond))
		}()
	}

	for i := 0; i < opts.Agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			region := opts.Regions[i%len(opts.Regions)]
			grid := grids[i%len(opts.Regions)]
			runAgent(addr, opts, i, t0, region, grid, &tallies[i])
		}(i)
	}
	wg.Wait()
	close(done)
	chaosWG.Wait()
	elapsed := time.Since(t0)

	res := Result{
		Agents:          opts.Agents,
		Rounds:          opts.Rounds,
		SamplesPerRound: opts.SamplesPerRound,
		Elapsed:         elapsed,
	}
	var lat []float64
	for i := range tallies {
		t := &tallies[i]
		res.Requests += t.requests
		res.Failures += t.failures
		res.SamplesAccepted += t.accepted
		if t.completed {
			res.AgentsCompleted++
		}
		lat = append(lat, t.latencies...)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		res.P50 = secs(stats.Percentile(lat, 50))
		res.P95 = secs(stats.Percentile(lat, 95))
		res.P99 = secs(stats.Percentile(lat, 99))
		res.MaxLatency = secs(lat[len(lat)-1])
	}
	res.KillAt = killAt
	res.ResumeAt = resumeAt
	if opts.KillTarget != "" {
		var acks []float64
		for i := range tallies {
			acks = append(acks, tallies[i].ackTimes...)
		}
		res.MaxIngestGap = maxIngestGap(acks, elapsed.Seconds())
	}
	return res, nil
}

// maxIngestGap is the longest stretch of the run during which no sample ack
// landed anywhere in the swarm, run boundaries included.
func maxIngestGap(ackTimes []float64, elapsed float64) time.Duration {
	if len(ackTimes) == 0 {
		return secs(elapsed)
	}
	sort.Float64s(ackTimes)
	gap := ackTimes[0] // start -> first ack
	for i := 1; i < len(ackTimes); i++ {
		if d := ackTimes[i] - ackTimes[i-1]; d > gap {
			gap = d
		}
	}
	if d := elapsed - ackTimes[len(ackTimes)-1]; d > gap {
		gap = d
	}
	return secs(gap)
}

// chaosSleep waits d out, reporting false if the run finished first.
func chaosSleep(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// chaosPost hits one coordinator chaos admin endpoint.
func chaosPost(url string) error {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s", url, resp.Status)
	}
	return nil
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// runAgent is one simulated agent's whole life: dial, hello, then Rounds
// of zone report + synthetic sample upload. A transport error ends the
// agent (resilience is the real agent's job; the swarm measures the
// server); an error *reply* counts as a failure but the agent carries on,
// which is what keeps a half-degraded cluster measurable.
func runAgent(addr string, opts Options, idx int, t0 time.Time, region geo.BoundingBox, grid *geo.Grid, tally *agentTally) {
	r := rng.NewNamed(opts.Seed, fmt.Sprintf("swarm-agent-%d", idx))
	id := fmt.Sprintf("swarm-%04d", idx)

	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		tally.failures++
		return
	}
	conn := wire.NewConn(nc)
	defer conn.Close()

	request := func(e wire.Envelope) (wire.Envelope, bool) {
		tally.requests++
		_ = conn.SetDeadline(time.Now().Add(opts.RequestTimeout))
		t0 := time.Now()
		reply, err := conn.Request(e)
		if err != nil {
			tally.failures++
			return wire.Envelope{}, false
		}
		tally.latencies = append(tally.latencies, time.Since(t0).Seconds())
		if reply.Type == wire.TypeError {
			tally.failures++
			return reply, false
		}
		return reply, true
	}

	if _, ok := request(wire.Envelope{Type: wire.TypeHello, Hello: &wire.Hello{
		ClientID: id, DeviceClass: "swarm",
	}}); !ok {
		return
	}

	for round := 0; round < opts.Rounds; round++ {
		if round > 0 && opts.RoundDelay > 0 {
			time.Sleep(opts.RoundDelay)
		}
		at := opts.Start.Add(time.Duration(round) * opts.Interval)
		loc := geo.Point{
			Lat: r.Range(region.MinLat, region.MaxLat),
			Lon: r.Range(region.MinLon, region.MaxLon),
		}
		reply, ok := request(wire.Envelope{Type: wire.TypeZoneReport, ZoneReport: &wire.ZoneReport{
			ClientID: id,
			Zone:     grid.Zone(loc),
			Loc:      loc,
			At:       at,
			Networks: []radio.NetworkID{opts.Network},
		}})
		if !ok && reply.Type == "" {
			return // transport failure: this agent is done
		}

		samples := make([]trace.Sample, opts.SamplesPerRound)
		for j := range samples {
			samples[j] = trace.Sample{
				Time:     at,
				Loc:      loc,
				Network:  opts.Network,
				Metric:   opts.Metric,
				Value:    r.Range(100, 2000),
				ClientID: id,
				Device:   "swarm",
			}
		}
		ack, ok := request(wire.Envelope{Type: wire.TypeSampleReport, SampleReport: &wire.SampleReport{
			ClientID: id, Samples: samples,
		}})
		if !ok {
			if ack.Type == "" {
				return
			}
			continue
		}
		if ack.Type == wire.TypeSampleAck {
			tally.accepted += int64(ack.SampleAck.Accepted)
			if ack.SampleAck.Accepted > 0 {
				tally.ackTimes = append(tally.ackTimes, time.Since(t0).Seconds())
			}
		}
	}
	tally.completed = true
}
