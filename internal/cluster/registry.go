// Package cluster scales the WiScape coordinator horizontally — the §6
// goal of growing beyond one metro area, realised as a networked tier
// rather than the in-process core.Federation. A deployment runs one
// coordinator per region ("shard"), each owning its own controller, grid
// origin and durable store, and puts a thin routing gateway in front: agents
// keep speaking the unmodified internal/wire protocol to one address while
// their reports land on the shard whose bounding box covers the reported
// location, and operator queries fan out across shards and merge.
//
// The package has three parts: the shard Registry (static shard set plus
// per-shard health and circuit breaking), the Gateway (protocol router),
// and the swarm load generator (subpackage swarm) that proves the tier
// under hundreds-to-thousands of concurrent agents.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/geo"
)

// ShardConfig statically describes one regional coordinator.
type ShardConfig struct {
	// Name identifies the shard in logs, metrics and errors (e.g.
	// "madison").
	Name string
	// Addr is the shard coordinator's protocol listener ("host:port").
	Addr string
	// Box is the geographic region the shard owns. Shards are matched in
	// registration order, so register more specific regions first.
	Box geo.BoundingBox
}

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: requests flow
	breakerOpen                         // broken: requests rejected until cooldown passes
	breakerHalfOpen                     // probing: one request (or probe) may test the shard
)

// Shard is one registered coordinator plus its live health state. All
// methods are safe for concurrent use.
type Shard struct {
	cfg ShardConfig

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	reopenAt time.Time // when an open breaker admits a trial request
}

// Name returns the shard's configured name.
func (s *Shard) Name() string { return s.cfg.Name }

// Addr returns the shard's protocol address.
func (s *Shard) Addr() string { return s.cfg.Addr }

// Box returns the shard's owned region.
func (s *Shard) Box() geo.BoundingBox { return s.cfg.Box }

// Healthy reports whether the breaker is closed (normal traffic flow).
func (s *Shard) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == breakerClosed
}

// allow reports whether a request may be sent to the shard now. An open
// breaker past its cooldown moves to half-open and admits exactly one
// trial request; its outcome (recordSuccess / recordFailure) decides
// whether the breaker closes again or re-opens for another cooldown.
func (s *Shard) allow(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(s.reopenAt) {
			return false
		}
		s.state = breakerHalfOpen
		return true
	default: // half-open: a trial is already in flight
		return false
	}
}

// recordSuccess closes the breaker and resets the failure count.
func (s *Shard) recordSuccess() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = breakerClosed
	s.fails = 0
}

// recordFailure counts one failed request; threshold consecutive failures
// (or any failure while half-open) trip the breaker open for cooldown.
func (s *Shard) recordFailure(now time.Time, threshold int, cooldown time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == breakerHalfOpen {
		s.state = breakerOpen
		s.reopenAt = now.Add(cooldown)
		return
	}
	s.fails++
	if s.fails >= threshold {
		s.state = breakerOpen
		s.reopenAt = now.Add(cooldown)
	}
}

// Registry is the gateway's static shard set. It is immutable after
// NewRegistry; only the per-shard health state mutates.
type Registry struct {
	shards []*Shard
}

// NewRegistry validates and indexes the configured shards.
func NewRegistry(cfgs []ShardConfig) (*Registry, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cluster: registry needs at least one shard")
	}
	seen := make(map[string]bool, len(cfgs))
	r := &Registry{shards: make([]*Shard, 0, len(cfgs))}
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("cluster: shard needs a name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("cluster: shard %q registered twice", c.Name)
		}
		if c.Addr == "" {
			return nil, fmt.Errorf("cluster: shard %q needs an address", c.Name)
		}
		seen[c.Name] = true
		r.shards = append(r.shards, &Shard{cfg: c})
	}
	return r, nil
}

// Shards returns the registered shards in registration order.
func (r *Registry) Shards() []*Shard { return r.shards }

// ShardFor returns the shard owning p, matched in registration order.
func (r *Registry) ShardFor(p geo.Point) (*Shard, bool) {
	for _, s := range r.shards {
		if s.cfg.Box.Contains(p) {
			return s, true
		}
	}
	return nil, false
}

// HealthyCount returns the number of shards with a closed breaker.
func (r *Registry) HealthyCount() int {
	n := 0
	for _, s := range r.shards {
		if s.Healthy() {
			n++
		}
	}
	return n
}

// recheck dials every unhealthy shard once (bounded by dialTimeout) and
// closes the breaker of any that answer — the "live re-check" that lets a
// restarted coordinator rejoin without waiting for agent traffic to trip
// the half-open path. Healthy shards are left alone: regular traffic is
// their health check.
func (r *Registry) recheck(dialTimeout time.Duration) {
	for _, s := range r.shards {
		if s.Healthy() {
			continue
		}
		nc, err := net.DialTimeout("tcp", s.cfg.Addr, dialTimeout)
		if err != nil {
			continue
		}
		_ = nc.Close()
		s.recordSuccess()
	}
}
