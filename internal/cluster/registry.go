// Package cluster scales the WiScape coordinator horizontally — the §6
// goal of growing beyond one metro area, realised as a networked tier
// rather than the in-process core.Federation. A deployment runs one
// coordinator per region ("shard"), each owning its own controller, grid
// origin and durable store, and puts a thin routing gateway in front: agents
// keep speaking the unmodified internal/wire protocol to one address while
// their reports land on the shard whose bounding box covers the reported
// location, and operator queries fan out across shards and merge.
//
// The package has three parts: the shard Registry (static shard set plus
// per-shard health and circuit breaking), the Gateway (protocol router),
// and the swarm load generator (subpackage swarm) that proves the tier
// under hundreds-to-thousands of concurrent agents.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/geo"
)

// ShardConfig statically describes one regional coordinator.
type ShardConfig struct {
	// Name identifies the shard in logs, metrics and errors (e.g.
	// "madison").
	Name string
	// Addr is the shard coordinator's protocol listener ("host:port") —
	// the endpoint assumed primary at startup.
	Addr string
	// Replicas are the protocol listeners of the shard's standby
	// coordinators (WAL replicas of Addr). On primary failure the gateway
	// promotes the freshest of them and rewrites the live route table.
	Replicas []string
	// Box is the geographic region the shard owns. Shards are matched in
	// registration order, so register more specific regions first.
	Box geo.BoundingBox
}

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: requests flow
	breakerOpen                         // broken: requests rejected until cooldown passes
	breakerHalfOpen                     // probing: one request (or probe) may test the shard
)

// Shard is one registered coordinator group plus its live health and
// routing state. The route table entry — which endpoint is active, at which
// routing epoch — lives here; the gateway mutates it on promotion. All
// methods are safe for concurrent use.
type Shard struct {
	cfg ShardConfig

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	reopenAt time.Time // when an open breaker admits a trial request

	endpoints   []string // cfg.Addr then cfg.Replicas; never mutated
	active      int      // index of the endpoint agent traffic routes to
	epoch       uint64   // bumped on every active-endpoint change
	failingOver bool     // a promotion attempt is in flight (singleflight)
	standbyUp   bool     // a non-active endpoint answered the last status poll
}

// StandbyUp reports whether a standby endpoint answered the gateway's last
// status poll — the "primary-less but replica-served" readiness signal.
func (s *Shard) StandbyUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.standbyUp
}

func (s *Shard) setStandbyUp(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.standbyUp = up
}

// Name returns the shard's configured name.
func (s *Shard) Name() string { return s.cfg.Name }

// Addr returns the protocol address agent traffic currently routes to:
// the configured primary until a promotion rewrites the route.
func (s *Shard) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.endpoints[s.active]
}

// Endpoints returns every configured endpoint (primary first, then
// replicas, in configuration order).
//
//lint:ignore lockguard endpoints is write-once at construction; mu guards active, not the slice
func (s *Shard) Endpoints() []string { return s.endpoints }

// Epoch returns the shard's routing epoch: 0 at startup, bumped by every
// promotion. Coordinators reject role orders carrying a stale epoch, so a
// delayed promote from a previous failover cannot resurrect an old
// primary.
func (s *Shard) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Box returns the shard's owned region.
func (s *Shard) Box() geo.BoundingBox { return s.cfg.Box }

// setActive rewrites the route to addr at the given epoch, resetting the
// breaker so traffic flows to the new primary immediately. Stale epochs
// (≤ current, unless the route already points at addr) are rejected.
func (s *Shard) setActive(addr string, epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := -1
	for i, e := range s.endpoints {
		if e == addr {
			idx = i
			break
		}
	}
	if idx < 0 || (epoch <= s.epoch && !(idx == s.active && epoch == s.epoch)) {
		return false
	}
	s.active = idx
	s.epoch = epoch
	s.state = breakerClosed
	s.fails = 0
	return true
}

// beginFailover claims the shard's singleflight promotion slot; the caller
// must endFailover when done. Reports false when another promotion is
// already in flight or the shard has no standby to promote.
func (s *Shard) beginFailover() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failingOver || len(s.endpoints) < 2 {
		return false
	}
	s.failingOver = true
	return true
}

func (s *Shard) endFailover() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failingOver = false
}

// Healthy reports whether the breaker is closed (normal traffic flow).
func (s *Shard) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == breakerClosed
}

// BreakerState names the breaker's current state for the route-table API:
// "closed", "open" or "half-open".
func (s *Shard) BreakerState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// allow reports whether a request may be sent to the shard now. An open
// breaker past its cooldown moves to half-open and admits exactly one
// trial request; its outcome (recordSuccess / recordFailure) decides
// whether the breaker closes again or re-opens for another cooldown.
func (s *Shard) allow(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(s.reopenAt) {
			return false
		}
		s.state = breakerHalfOpen
		return true
	default: // half-open: a trial is already in flight
		return false
	}
}

// recordSuccess closes the breaker and resets the failure count.
func (s *Shard) recordSuccess() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = breakerClosed
	s.fails = 0
}

// recordFailure counts one failed request; threshold consecutive failures
// (or any failure while half-open) trip the breaker open for cooldown.
// Reports whether this call transitioned the breaker to open — the edge
// the gateway's failover machinery triggers on.
func (s *Shard) recordFailure(now time.Time, threshold int, cooldown time.Duration) (opened bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == breakerHalfOpen {
		s.state = breakerOpen
		s.reopenAt = now.Add(cooldown)
		return true
	}
	s.fails++
	if s.fails >= threshold && s.state != breakerOpen {
		s.state = breakerOpen
		s.reopenAt = now.Add(cooldown)
		return true
	}
	return false
}

// Registry is the gateway's static shard set. It is immutable after
// NewRegistry; only the per-shard health state mutates.
type Registry struct {
	shards []*Shard
}

// NewRegistry validates and indexes the configured shards.
func NewRegistry(cfgs []ShardConfig) (*Registry, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cluster: registry needs at least one shard")
	}
	seen := make(map[string]bool, len(cfgs))
	r := &Registry{shards: make([]*Shard, 0, len(cfgs))}
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("cluster: shard needs a name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("cluster: shard %q registered twice", c.Name)
		}
		if c.Addr == "" {
			return nil, fmt.Errorf("cluster: shard %q needs an address", c.Name)
		}
		seen[c.Name] = true
		eps := append([]string{c.Addr}, c.Replicas...)
		epSeen := make(map[string]bool, len(eps))
		for _, e := range eps {
			if e == "" {
				return nil, fmt.Errorf("cluster: shard %q has an empty replica address", c.Name)
			}
			if epSeen[e] {
				return nil, fmt.Errorf("cluster: shard %q lists endpoint %s twice", c.Name, e)
			}
			epSeen[e] = true
		}
		r.shards = append(r.shards, &Shard{cfg: c, endpoints: eps})
	}
	return r, nil
}

// Shards returns the registered shards in registration order.
func (r *Registry) Shards() []*Shard { return r.shards }

// ShardFor returns the shard owning p, matched in registration order.
func (r *Registry) ShardFor(p geo.Point) (*Shard, bool) {
	for _, s := range r.shards {
		if s.cfg.Box.Contains(p) {
			return s, true
		}
	}
	return nil, false
}

// HealthyCount returns the number of shards with a closed breaker.
func (r *Registry) HealthyCount() int {
	n := 0
	for _, s := range r.shards {
		if s.Healthy() {
			n++
		}
	}
	return n
}

// recheck dials every unhealthy shard once (bounded by dialTimeout) and
// closes the breaker of any that answer — the "live re-check" that lets a
// restarted coordinator rejoin without waiting for agent traffic to trip
// the half-open path. Healthy shards are left alone: regular traffic is
// their health check.
func (r *Registry) recheck(dialTimeout time.Duration) {
	for _, s := range r.shards {
		if s.Healthy() {
			continue
		}
		nc, err := net.DialTimeout("tcp", s.Addr(), dialTimeout)
		if err != nil {
			continue
		}
		_ = nc.Close()
		s.recordSuccess()
	}
}
