package cluster

import (
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// shardMetrics is the pre-resolved per-shard instrument set: label lookups
// take a lock, so the routing path resolves them once at startup.
type shardMetrics struct {
	routed     *telemetry.Counter // requests routed to this shard by location
	forwarded  *telemetry.Counter // upstream requests completed
	failed     *telemetry.Counter // upstream requests that errored
	healthy    *telemetry.Gauge   // 1 = breaker closed, 0 = open/half-open
	promotions *telemetry.Counter // replica promotions executed for this shard
	demotions  *telemetry.Counter // stale primaries demoted for this shard
	epoch      *telemetry.Gauge   // current routing epoch
}

// gatewayMetrics holds the gateway's resolved telemetry instruments; every
// field is nil-safe so an uninstrumented gateway pays nothing.
type gatewayMetrics struct {
	conns          *telemetry.Counter
	unroutable     *telemetry.Counter // reports whose location no shard covers
	droppedSmps    *telemetry.Counter // samples lost to unavailable shards
	routeSec       *telemetry.Histogram
	perShard       map[string]*shardMetrics
	wire           *wire.Metrics
	protoErrors    *telemetry.Counter
	idleTimeouts   *telemetry.Counter
	estimateMerges *telemetry.Counter // estimate fan-outs answered by sketch merge
}

// newGatewayMetrics registers the gateway families on reg (nil reg gives a
// fully functional no-op set) and resolves one series per shard.
func newGatewayMetrics(reg *telemetry.Registry, shards []*Shard, healthyCount func() int) *gatewayMetrics {
	reg.GaugeFunc("wiscape_gateway_healthy_shards",
		"Shards whose circuit breaker is currently closed.",
		func() float64 { return float64(healthyCount()) })
	routed := reg.Counter("wiscape_gateway_routed_total",
		"Requests routed to a shard by reported location.", "shard")
	forwarded := reg.Counter("wiscape_gateway_forwarded_total",
		"Upstream shard requests completed successfully.", "shard")
	failed := reg.Counter("wiscape_gateway_failed_total",
		"Upstream shard requests that failed (dial, deadline, or protocol).", "shard")
	healthy := reg.Gauge("wiscape_gateway_shard_healthy",
		"Per-shard breaker state: 1 closed (healthy), 0 open.", "shard")
	promotions := reg.Counter("wiscape_gateway_promotions_total",
		"Replica promotions executed after a primary's breaker opened.", "shard")
	demotions := reg.Counter("wiscape_gateway_demotions_total",
		"Stale primaries ordered to demote and resync.", "shard")
	epoch := reg.Gauge("wiscape_gateway_routing_epoch",
		"Current routing epoch: bumped on every active-endpoint change.", "shard")
	m := &gatewayMetrics{
		conns: reg.Counter("wiscape_gateway_connections_total",
			"Agent connections accepted by the gateway.").With(),
		unroutable: reg.Counter("wiscape_gateway_unroutable_total",
			"Reports dropped because no shard's box covers their location.").With(),
		droppedSmps: reg.Counter("wiscape_gateway_samples_dropped_total",
			"Samples lost because their shard was unavailable.").With(),
		routeSec: reg.Histogram("wiscape_gateway_route_seconds",
			"End-to-end latency of routing one request (shard round trip included).", nil).With(),
		protoErrors: reg.Counter("wiscape_gateway_protocol_errors_total",
			"Requests answered with a protocol error.").With(),
		idleTimeouts: reg.Counter("wiscape_gateway_idle_disconnects_total",
			"Agent connections dropped for exceeding the idle timeout.").With(),
		estimateMerges: reg.Counter("wiscape_gateway_estimate_merges_total",
			"Estimate fan-outs answered by merging multiple shards' sketches.").With(),
		perShard: make(map[string]*shardMetrics, len(shards)),
		wire:     wire.NewMetrics(reg),
	}
	for _, s := range shards {
		sm := &shardMetrics{
			routed:     routed.With(s.Name()),
			forwarded:  forwarded.With(s.Name()),
			failed:     failed.With(s.Name()),
			healthy:    healthy.With(s.Name()),
			promotions: promotions.With(s.Name()),
			demotions:  demotions.With(s.Name()),
			epoch:      epoch.With(s.Name()),
		}
		sm.healthy.Set(1)
		m.perShard[s.Name()] = sm
	}
	return m
}

// wireMetrics returns the shared codec counters (nil-safe: an
// uninstrumented gateway hands wire.Conn a nil *wire.Metrics, itself a
// no-op).
func (m *gatewayMetrics) wireMetrics() *wire.Metrics {
	if m == nil {
		return nil
	}
	return m.wire
}

// shard returns the instrument set for a shard (nil-safe; the returned
// struct's fields are themselves nil-safe no-ops when uninstrumented).
func (m *gatewayMetrics) shard(name string) *shardMetrics {
	if m == nil {
		return nil
	}
	return m.perShard[name]
}

func (sm *shardMetrics) markRouted() {
	if sm != nil {
		sm.routed.Inc()
	}
}

func (sm *shardMetrics) markForwarded() {
	if sm != nil {
		sm.forwarded.Inc()
	}
}

func (sm *shardMetrics) markFailed(stillHealthy bool) {
	if sm != nil {
		sm.failed.Inc()
		sm.setHealth(stillHealthy)
	}
}

func (sm *shardMetrics) markPromotion(epoch uint64) {
	if sm != nil {
		sm.promotions.Inc()
		sm.epoch.Set(float64(epoch))
	}
}

func (sm *shardMetrics) markDemotion() {
	if sm != nil {
		sm.demotions.Inc()
	}
}

func (sm *shardMetrics) setHealth(healthy bool) {
	if sm == nil {
		return
	}
	if healthy {
		sm.healthy.Set(1)
	} else {
		sm.healthy.Set(0)
	}
}
