package cluster

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster/swarm"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// startReplicatedShard runs one durable coordinator with a replication
// listener; a non-empty replicateFrom starts it as a replica of that
// primary's replication address. admin additionally exposes the ops plane
// with the chaos admin endpoints the swarm kill hook drives.
func startReplicatedShard(t *testing.T, box geo.BoundingBox, serverID, replicateFrom string, admin bool) *coordinator.Server {
	t.Helper()
	ctrl := core.NewController(core.DefaultConfig(), box.Center())
	opts := coordinator.Options{
		Networks:        []radio.NetworkID{radio.NetB},
		Metrics:         []trace.Metric{trace.MetricUDPKbps},
		TaskInterval:    time.Minute,
		Seed:            seed,
		DataDir:         t.TempDir(),
		ServerID:        serverID,
		ReplicationAddr: "127.0.0.1:0",
		ReplicateFrom:   replicateFrom,
		SyncReplication: true,
		SyncTimeout:     5 * time.Second,
	}
	if admin {
		opts.OpsAddr = "127.0.0.1:0"
		opts.EnableAdmin = true
	}
	s, err := coordinator.Serve(ctrl, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// totalSamples sums a controller's ingested sample counts across zones.
func totalSamples(ctrl *core.Controller) int64 {
	var n int64
	for _, key := range ctrl.Keys() {
		n += ctrl.SampleCount(key)
	}
	return n
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// parkedTrack keeps the agent at one point for the whole campaign.
type parkedTrack struct{ at geo.Point }

func (tr parkedTrack) Pose(time.Time) mobility.Pose {
	return mobility.Pose{Loc: tr.at, Active: true}
}

// assertStateEquivalent checks that two controllers hold the same acked
// history: identical zone keys and per-zone sample counts, exactly matching
// means, and window quantiles within the sketch's rank-error tolerance.
func assertStateEquivalent(t *testing.T, want, got core.Snapshot) {
	t.Helper()
	if len(want.Entries) == 0 || len(want.Entries) != len(got.Entries) {
		t.Fatalf("entry counts differ: want %d, got %d", len(want.Entries), len(got.Entries))
	}
	for i, we := range want.Entries {
		ge := got.Entries[i]
		if we.Key != ge.Key {
			t.Fatalf("entry %d: key %v vs %v", i, we.Key, ge.Key)
		}
		if we.TotalCount != ge.TotalCount {
			t.Fatalf("key %v: total count %d vs %d", we.Key, we.TotalCount, ge.TotalCount)
		}
		if len(we.Sketch) == 0 {
			continue
		}
		ws, err := sketch.UnmarshalEpochSketch(we.Sketch)
		if err != nil {
			t.Fatalf("key %v: primary sketch: %v", we.Key, err)
		}
		gs, err := sketch.UnmarshalEpochSketch(ge.Sketch)
		if err != nil {
			t.Fatalf("key %v: replica sketch: %v", we.Key, err)
		}
		if ws.Count() != gs.Count() {
			t.Fatalf("key %v: sketch counts %d vs %d", we.Key, ws.Count(), gs.Count())
		}
		if d := math.Abs(ws.Mean() - gs.Mean()); d > 1e-9*(1+math.Abs(ws.Mean())) {
			t.Fatalf("key %v: means %v vs %v", we.Key, ws.Mean(), gs.Mean())
		}
		// The replica applied the identical sample sequence, so quantiles
		// should agree to within the digest's rank tolerance; with identical
		// inserts they are in practice bit-equal, so a tight relative bound
		// still leaves room for float noise only.
		for _, q := range []float64{0.5, 0.9, 0.99} {
			wq, gq := ws.Quantile(q), gs.Quantile(q)
			if d := math.Abs(wq - gq); d > 1e-6*(1+math.Abs(wq)) {
				t.Fatalf("key %v: q%.2f %v vs %v", we.Key, q, wq, gq)
			}
		}
	}
}

// TestFailoverPreservesAckedSamples is the tentpole acceptance proof: a
// primary/replica Madison shard behind the gateway loses its primary
// mid-campaign; the gateway's breaker-driven failover promotes the replica
// within the breaker window, the unmodified agent campaign rides across the
// kill, and at the end the promoted shard holds every acked sample exactly
// once — then the old primary rejoins, is demoted by the reconcile sweep,
// and resyncs to the same state from a fresh snapshot.
func TestFailoverPreservesAckedSamples(t *testing.T) {
	primary := startReplicatedShard(t, geo.Madison(), "mad-a", "", false)
	replica := startReplicatedShard(t, geo.Madison(), "mad-b", primary.ReplicationAddr(), false)

	registry, err := NewRegistry([]ShardConfig{{
		Name:     "madison",
		Addr:     primary.Addr(),
		Replicas: []string{replica.Addr()},
		Box:      geo.Madison(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	gw, err := ServeGateway(registry, "127.0.0.1:0", GatewayOptions{
		TaskInterval:     time.Minute,
		DialTimeout:      500 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		FailureThreshold: 1,
		BreakCooldown:    200 * time.Millisecond,
		RecheckInterval:  50 * time.Millisecond,
		Telemetry:        reg,
		OpsAddr:          "127.0.0.1:0",
		Seed:             seed,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	sh := registry.Shards()[0]

	env := radio.NewEnvironment([]radio.NetworkID{radio.NetB}, radio.RegionWI, seed, geo.Madison().Center())
	newAgent := func() *agent.Agent {
		return &agent.Agent{
			ID:          "failover-rider",
			DeviceClass: "laptop",
			Track:       parkedTrack{at: geo.MadisonStaticSites()[0]},
			Env:         env,
			Networks:    []radio.NetworkID{radio.NetB},
			Seed:        seed,
			Grid:        geo.GridForZoneRadius(geo.Madison().Center(), 250),
		}
	}

	// Phase 1: campaign against the healthy pair. Semi-sync replication
	// means every ack implies the replica already applied the write.
	st1, err := newAgent().RunResilient(gw.Addr(), start, 40*time.Minute, time.Minute, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SamplesSent == 0 {
		t.Fatal("phase 1 acked no samples")
	}
	if got := totalSamples(primary.Controller()); got != int64(st1.SamplesSent) {
		t.Fatalf("primary holds %d samples, agent acked %d", got, st1.SamplesSent)
	}

	// Pre-kill equivalence: the replica's controller is byte-for-byte the
	// primary's acked history (exact counts and means, quantiles within
	// rank tolerance).
	at := start.Add(40 * time.Minute)
	assertStateEquivalent(t, primary.Controller().Snapshot(at), replica.Controller().Snapshot(at))

	// Kill the primary mid-campaign (listener severed, process state kept —
	// the coordinator-side chaos hook the swarm -kill-shard flag drives).
	primary.Suspend()

	// Phase 2: the same unmodified campaign continues against the gateway.
	// Its first reports trip the breaker; the open edge kicks promotion;
	// retries land on the promoted replica.
	st2, err := newAgent().RunResilient(gw.Addr(), at, 40*time.Minute, time.Minute, 100)
	if err != nil {
		t.Fatalf("campaign did not survive the failover: %v", err)
	}
	if st2.SamplesSent == 0 {
		t.Fatal("phase 2 acked no samples")
	}

	if got, want := sh.Addr(), replica.Addr(); got != want {
		t.Fatalf("route table points at %s, want promoted replica %s", got, want)
	}
	if sh.Epoch() == 0 {
		t.Fatal("routing epoch did not advance")
	}
	waitUntil(t, 5*time.Second, "replica promotion", func() bool {
		return replica.Role() == wire.RolePrimary
	})

	// No acked sample lost, none duplicated: the promoted shard holds
	// exactly the union of both phases' acks.
	acked := int64(st1.SamplesSent + st2.SamplesSent)
	if got := totalSamples(replica.Controller()); got != acked {
		t.Fatalf("promoted shard holds %d samples, campaign acked %d", got, acked)
	}
	if p := counterValue(reg, "wiscape_gateway_promotions_total", "madison"); p == 0 {
		t.Fatal("promotion counter did not move")
	}

	// Rejoin: the old primary comes back at its old address still thinking
	// it is a primary at epoch 0; the gateway's reconcile sweep demotes it
	// and it resyncs from the new primary's snapshot.
	if err := primary.Resume(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "rejoined primary demotion", func() bool {
		return primary.Role() == wire.RoleReplica
	})
	waitUntil(t, 10*time.Second, "rejoined replica resync", func() bool {
		return totalSamples(primary.Controller()) == acked
	})
	assertStateEquivalent(t, replica.Controller().Snapshot(at), primary.Controller().Snapshot(at))

	// The live route table reports the new topology.
	resp, err := http.Get("http://" + gw.OpsAddr() + "/api/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var table struct {
		Shards []struct {
			Name      string `json:"name"`
			Addr      string `json:"addr"`
			Epoch     uint64 `json:"routing_epoch"`
			Breaker   string `json:"breaker"`
			Endpoints []struct {
				Addr   string `json:"addr"`
				Active bool   `json:"active"`
				Role   string `json:"role"`
			} `json:"endpoints"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	row := table.Shards[0]
	if row.Addr != replica.Addr() || row.Epoch == 0 || row.Breaker != "closed" {
		t.Fatalf("route table row: %+v", row)
	}
	roles := map[string]string{}
	for _, ep := range row.Endpoints {
		roles[ep.Addr] = ep.Role
		if ep.Active != (ep.Addr == replica.Addr()) {
			t.Fatalf("endpoint %s active=%v", ep.Addr, ep.Active)
		}
	}
	if roles[replica.Addr()] != wire.RolePrimary || roles[primary.Addr()] != wire.RoleReplica {
		t.Fatalf("endpoint roles: %v", roles)
	}
}

// counterValue reads a per-shard counter from reg without a testCluster.
func counterValue(reg *telemetry.Registry, name, shard string) float64 {
	return reg.Counter(name, "", "shard").With(shard).Value()
}

// TestSwarmChaosKillReportsIngestGap drives the swarm chaos hook end to
// end: a swarm hammers a gateway fronting a primary/replica pair while the
// hook suspends the primary mid-ingest via its chaos admin endpoint. The
// gateway promotes the replica, every agent survives (shard outages are
// error replies, not transport failures), and the report carries the
// observed ingest gap.
func TestSwarmChaosKillReportsIngestGap(t *testing.T) {
	primary := startReplicatedShard(t, geo.Madison(), "mad-a", "", true)
	replica := startReplicatedShard(t, geo.Madison(), "mad-b", primary.ReplicationAddr(), false)

	registry, err := NewRegistry([]ShardConfig{{
		Name:     "madison",
		Addr:     primary.Addr(),
		Replicas: []string{replica.Addr()},
		Box:      geo.Madison(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := ServeGateway(registry, "127.0.0.1:0", GatewayOptions{
		TaskInterval:     time.Minute,
		DialTimeout:      500 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		FailureThreshold: 1,
		BreakCooldown:    100 * time.Millisecond,
		RecheckInterval:  50 * time.Millisecond,
		Seed:             seed,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })

	res, err := swarm.Run(gw.Addr(), swarm.Options{
		Agents:          8,
		Rounds:          40,
		SamplesPerRound: 2,
		RoundDelay:      25 * time.Millisecond,
		Seed:            seed,
		RequestTimeout:  2 * time.Second,
		KillTarget:      "http://" + primary.OpsAddr(),
		KillAfter:       300 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KillAt == 0 {
		t.Fatal("chaos hook never fired")
	}
	if res.AgentsCompleted != res.Agents {
		t.Fatalf("%d/%d agents survived the kill", res.AgentsCompleted, res.Agents)
	}
	if res.SamplesAccepted == 0 {
		t.Fatal("no samples accepted across the chaos run")
	}
	// res.Failures may legitimately be zero: the gateway's in-request retry
	// can complete the promotion between the failed attempt and the redial,
	// making the kill invisible to agents. The promotion itself is the
	// proof the kill landed.
	if res.MaxIngestGap <= 0 {
		t.Fatalf("ingest gap %v, want > 0", res.MaxIngestGap)
	}
	waitUntil(t, 5*time.Second, "replica promotion", func() bool {
		return replica.Role() == wire.RolePrimary
	})
	if sh := registry.Shards()[0]; sh.Addr() != replica.Addr() || sh.Epoch() == 0 {
		t.Fatalf("route not rewritten: addr %s epoch %d", sh.Addr(), sh.Epoch())
	}
}

// TestReadyzDegradesWhenReplicaServed checks the readiness semantics: a
// shard whose primary is down but whose standby answered the last poll
// keeps /readyz at 200 with a "degraded" detail; with no standby either,
// the gateway goes unready.
func TestReadyzDegradesWhenReplicaServed(t *testing.T) {
	registry, err := NewRegistry([]ShardConfig{{
		Name:     "madison",
		Addr:     "127.0.0.1:1",
		Replicas: []string{"127.0.0.1:2"},
		Box:      geo.Madison(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := ServeGateway(registry, "127.0.0.1:0", GatewayOptions{
		RecheckInterval: -1, // no background probes: the test drives state
		OpsAddr:         "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	sh := registry.Shards()[0]

	readyz := func() (int, string) {
		resp, err := http.Get("http://" + gw.OpsAddr() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := readyz(); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy readyz = %d %q", code, body)
	}

	// Primary dead, no standby known: unready.
	if opened := sh.recordFailure(time.Now(), 1, time.Hour); !opened {
		t.Fatal("breaker did not open")
	}
	if code, _ := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("primary-less readyz = %d, want 503", code)
	}

	// A standby answered the last poll: degraded but ready.
	sh.setStandbyUp(true)
	code, body := readyz()
	if code != http.StatusOK || !strings.Contains(body, "degraded") || !strings.Contains(body, "madison") {
		t.Fatalf("replica-served readyz = %d %q, want 200 with degraded detail", code, body)
	}
}
