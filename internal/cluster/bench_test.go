package cluster

import (
	"testing"
	"time"

	"repro/internal/cluster/swarm"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/trace"
)

// benchSwarm drives one fixed swarm per iteration and reports sustained
// ingest throughput, so `go test -bench 'BenchmarkSwarm'` prints a direct
// gateway-vs-coordinator comparison.
func benchSwarm(b *testing.B, addr string) {
	b.Helper()
	const agents, rounds, samples = 64, 5, 10
	var accepted int64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := swarm.Run(addr, swarm.Options{
			Agents:          agents,
			Rounds:          rounds,
			SamplesPerRound: samples,
			Seed:            uint64(1000 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AgentsCompleted != agents || res.Failures != 0 {
			b.Fatalf("bench swarm degraded: %+v", res)
		}
		accepted += res.SamplesAccepted
		elapsed += res.Elapsed
	}
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(accepted)/elapsed.Seconds(), "samples/s")
	}
}

func benchCoordinator(b *testing.B) *coordinator.Server {
	b.Helper()
	ctrl := core.NewController(core.DefaultConfig(), geo.Madison().Center())
	srv, err := coordinator.Serve(ctrl, "127.0.0.1:0", coordinator.Options{
		Networks:     []radio.NetworkID{radio.NetB},
		Metrics:      []trace.Metric{trace.MetricUDPKbps},
		TaskInterval: time.Minute,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

// BenchmarkSwarmDirect is the baseline: the swarm hits one coordinator.
func BenchmarkSwarmDirect(b *testing.B) {
	srv := benchCoordinator(b)
	benchSwarm(b, srv.Addr())
}

// BenchmarkSwarmGateway measures the routing tier's overhead: the same
// swarm, behind a single-shard gateway fronting the same coordinator.
func BenchmarkSwarmGateway(b *testing.B) {
	srv := benchCoordinator(b)
	reg, err := NewRegistry([]ShardConfig{{Name: "madison", Addr: srv.Addr(), Box: geo.Madison()}})
	if err != nil {
		b.Fatal(err)
	}
	gw, err := ServeGateway(reg, "127.0.0.1:0", GatewayOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = gw.Close() })
	benchSwarm(b, gw.Addr())
}
