package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func boxA() geo.BoundingBox { return geo.BoundingBox{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1} }
func boxB() geo.BoundingBox { return geo.BoundingBox{MinLat: 2, MaxLat: 3, MinLon: 2, MaxLon: 3} }

func TestNewRegistryValidates(t *testing.T) {
	cases := []struct {
		name string
		cfgs []ShardConfig
		want string
	}{
		{"empty", nil, "at least one"},
		{"unnamed", []ShardConfig{{Addr: "x:1"}}, "needs a name"},
		{"no addr", []ShardConfig{{Name: "a"}}, "needs an address"},
		{"dup", []ShardConfig{{Name: "a", Addr: "x:1"}, {Name: "a", Addr: "x:2"}}, "twice"},
	}
	for _, tc := range cases {
		if _, err := NewRegistry(tc.cfgs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestShardForMatchesInOrder(t *testing.T) {
	overlap := geo.BoundingBox{MinLat: 0, MaxLat: 3, MinLon: 0, MaxLon: 3}
	reg, err := NewRegistry([]ShardConfig{
		{Name: "specific", Addr: "x:1", Box: boxA()},
		{Name: "wide", Addr: "x:2", Box: overlap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh, ok := reg.ShardFor(geo.Point{Lat: 0.5, Lon: 0.5}); !ok || sh.Name() != "specific" {
		t.Fatalf("overlap must resolve in registration order, got %v %v", sh, ok)
	}
	if sh, ok := reg.ShardFor(geo.Point{Lat: 2.5, Lon: 2.5}); !ok || sh.Name() != "wide" {
		t.Fatalf("fallback shard not found: %v %v", sh, ok)
	}
	if _, ok := reg.ShardFor(geo.Point{Lat: 40, Lon: 40}); ok {
		t.Fatal("point outside every box must not route")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	s := &Shard{cfg: ShardConfig{Name: "a", Addr: "x:1", Box: boxA()}}
	now := time.Unix(1000, 0)
	const threshold = 3
	cooldown := 5 * time.Second

	if !s.Healthy() || !s.allow(now) {
		t.Fatal("fresh shard must be healthy")
	}
	// Failures below the threshold keep the breaker closed.
	s.recordFailure(now, threshold, cooldown)
	s.recordFailure(now, threshold, cooldown)
	if !s.Healthy() {
		t.Fatal("breaker tripped below threshold")
	}
	// The threshold-th consecutive failure trips it.
	s.recordFailure(now, threshold, cooldown)
	if s.Healthy() || s.allow(now.Add(time.Second)) {
		t.Fatal("breaker must be open after threshold failures")
	}
	// Cooldown expiry admits exactly one trial request.
	trial := now.Add(cooldown + time.Second)
	if !s.allow(trial) {
		t.Fatal("breaker must go half-open after cooldown")
	}
	if s.allow(trial) {
		t.Fatal("half-open breaker must admit only one trial")
	}
	// A failed trial re-opens for another cooldown.
	s.recordFailure(trial, threshold, cooldown)
	if s.allow(trial.Add(time.Second)) {
		t.Fatal("failed trial must re-open the breaker")
	}
	// A successful trial closes it and resets the failure count.
	trial2 := trial.Add(cooldown + time.Second)
	if !s.allow(trial2) {
		t.Fatal("second trial not admitted")
	}
	s.recordSuccess()
	if !s.Healthy() {
		t.Fatal("success must close the breaker")
	}
	s.recordFailure(trial2, threshold, cooldown)
	if !s.Healthy() {
		t.Fatal("failure count must reset after success")
	}
}

func TestSuccessResetsConsecutiveFailures(t *testing.T) {
	s := &Shard{cfg: ShardConfig{Name: "a", Addr: "x:1"}}
	now := time.Unix(0, 0)
	s.recordFailure(now, 3, time.Second)
	s.recordFailure(now, 3, time.Second)
	s.recordSuccess()
	s.recordFailure(now, 3, time.Second)
	s.recordFailure(now, 3, time.Second)
	if !s.Healthy() {
		t.Fatal("interleaved successes must keep the breaker closed")
	}
}

func TestRecheckRevivesReachableShard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			_ = nc.Close()
		}
	}()

	reg, err := NewRegistry([]ShardConfig{
		{Name: "up", Addr: ln.Addr().String(), Box: boxA()},
		{Name: "down", Addr: "127.0.0.1:1", Box: boxB()}, // nothing listens on port 1
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, s := range reg.Shards() {
		s.recordFailure(now, 1, time.Hour) // trip both breakers
	}
	if reg.HealthyCount() != 0 {
		t.Fatal("setup: both breakers should be open")
	}
	reg.recheck(500 * time.Millisecond)
	if !reg.Shards()[0].Healthy() {
		t.Fatal("reachable shard must be revived by recheck")
	}
	if reg.Shards()[1].Healthy() {
		t.Fatal("unreachable shard must stay broken")
	}
	if reg.HealthyCount() != 1 {
		t.Fatalf("healthy count %d, want 1", reg.HealthyCount())
	}
}
